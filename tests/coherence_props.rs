//! Property-based tests on the core data structures and protocol
//! invariants, driven by proptest.

use proptest::prelude::*;
use stash_repro::mem::addr::{PAddr, VAddr};
use stash_repro::mem::cache::DenovoCache;
use stash_repro::mem::coherence::WordState;
use stash_repro::mem::llc::{CoreId, Llc, LlcLoadOutcome, Registration};
use stash_repro::mem::tile::TileMap;
use stash_repro::stash::{LoadOutcome, Stash, StashConfig, StoreOutcome, UsageMode};

// ---------------------------------------------------------------------
// TileMap: translation is a bijection over the mapped words.
// ---------------------------------------------------------------------

fn tile_strategy() -> impl Strategy<Value = TileMap> {
    // field words, extra object words, row elems, rows, stride padding.
    (1u64..4, 0u64..8, 1u64..32, 1u64..8, 0u64..64).prop_map(
        |(fw, extra, row_elems, rows, pad)| {
            let field = fw * 4;
            let object = field + extra * 4;
            let stride = row_elems * object + pad * 4;
            TileMap::new(VAddr(0x10_0000), field, object, row_elems, stride, rows)
                .expect("generated geometry is valid")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tile_forward_reverse_roundtrip(tile in tile_strategy()) {
        for off in (0..tile.local_bytes()).step_by(4) {
            let va = tile.virt_of_local_offset(off);
            prop_assert_eq!(tile.local_offset_of_virt(va), Some(off));
        }
    }

    #[test]
    fn tile_unmapped_bytes_reverse_to_none(tile in tile_strategy()) {
        // Bytes of each object beyond the field are not in the stash.
        if tile.object_bytes() > tile.field_bytes() {
            let first_unmapped = tile.global_base().add(tile.field_bytes());
            prop_assert_eq!(tile.local_offset_of_virt(first_unmapped), None);
        }
        // Below the base is never mapped.
        prop_assert_eq!(tile.local_offset_of_virt(VAddr(0x10_0000 - 4)), None);
    }

    #[test]
    fn tile_field_addresses_are_disjoint(tile in tile_strategy()) {
        let mut addrs: Vec<u64> = tile.iter_field_vaddrs().map(|v| v.0).collect();
        addrs.sort_unstable();
        addrs.dedup();
        prop_assert_eq!(addrs.len() as u64, tile.total_elements());
    }
}

// ---------------------------------------------------------------------
// DenovoCache: registered words are never silently lost.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_never_drops_registered_words(
        accesses in prop::collection::vec((0u64..64, any::<bool>()), 1..200)
    ) {
        // A small cache (4 sets × 2 ways) under random word ops over 64
        // lines: every store is either still Registered in the cache or
        // was reported through an eviction.
        let mut cache = DenovoCache::new(512, 2, 64);
        let mut live: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut written_back = 0usize;
        for (line_idx, write) in accesses {
            let pa = PAddr(line_idx * 64);
            let out = cache.ensure_line(pa);
            if let Some(ev) = out.evicted {
                for w in ev.registered_words {
                    let addr = ev.line.word_addr(w);
                    prop_assert!(live.remove(&addr.0), "evicted a word that was not live");
                    written_back += 1;
                }
            }
            if write {
                cache.set_word(pa, WordState::Registered);
                live.insert(pa.0);
            }
        }
        prop_assert_eq!(cache.registered_words().len() + written_back,
            live.len() + written_back);
        for addr in live {
            prop_assert_eq!(cache.word_state(PAddr(addr)), WordState::Registered);
        }
    }

    #[test]
    fn self_invalidation_is_idempotent(
        states in prop::collection::vec(0u8..3, 16)
    ) {
        let mut cache = DenovoCache::new(512, 2, 64);
        let base = PAddr(0x1000);
        cache.ensure_line(base);
        for (i, s) in states.iter().enumerate() {
            let st = match s { 0 => WordState::Invalid, 1 => WordState::Shared, _ => WordState::Registered };
            cache.set_word(PAddr(base.0 + i as u64 * 4), st);
        }
        cache.self_invalidate();
        let snapshot: Vec<WordState> =
            (0..16).map(|i| cache.word_state(PAddr(base.0 + i * 4))).collect();
        cache.self_invalidate();
        let again: Vec<WordState> =
            (0..16).map(|i| cache.word_state(PAddr(base.0 + i * 4))).collect();
        prop_assert_eq!(snapshot.clone(), again);
        // And nothing Shared survived.
        prop_assert!(snapshot.iter().all(|&s| s != WordState::Shared));
    }
}

// ---------------------------------------------------------------------
// LLC registry: exactly one owner per word, writebacks only from owners.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn registry_has_single_owner_semantics(
        ops in prop::collection::vec((0u64..8, 0usize..16, 0usize..4, any::<bool>()), 1..300)
    ) {
        let mut llc = Llc::new(16, 64);
        let mut owner: std::collections::HashMap<(u64, usize), usize> =
            std::collections::HashMap::new();
        for (line_idx, word, core, write) in ops {
            let line = stash_repro::mem::addr::LineAddr(line_idx * 64);
            if write {
                let out = llc.register_word(line, word, Registration::Cache(CoreId(core)));
                // The displaced owner reported by the LLC matches ours.
                let expect = owner.get(&(line_idx, word)).copied().filter(|&c| c != core);
                prop_assert_eq!(out.previous.map(|r| r.core().0), expect);
                owner.insert((line_idx, word), core);
            } else {
                match llc.load_word(line, word) {
                    LlcLoadOutcome::Forward(r) => {
                        prop_assert_eq!(Some(&r.core().0), owner.get(&(line_idx, word)));
                    }
                    LlcLoadOutcome::Data { .. } => {
                        prop_assert!(!owner.contains_key(&(line_idx, word)));
                    }
                }
            }
        }
        // Writebacks from the true owner clear registration; others don't.
        for ((line_idx, word), core) in owner {
            let line = stash_repro::mem::addr::LineAddr(line_idx * 64);
            prop_assert!(!llc.writeback_word(line, word, CoreId(core + 1)));
            prop_assert!(llc.writeback_word(line, word, CoreId(core)));
            let cleared = matches!(llc.load_word(line, word), LlcLoadOutcome::Data { .. });
            prop_assert!(cleared);
        }
    }
}

// ---------------------------------------------------------------------
// Stash: the RTLB guarantee and writeback conservation.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §4.1.4: remote requests never miss in the RTLB — every word the
    /// registry believes a stash holds can be reverse-translated and
    /// found, across arbitrary map/access/kernel sequences.
    #[test]
    fn rtlb_never_misses_for_registered_words(
        rounds in prop::collection::vec(
            (0u64..8, 1u64..64, prop::collection::vec((0u64..64, any::<bool>()), 0..24)),
            1..12
        )
    ) {
        let mut stash = Stash::new(StashConfig::default());
        // Shadow: words we believe are Registered, by physical address.
        let mut registered: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        let page = 4096u64;
        for (tb, (base_sel, elems, accesses)) in rounds.into_iter().enumerate() {
            let tile = TileMap::new(
                VAddr(0x100_0000 + base_sel * 0x10_0000),
                4, 16, elems, 0, 1,
            ).unwrap();
            let Ok(out) = stash.add_map(tb, tile, 0, UsageMode::MappedCoherent) else {
                // Table limits reached — acceptable terminal state.
                break;
            };
            // Writebacks have architecturally completed: the registry no
            // longer points at the stash for these words (frames are
            // identity-mapped at +0x8000_0000 in this test).
            for wb in &out.writebacks {
                registered.remove(&(wb.vaddr.0 + 0x8000_0000));
            }
            for (word_sel, write) in accesses {
                let word = (word_sel % elems) as usize;
                if write {
                    match stash.store(word, out.index).unwrap() {
                        StoreOutcome::Hit => {}
                        StoreOutcome::Miss { vaddr, writebacks, .. } => {
                            for wb in &writebacks {
                                registered.remove(&(wb.vaddr.0 + 0x8000_0000));
                            }
                            // Simulate the page walk: identity frames.
                            let pa = PAddr(vaddr.0 + 0x8000_0000);
                            stash.note_translation(vaddr, pa);
                            stash.complete_store_fill(word, out.index);
                            registered.insert(pa.0, word);
                        }
                    }
                } else if let LoadOutcome::Miss { vaddr, writebacks } =
                    stash.load(word, out.index).unwrap()
                {
                    for wb in &writebacks {
                        registered.remove(&(wb.vaddr.0 + 0x8000_0000));
                    }
                    let pa = PAddr(vaddr.0 + 0x8000_0000);
                    stash.note_translation(vaddr, pa);
                    stash.complete_load_fill(word);
                }
            }
            stash.end_thread_block(tb);
            stash.end_kernel();
            // THE GUARANTEE: every word still registered (per our shadow)
            // is reachable through the VP-map's reverse translation.
            for &pa in registered.keys() {
                let _ = page;
                prop_assert!(
                    stash.remote_request(PAddr(pa)).is_some(),
                    "remote request missed for pa {pa:#x}"
                );
            }
        }
    }
}
