//! Property-style tests on the core data structures and protocol
//! invariants, driven by the simulator's own deterministic PRNG
//! (`sim::rng::SplitMix64`) — every trial is a pure function of its
//! seed, so failures reproduce exactly and no external test-harness
//! dependency is needed.

use sim::rng::SplitMix64;
use stash_repro::mem::addr::{LineAddr, PAddr, VAddr};
use stash_repro::mem::cache::DenovoCache;
use stash_repro::mem::coherence::WordState;
use stash_repro::mem::llc::{CoreId, Llc, LlcLoadOutcome, Registration};
use stash_repro::mem::tile::TileMap;
use stash_repro::stash::{LoadOutcome, Stash, StashConfig, StoreOutcome, UsageMode};

// ---------------------------------------------------------------------
// TileMap: translation is a bijection over the mapped words.
// ---------------------------------------------------------------------

/// A random valid tile geometry: field words, extra object words, row
/// elements, rows, stride padding.
fn random_tile(rng: &mut SplitMix64) -> TileMap {
    let fw = 1 + rng.next_below(3);
    let extra = rng.next_below(8);
    let row_elems = 1 + rng.next_below(31);
    let rows = 1 + rng.next_below(7);
    let pad = rng.next_below(64);
    let field = fw * 4;
    let object = field + extra * 4;
    let stride = row_elems * object + pad * 4;
    TileMap::new(VAddr(0x10_0000), field, object, row_elems, stride, rows)
        .expect("generated geometry is valid")
}

#[test]
fn tile_forward_reverse_roundtrip() {
    for seed in 0..256u64 {
        let tile = random_tile(&mut SplitMix64::new(seed));
        for off in (0..tile.local_bytes()).step_by(4) {
            let va = tile.virt_of_local_offset(off);
            assert_eq!(tile.local_offset_of_virt(va), Some(off), "seed {seed}");
        }
    }
}

#[test]
fn tile_unmapped_bytes_reverse_to_none() {
    for seed in 0..256u64 {
        let tile = random_tile(&mut SplitMix64::new(seed));
        // Bytes of each object beyond the field are not in the stash.
        if tile.object_bytes() > tile.field_bytes() {
            let first_unmapped = tile.global_base().add(tile.field_bytes());
            assert_eq!(
                tile.local_offset_of_virt(first_unmapped),
                None,
                "seed {seed}"
            );
        }
        // Below the base is never mapped.
        assert_eq!(
            tile.local_offset_of_virt(VAddr(0x10_0000 - 4)),
            None,
            "seed {seed}"
        );
    }
}

#[test]
fn tile_field_addresses_are_disjoint() {
    for seed in 0..256u64 {
        let tile = random_tile(&mut SplitMix64::new(seed));
        let mut addrs: Vec<u64> = tile.iter_field_vaddrs().map(|v| v.0).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len() as u64, tile.total_elements(), "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// DenovoCache: registered words are never silently lost.
// ---------------------------------------------------------------------

#[test]
fn cache_never_drops_registered_words() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        // A small cache (4 sets × 2 ways) under random word ops over 64
        // lines: every store is either still Registered in the cache or
        // was reported through an eviction.
        let mut cache = DenovoCache::new(512, 2, 64);
        let mut live: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut written_back = 0usize;
        let accesses = 1 + rng.next_below(199);
        for _ in 0..accesses {
            let line_idx = rng.next_below(64);
            let write = rng.chance(1, 2);
            let pa = PAddr(line_idx * 64);
            let out = cache.ensure_line(pa);
            if let Some(ev) = out.evicted {
                for w in ev.registered_words {
                    let addr = ev.line.word_addr(w);
                    assert!(
                        live.remove(&addr.0),
                        "seed {seed}: evicted a word that was not live"
                    );
                    written_back += 1;
                }
            }
            if write {
                cache.set_word(pa, WordState::Registered);
                live.insert(pa.0);
            }
        }
        assert_eq!(
            cache.registered_words().len() + written_back,
            live.len() + written_back,
            "seed {seed}"
        );
        for addr in live {
            assert_eq!(
                cache.word_state(PAddr(addr)),
                WordState::Registered,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn self_invalidation_is_idempotent() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        let mut cache = DenovoCache::new(512, 2, 64);
        let base = PAddr(0x1000);
        cache.ensure_line(base);
        for i in 0..16u64 {
            let st = match rng.next_below(3) {
                0 => WordState::Invalid,
                1 => WordState::Shared,
                _ => WordState::Registered,
            };
            cache.set_word(PAddr(base.0 + i * 4), st);
        }
        cache.self_invalidate();
        let snapshot: Vec<WordState> = (0..16)
            .map(|i| cache.word_state(PAddr(base.0 + i * 4)))
            .collect();
        cache.self_invalidate();
        let again: Vec<WordState> = (0..16)
            .map(|i| cache.word_state(PAddr(base.0 + i * 4)))
            .collect();
        assert_eq!(snapshot, again, "seed {seed}");
        // And nothing Shared survived.
        assert!(
            snapshot.iter().all(|&s| s != WordState::Shared),
            "seed {seed}"
        );
    }
}

// ---------------------------------------------------------------------
// LLC registry: exactly one owner per word, writebacks only from owners.
// ---------------------------------------------------------------------

#[test]
fn registry_has_single_owner_semantics() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        let mut llc = Llc::new(16, 64);
        let mut owner: std::collections::HashMap<(u64, usize), usize> =
            std::collections::HashMap::new();
        let ops = 1 + rng.next_below(299);
        for _ in 0..ops {
            let line_idx = rng.next_below(8);
            let word = rng.next_below(16) as usize;
            let core = rng.next_below(4) as usize;
            let write = rng.chance(1, 2);
            let line = LineAddr(line_idx * 64);
            if write {
                let out = llc.register_word(line, word, Registration::Cache(CoreId(core)));
                // The displaced owner reported by the LLC matches ours.
                let expect = owner.get(&(line_idx, word)).copied().filter(|&c| c != core);
                assert_eq!(out.previous.map(|r| r.core().0), expect, "seed {seed}");
                owner.insert((line_idx, word), core);
            } else {
                match llc.load_word(line, word) {
                    LlcLoadOutcome::Forward(r) => {
                        assert_eq!(
                            Some(&r.core().0),
                            owner.get(&(line_idx, word)),
                            "seed {seed}"
                        );
                    }
                    LlcLoadOutcome::Data { .. } => {
                        assert!(!owner.contains_key(&(line_idx, word)), "seed {seed}");
                    }
                }
            }
        }
        // Writebacks from the true owner clear registration; others don't.
        for ((line_idx, word), core) in owner {
            let line = LineAddr(line_idx * 64);
            assert!(
                !llc.writeback_word(line, word, CoreId(core + 1)),
                "seed {seed}"
            );
            assert!(llc.writeback_word(line, word, CoreId(core)), "seed {seed}");
            let cleared = matches!(llc.load_word(line, word), LlcLoadOutcome::Data { .. });
            assert!(cleared, "seed {seed}");
        }
    }
}

// ---------------------------------------------------------------------
// Stash: the RTLB guarantee and writeback conservation.
// ---------------------------------------------------------------------

/// §4.1.4: remote requests never miss in the RTLB — every word the
/// registry believes a stash holds can be reverse-translated and found,
/// across arbitrary map/access/kernel sequences.
#[test]
fn rtlb_never_misses_for_registered_words() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let mut stash = Stash::new(StashConfig::default());
        // Shadow: words we believe are Registered, by physical address.
        let mut registered: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        let rounds = 1 + rng.next_below(11);
        for tb in 0..rounds as usize {
            let base_sel = rng.next_below(8);
            let elems = 1 + rng.next_below(63);
            let tile =
                TileMap::new(VAddr(0x100_0000 + base_sel * 0x10_0000), 4, 16, elems, 0, 1).unwrap();
            let Ok(out) = stash.add_map(tb, tile, 0, UsageMode::MappedCoherent) else {
                // Table limits reached — acceptable terminal state.
                break;
            };
            // Writebacks have architecturally completed: the registry no
            // longer points at the stash for these words (frames are
            // identity-mapped at +0x8000_0000 in this test).
            for wb in &out.writebacks {
                registered.remove(&(wb.vaddr.0 + 0x8000_0000));
            }
            let accesses = rng.next_below(24);
            for _ in 0..accesses {
                let word = rng.next_below(elems) as usize;
                let write = rng.chance(1, 2);
                if write {
                    match stash.store(word, out.index).unwrap() {
                        StoreOutcome::Hit => {}
                        StoreOutcome::Miss {
                            vaddr, writebacks, ..
                        } => {
                            for wb in &writebacks {
                                registered.remove(&(wb.vaddr.0 + 0x8000_0000));
                            }
                            // Simulate the page walk: identity frames.
                            let pa = PAddr(vaddr.0 + 0x8000_0000);
                            stash.note_translation(vaddr, pa);
                            stash.complete_store_fill(word, out.index);
                            registered.insert(pa.0, word);
                        }
                    }
                } else if let LoadOutcome::Miss { vaddr, writebacks } =
                    stash.load(word, out.index).unwrap()
                {
                    for wb in &writebacks {
                        registered.remove(&(wb.vaddr.0 + 0x8000_0000));
                    }
                    let pa = PAddr(vaddr.0 + 0x8000_0000);
                    stash.note_translation(vaddr, pa);
                    stash.complete_load_fill(word);
                }
            }
            stash.end_thread_block(tb);
            stash.end_kernel();
            // THE GUARANTEE: every word still registered (per our shadow)
            // is reachable through the VP-map's reverse translation.
            for &pa in registered.keys() {
                assert!(
                    stash.remote_request(PAddr(pa)).is_some(),
                    "seed {seed}: remote request missed for pa {pa:#x}"
                );
            }
        }
    }
}
