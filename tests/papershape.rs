//! Shape acceptance tests (DESIGN.md §3): the reproduction must get the
//! paper's *qualitative* results right — who wins, roughly by how much,
//! and where the crossovers fall — even though absolute numbers differ
//! (our substrate is a from-scratch simulator, not the authors' testbed).

use stash_repro::gpu::config::MemConfigKind;
use stash_repro::gpu::machine::Machine;
use stash_repro::gpu::report::RunReport;
use stash_repro::workloads::suite::{self, Workload};

fn run(workload: &Workload, kind: MemConfigKind) -> RunReport {
    let program = (workload.build)(kind);
    let mut machine = Machine::new(workload.set.system_config(), kind);
    machine
        .run(&program)
        .unwrap_or_else(|e| panic!("{} on {kind}: {e}", workload.name))
}

fn micro_reports(name: &str) -> [(MemConfigKind, RunReport); 4] {
    let w = suite::by_name(name).expect("registered microbenchmark");
    MemConfigKind::FIGURE5.map(|k| (k, run(&w, k)))
}

fn report_for(reports: &[(MemConfigKind, RunReport)], kind: MemConfigKind) -> &RunReport {
    &reports
        .iter()
        .find(|(k, _)| *k == kind)
        .expect("simulated")
        .1
}

/// §6.2: the stash outperforms scratchpad and cache on *every*
/// microbenchmark, in both time and energy.
#[test]
fn stash_wins_every_microbenchmark() {
    for name in ["implicit", "pollution", "ondemand", "reuse"] {
        let reports = micro_reports(name);
        let stash = report_for(&reports, MemConfigKind::Stash);
        let scratch = report_for(&reports, MemConfigKind::Scratch);
        let cache = report_for(&reports, MemConfigKind::Cache);
        assert!(
            stash.total_picos < scratch.total_picos,
            "{name}: stash time {} !< scratch {}",
            stash.total_picos,
            scratch.total_picos
        );
        assert!(
            stash.total_energy() < scratch.total_energy(),
            "{name}: stash energy !< scratch"
        );
        assert!(
            stash.total_picos <= cache.total_picos,
            "{name}: stash time !<= cache"
        );
        assert!(
            stash.total_energy() < cache.total_energy(),
            "{name}: stash energy !< cache"
        );
    }
}

/// §6.2: the DMA-enhanced scratchpad closes most of the gap, *except*
/// where global addressability/visibility matter — On-demand (sparse
/// accesses) and Reuse (cross-kernel data retention).
#[test]
fn dma_loses_exactly_where_the_paper_says() {
    for name in ["ondemand", "reuse"] {
        let reports = micro_reports(name);
        let stash = report_for(&reports, MemConfigKind::Stash);
        let dma = report_for(&reports, MemConfigKind::ScratchGD);
        // A wide margin: the paper reports 48% / 63% energy reductions.
        assert!(
            stash.total_energy() * 100 < dma.total_energy() * 75,
            "{name}: stash should beat DMA by >25% energy"
        );
        assert!(
            stash.traffic.total_crossings() < dma.traffic.total_crossings(),
            "{name}: stash should produce less traffic than DMA"
        );
    }
}

/// §6.2 (Pollution): explicit copies through the L1 evict the cached
/// array; the stash (and DMA) bypass the L1 so its reuse survives.
#[test]
fn pollution_is_about_the_l1() {
    let reports = micro_reports("pollution");
    let scratch = report_for(&reports, MemConfigKind::Scratch);
    let stash = report_for(&reports, MemConfigKind::Stash);
    let dma = report_for(&reports, MemConfigKind::ScratchGD);
    // B's second pass misses under Scratch: more L1 misses than either
    // L1-bypassing configuration.
    let scratch_misses = scratch.counters.get("gpu.l1.miss");
    assert!(scratch_misses > stash.counters.get("gpu.l1.miss"));
    assert!(scratch_misses > dma.counters.get("gpu.l1.miss"));
}

/// §6.2 (Reuse): only the stash retains data across kernels — its DRAM
/// traffic is one cold kernel's worth, while every other configuration
/// refetches per kernel. (The LLC caches the array for the others, so
/// the distinction shows in fetch counts, not DRAM lines.)
#[test]
fn reuse_is_cross_kernel() {
    use stash_repro::workloads::micro::reuse;
    let reports = micro_reports("reuse");
    let stash = report_for(&reports, MemConfigKind::Stash);
    // Exactly one kernel's worth of word fetches.
    assert_eq!(stash.counters.get("stash.fetch_words"), reuse::ELEMS);
    // Adoption (replication path) fired on the later kernels' AddMaps.
    assert!(stash.counters.get("stash.addmap_replicated") > 0);
    // Scratch re-copies: its global load transactions scale with kernels.
    let scratch = report_for(&reports, MemConfigKind::Scratch);
    assert!(
        scratch.counters.get("gpu.l1.load_tx")
            > stash.counters.get("stash.load_tx") / 2 * (reuse::KERNELS as u64)
    );
}

/// Figure 5c: the stash issues far fewer instructions than the
/// scratchpad (no copy loops) — the paper quotes 40% fewer on Implicit.
#[test]
fn implicit_instruction_reduction() {
    let reports = micro_reports("implicit");
    let stash = report_for(&reports, MemConfigKind::Stash);
    let scratch = report_for(&reports, MemConfigKind::Scratch);
    let pct = stash.gpu_instructions * 100 / scratch.gpu_instructions;
    assert!(
        (45..=75).contains(&pct),
        "stash/scratch instructions = {pct}%, paper ≈ 60%"
    );
}

/// §6.2 headline averages, in generous bands around the paper's numbers
/// (time reductions amplify in our more bandwidth-bound model; energy
/// tracks closely).
#[test]
fn microbenchmark_headline_bands() {
    let mut energy_vs_scratch = 0i64;
    let mut energy_vs_dma = 0i64;
    for name in ["implicit", "pollution", "ondemand", "reuse"] {
        let reports = micro_reports(name);
        let stash = report_for(&reports, MemConfigKind::Stash).total_energy() as i64;
        let scratch = report_for(&reports, MemConfigKind::Scratch).total_energy() as i64;
        let dma = report_for(&reports, MemConfigKind::ScratchGD).total_energy() as i64;
        energy_vs_scratch += 100 - stash * 100 / scratch;
        energy_vs_dma += 100 - stash * 100 / dma;
    }
    let avg_scratch = energy_vs_scratch / 4;
    let avg_dma = energy_vs_dma / 4;
    // Paper: 53% vs scratchpad, 32% vs DMA.
    assert!(
        (35..=70).contains(&avg_scratch),
        "avg energy reduction vs Scratch = {avg_scratch}%, paper 53%"
    );
    assert!(
        (15..=50).contains(&avg_dma),
        "avg energy reduction vs ScratchGD = {avg_dma}%, paper 32%"
    );
}

/// §6.3 on the applications: StashG is the best configuration on
/// average, ScratchG is worse than Scratch, and Pathfinder is the
/// paper's noted exception where Cache beats Scratch.
#[test]
fn application_shape() {
    let apps = suite::applications();
    let mut stashg_total = 0u64;
    let mut scratchg_total = 0u64;
    let mut scratch_count = 0u64;
    for w in &apps {
        let scratch = run(w, MemConfigKind::Scratch);
        let stashg = run(w, MemConfigKind::StashG);
        let scratchg = run(w, MemConfigKind::ScratchG);
        stashg_total += stashg.total_picos * 100 / scratch.total_picos;
        scratchg_total += scratchg.total_picos * 100 / scratch.total_picos;
        scratch_count += 1;

        // Energy: StashG below Scratch on every application.
        assert!(
            stashg.total_energy() < scratch.total_energy(),
            "{}: StashG energy !< Scratch",
            w.name
        );
    }
    let stashg_avg = stashg_total / scratch_count;
    let scratchg_avg = scratchg_total / scratch_count;
    // Paper: StashG ≈ 90% of Scratch's time on average; ScratchG ≈ 107%.
    assert!(
        (70..100).contains(&stashg_avg),
        "StashG average time = {stashg_avg}% of Scratch, paper ≈ 90%"
    );
    assert!(
        scratchg_avg > 100,
        "ScratchG average time = {scratchg_avg}%, paper says it is worse than Scratch"
    );

    // The Pathfinder exception: converting scratchpad accesses to global
    // ones helps (little reuse for the copy cost).
    let w = suite::by_name("pathfinder").expect("registered");
    let scratch = run(&w, MemConfigKind::Scratch);
    let cache = run(&w, MemConfigKind::Cache);
    assert!(
        cache.total_picos < scratch.total_picos,
        "pathfinder: Cache should beat Scratch (the paper's exception)"
    );
}
