//! Thread-sweep determinism for the epoch-parallel runner (DESIGN.md
//! §12): `Machine::run_parallel` must produce byte-identical reports,
//! stall breakdowns, and architectural-state digests for every thread
//! count and every epoch length — parallelism is a wall-clock
//! optimization with zero observable effect. The sweeps cover the full
//! Figure 5 matrix, the Figure 6 applications, and chaos (fault
//! injection) under parallelism.

use stash_repro::gpu::config::MemConfigKind;
use stash_repro::gpu::machine::{Machine, ParallelConfig};
use stash_repro::sim::fault::FaultConfig;
use stash_repro::workloads::suite::{self, Workload};

/// Everything observable from one cell: the report (counters, energy,
/// traffic, cycles), the per-CU stall breakdowns, the fault trace, and
/// the architectural-state digest.
fn fingerprint(
    workload: &Workload,
    kind: MemConfigKind,
    threads: usize,
    epoch_cycles: u64,
    fault: Option<&FaultConfig>,
) -> String {
    let program = (workload.build)(kind);
    let mut machine = Machine::new(workload.set.system_config(), kind);
    machine.memory_mut().enable_trace(1 << 12);
    if let Some(cfg) = fault {
        machine.memory_mut().set_fault_injector(cfg.clone());
    }
    let mut par = ParallelConfig::with_threads(threads);
    par.epoch_cycles = epoch_cycles;
    let outcome = machine.run_parallel(&program, &par);
    let digest = machine.memory().state_digest();
    let stalls = machine
        .memory()
        .trace()
        .map(|t| format!("{:?}", t.breakdowns()))
        .unwrap_or_default();
    let faults = machine
        .memory()
        .fault_injector()
        .map(|f| format!("{:?}", f.trace()))
        .unwrap_or_default();
    format!("report={outcome:?} digest={digest:#018x} stalls={stalls} faults={faults}")
}

/// Sweeps one cell over the full thread × epoch grid and asserts every
/// combination reproduces the `(threads=1, epoch=1)` fingerprint.
fn assert_invariant(workload: &Workload, kind: MemConfigKind, grid: &[(usize, u64)]) {
    let ((t0, e0), rest) = grid.split_first().expect("non-empty grid");
    let baseline = fingerprint(workload, kind, *t0, *e0, None);
    for &(threads, epoch_cycles) in rest {
        let got = fingerprint(workload, kind, threads, epoch_cycles, None);
        assert_eq!(
            baseline, got,
            "{} / {kind}: threads={threads} epoch_cycles={epoch_cycles} \
             diverged from threads={t0} epoch_cycles={e0}",
            workload.name
        );
    }
}

const FULL_GRID: [(usize, u64); 12] = [
    (1, 1),
    (1, 16),
    (1, 256),
    (2, 1),
    (2, 16),
    (2, 256),
    (4, 1),
    (4, 16),
    (4, 256),
    (8, 1),
    (8, 16),
    (8, 256),
];

/// The full Figure 5 matrix (4 microbenchmarks × 4 configurations),
/// swept over threads ∈ {1,2,4,8} × epoch lengths ∈ {1,16,256}.
#[test]
fn figure5_matrix_is_thread_and_epoch_invariant() {
    for workload in suite::micros() {
        for &kind in workload.set.figure_kinds() {
            assert_invariant(&workload, kind, &FULL_GRID);
        }
    }
}

/// Every Figure 6 application cell, 1 vs 8 threads at the extreme epoch
/// lengths (the applications run on the 15-CU configuration, where the
/// shards genuinely interleave).
#[test]
fn figure6_applications_are_thread_and_epoch_invariant() {
    let grid = [(1, 1), (8, 1), (1, 256), (8, 256)];
    for workload in suite::applications() {
        for &kind in workload.set.figure_kinds() {
            assert_invariant(&workload, kind, &grid);
        }
    }
}

/// Chaos under parallelism: with a fault schedule installed, the
/// per-shard injectors fork deterministically from `(kernel, cu)`, so
/// fault placement — and everything downstream of it: retries, repairs,
/// the fault trace, final state — is identical at every thread count.
#[test]
fn chaos_is_thread_invariant() {
    for seed in [1, 7, 23] {
        let cfg = FaultConfig::chaos(seed);
        for workload in [suite::micros()[0], suite::applications()[0]] {
            let baseline = fingerprint(&workload, MemConfigKind::Stash, 1, 16, Some(&cfg));
            for threads in [2, 4, 8] {
                let got = fingerprint(&workload, MemConfigKind::Stash, threads, 16, Some(&cfg));
                assert_eq!(
                    baseline, got,
                    "{} seed={seed}: chaos diverged at threads={threads}",
                    workload.name
                );
            }
        }
    }
}

/// The balanced distribution is itself deterministic: two identical
/// parallel runs (same threads) agree bit-for-bit.
#[test]
fn repeat_runs_are_reproducible() {
    let workload = suite::applications()[0];
    let a = fingerprint(&workload, MemConfigKind::StashG, 8, 64, None);
    let b = fingerprint(&workload, MemConfigKind::StashG, 8, 64, None);
    assert_eq!(a, b);
}
