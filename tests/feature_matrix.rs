//! Table 1 as executable tests: each row of the paper's
//! cache/scratchpad/stash comparison, demonstrated on the machine model.
//!
//! | feature | benefit | test |
//! |---|---|---|
//! | directly addressed | no translation HW on hits | `direct_addressing_no_translation_on_hits` |
//! | directly addressed | no tag access | `stash_hit_energy_is_scratchpad_class` |
//! | directly addressed | no conflict misses | `no_conflict_misses_in_the_stash` |
//! | compact storage | efficient SRAM use | `compact_storage_moves_fewer_bytes` |
//! | global addressing | implicit data movement | `implicit_movement_needs_no_copy_instructions` |
//! | global addressing | no pollution | `stash_fills_do_not_pollute_the_l1` |
//! | global addressing | on-demand loads | `loads_are_on_demand` |
//! | global visibility | lazy writebacks | `writebacks_are_lazy` |
//! | global visibility | cross-kernel reuse | `data_survives_kernel_boundaries` |

use stash_repro::energy::Component;
use stash_repro::gpu::coalescer::Transaction;
use stash_repro::gpu::config::MemConfigKind;
use stash_repro::gpu::memsys::MemorySystem;
use stash_repro::mem::addr::VAddr;
use stash_repro::mem::tile::TileMap;
use stash_repro::sim::config::SystemConfig;
use stash_repro::stash::UsageMode;

fn memsys(kind: MemConfigKind) -> MemorySystem {
    MemorySystem::new(SystemConfig::for_microbenchmarks(), kind)
}

fn mapped(m: &mut MemorySystem, elems: u64) -> stash_repro::stash::MapIndex {
    let tile = TileMap::new(VAddr(0x10_0000), 4, 16, elems, 0, 1).unwrap();
    m.stash_add_map(0, 0, tile, 0, UsageMode::MappedCoherent)
        .unwrap()
        .index
}

fn tx(va: u64) -> Transaction {
    Transaction {
        line_va: VAddr(va).align_down(64),
        words: vec![VAddr(va).align_down(4)],
    }
}

/// Hits consult only the storage's 2 coherence bits: no TLB access, no
/// translation, no network — exactly one stash-hit energy quantum.
#[test]
fn direct_addressing_no_translation_on_hits() {
    let mut m = memsys(MemConfigKind::Stash);
    let map = mapped(&mut m, 64);
    m.stash_tx(0, false, 0, &[0], map).unwrap(); // cold miss
    let local_before = m.energy().component(Component::LocalMem);
    let flits_before = m.traffic().total_flits();
    for _ in 0..10 {
        let cost = m.stash_tx(0, false, 0, &[0], map).unwrap();
        assert_eq!(cost.latency, 1, "a stash hit is a 1-cycle storage access");
        assert_eq!(cost.occupancy, 0);
    }
    let hit_energy = m.energy().component(Component::LocalMem) - local_before;
    // Exactly 10 × Table 3's 55.4 pJ — no 14.1 pJ TLB term.
    assert_eq!(hit_energy, 10 * 55_400);
    assert_eq!(m.traffic().total_flits(), flits_before, "hits stay on-chip");
}

/// Table 3's energy ordering: a stash hit costs what a scratchpad access
/// costs (within 1%), roughly a third of an L1 hit with its tags + TLB.
#[test]
fn stash_hit_energy_is_scratchpad_class() {
    let model = stash_repro::energy::EnergyModel::default();
    assert!(model.stash_hit.abs_diff(model.scratchpad_access) * 100 < model.scratchpad_access);
    assert!(model.stash_hit * 3 < model.l1_hit);
}

/// Addresses that conflict pathologically in the cache cannot evict each
/// other in the stash: after first touch, every re-access hits.
#[test]
fn no_conflict_misses_in_the_stash() {
    // 16 addresses all mapping to L1 set 0 (stride = sets × line).
    let stride = 64 * 64; // 64 sets × 64 B lines
    let addrs: Vec<u64> = (0..16).map(|i| 0x10_0000 + i * stride).collect();

    // Cache: 8-way set sees 16 conflicting lines — repeated misses.
    let mut c = memsys(MemConfigKind::Cache);
    for pass in 0..3 {
        for &a in &addrs {
            c.gpu_global_tx(0, false, &tx(a)).unwrap();
        }
        let _ = pass;
    }
    let cache_misses = c.counters().get("gpu.l1.miss");
    assert!(
        cache_misses > 16,
        "conflicting lines must keep missing in the cache (got {cache_misses})"
    );

    // Stash: a mapped tile has a fixed location per word — 3 passes,
    // only the first misses.
    let mut s = memsys(MemConfigKind::Stash);
    let map = mapped(&mut s, 16);
    for _ in 0..3 {
        for w in 0..16u32 {
            s.stash_tx(0, false, 0, &[w], map).unwrap();
        }
    }
    assert_eq!(s.counters().get("stash.miss"), 16);
    assert_eq!(s.counters().get("stash.hit"), 32);
}

/// One 4-byte field of 16-byte objects: the stash's fetch responses carry
/// 4 of every 16 bytes; the cache's line fills carry all 16.
#[test]
fn compact_storage_moves_fewer_bytes() {
    let elems = 256u64;
    let mut s = memsys(MemConfigKind::Stash);
    let map = mapped(&mut s, elems);
    for base in (0..elems as u32).step_by(32) {
        let lanes: Vec<u32> = (base..base + 32).collect();
        s.stash_tx(0, false, 0, &lanes, map).unwrap();
    }
    let stash_read_flits = s.traffic().flits(stash_repro::noc::MsgClass::Read);

    let mut c = memsys(MemConfigKind::Cache);
    for e in 0..elems {
        c.gpu_global_tx(0, false, &tx(0x10_0000 + e * 16)).unwrap();
    }
    let cache_read_flits = c.traffic().flits(stash_repro::noc::MsgClass::Read);
    assert!(
        stash_read_flits * 2 <= cache_read_flits,
        "stash {stash_read_flits} flits vs cache {cache_read_flits}"
    );
}

/// Figure 1: the stash version of the kernel has no explicit copy loops,
/// so it issues far fewer instructions for the same logical work.
#[test]
fn implicit_movement_needs_no_copy_instructions() {
    use stash_repro::workloads::micro::implicit;
    let stash = implicit::program(MemConfigKind::Stash).gpu_instruction_count();
    let scratch = implicit::program(MemConfigKind::Scratch).gpu_instruction_count();
    assert!(stash * 100 / scratch <= 70);
}

/// Stash fills move LLC→stash directly; they allocate nothing in the L1.
#[test]
fn stash_fills_do_not_pollute_the_l1() {
    let mut m = memsys(MemConfigKind::Stash);
    let map = mapped(&mut m, 512);
    for base in (0..512u32).step_by(32) {
        let lanes: Vec<u32> = (base..base + 32).collect();
        m.stash_tx(0, false, 0, &lanes, map).unwrap();
    }
    assert_eq!(
        m.counters().get("gpu.l1.load_tx") + m.counters().get("gpu.l1.store_tx"),
        0,
        "no stash fill may touch the L1"
    );
}

/// Only accessed words are ever fetched — mapping is not moving.
#[test]
fn loads_are_on_demand() {
    let mut m = memsys(MemConfigKind::Stash);
    let map = mapped(&mut m, 1024); // map 1024 words...
    m.stash_tx(0, false, 0, &[7], map).unwrap(); // ...touch one
    assert_eq!(m.counters().get("stash.fetch_words"), 1);
}

/// Dirty data is written back when its space is *reclaimed*, not when
/// the kernel ends.
#[test]
fn writebacks_are_lazy() {
    let mut m = memsys(MemConfigKind::Stash);
    let map = mapped(&mut m, 64);
    m.stash_tx(0, true, 0, &[0], map).unwrap();
    m.end_thread_block(0, 0);
    m.end_kernel().unwrap();
    assert_eq!(
        m.counters().get("wb.stash_words"),
        0,
        "kernel end writes nothing back"
    );
    // A different mapping reclaims the space: now the writeback happens.
    let tile2 = TileMap::new(VAddr(0x90_0000), 4, 16, 64, 0, 1).unwrap();
    let out = m
        .stash_add_map(0, 1, tile2, 0, UsageMode::MappedCoherent)
        .unwrap();
    m.stash_tx(0, false, 0, &[0], out.index).unwrap();
    assert_eq!(m.counters().get("wb.stash_words"), 1);
}

/// Registered words survive the kernel-end self-invalidation and are
/// adopted by the next kernel's identical mapping.
#[test]
fn data_survives_kernel_boundaries() {
    let mut m = memsys(MemConfigKind::Stash);
    let tile = TileMap::new(VAddr(0x10_0000), 4, 16, 64, 0, 1).unwrap();
    let k1 = m
        .stash_add_map(0, 0, tile, 0, UsageMode::MappedCoherent)
        .unwrap();
    m.stash_tx(0, true, 0, &[0, 1, 2, 3], k1.index).unwrap();
    m.end_thread_block(0, 0);
    m.end_kernel().unwrap();

    let k2 = m
        .stash_add_map(0, 1, tile, 0, UsageMode::MappedCoherent)
        .unwrap();
    assert!(k2.replicates);
    let cost = m.stash_tx(0, false, 0, &[0, 1, 2, 3], k2.index).unwrap();
    assert_eq!(
        cost.latency, 1,
        "kernel 2 hits on kernel 1's registered data"
    );
    assert_eq!(m.counters().get("stash.fetch_words"), 0);
}
