//! Cross-crate integration tests: the full machine driven end-to-end.

use stash_repro::gpu::config::MemConfigKind;
use stash_repro::gpu::machine::Machine;
use stash_repro::gpu::program::{
    AllocId, CpuOp, CpuPhase, Kernel, LocalAlloc, MapReq, Phase, Program, Stage, ThreadBlock,
    WarpOp,
};
use stash_repro::mem::addr::VAddr;
use stash_repro::mem::tile::TileMap;
use stash_repro::sim::config::SystemConfig;
use stash_repro::stash::UsageMode;
use stash_repro::workloads::suite;

fn stash_rmw_program(elems: u64, cpu_reads: bool) -> Program {
    let tile = TileMap::new(VAddr(0x1000_0000), 4, 32, elems, 0, 1).unwrap();
    let mut tb = ThreadBlock::new();
    tb.allocs.push(LocalAlloc { words: elems });
    let mut stage = Stage::new(8);
    stage.maps.push(MapReq {
        slot: 0,
        alloc: AllocId(0),
        tile,
        mode: UsageMode::MappedCoherent,
    });
    for (w, ops) in stage.warps.iter_mut().enumerate() {
        let lanes: Vec<u32> = (0..32)
            .map(|l| (w * 32 + l) as u32)
            .filter(|&x| u64::from(x) < elems)
            .collect();
        if lanes.is_empty() {
            continue;
        }
        ops.push(WarpOp::LocalMem {
            write: false,
            alloc: AllocId(0),
            slot: 0,
            lanes: lanes.clone(),
        });
        ops.push(WarpOp::LocalMem {
            write: true,
            alloc: AllocId(0),
            slot: 0,
            lanes,
        });
    }
    tb.stages.push(stage);
    let mut phases = vec![Phase::Gpu(Kernel { blocks: vec![tb] })];
    if cpu_reads {
        phases.push(Phase::Cpu(CpuPhase {
            stash_maps: Vec::new(),
            per_core: (0..4)
                .map(|c| {
                    (0..elems)
                        .filter(|e| e % 4 == c)
                        .map(|e| CpuOp::Mem {
                            write: false,
                            vaddr: VAddr(0x1000_0000 + e * 32),
                        })
                        .collect()
                })
                .collect(),
        }));
    }
    Program { phases }
}

#[test]
fn gpu_writes_reach_cpus_through_coherence() {
    let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
    let report = machine.run(&stash_rmw_program(128, true)).unwrap();
    // Every CPU read of a GPU-written word was served by forwarding from
    // the stash — lazy writebacks mean no data had reached the LLC.
    assert_eq!(report.counters.get("remote.forward"), 128);
    assert_eq!(report.counters.get("wb.stash_words"), 0);
    // The registry still records the stash as owner of all 128 words.
    assert_eq!(
        machine
            .memory()
            .llc()
            .words_registered_to(stash_repro::mem::llc::CoreId(0)),
        128
    );
}

#[test]
fn simulations_are_deterministic() {
    let w = suite::by_name("implicit").expect("registered");
    let run = || {
        let mut machine = Machine::new(w.set.system_config(), MemConfigKind::Stash);
        machine.run(&(w.build)(MemConfigKind::Stash)).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_picos, b.total_picos);
    assert_eq!(a.total_energy(), b.total_energy());
    assert_eq!(a.gpu_instructions, b.gpu_instructions);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn every_workload_runs_on_every_configuration() {
    // The full §5.3 matrix executes without errors and produces
    // nonzero time and energy everywhere.
    for w in suite::all() {
        for kind in MemConfigKind::ALL {
            let mut machine = Machine::new(w.set.system_config(), kind);
            let report = machine
                .run(&(w.build)(kind))
                .unwrap_or_else(|e| panic!("{} on {kind}: {e}", w.name));
            assert!(report.total_picos > 0, "{} on {kind}", w.name);
            assert!(report.total_energy() > 0, "{} on {kind}", w.name);
            assert!(report.gpu_instructions > 0, "{} on {kind}", w.name);
        }
    }
}

#[test]
fn mapped_non_coherent_stores_stay_local() {
    let tile = TileMap::new(VAddr(0x2000_0000), 4, 16, 64, 0, 1).unwrap();
    let mut tb = ThreadBlock::new();
    tb.allocs.push(LocalAlloc { words: 64 });
    let mut stage = Stage::new(1);
    stage.maps.push(MapReq {
        slot: 0,
        alloc: AllocId(0),
        tile,
        mode: UsageMode::MappedNonCoherent,
    });
    stage.warps[0] = vec![WarpOp::LocalMem {
        write: true,
        alloc: AllocId(0),
        slot: 0,
        lanes: (0..32).collect(),
    }];
    tb.stages.push(stage);
    let program = Program {
        phases: vec![Phase::Gpu(Kernel { blocks: vec![tb] })],
    };
    let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
    let report = machine.run(&program).unwrap();
    // No registrations, no writebacks: the stores are not globally
    // visible (§3.3 Mapped Non-coherent).
    assert_eq!(report.counters.get("stash.register_words"), 0);
    assert_eq!(report.counters.get("wb.stash_words"), 0);
    assert_eq!(
        machine
            .memory()
            .llc()
            .words_registered_to(stash_repro::mem::llc::CoreId(0)),
        0
    );
}

#[test]
fn scratch_and_stash_move_the_same_logical_data() {
    // Sanity across lowerings: on Implicit, the scratch configuration's
    // explicit global copies touch exactly the words the stash fetches
    // and registers implicitly.
    use stash_repro::workloads::micro::implicit;
    let scratch = {
        let mut m = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Scratch);
        m.run(&implicit::program(MemConfigKind::Scratch)).unwrap()
    };
    let stash = {
        let mut m = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
        m.run(&implicit::program(MemConfigKind::Stash)).unwrap()
    };
    assert_eq!(stash.counters.get("stash.fetch_words"), implicit::ELEMS);
    assert_eq!(stash.counters.get("stash.register_words"), implicit::ELEMS);
    // Scratch moves the same words through L1 transactions instead.
    assert!(scratch.counters.get("gpu.l1.load_tx") >= implicit::ELEMS / 16);
    assert!(scratch.counters.get("scratch.access") > 0);
}

#[test]
fn local_ops_rejected_on_cache_configuration() {
    let mut tb = ThreadBlock::new();
    tb.allocs.push(LocalAlloc { words: 32 });
    let mut stage = Stage::new(1);
    stage.warps[0] = vec![WarpOp::LocalMem {
        write: false,
        alloc: AllocId(0),
        slot: 0,
        lanes: vec![0],
    }];
    tb.stages.push(stage);
    let program = Program {
        phases: vec![Phase::Gpu(Kernel { blocks: vec![tb] })],
    };
    let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Cache);
    assert!(machine.run(&program).is_err());
}
