//! End-to-end resilience tests (DESIGN.md §9): stash-allocation
//! fallback equivalence and the no-progress watchdog.

use stash_repro::gpu::config::MemConfigKind;
use stash_repro::gpu::machine::Machine;
use stash_repro::gpu::program::{
    AllocId, Kernel, LocalAlloc, MapReq, Phase, Program, Stage, ThreadBlock, WarpOp,
};
use stash_repro::mem::addr::VAddr;
use stash_repro::mem::tile::TileMap;
use stash_repro::sim::config::SystemConfig;
use stash_repro::sim::fault::FaultConfig;
use stash_repro::sim::SimError;
use stash_repro::stash::UsageMode;
use stash_repro::workloads::suite;

const ELEMS: u64 = 8192; // 32 KB of words — twice the 16 KB stash
const WORD_BYTES: u64 = 4;

fn tile() -> TileMap {
    TileMap::new(VAddr(0x1000_0000), 4, 32, ELEMS, 0, 1).unwrap()
}

/// A kernel whose single stash allocation cannot fit: every `LocalMem`
/// access must degrade to the cache path.
fn oversized_local_program() -> Program {
    let mut tb = ThreadBlock::new();
    tb.allocs.push(LocalAlloc { words: ELEMS });
    let mut stage = Stage::new(8);
    stage.maps.push(MapReq {
        slot: 0,
        alloc: AllocId(0),
        tile: tile(),
        mode: UsageMode::MappedCoherent,
    });
    for (w, ops) in stage.warps.iter_mut().enumerate() {
        let lanes: Vec<u32> = (0..32).map(|l| (w * 32 + l) as u32).collect();
        ops.push(WarpOp::LocalMem {
            write: false,
            alloc: AllocId(0),
            slot: 0,
            lanes: lanes.clone(),
        });
        ops.push(WarpOp::LocalMem {
            write: true,
            alloc: AllocId(0),
            slot: 0,
            lanes,
        });
    }
    tb.stages.push(stage);
    Program {
        phases: vec![Phase::Gpu(Kernel { blocks: vec![tb] })],
    }
}

/// The same accesses written directly against global memory — what the
/// Cache configuration runs natively, and what the degraded stash run
/// must be equivalent to.
fn global_golden_program() -> Program {
    let t = tile();
    let mut tb = ThreadBlock::new();
    let mut stage = Stage::new(8);
    for (w, ops) in stage.warps.iter_mut().enumerate() {
        let lanes: Vec<VAddr> = (0..32)
            .map(|l| t.virt_of_local_offset((w as u64 * 32 + l) * WORD_BYTES))
            .collect();
        ops.push(WarpOp::GlobalMem {
            write: false,
            lanes: lanes.clone(),
        });
        ops.push(WarpOp::GlobalMem { write: true, lanes });
    }
    tb.stages.push(stage);
    Program {
        phases: vec![Phase::Gpu(Kernel { blocks: vec![tb] })],
    }
}

#[test]
fn stash_fallback_final_memory_matches_cache_golden() {
    let mut degraded = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
    let degraded_report = degraded.run(&oversized_local_program()).unwrap();

    // The allocation did not fit and the machinery noticed.
    assert_eq!(degraded_report.counters.get("stash.addmap"), 0);
    assert_eq!(degraded_report.counters.get("resilience.stash_fallback"), 1);
    assert!(degraded_report.counters.get("resilience.fallback_tx") > 0);

    let mut golden = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Cache);
    let golden_report = golden.run(&global_golden_program()).unwrap();

    // Same transaction stream through the cache hierarchy…
    for counter in ["gpu.l1.load_tx", "gpu.l1.store_tx", "dram.line_fetch"] {
        assert_eq!(
            degraded_report.counters.get(counter),
            golden_report.counters.get(counter),
            "fallback and golden disagree on {counter}"
        );
    }
    // …and identical final memory: the registry and LLC residency the
    // cache-config golden produced, word for word.
    assert_eq!(
        degraded.memory().llc().registered_words(),
        golden.memory().llc().registered_words()
    );
    assert_eq!(
        degraded.memory().llc().resident_line_addrs(),
        golden.memory().llc().resident_line_addrs()
    );
}

#[test]
fn watchdog_surfaces_deadlock_with_diagnostic_dump() {
    // Every message dropped: the retry budget must run dry and trip the
    // watchdog — never hang, never return Ok.
    let mut cfg = FaultConfig::chaos(1);
    cfg.drop_per_mille = 1000;
    let w = suite::micros()[0];
    let mut machine = Machine::new(w.set.system_config(), MemConfigKind::Stash);
    machine.memory_mut().set_fault_injector(cfg);
    match machine.run(&(w.build)(MemConfigKind::Stash)) {
        Err(SimError::Deadlock {
            site,
            attempts,
            dump,
        }) => {
            assert!(!site.is_empty());
            assert!(attempts > 1, "resilient path should have retried");
            assert!(
                dump.contains(site),
                "diagnostic dump must name the stuck site: {dump}"
            );
        }
        other => panic!("expected a watchdog deadlock, got {other:?}"),
    }
}

#[test]
fn first_drop_trips_watchdog_without_resilience() {
    let mut cfg = FaultConfig::chaos(1).without_resilience();
    cfg.drop_per_mille = 1000;
    let w = suite::micros()[0];
    let mut machine = Machine::new(w.set.system_config(), MemConfigKind::Stash);
    machine.memory_mut().set_fault_injector(cfg);
    match machine.run(&(w.build)(MemConfigKind::Stash)) {
        Err(SimError::Deadlock { attempts, dump, .. }) => {
            assert_eq!(attempts, 1, "non-resilient drop must fail-stop at once");
            assert!(!dump.is_empty());
        }
        other => panic!("expected a watchdog deadlock, got {other:?}"),
    }
}
