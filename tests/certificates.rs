//! Conflict-certificate end-to-end tests (DESIGN.md §13): the
//! `verify::dataflow` conflict pass certifies kernels, the machine's
//! epoch merge consumes the certificate through its fast path, and
//! nothing observable may change — reports, stall breakdowns, and
//! architectural-state digests stay byte-identical to the uncertified
//! run on every Figure 5/6 matrix cell, at every thread count and epoch
//! length. The `--verify` dynamic footprint oracle cross-checks every
//! certified merge, and each deliberate `ConflictMutation` weakening of
//! the pass is proven to be *caught* by that oracle at runtime.

use stash_repro::gpu::config::MemConfigKind;
use stash_repro::gpu::machine::{BlockDistribution, Machine, ParallelConfig};
use stash_repro::gpu::program::{
    AllocId, DmaReq, Kernel, LocalAlloc, Phase, Program, Stage, ThreadBlock, WarpOp,
};
use stash_repro::mem::addr::VAddr;
use stash_repro::mem::tile::TileMap;
use stash_repro::sim::SimError;
use stash_repro::workloads::suite::{self, Workload};
use verify::dataflow::{certify, certify_mutated, ConflictMutation, MachineShape};

/// The machine shape a certificate must be produced for so the machine
/// accepts it: the workload set's CU count, the run's distribution
/// policy, and the configured line width.
fn shape_of(machine: &Machine, par: &ParallelConfig) -> MachineShape {
    MachineShape {
        cus: machine.memory().config().gpu_cus,
        distribution: par.distribution,
        line_words: machine.memory().config().words_per_line() as u64,
    }
}

/// Runs one matrix cell and returns everything observable (the report,
/// the state digest, and the stall breakdowns) plus how many kernel
/// merges took the certified fast path.
fn fingerprint(
    workload: &Workload,
    kind: MemConfigKind,
    threads: usize,
    epoch_cycles: u64,
    certified: bool,
    verify: bool,
) -> (String, u64) {
    let program = (workload.build)(kind);
    let mut machine = Machine::new(workload.set.system_config(), kind);
    machine.memory_mut().enable_trace(1 << 12);
    machine.memory_mut().set_verify(verify);
    let mut par = ParallelConfig::with_threads(threads);
    par.epoch_cycles = epoch_cycles;
    if certified {
        let cert = certify(&program, &shape_of(&machine, &par));
        machine.set_certificate(cert);
    }
    let outcome = machine.run_parallel(&program, &par);
    let digest = machine.memory().state_digest();
    let stalls = machine
        .memory()
        .trace()
        .map(|t| format!("{:?}", t.breakdowns()))
        .unwrap_or_default();
    (
        format!("report={outcome:?} digest={digest:#018x} stalls={stalls}"),
        machine.certified_kernels(),
    )
}

/// Asserts that certified runs over `grid` reproduce the uncertified
/// `(threads=1, epoch=1)` fingerprint bit-for-bit; returns the certified
/// kernel-merge count observed (identical across the grid).
fn assert_certified_invariant(
    workload: &Workload,
    kind: MemConfigKind,
    grid: &[(usize, u64)],
) -> u64 {
    let (baseline, _) = fingerprint(workload, kind, 1, 1, false, false);
    let mut fast_merges = None;
    for &(threads, epoch_cycles) in grid {
        let (got, certified) = fingerprint(workload, kind, threads, epoch_cycles, true, false);
        assert_eq!(
            baseline, got,
            "{} / {kind}: certified run at threads={threads} epoch_cycles={epoch_cycles} \
             diverged from the uncertified baseline",
            workload.name
        );
        match fast_merges {
            None => fast_merges = Some(certified),
            Some(n) => assert_eq!(
                n, certified,
                "{} / {kind}: certified-merge count changed across the grid",
                workload.name
            ),
        }
    }
    fast_merges.unwrap_or(0)
}

/// Full Figure 5 matrix (4 microbenchmarks × 4 configurations), every
/// certified `(threads, epoch)` combination against the uncertified
/// baseline. The microbenchmark machine has a single CU, so every
/// kernel is vacuously disjoint: the fast path runs on *every* merge,
/// and still nothing may change.
#[test]
fn figure5_certified_matrix_is_byte_identical() {
    let grid: Vec<(usize, u64)> = [1, 2, 4, 8]
        .iter()
        .flat_map(|&t| [1u64, 16, 256].iter().map(move |&e| (t, e)))
        .collect();
    for workload in suite::micros() {
        for &kind in workload.set.figure_kinds() {
            let fast = assert_certified_invariant(&workload, kind, &grid);
            assert!(
                fast > 0,
                "{} / {kind}: single-CU kernels must all certify",
                workload.name
            );
        }
    }
}

/// Full Figure 6 application matrix on the 15-CU machine. The grid
/// covers every thread count and every epoch length (the full cross
/// product runs on the cheap Figure 5 matrix above). At least one
/// application kernel must genuinely certify — the fast path has to be
/// exercised with real inter-CU sharding, not only vacuously.
#[test]
fn figure6_certified_matrix_is_byte_identical() {
    let grid = [(1, 1), (2, 16), (4, 256), (8, 256)];
    let mut total_fast = 0;
    for workload in suite::applications() {
        for &kind in workload.set.figure_kinds() {
            total_fast += assert_certified_invariant(&workload, kind, &grid);
        }
    }
    assert!(
        total_fast > 0,
        "no application kernel certified on the 15-CU machine"
    );
}

/// The interleaved-tile applications are the reason the certificate
/// exists: `nw`'s per-CU column slices are provably disjoint by the
/// affine residue argument, so its merges take the fast path on the
/// multi-CU machine.
#[test]
fn nw_certifies_on_the_application_machine() {
    let workload = suite::by_name("nw").expect("nw is in the suite");
    let program = (workload.build)(MemConfigKind::Stash);
    let machine = Machine::new(workload.set.system_config(), MemConfigKind::Stash);
    let par = ParallelConfig::with_threads(1);
    let cert = certify(&program, &shape_of(&machine, &par));
    assert!(
        cert.certified_kernels() > 0,
        "nw's interleaved tiles should prove word-disjoint: {cert:?}"
    );
}

/// Certified runs *with the dynamic footprint oracle on*: the oracle
/// re-derives each certified kernel's claims from the actual staged
/// operations and must find zero violations. Covers the full Figure 5
/// matrix (every micro kernel certifies vacuously on the 1-CU machine)
/// plus `backprop` on the 15-CU machine, whose kernels all genuinely
/// certify across CUs. (The heavier applications run the same oracle in
/// the CI `--verify` advise job; under the invariant oracle they are too
/// slow for the unit suite.)
#[test]
fn certified_runs_pass_the_dynamic_oracle() {
    for workload in suite::micros() {
        for &kind in workload.set.figure_kinds() {
            let (_, fast) = fingerprint(&workload, kind, 4, 16, true, true);
            assert!(fast > 0, "{} / {kind}: nothing certified", workload.name);
        }
    }
    let backprop = suite::by_name("backprop").expect("backprop is in the suite");
    for kind in [MemConfigKind::Stash, MemConfigKind::StashG] {
        let (_, fast) = fingerprint(&backprop, kind, 4, 16, true, true);
        assert!(fast > 0, "backprop / {kind}: nothing certified");
    }
}

/// The aliasing diagnostic micro: every block coherently maps the same
/// lookup table, so stash *loads* register cross-CU and the kernel must
/// refuse certification on the multi-CU machine — and still run
/// byte-identically with the (useless) certificate installed.
#[test]
fn aliasing_micro_is_uncertifiable_but_runs_identically() {
    let workload = suite::by_name("aliasing").expect("aliasing extra registered");
    let program = (workload.build)(MemConfigKind::Stash);
    let machine = Machine::new(workload.set.system_config(), MemConfigKind::Stash);
    let par = ParallelConfig::with_threads(4);
    let cert = certify(&program, &shape_of(&machine, &par));
    assert_eq!(
        cert.certified_kernels(),
        0,
        "read-shared coherent tiles must not certify: {cert:?}"
    );
    let (baseline, _) = fingerprint(&workload, MemConfigKind::Stash, 1, 1, false, false);
    let (got, fast) = fingerprint(&workload, MemConfigKind::Stash, 4, 16, true, true);
    assert_eq!(
        baseline, got,
        "aliasing diverged under a refused certificate"
    );
    assert_eq!(fast, 0, "no merge may take the fast path uncertified");
}

// ---------------------------------------------------------------------
// Mutation tests: each deliberate weakening of the conflict pass must
// produce a *falsely* certifying certificate on an adversarial program,
// and the dynamic oracle must then catch the lie as a hard
// `SimError::CertificateViolation` at runtime.
// ---------------------------------------------------------------------

fn global_store_block(base: u64, words: u64) -> ThreadBlock {
    let mut tb = ThreadBlock::new();
    let mut stage = Stage::new(1);
    stage.warps[0] = vec![WarpOp::GlobalMem {
        write: true,
        lanes: (0..words).map(|w| VAddr(base + w * 4)).collect(),
    }];
    tb.stages.push(stage);
    tb
}

fn dma_store_block(tile: TileMap) -> ThreadBlock {
    let mut tb = ThreadBlock::new();
    tb.allocs.push(LocalAlloc {
        words: tile.local_words(),
    });
    let mut stage = Stage::new(1);
    stage.dmas.push(DmaReq {
        alloc: AllocId(0),
        tile,
        load: false,
        store: true,
    });
    tb.stages.push(stage);
    tb
}

fn one_kernel(blocks: Vec<ThreadBlock>) -> Program {
    Program {
        phases: vec![Phase::Gpu(Kernel { blocks })],
    }
}

/// Installs the mutated certificate and asserts the oracle aborts the
/// run with a certificate violation (while the honest pass refuses to
/// certify, and the same program runs fine without a certificate).
fn assert_oracle_catches(
    program: &Program,
    kind: MemConfigKind,
    mutation: ConflictMutation,
    line_grain: bool,
) {
    let sys = stash_repro::sim::config::SystemConfig::for_applications();
    let par = ParallelConfig::with_threads(2);
    let shape = MachineShape {
        cus: sys.gpu_cus,
        distribution: BlockDistribution::Balanced,
        line_words: sys.words_per_line() as u64,
    };

    let honest = certify(program, &shape);
    let lied = certify_mutated(program, &shape, Some(mutation));
    let verdict = |c: &stash_repro::gpu::ConflictCertificate| {
        if line_grain {
            c.kernels[0].line_disjoint
        } else {
            c.kernels[0].word_disjoint
        }
    };
    assert!(!verdict(&honest), "{mutation:?}: honest pass must refuse");
    assert!(
        verdict(&lied),
        "{mutation:?}: mutation must falsely certify"
    );

    // Control: without a certificate the contended program merges fine
    // through full reconciliation (races resolve by revocation).
    let mut clean = Machine::new(sys.clone(), kind);
    clean.memory_mut().set_line_grain_registration(line_grain);
    clean.memory_mut().set_verify(true);
    clean
        .run_parallel(program, &par)
        .expect("uncertified run is valid");

    // With the lying certificate installed, the oracle must abort the
    // merge before any state is corrupted.
    let mut machine = Machine::new(sys, kind);
    machine.memory_mut().set_line_grain_registration(line_grain);
    machine.memory_mut().set_verify(true);
    machine.set_certificate(lied);
    match machine.run_parallel(program, &par) {
        Err(SimError::CertificateViolation {
            first_cu,
            second_cu,
            ..
        }) => {
            assert_ne!(first_cu, second_cu, "{mutation:?}: distinct CUs");
        }
        other => panic!("{mutation:?}: expected a certificate violation, got {other:?}"),
    }
}

#[test]
fn oracle_catches_ignore_global_lanes() {
    // Two CUs store the same global words; forgetting the lanes makes
    // every footprint empty and vacuously disjoint.
    let p = one_kernel(vec![
        global_store_block(0x1000, 8),
        global_store_block(0x1000, 8),
    ]);
    assert_oracle_catches(
        &p,
        MemConfigKind::Cache,
        ConflictMutation::IgnoreGlobalLanes,
        false,
    );
}

#[test]
fn oracle_catches_drop_last_block() {
    // Dropping the second block's footprint leaves one active CU — a
    // vacuous proof the runtime immediately contradicts.
    let p = one_kernel(vec![
        global_store_block(0x2000, 8),
        global_store_block(0x2000, 8),
    ]);
    assert_oracle_catches(
        &p,
        MemConfigKind::Cache,
        ConflictMutation::DropLastBlock,
        false,
    );
}

#[test]
fn oracle_catches_word_verdict_for_lines() {
    // Two CUs store disjoint halves of one 64-byte line: word-disjoint,
    // line-shared. Under the line-granularity registration ablation each
    // store claims the *whole* line, so presenting the word verdict as
    // the line verdict is a lie the oracle sees on the first epoch.
    let p = one_kernel(vec![
        global_store_block(0x3000, 8),
        global_store_block(0x3020, 8),
    ]);
    assert_oracle_catches(
        &p,
        MemConfigKind::Cache,
        ConflictMutation::WordVerdictForLines,
        true,
    );
}

#[test]
fn oracle_catches_ignore_dma() {
    // Two CUs DMA-store the same tile: the store-through claims clash.
    let tile = TileMap::new(VAddr(0x6000), 4, 4, 8, 0, 1).unwrap();
    let p = one_kernel(vec![dma_store_block(tile), dma_store_block(tile)]);
    assert_oracle_catches(
        &p,
        MemConfigKind::ScratchGD,
        ConflictMutation::IgnoreDma,
        false,
    );
}

#[test]
fn oracle_catches_shrink_tile_rows() {
    // Two-row tiles whose first rows are disjoint but whose second rows
    // land on the other block's territory: a single-row view of the
    // world proves disjointness the full tiles do not have.
    let rows = |base: u64| TileMap::new(VAddr(base), 4, 4, 4, 0x40, 2).unwrap();
    let p = one_kernel(vec![
        dma_store_block(rows(0x7000)),
        dma_store_block(rows(0x7040)),
    ]);
    assert_oracle_catches(
        &p,
        MemConfigKind::ScratchGD,
        ConflictMutation::ShrinkTileRows,
        false,
    );
}
