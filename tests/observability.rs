//! The observability layer's two contracts (DESIGN.md §11):
//!
//! * **Zero-cost when off, invisible when on**: enabling tracing changes
//!   no architectural state, no counters, and no timing — `state_digest`
//!   and the full report are bit-identical either way. The tracing-off
//!   digests are additionally pinned against the Figure 5 baselines, so
//!   a change to either the simulation or the tracing hooks that moves
//!   results is caught here.
//! * **Exact attribution**: with tracing on, every CU's stall breakdown
//!   sums exactly to the run's `gpu_cycles` for every cell of the
//!   Figure 5 matrix — no unattributed or double-counted cycles.

use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use gpu::report::RunReport;
use sim::trace::StallReason;
use workloads::suite;

/// Runs one cell, optionally traced, returning the report, the digest,
/// and (when traced) the per-CU stall breakdown totals.
fn run_cell(
    workload: &suite::Workload,
    kind: MemConfigKind,
    traced: bool,
) -> (RunReport, u64, Vec<u64>) {
    let program = (workload.build)(kind);
    let mut machine = Machine::new(workload.set.system_config(), kind);
    if traced {
        machine.memory_mut().enable_trace(1 << 16);
    }
    let report = machine.run(&program).expect("cell runs");
    let digest = machine.memory().state_digest();
    let totals = machine
        .memory_mut()
        .take_trace()
        .map(|sink| sink.breakdowns().iter().map(|b| b.total()).collect())
        .unwrap_or_default();
    (report, digest, totals)
}

/// Figure 5 microbenchmark digests with tracing off, pinned. Regenerate
/// (only after an intentional timing/protocol change) by printing
/// `state_digest()` per cell in `micros() × FIGURE5` order.
const FIGURE5_DIGESTS: [(&str, [u64; 4]); 4] = [
    (
        "implicit",
        [
            12583440591047165349,
            12583440591047165349,
            10694616415496684709,
            2122675424195918525,
        ],
    ),
    (
        "pollution",
        [
            8079358055199332005,
            11522261313234679461,
            11279033796832277669,
            6887623302656712381,
        ],
    ),
    (
        "ondemand",
        [
            9588852058042289829,
            7000860099795942483,
            10138897812602508709,
            7813959061588616162,
        ],
    ),
    (
        "reuse",
        [
            14494022835524804005,
            14494022835524804005,
            10694616415496684709,
            15169198090538526781,
        ],
    ),
];

#[test]
fn tracing_is_observationally_free_and_digests_match_baselines() {
    let pinned: std::collections::HashMap<&str, [u64; 4]> = FIGURE5_DIGESTS.into_iter().collect();
    for workload in &suite::micros() {
        let expected = pinned[workload.name];
        for (i, &kind) in MemConfigKind::FIGURE5.iter().enumerate() {
            let (plain_report, plain_digest, no_totals) = run_cell(workload, kind, false);
            let (traced_report, traced_digest, _) = run_cell(workload, kind, true);
            assert!(no_totals.is_empty());
            assert_eq!(
                plain_digest,
                traced_digest,
                "{} / {}: tracing changed architectural state",
                workload.name,
                kind.name()
            );
            assert_eq!(
                plain_report,
                traced_report,
                "{} / {}: tracing changed the report (timing, counters, energy)",
                workload.name,
                kind.name()
            );
            assert_eq!(
                plain_digest,
                expected[i],
                "{} / {}: digest moved off the pinned Figure 5 baseline",
                workload.name,
                kind.name()
            );
        }
    }
}

#[test]
fn stall_decomposition_sums_to_total_cycles_across_figure5() {
    for workload in &suite::micros() {
        for &kind in &MemConfigKind::FIGURE5 {
            let (report, _, totals) = run_cell(workload, kind, true);
            assert!(!totals.is_empty());
            for (cu, &total) in totals.iter().enumerate() {
                assert_eq!(
                    total,
                    report.gpu_cycles,
                    "{} / {} cu{}: breakdown sums to {} of {} cycles",
                    workload.name,
                    kind.name(),
                    cu,
                    total,
                    report.gpu_cycles
                );
            }
        }
    }
}

#[test]
fn retry_backoff_never_appears_without_fault_injection() {
    // Schedule invariance: the retry/backoff bucket exists for chaos
    // runs; a fault-free run must attribute zero cycles to it.
    for &kind in &MemConfigKind::FIGURE5 {
        let workload = &suite::micros()[0];
        let program = (workload.build)(kind);
        let mut machine = Machine::new(workload.set.system_config(), kind);
        machine.memory_mut().enable_trace(1 << 16);
        machine.run(&program).expect("cell runs");
        let sink = machine.memory_mut().take_trace().expect("trace enabled");
        for b in sink.breakdowns() {
            assert_eq!(b.get(StallReason::RetryBackoff), 0);
        }
    }
}
