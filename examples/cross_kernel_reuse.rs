//! Cross-kernel reuse: the stash's global visibility lets dirty data
//! survive kernel boundaries (lazy writebacks + the §4.5 replication
//! path), while a scratchpad must re-copy every kernel.
//!
//! Runs the Reuse microbenchmark kernel-by-kernel and prints where each
//! configuration's fetches go.
//!
//! ```text
//! cargo run --release --example cross_kernel_reuse
//! ```

use stash_repro::gpu::config::MemConfigKind;
use stash_repro::gpu::machine::Machine;
use stash_repro::sim::config::SystemConfig;
use stash_repro::workloads::micro::reuse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "Reuse microbenchmark: {} kernels over the same {} KB of fields\n",
        reuse::KERNELS,
        reuse::ELEMS * 4 / 1024
    );
    println!(
        "{:<10}{:>12}{:>14}{:>16}{:>14}",
        "config", "time (us)", "dram fetches", "stash adoptions", "scratch acc"
    );
    for kind in [
        MemConfigKind::Scratch,
        MemConfigKind::ScratchGD,
        MemConfigKind::Cache,
        MemConfigKind::Stash,
    ] {
        let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), kind);
        let report = machine.run(&reuse::program(kind))?;
        println!(
            "{:<10}{:>12}{:>14}{:>16}{:>14}",
            kind.name(),
            report.total_picos / 1_000_000,
            report.counters.get("dram.line_fetch"),
            report.counters.get("stash.addmap_replicated"),
            report.counters.get("scratch.access"),
        );
    }

    // Peek inside the stash run: kernel 1 fetches, kernels 2..K adopt.
    let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
    let report = machine.run(&reuse::program(MemConfigKind::Stash))?;
    let fetches = report.counters.get("stash.fetch_words");
    let hits = report.counters.get("stash.hit");
    println!(
        "\nStash detail: {} word fetches total (= one cold kernel), {} hit\n\
         transactions across the remaining {} kernels — the data stayed\n\
         Registered in the stash across kernel boundaries and was never\n\
         written back until the CPU asked for it.",
        fetches,
        hits,
        reuse::KERNELS - 1
    );
    assert_eq!(fetches, reuse::ELEMS, "only the first kernel misses");
    Ok(())
}
