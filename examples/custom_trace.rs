//! Describe a workload in the plain-text trace format and compare the
//! memory configurations on it — no simulator code required.
//!
//! ```text
//! cargo run --release --example custom_trace
//! ```

use stash_repro::gpu::config::MemConfigKind;
use stash_repro::gpu::machine::Machine;
use stash_repro::workloads::trace::parse_trace;

/// A histogram-style workload: every block updates a private slice of a
/// large AoS array (staged locally), reads a shared lookup table
/// (global), and a second kernel re-reads the slices — cross-kernel
/// reuse that only the stash retains.
const TRACE: &str = "
machine micro
array samples elems=8192 object=32 field=4
array lut     elems=512  object=4

kernel
block
task lut     0    512 r  global compute=2
task samples 0    2048 rw local  compute=6
block
task lut     0    512 r  global compute=2
task samples 2048 2048 rw local  compute=6

kernel
block
task samples 0    2048 rw local  compute=6
block
task samples 2048 2048 rw local  compute=6

cpu_sweep samples cores=15
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = parse_trace(TRACE).map_err(std::io::Error::other)?;
    println!("custom trace: 2 kernels, {} element samples + LUT\n", 8192);
    println!(
        "{:<10}{:>12}{:>16}{:>10}{:>14}",
        "config", "time (us)", "energy (pJ)", "instrs", "dram fetches"
    );
    for kind in [
        MemConfigKind::Scratch,
        MemConfigKind::ScratchGD,
        MemConfigKind::Cache,
        MemConfigKind::Stash,
        MemConfigKind::StashG,
    ] {
        let mut machine = Machine::new(workload.set().system_config(), kind);
        let report = machine.run(&workload.build(kind))?;
        println!(
            "{:<10}{:>12}{:>16}{:>10}{:>14}",
            kind.name(),
            report.total_picos / 1_000_000,
            report.total_energy() / 1000,
            report.gpu_instructions,
            report.counters.get("dram.line_fetch"),
        );
    }
    println!("\n(edit the TRACE constant — or use `bench --bin run-trace <file>` — to");
    println!(" explore your own access patterns)");
    Ok(())
}
