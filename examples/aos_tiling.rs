//! AoS compaction: map one field of a 2-D strided tile (Figure 2) and
//! compare the bytes a cache moves against the bytes the stash moves.
//!
//! An array-of-structs holds 64-byte records; a kernel processes one
//! 4-byte field of a 32×32 tile. The cache must fetch whole 64-byte
//! lines (one per record); the stash fetches only the mapped words.
//!
//! ```text
//! cargo run --release --example aos_tiling
//! ```

use stash_repro::gpu::config::MemConfigKind;
use stash_repro::gpu::machine::Machine;
use stash_repro::gpu::program::{Phase, Program};
use stash_repro::mem::addr::VAddr;
use stash_repro::noc::MsgClass;
use stash_repro::sim::config::SystemConfig;
use stash_repro::workloads::builder::{
    kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder,
};

fn program(kind: MemConfigKind) -> Program {
    // 128×128 records of 64 B, one 4-byte field accessed.
    let aos = AosArray {
        base: VAddr(0x4000_0000),
        object_bytes: 64,
        elems: 128 * 128,
        field_offset: 8,
        field_bytes: 4,
    };
    let builder = WorkloadBuilder::new(kind);
    // Sixteen thread blocks, each owning a 32×32 tile of the 128-wide
    // grid of records.
    let blocks: Vec<Vec<TileTask>> = (0..4u64)
        .flat_map(|by| (0..4u64).map(move |bx| (by, bx)))
        .map(|(by, bx)| {
            let tile = aos.tile_2d(by * 32 * 128 + bx * 32, 32, 32, 128);
            vec![TileTask::dense(tile, Placement::Local, 6)]
        })
        .collect();
    Program {
        phases: vec![Phase::Gpu(kernel_from_blocks(&builder, blocks))],
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("One 4-byte field of 64-byte records, 16 K records:\n");
    println!(
        "{:<10}{:>14}{:>14}{:>14}{:>12}",
        "config", "read flits", "wb flits", "energy (pJ)", "time (ns)"
    );
    let mut cache_flits = 0;
    let mut stash_flits = 0;
    for kind in [
        MemConfigKind::Cache,
        MemConfigKind::Scratch,
        MemConfigKind::Stash,
    ] {
        let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), kind);
        let report = machine.run(&program(kind))?;
        let read_flits = report.traffic.flits(MsgClass::Read);
        println!(
            "{:<10}{:>14}{:>14}{:>14}{:>12}",
            kind.name(),
            read_flits,
            report.traffic.flits(MsgClass::Writeback),
            report.total_energy() / 1000,
            report.total_picos / 1000,
        );
        match kind {
            MemConfigKind::Cache => cache_flits = read_flits,
            MemConfigKind::Stash => stash_flits = read_flits,
            _ => {}
        }
    }
    println!(
        "\nThe stash moves {:.1}x fewer read flits than the cache: it fetches\n\
         only the mapped field words, while the cache drags in whole lines\n\
         (compact storage, Table 1).",
        cache_flits as f64 / stash_flits as f64
    );
    Ok(())
}
