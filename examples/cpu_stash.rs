//! CPU-side stash (the paper's §8 closing thought: "expand the stash
//! idea to other compute units (e.g., CPUs)").
//!
//! A GPU kernel updates one field of an AoS array through its stash; the
//! CPU cores then consume the fields. With plain caches, each CPU read
//! drags a 64-byte line through the L1 for 4 useful bytes; with CPU-side
//! stashes the cores map the fields compactly and fetch word-granular.
//!
//! ```text
//! cargo run --release --example cpu_stash
//! ```

use stash_repro::gpu::config::MemConfigKind;
use stash_repro::gpu::machine::Machine;
use stash_repro::gpu::program::{
    AllocId, CpuOp, CpuPhase, Kernel, LocalAlloc, MapReq, Phase, Program, Stage, ThreadBlock,
    WarpOp,
};
use stash_repro::mem::addr::VAddr;
use stash_repro::mem::tile::TileMap;
use stash_repro::sim::config::SystemConfig;
use stash_repro::stash::UsageMode;

const ELEMS: u64 = 4096;
const OBJECT: u64 = 64;
const CORES: usize = 15;

fn gpu_kernel() -> Kernel {
    let blocks = (0..ELEMS / 256)
        .map(|b| {
            let tile =
                TileMap::new(VAddr(0x1000_0000 + b * 256 * OBJECT), 4, OBJECT, 256, 0, 1).unwrap();
            let mut tb = ThreadBlock::new();
            tb.allocs.push(LocalAlloc { words: 256 });
            let mut stage = Stage::new(8);
            stage.maps.push(MapReq {
                slot: 0,
                alloc: AllocId(0),
                tile,
                mode: UsageMode::MappedCoherent,
            });
            for (w, ops) in stage.warps.iter_mut().enumerate() {
                let lanes: Vec<u32> = (0..32).map(|l| (w * 32 + l) as u32).collect();
                ops.push(WarpOp::Compute(4));
                ops.push(WarpOp::LocalMem {
                    write: true,
                    alloc: AllocId(0),
                    slot: 0,
                    lanes,
                });
            }
            tb.stages.push(stage);
            tb
        })
        .collect();
    Kernel { blocks }
}

fn cpu_phase(use_stash: bool) -> CpuPhase {
    let per = ELEMS / CORES as u64 + 1;
    let mut per_core = Vec::new();
    let mut stash_maps = Vec::new();
    for c in 0..CORES as u64 {
        let start = c * per;
        let end = ((c + 1) * per).min(ELEMS);
        if start >= end {
            break;
        }
        if use_stash {
            // Map this core's slice of fields compactly into its stash.
            stash_maps.push(vec![TileMap::new(
                VAddr(0x1000_0000 + start * OBJECT),
                4,
                OBJECT,
                end - start,
                0,
                1,
            )
            .unwrap()]);
            per_core.push(
                (0..(end - start) as u32)
                    .map(|w| CpuOp::StashMem {
                        write: false,
                        slot: 0,
                        word: w,
                    })
                    .collect(),
            );
        } else {
            per_core.push(
                (start..end)
                    .map(|e| CpuOp::Mem {
                        write: false,
                        vaddr: VAddr(0x1000_0000 + e * OBJECT),
                    })
                    .collect(),
            );
        }
    }
    CpuPhase {
        per_core,
        stash_maps,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "GPU writes {} fields (4 of every {} bytes); {} CPU cores consume them\n",
        ELEMS, OBJECT, CORES
    );
    println!(
        "{:<18}{:>12}{:>14}{:>14}",
        "CPU consumer", "cpu cycles", "read flits", "forwards"
    );
    for use_stash in [false, true] {
        let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
        if use_stash {
            machine.memory_mut().enable_cpu_stashes();
        }
        let program = Program {
            phases: vec![Phase::Gpu(gpu_kernel()), Phase::Cpu(cpu_phase(use_stash))],
        };
        let report = machine.run(&program)?;
        println!(
            "{:<18}{:>12}{:>14}{:>14}",
            if use_stash { "CPU stash" } else { "CPU cache" },
            report.cpu_cycles,
            report.traffic.flits(stash_repro::noc::MsgClass::Read),
            report.counters.get("remote.forward") + report.counters.get("remote.self_forward"),
        );
    }
    println!("\n(the CPU stash maps only the 4-byte fields: no line fills, no L1");
    println!(" pollution on the consumer side — the §8 extension in action)");
    Ok(())
}
