//! On-demand loads: with data-dependent accesses, the stash fetches only
//! what the program touches, while scratchpads (with or without DMA)
//! must conservatively move the whole mapped array.
//!
//! ```text
//! cargo run --release --example ondemand_sparse
//! ```

use stash_repro::gpu::config::MemConfigKind;
use stash_repro::gpu::machine::Machine;
use stash_repro::sim::config::SystemConfig;
use stash_repro::workloads::micro::ondemand;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let selected = ondemand::selected_elements().len() as u64;
    println!(
        "On-demand: {} of {} elements selected by a runtime condition (1 in {})\n",
        selected,
        ondemand::ELEMS,
        ondemand::SELECT_ONE_OF
    );
    println!(
        "{:<10}{:>14}{:>14}{:>14}{:>14}",
        "config", "words moved", "total flits", "energy (pJ)", "time (us)"
    );
    for kind in [
        MemConfigKind::Scratch,
        MemConfigKind::ScratchGD,
        MemConfigKind::Cache,
        MemConfigKind::Stash,
    ] {
        let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), kind);
        let report = machine.run(&ondemand::program(kind))?;
        // Words the local-memory machinery moved for the payload array.
        let moved = report.counters.get("dma.words")
            + report.counters.get("stash.fetch_words")
            + report.counters.get("stash.register_words")
            + if kind == MemConfigKind::Scratch {
                // Explicit copies: one global load + one global store per
                // element (counted via the copy loops' transactions).
                2 * ondemand::ELEMS
            } else {
                0
            };
        println!(
            "{:<10}{:>14}{:>14}{:>14}{:>14}",
            kind.name(),
            moved,
            report.traffic.total_flits(),
            report.total_energy() / 1000,
            report.total_picos / 1_000_000,
        );
    }
    println!(
        "\nThe stash moved ~{}x fewer payload words than the scratchpad\n\
         configurations: a miss is generated only when the condition\n\
         selects an element (on-demand loads, Table 1).",
        2 * ondemand::ELEMS / (2 * selected)
    );
    Ok(())
}
