//! Quickstart: build a tiny kernel by hand, map a tile into the stash,
//! and watch the miss/hit/registration machinery work.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use stash_repro::gpu::config::MemConfigKind;
use stash_repro::gpu::machine::Machine;
use stash_repro::gpu::program::{
    AllocId, CpuOp, CpuPhase, Kernel, LocalAlloc, MapReq, Phase, Program, Stage, ThreadBlock,
    WarpOp,
};
use stash_repro::mem::addr::VAddr;
use stash_repro::mem::tile::TileMap;
use stash_repro::sim::config::SystemConfig;
use stash_repro::stash::UsageMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An array of 256 structs of 16 bytes; we touch one 4-byte field of
    // each — the paper's Figure 1 data structure.
    let tile = TileMap::new(VAddr(0x1000_0000), 4, 16, 256, 0, 1)?;

    // One thread block: AddMap the tile, then every warp reads and
    // updates its slice of the mapped field — no explicit copies.
    let mut tb = ThreadBlock::new();
    tb.allocs.push(LocalAlloc { words: 256 });
    let mut stage = Stage::new(8);
    stage.maps.push(MapReq {
        slot: 0,
        alloc: AllocId(0),
        tile,
        mode: UsageMode::MappedCoherent,
    });
    for (w, ops) in stage.warps.iter_mut().enumerate() {
        let lanes: Vec<u32> = (0..32).map(|l| (w * 32 + l) as u32).collect();
        ops.push(WarpOp::LocalMem {
            write: false,
            alloc: AllocId(0),
            slot: 0,
            lanes: lanes.clone(),
        });
        ops.push(WarpOp::Compute(4));
        ops.push(WarpOp::LocalMem {
            write: true,
            alloc: AllocId(0),
            slot: 0,
            lanes,
        });
    }
    tb.stages.push(stage);

    // After the kernel, a CPU core reads the updated fields — the stash
    // forwards them through the coherence protocol, no bulk writeback.
    let cpu = CpuPhase {
        per_core: vec![(0..256u64)
            .map(|e| CpuOp::Mem {
                write: false,
                vaddr: VAddr(0x1000_0000 + e * 16),
            })
            .collect()],
        stash_maps: Vec::new(),
    };
    let program = Program {
        phases: vec![Phase::Gpu(Kernel { blocks: vec![tb] }), Phase::Cpu(cpu)],
    };

    let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
    let report = machine.run(&program)?;
    println!(
        "{:<12}{:>12}{:>16}{:>10}{:>10}{:>12}",
        "config", "time (ns)", "energy (pJ)", "instrs", "L1 tx", "wb words"
    );
    println!(
        "{:<12}{:>12}{:>16}{:>10}{:>10}{:>12}",
        "Stash",
        report.total_picos / 1000,
        report.total_energy() / 1000,
        report.gpu_instructions,
        report.counters.get("gpu.l1.load_tx") + report.counters.get("gpu.l1.store_tx"),
        report.counters.get("wb.stash_words"),
    );
    println!(
        "\n  {} first-touch transactions missed (implicit word fetches and\n\
         \x20 registrations); {} words ended Registered in the stash.",
        report.counters.get("stash.miss"),
        report.counters.get("stash.register_words"),
    );
    println!(
        "  The CPU pulled the results via {} coherence forwards — no copy\n\
         \x20 loops, no L1 pollution (zero L1 transactions), no bulk writeback.",
        report.counters.get("remote.forward"),
    );
    println!("\n(Run the fig5/fig6 binaries in crates/bench for the paper's full comparisons.)");
    Ok(())
}
