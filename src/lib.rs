//! # stash-repro
//!
//! A from-scratch Rust reproduction of *Stash: Have Your Scratchpad and
//! Cache It Too* (Komuravelli et al., ISCA 2015): the **stash** memory
//! organization — a directly addressed, compactly stored local memory
//! that is globally addressable and visible through the coherence
//! protocol — together with the full simulated machine the paper
//! evaluates it on.
//!
//! This crate is the umbrella: it re-exports the workspace's subsystem
//! crates so applications can depend on one name.
//!
//! | module | contents |
//! |---|---|
//! | [`sim`]       | cycles, Table 2 configuration, counters, deterministic RNG |
//! | [`noc`]       | 4×4 mesh network: XY routing, message classes, flit accounting |
//! | [`mem`]       | addresses, paging/TLB, DeNovo caches, LLC/registry, scratchpad, DMA |
//! | [`stash`]     | the paper's contribution: stash storage, stash-map, VP-map, AddMap/ChgMap |
//! | [`gpu`]       | the machine: CU/CPU timing models, memory-system orchestrator |
//! | [`energy`]    | Table 3 energy constants and the five-component accounting |
//! | [`workloads`] | the 4 microbenchmarks and 7 applications of §5.4 |
//!
//! # Quickstart
//!
//! Map one field of an array-of-structs into a stash, run a kernel over
//! it on two memory configurations, and compare (see
//! `examples/quickstart.rs` for the full program):
//!
//! ```
//! use stash_repro::gpu::{config::MemConfigKind, machine::Machine};
//! use stash_repro::sim::config::SystemConfig;
//! use stash_repro::workloads::suite;
//!
//! let workload = suite::by_name("implicit").expect("registered workload");
//! let mut scratch = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Scratch);
//! let mut stash = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
//! let base = scratch.run(&(workload.build)(MemConfigKind::Scratch)).unwrap();
//! let ours = stash.run(&(workload.build)(MemConfigKind::Stash)).unwrap();
//! assert!(ours.total_picos < base.total_picos);
//! assert!(ours.total_energy() < base.total_energy());
//! ```

#![forbid(unsafe_code)]

pub use energy;
pub use gpu;
pub use mem;
pub use noc;
pub use sim;
pub use stash;
pub use workloads;
