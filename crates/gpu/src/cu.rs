//! GPU compute-unit timing model.
//!
//! A CU runs thread blocks in waves: up to `max_blocks_per_cu` (8)
//! resident blocks, further limited by local-memory capacity. Within a
//! wave, all resident warps interleave on a single-issue pipeline: the
//! scheduler always issues the ready warp with the earliest ready time,
//! each instruction occupies the issue/L1 port, and a warp's next
//! instruction waits for its previous one to complete (in-order per
//! warp). Latency hiding therefore falls out naturally — while one warp
//! waits on a miss, others issue.
//!
//! A thread block's [`Stage`]s are barriers (`__syncthreads`): all of its
//! warps finish a stage before the next stage's mapping setup (AddMap on
//! a slot's first binding, ChgMap on rebinding) and DMA transfers run.
//! DMA transfers block at *core* granularity per the paper's D2MA
//! adaptation — they occupy the shared issue port, stalling every
//! resident warp.

use crate::coalescer::coalesce;
use crate::config::MemConfigKind;
use crate::memsys::MemorySystem;
use crate::program::{Stage, ThreadBlock, WarpOp};
use mem::tile::TileMap;
use sim::trace::{StallReason, TraceEvent};
use sim::SimError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cycle attribution of one executed op, for the stall-attribution
/// trace. Computed unconditionally (trivial arithmetic); consumed only
/// when tracing is enabled.
struct OpTrace {
    /// Issue cycles beyond the first that a coalesced memory op spent
    /// serializing its extra transactions.
    serial: u64,
    /// Issue cycles the NoC injection port was the bottleneck
    /// (transaction occupancy).
    backpressure: u64,
    /// What the warp waits on until this op's result is ready — the
    /// reason charged to the next scheduling gap it causes.
    next: StallReason,
}

/// Per-thread-block runtime state during a wave.
struct BlockCtx {
    tb_id: usize,
    /// Base (scratchpad bytes or stash words) per allocation. An
    /// allocation the wave allocator could not fit carries the sentinel
    /// base `capacity_words` (no valid base can equal it) — its mapped
    /// accesses degrade to the cache path.
    alloc_bases: Vec<usize>,
    /// Which map slots are already bound (AddMap done; later = ChgMap).
    bound_slots: Vec<bool>,
    /// Tiles for slots that degraded to the cache path because the stash
    /// could not allocate (wave overflow, full map table/chunk ring).
    fallback_tiles: Vec<Option<TileMap>>,
    /// Once any AddMap has degraded, all later AddMaps of this block do
    /// too — binding a subset would skew the stash's slot numbering
    /// against the program's declared slots.
    degraded: bool,
    /// Current stage index.
    stage: usize,
    /// Warps still running in the current stage.
    warps_left: usize,
    /// Latest completion time seen in the current stage.
    stage_end: u64,
}

/// Runs `blocks` (already assigned to CU `cu`) to completion and returns
/// the cycles consumed.
///
/// # Errors
///
/// Propagates allocation-overflow and invalid-mapping errors, and rejects
/// programs whose ops do not match the machine's configuration (e.g. a
/// `LocalMem` op on the Cache configuration).
pub fn run_cu_blocks(
    mem: &mut MemorySystem,
    cu: usize,
    blocks: &[(usize, &ThreadBlock)],
) -> Result<u64, SimError> {
    let kind = mem.kind();
    let max_blocks = mem.config().max_blocks_per_cu;
    let chunk_words = mem.config().stash_chunk_bytes / 4;
    let capacity_words = mem.config().scratchpad_bytes / 4;

    // Wave formation: occupancy-limited and local-capacity-limited.
    let block_words = |b: &ThreadBlock| -> usize {
        b.allocs
            .iter()
            .map(|a| (a.words as usize).next_multiple_of(chunk_words))
            .sum()
    };
    let mut waves: Vec<&[(usize, &ThreadBlock)]> = Vec::new();
    let mut start = 0;
    while start < blocks.len() {
        let mut end = start;
        let mut words = 0usize;
        while end < blocks.len() && end - start < max_blocks.max(1) {
            let w = block_words(blocks[end].1);
            if end > start && words + w > capacity_words {
                break;
            }
            words += w;
            end += 1;
        }
        waves.push(&blocks[start..end]);
        start = end;
    }

    let mut cycle = 0u64;
    for wave in waves {
        cycle = run_wave(mem, cu, kind, chunk_words, capacity_words, wave, cycle)?;
    }
    Ok(cycle)
}

#[allow(clippy::too_many_arguments)]
fn run_wave(
    mem: &mut MemorySystem,
    cu: usize,
    kind: MemConfigKind,
    chunk_words: usize,
    capacity_words: usize,
    wave: &[(usize, &ThreadBlock)],
    wave_start: u64,
) -> Result<u64, SimError> {
    // ---- Allocations. ----
    mem.scratch_free_all(cu);
    let mut stash_next_word = 0usize;
    let mut ctxs: Vec<BlockCtx> = Vec::with_capacity(wave.len());
    for &(tb_id, block) in wave {
        let mut alloc_bases = Vec::with_capacity(block.allocs.len());
        for alloc in &block.allocs {
            let base = if kind.uses_scratchpad() {
                mem.scratch_alloc(cu, alloc.words as usize * 4)?
            } else if kind.uses_stash() {
                let words = (alloc.words as usize).next_multiple_of(chunk_words);
                if stash_next_word + words > capacity_words {
                    // Graceful degradation: no stash space left for this
                    // allocation. Mark it with the sentinel base; mapped
                    // accesses re-issue down the plain cache path instead
                    // of aborting the run.
                    capacity_words
                } else {
                    let base = stash_next_word;
                    stash_next_word = base + words;
                    base
                }
            } else {
                0 // Cache configuration: allocations unused.
            };
            alloc_bases.push(base);
        }
        let max_slot = block
            .stages
            .iter()
            .flat_map(|s| s.maps.iter())
            .map(|m| m.slot + 1)
            .max()
            .unwrap_or(0);
        ctxs.push(BlockCtx {
            tb_id,
            alloc_bases,
            bound_slots: vec![false; max_slot],
            fallback_tiles: vec![None; max_slot],
            degraded: false,
            stage: 0,
            warps_left: 0,
            stage_end: wave_start,
        });
    }

    // ---- Staged, interleaved execution. ----
    let mut port_free = wave_start;
    let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
    let mut cursors: Vec<Vec<usize>> = wave.iter().map(|_| Vec::new()).collect();
    // What each warp is waiting on while queued (stall attribution for
    // the gap between the port going idle and the warp issuing).
    let mut pendings: Vec<Vec<StallReason>> = wave.iter().map(|_| Vec::new()).collect();
    let mut wave_end = wave_start;
    let mut done_blocks = 0usize;
    let tracing = mem.trace_enabled();

    // Launch every block's first runnable stage.
    for (bi, (_, block)) in wave.iter().enumerate() {
        if launch_until_runnable(
            mem,
            cu,
            kind,
            &mut ctxs[bi],
            block,
            &mut cursors[bi],
            &mut pendings[bi],
            &mut heap,
            bi,
            &mut port_free,
        )? {
            mem.end_thread_block(cu, ctxs[bi].tb_id);
            done_blocks += 1;
        }
    }

    while let Some(Reverse((ready, bi, wi))) = heap.pop() {
        let (_, block) = wave[bi];
        let stage = &block.stages[ctxs[bi].stage];
        let op = &stage.warps[wi][cursors[bi][wi]];
        let start = ready.max(port_free);
        if tracing {
            // The port idled from `port_free` to `start` waiting on
            // whatever the issuing warp's previous op left pending.
            if start > port_free {
                let reason = pendings[bi][wi];
                mem.trace_stall(cu, reason, start - port_free);
                let tb = ctxs[bi].tb_id as u32;
                mem.trace_with(|t| {
                    let (b, e) = (t.abs(port_free), t.abs(start));
                    let (cu, warp) = (cu as u32, wi as u32);
                    t.push(TraceEvent::StallBegin {
                        cu,
                        tb,
                        warp,
                        at: b,
                        reason,
                    });
                    t.push(TraceEvent::StallEnd {
                        cu,
                        tb,
                        warp,
                        at: e,
                        reason,
                    });
                });
            }
        }
        // Stamp the issue cycle unconditionally: it orders staged ops in
        // the epoch merge and doubles as the trace clock when tracing.
        mem.set_now(start);
        let (issue_cycles, latency, tr) = execute_op(mem, cu, kind, &ctxs[bi], op)?;
        if tracing {
            mem.trace_stall(
                cu,
                StallReason::Issue,
                issue_cycles - tr.serial - tr.backpressure,
            );
            mem.trace_stall(cu, StallReason::CoalescerSerial, tr.serial);
            mem.trace_stall(cu, StallReason::NocBackpressure, tr.backpressure);
            let tb = ctxs[bi].tb_id as u32;
            mem.trace_with(|t| {
                let at = t.abs(start);
                t.push(TraceEvent::WarpIssue {
                    cu: cu as u32,
                    tb,
                    warp: wi as u32,
                    at,
                    issue: issue_cycles,
                    latency,
                });
            });
        }
        pendings[bi][wi] = tr.next;
        port_free = start + issue_cycles;
        let done = start + issue_cycles + latency;
        cursors[bi][wi] += 1;
        ctxs[bi].stage_end = ctxs[bi].stage_end.max(done);
        wave_end = wave_end.max(done);
        if cursors[bi][wi] < stage.warps[wi].len() {
            heap.push(Reverse((done, bi, wi)));
            continue;
        }
        // This warp finished the stage.
        ctxs[bi].warps_left -= 1;
        if ctxs[bi].warps_left > 0 {
            continue;
        }
        // Barrier reached: DMA stores of the finished stage, then advance.
        finish_stage_dma(mem, cu, kind, block, ctxs[bi].stage, &mut port_free)?;
        ctxs[bi].stage += 1;
        if launch_until_runnable(
            mem,
            cu,
            kind,
            &mut ctxs[bi],
            block,
            &mut cursors[bi],
            &mut pendings[bi],
            &mut heap,
            bi,
            &mut port_free,
        )? {
            mem.end_thread_block(cu, ctxs[bi].tb_id);
            done_blocks += 1;
        }
        wave_end = wave_end.max(port_free);
    }
    debug_assert_eq!(done_blocks, wave.len());
    let end = wave_end.max(port_free);
    // End-of-wave drain: the port is free but in-flight results are
    // still completing. Attributed so the per-CU decomposition tiles
    // [wave_start, end] exactly.
    mem.trace_stall(cu, StallReason::Drain, end - port_free);
    Ok(end)
}

/// Advances a block through its stages until one has runnable warps
/// (registering them with the scheduler) or the block ends. Returns
/// `true` when the block has completed all stages.
#[allow(clippy::too_many_arguments)]
fn launch_until_runnable(
    mem: &mut MemorySystem,
    cu: usize,
    kind: MemConfigKind,
    ctx: &mut BlockCtx,
    block: &ThreadBlock,
    cursors: &mut Vec<usize>,
    pendings: &mut Vec<StallReason>,
    heap: &mut BinaryHeap<Reverse<(u64, usize, usize)>>,
    bi: usize,
    port_free: &mut u64,
) -> Result<bool, SimError> {
    loop {
        if ctx.stage >= block.stages.len() {
            return Ok(true);
        }
        let stage = &block.stages[ctx.stage];
        start_stage(mem, cu, kind, ctx, stage, port_free)?;
        let at = ctx.stage_end.max(*port_free);
        let runnable = stage.warps.iter().filter(|w| !w.is_empty()).count();
        if runnable > 0 {
            cursors.clear();
            cursors.resize(stage.warps.len(), 0);
            // Fresh warps wait on the stage barrier until first issue.
            pendings.clear();
            pendings.resize(stage.warps.len(), StallReason::Barrier);
            ctx.warps_left = runnable;
            ctx.stage_end = at;
            for (wi, ops) in stage.warps.iter().enumerate() {
                if !ops.is_empty() {
                    heap.push(Reverse((at, bi, wi)));
                }
            }
            return Ok(false);
        }
        // Setup-only stage: run its store DMAs and move on.
        finish_stage_dma(mem, cu, kind, block, ctx.stage, port_free)?;
        ctx.stage += 1;
    }
}

/// Runs a stage's mapping setup and DMA preloads.
fn start_stage(
    mem: &mut MemorySystem,
    cu: usize,
    kind: MemConfigKind,
    ctx: &mut BlockCtx,
    stage: &Stage,
    port_free: &mut u64,
) -> Result<(), SimError> {
    if kind.uses_stash() {
        let capacity_words = mem.config().scratchpad_bytes / 4;
        for req in &stage.maps {
            if ctx.bound_slots[req.slot] {
                mem.stash_chg_map(cu, ctx.tb_id, req.slot, req.tile, req.mode)?;
            } else if ctx.degraded || ctx.alloc_bases[req.alloc.0] >= capacity_words {
                // Graceful degradation: either the wave allocator had no
                // room for this allocation (sentinel base) or an earlier
                // AddMap of this block already degraded — binding only a
                // subset would skew the stash's slot numbering against
                // the program's declared slots. Remember the tile so the
                // slot's accesses take the plain cache path.
                ctx.fallback_tiles[req.slot] = Some(req.tile);
                ctx.degraded = true;
                mem.note_stash_fallback();
            } else {
                match mem.stash_add_map(
                    cu,
                    ctx.tb_id,
                    req.tile,
                    ctx.alloc_bases[req.alloc.0],
                    req.mode,
                ) {
                    Ok(out) => {
                        debug_assert_eq!(
                            out.slot, req.slot,
                            "slots must bind in declaration order"
                        );
                        ctx.bound_slots[req.slot] = true;
                    }
                    // Structure exhaustion (full map table / chunk ring)
                    // degrades to the cache path instead of killing the
                    // run; real errors still propagate.
                    Err(SimError::TableFull { .. } | SimError::OutOfRange { .. }) => {
                        ctx.fallback_tiles[req.slot] = Some(req.tile);
                        ctx.degraded = true;
                        mem.note_stash_fallback();
                    }
                    Err(e) => return Err(e),
                }
            }
            // One AddMap/ChgMap instruction per call (§3.1, Figure 1b).
            mem.note_gpu_instructions(1);
            // §8 extension: AddMap-time prefetch blocks like a DMA
            // preload.
            if mem.stash_prefetch_enabled() {
                if let Some(map) = mem.stash_resolve_slot(cu, ctx.tb_id, req.slot) {
                    mem.set_now(*port_free);
                    let lat = mem.stash_prefetch_mapping(cu, map)?;
                    mem.trace_stall(cu, StallReason::StashMapRing, lat);
                    *port_free += lat;
                }
            }
        }
    }
    if kind.uses_dma() {
        for req in &stage.dmas {
            if req.load {
                let warps = stage.warps.len().max(1) as u64;
                mem.note_gpu_instructions(warps);
                // Core-granularity blocking: occupy the shared port.
                mem.set_now(*port_free);
                let lat = mem.dma_transfer(cu, &req.tile, false)?;
                mem.trace_stall(cu, StallReason::DmaWait, lat);
                *port_free += lat;
            }
        }
    }
    Ok(())
}

/// Runs a finished stage's DMA writebacks.
fn finish_stage_dma(
    mem: &mut MemorySystem,
    cu: usize,
    kind: MemConfigKind,
    block: &ThreadBlock,
    stage: usize,
    port_free: &mut u64,
) -> Result<(), SimError> {
    if kind.uses_dma() {
        for req in &block.stages[stage].dmas {
            if req.store {
                let warps = block.stages[stage].warps.len().max(1) as u64;
                mem.note_gpu_instructions(warps);
                mem.set_now(*port_free);
                let lat = mem.dma_transfer(cu, &req.tile, true)?;
                mem.trace_stall(cu, StallReason::DmaWait, lat);
                *port_free += lat;
            }
        }
    }
    Ok(())
}

/// Executes one warp op; returns `(issue_cycles, completion_latency)`
/// plus the issue-cycle decomposition for the stall trace.
fn execute_op(
    mem: &mut MemorySystem,
    cu: usize,
    kind: MemConfigKind,
    ctx: &BlockCtx,
    op: &WarpOp,
) -> Result<(u64, u64, OpTrace), SimError> {
    // Latency past the L1-hit cost means the warp is waiting on an
    // outstanding miss; stash latency past the miss-translation cost
    // means a chunk fetch is in flight.
    let l1_hit_cycles = mem.config().l1_hit_cycles;
    let miss_reason = move |lat: u64| {
        if lat > l1_hit_cycles {
            StallReason::MshrWait
        } else {
            StallReason::Scoreboard
        }
    };
    let compute_trace = OpTrace {
        serial: 0,
        backpressure: 0,
        next: StallReason::Scoreboard,
    };
    match op {
        WarpOp::Compute(n) => {
            let n = u64::from(*n);
            mem.note_gpu_instructions(n);
            Ok((n, 0, compute_trace))
        }
        WarpOp::GlobalMem { write, lanes } => {
            mem.note_gpu_instructions(1);
            let txs = coalesce(lanes, mem.config().line_bytes as u64);
            let mut lat = 0u64;
            let mut occupancy = 0u64;
            for tx in &txs {
                let cost = mem.gpu_global_tx(cu, *write, tx)?;
                lat = lat.max(cost.latency);
                occupancy += cost.occupancy;
            }
            let slots = txs.len().max(1) as u64;
            Ok((
                slots + occupancy,
                lat,
                OpTrace {
                    serial: slots - 1,
                    backpressure: occupancy,
                    next: miss_reason(lat),
                },
            ))
        }
        WarpOp::LocalMem {
            write,
            alloc,
            slot,
            lanes,
        } => {
            mem.note_gpu_instructions(1);
            let base = *ctx.alloc_bases.get(alloc.0).ok_or_else(|| {
                SimError::InvalidMapping(format!("allocation {} not declared", alloc.0))
            })?;
            if kind.uses_stash() {
                // An unbound slot means the allocation carries no global
                // mapping — §3.3's Temporary / Global-unmapped modes, in
                // which the stash degrades gracefully to a scratchpad.
                match mem.stash_resolve_slot(cu, ctx.tb_id, *slot) {
                    Some(map) => {
                        let cost = mem.stash_tx(cu, *write, base, lanes, map)?;
                        let next = if cost.latency > mem.config().stash_translation_cycles {
                            StallReason::StashFetch
                        } else {
                            StallReason::Scoreboard
                        };
                        Ok((
                            1 + cost.occupancy,
                            cost.latency,
                            OpTrace {
                                serial: 0,
                                backpressure: cost.occupancy,
                                next,
                            },
                        ))
                    }
                    None => {
                        if let Some(tile) = ctx.fallback_tiles.get(*slot).copied().flatten() {
                            // Degraded slot: re-issue through the plain
                            // cache hierarchy using the tile's mapping.
                            let cost = mem.stash_fallback_tx(cu, *write, &tile, lanes)?;
                            Ok((
                                1 + cost.occupancy,
                                cost.latency,
                                OpTrace {
                                    serial: 0,
                                    backpressure: cost.occupancy,
                                    next: miss_reason(cost.latency),
                                },
                            ))
                        } else if base >= mem.config().scratchpad_bytes / 4 {
                            // Oversized allocation with no global mapping:
                            // nowhere to degrade to.
                            Err(SimError::OutOfRange {
                                what: "stash wave allocation",
                                offset: base,
                                size: mem.config().scratchpad_bytes / 4,
                            })
                        } else {
                            let lat = mem.stash_raw_tx(cu, base, lanes);
                            Ok((1, lat, compute_trace))
                        }
                    }
                }
            } else if kind.uses_scratchpad() {
                let lat = mem.scratch_tx(cu, base, lanes);
                Ok((1, lat, compute_trace))
            } else {
                Err(SimError::InvalidMapping(format!(
                    "LocalMem op on configuration {kind} with no local memory"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{AllocId, LocalAlloc, MapReq, Stage};
    use mem::addr::VAddr;
    use mem::tile::TileMap;
    use sim::config::SystemConfig;
    use stash::UsageMode;

    fn memsys(kind: MemConfigKind) -> MemorySystem {
        MemorySystem::new(SystemConfig::for_microbenchmarks(), kind)
    }

    fn stash_block(elems: u64) -> ThreadBlock {
        let tile = TileMap::new(VAddr(0x10000), 4, 16, elems, 0, 1).unwrap();
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: elems });
        let mut stage = Stage::new(1);
        stage.maps.push(MapReq {
            slot: 0,
            alloc: AllocId(0),
            tile,
            mode: UsageMode::MappedCoherent,
        });
        stage.warps[0] = vec![
            WarpOp::LocalMem {
                write: false,
                alloc: AllocId(0),
                slot: 0,
                lanes: (0..32).collect(),
            },
            WarpOp::LocalMem {
                write: true,
                alloc: AllocId(0),
                slot: 0,
                lanes: (0..32).collect(),
            },
        ];
        tb.stages.push(stage);
        tb
    }

    #[test]
    fn stash_block_runs_and_counts() {
        let mut m = memsys(MemConfigKind::Stash);
        let tb = stash_block(64);
        let cycles = run_cu_blocks(&mut m, 0, &[(0, &tb)]).unwrap();
        assert!(cycles > 0);
        // 1 AddMap + 2 memory instructions.
        assert_eq!(m.gpu_instructions(), 3);
        assert_eq!(m.counters().get("stash.addmap"), 1);
    }

    #[test]
    fn rebinding_a_slot_is_chgmap() {
        let tile1 = TileMap::new(VAddr(0x10000), 4, 16, 32, 0, 1).unwrap();
        let tile2 = TileMap::new(VAddr(0x20000), 4, 16, 32, 0, 1).unwrap();
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 32 });
        for tile in [tile1, tile2] {
            let mut stage = Stage::new(1);
            stage.maps.push(MapReq {
                slot: 0,
                alloc: AllocId(0),
                tile,
                mode: UsageMode::MappedCoherent,
            });
            stage.warps[0] = vec![WarpOp::LocalMem {
                write: false,
                alloc: AllocId(0),
                slot: 0,
                lanes: (0..32).collect(),
            }];
            tb.stages.push(stage);
        }
        let mut m = memsys(MemConfigKind::Stash);
        run_cu_blocks(&mut m, 0, &[(0, &tb)]).unwrap();
        assert_eq!(m.counters().get("stash.addmap"), 1);
        assert_eq!(m.counters().get("stash.chgmap"), 1);
        // Both tiles' words were fetched: the remap invalidated the range.
        assert_eq!(m.counters().get("stash.fetch_words"), 64);
    }

    #[test]
    fn warps_hide_latency() {
        // Two warps issuing independent misses should take far less than
        // twice one warp's time.
        let mk = |warp_count: usize| {
            let mut tb = ThreadBlock::new();
            let mut stage = Stage::new(warp_count);
            for wi in 0..warp_count {
                stage.warps[wi] = vec![WarpOp::GlobalMem {
                    write: false,
                    lanes: vec![VAddr(0x1000 + wi as u64 * 0x8000)],
                }];
            }
            tb.stages.push(stage);
            tb
        };
        let mut m1 = memsys(MemConfigKind::Cache);
        let one = run_cu_blocks(&mut m1, 0, &[(0, &mk(1))]).unwrap();
        let mut m2 = memsys(MemConfigKind::Cache);
        let two = run_cu_blocks(&mut m2, 0, &[(1, &mk(2))]).unwrap();
        assert!(two < one * 2, "two warps ({two}) vs one ({one})");
    }

    #[test]
    fn stages_are_barriers() {
        // Warp 1's stage-2 op cannot start before warp 0's long stage-1
        // compute finishes.
        let mut tb = ThreadBlock::new();
        let mut s1 = Stage::new(2);
        s1.warps[0] = vec![WarpOp::Compute(500)];
        s1.warps[1] = vec![WarpOp::Compute(1)];
        let mut s2 = Stage::new(2);
        s2.warps[1] = vec![WarpOp::Compute(1)];
        tb.stages.push(s1);
        tb.stages.push(s2);
        let mut m = memsys(MemConfigKind::Cache);
        let cycles = run_cu_blocks(&mut m, 0, &[(0, &tb)]).unwrap();
        assert!(cycles >= 502, "barrier must serialize stages: {cycles}");
    }

    #[test]
    fn local_op_on_cache_config_errors() {
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 32 });
        let mut stage = Stage::new(1);
        stage.warps[0] = vec![WarpOp::LocalMem {
            write: false,
            alloc: AllocId(0),
            slot: 0,
            lanes: vec![0],
        }];
        tb.stages.push(stage);
        let mut m = memsys(MemConfigKind::Cache);
        assert!(run_cu_blocks(&mut m, 0, &[(0, &tb)]).is_err());
    }

    #[test]
    fn dma_blocks_the_whole_core() {
        // Two blocks in one wave; one carries a DMA preload. The other's
        // warps cannot start before the transfer completes (the shared
        // port is occupied).
        let tile = TileMap::new(VAddr(0x10000), 4, 16, 512, 0, 1).unwrap();
        let mut dma_tb = ThreadBlock::new();
        dma_tb.allocs.push(LocalAlloc { words: 512 });
        let mut stage = Stage::new(1);
        stage.dmas.push(crate::program::DmaReq {
            alloc: AllocId(0),
            tile,
            load: true,
            store: false,
        });
        stage.warps[0] = vec![WarpOp::LocalMem {
            write: false,
            alloc: AllocId(0),
            slot: 0,
            lanes: (0..32).collect(),
        }];
        dma_tb.stages.push(stage);

        let mut other = ThreadBlock::new();
        let mut s2 = Stage::new(1);
        s2.warps[0] = vec![WarpOp::Compute(1)];
        other.stages.push(s2);

        let mut m = memsys(MemConfigKind::ScratchGD);
        let cycles = run_cu_blocks(&mut m, 0, &[(0, &dma_tb), (1, &other)]).unwrap();
        // Alone, the compute block takes ~1 cycle; with the DMA block
        // resident it waits for the transfer.
        let mut solo = memsys(MemConfigKind::ScratchGD);
        let dma_only = run_cu_blocks(&mut solo, 0, &[(0, &dma_tb)]).unwrap();
        assert!(cycles >= dma_only, "wave ends after the DMA-bearing block");
        assert!(dma_only > 100, "a 512-word transfer is not instant");
    }

    #[test]
    fn waves_split_on_local_capacity() {
        // Three blocks of 2048 words each: 6144 words > 4096-word stash,
        // so the CU must run them in at least two waves — and the second
        // wave's AddMap reclaims the first wave's space (writebacks).
        let mk = |base: u64| {
            let tile = TileMap::new(VAddr(base), 4, 16, 2048, 0, 1).unwrap();
            let mut tb = ThreadBlock::new();
            tb.allocs.push(LocalAlloc { words: 2048 });
            let mut stage = Stage::new(1);
            stage.maps.push(MapReq {
                slot: 0,
                alloc: AllocId(0),
                tile,
                mode: UsageMode::MappedCoherent,
            });
            stage.warps[0] = vec![WarpOp::LocalMem {
                write: true,
                alloc: AllocId(0),
                slot: 0,
                lanes: (0..32).collect(),
            }];
            tb.stages.push(stage);
            tb
        };
        let blocks = [mk(0x10000), mk(0x90000), mk(0x110000)];
        let refs: Vec<(usize, &ThreadBlock)> = blocks.iter().enumerate().collect();
        let mut m = memsys(MemConfigKind::Stash);
        run_cu_blocks(&mut m, 0, &refs).unwrap();
        assert_eq!(m.counters().get("stash.addmap"), 3);
        // Block 3 landed on block 1's space: its dirty words wrote back.
        assert!(m.counters().get("wb.stash_words") > 0);
    }

    #[test]
    fn oversized_stash_allocation_falls_back_to_cache_path() {
        let mut m = memsys(MemConfigKind::Stash);
        let tb = stash_block(8192); // 32 KB of words in a 16 KB stash
        let cycles = run_cu_blocks(&mut m, 0, &[(0, &tb)]).unwrap();
        assert!(cycles > 0);
        // The allocation could not fit: no map bound, both accesses took
        // the cache path instead.
        assert_eq!(m.counters().get("stash.addmap"), 0);
        assert_eq!(m.counters().get("resilience.stash_fallback"), 1);
        assert_eq!(m.counters().get("resilience.fallback_tx"), 2);
        assert!(
            m.counters().get("gpu.l1.load_tx") + m.counters().get("gpu.l1.store_tx") > 0,
            "fallback accesses must flow through the L1"
        );
    }

    #[test]
    fn oversized_unmapped_allocation_errors() {
        // An oversized allocation with no global mapping has nowhere to
        // degrade to — the error must still surface.
        let mut m = memsys(MemConfigKind::Stash);
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 8192 });
        let mut stage = Stage::new(1);
        stage.warps[0] = vec![WarpOp::LocalMem {
            write: false,
            alloc: AllocId(0),
            slot: 0,
            lanes: vec![0],
        }];
        tb.stages.push(stage);
        assert!(run_cu_blocks(&mut m, 0, &[(0, &tb)]).is_err());
    }
}
