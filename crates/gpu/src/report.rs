//! Run results: everything the paper's figures are built from.

use energy::EnergyAccount;
use noc::TrafficStats;
use sim::clock::Picos;
use sim::stats::Counters;

/// The measured outcome of running one program on one configuration.
///
/// Equality is exact over every measured quantity — the parallel
/// harness's determinism tests compare whole reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// GPU cycles across all GPU phases (700 MHz domain).
    pub gpu_cycles: u64,
    /// CPU cycles across all CPU phases (2 GHz domain).
    pub cpu_cycles: u64,
    /// Total execution time (GPU phases + CPU phases) in picoseconds.
    pub total_picos: Picos,
    /// GPU warp instructions issued (Figure 5c's quantity).
    pub gpu_instructions: u64,
    /// Dynamic energy by component (Figures 5b / 6b).
    pub energy: EnergyAccount,
    /// Network traffic by class (Figure 5d).
    pub traffic: TrafficStats,
    /// Raw event counters (hits, misses, writebacks, …) for diagnostics
    /// and tests.
    pub counters: Counters,
}

impl RunReport {
    /// Total dynamic energy in femtojoules.
    pub fn total_energy(&self) -> u64 {
        self.energy.total()
    }

    /// Execution time normalized against a baseline report, in percent
    /// (the paper's figures normalize to the Scratch configuration).
    ///
    /// # Panics
    ///
    /// Panics if the baseline ran for zero time.
    pub fn time_percent_of(&self, baseline: &RunReport) -> u64 {
        assert!(baseline.total_picos > 0, "baseline must have run");
        self.total_picos * 100 / baseline.total_picos
    }

    /// Energy normalized against a baseline report, in percent.
    ///
    /// # Panics
    ///
    /// Panics if the baseline consumed zero energy.
    pub fn energy_percent_of(&self, baseline: &RunReport) -> u64 {
        assert!(
            baseline.total_energy() > 0,
            "baseline must have consumed energy"
        );
        self.total_energy() * 100 / baseline.total_energy()
    }

    /// Instruction count normalized against a baseline, in percent.
    ///
    /// # Panics
    ///
    /// Panics if the baseline issued zero instructions.
    pub fn instructions_percent_of(&self, baseline: &RunReport) -> u64 {
        assert!(
            baseline.gpu_instructions > 0,
            "baseline must have instructions"
        );
        self.gpu_instructions * 100 / baseline.gpu_instructions
    }

    /// Traffic (total flit crossings) normalized against a baseline, in
    /// percent.
    ///
    /// # Panics
    ///
    /// Panics if the baseline produced zero traffic.
    pub fn traffic_percent_of(&self, baseline: &RunReport) -> u64 {
        assert!(
            baseline.traffic.total_crossings() > 0,
            "baseline must have traffic"
        );
        self.traffic.total_crossings() * 100 / baseline.traffic.total_crossings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(picos: u64, energy_fj: u64) -> RunReport {
        let mut r = RunReport {
            total_picos: picos,
            gpu_instructions: 100,
            ..RunReport::default()
        };
        r.energy.add(energy::Component::GpuCore, energy_fj);
        r
    }

    #[test]
    fn normalization_percentages() {
        let base = report(1000, 2000);
        let fast = report(650, 1000);
        assert_eq!(fast.time_percent_of(&base), 65);
        assert_eq!(fast.energy_percent_of(&base), 50);
        assert_eq!(fast.instructions_percent_of(&base), 100);
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn zero_baseline_panics() {
        let base = RunReport::default();
        let r = report(1, 1);
        let _ = r.time_percent_of(&base);
    }
}
