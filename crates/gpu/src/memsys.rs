//! The memory-system orchestrator.
//!
//! [`MemorySystem`] owns every shared structure of Figure 4 — the mesh
//! network, the banked LLC/registry, the per-core L1s, the per-CU
//! scratchpads or stashes, and the page table — and exposes the
//! transaction-level operations the timing models call. Every operation:
//!
//! 1. applies the architectural state changes (coherence, registry,
//!    stash bookkeeping) synchronously,
//! 2. accounts energy into the five figure components and traffic into the
//!    three message classes, and
//! 3. returns the access latency in cycles, built from Table 2's formulas
//!    (L2 base + mesh hops, +DRAM for cold lines, three-leg forwarding for
//!    remotely registered words, +10 cycles for stash translations).
//!
//! Timing is *latency-and-accounting*: requests resolve immediately rather
//! than as in-flight messages. Contention appears at the CU issue/L1 port
//! (in [`crate::cu`]) and in DMA's blocking transfers; router queueing is
//! not modelled (see DESIGN.md).

use crate::coalescer::{coalesce, Transaction};
use crate::config::MemConfigKind;
use energy::{Component, EnergyAccount, EnergyModel};
use mem::addr::{LineAddr, PAddr, VAddr, WORD_BYTES};
use mem::cache::DenovoCache;
use mem::dma::{DmaDirection, DmaTransfer};
use mem::llc::{CoreId, Llc, LlcLoadOutcome, Registration};
use mem::paging::PageTable;
use mem::scratchpad::Scratchpad;
use mem::tile::TileMap;
use noc::{Attempt, Delivery, Mesh, Message, MsgClass, Network, NodeId};
use sim::config::SystemConfig;
use sim::fault::{FaultConfig, FaultEvent, FaultInjector, FaultKind};
use sim::stats::{Counter, Counters};
use sim::trace::{StallReason, TraceEvent, TraceSink};
use sim::SimError;
use stash::{
    AddMapOutcome, LoadOutcome, MapIndex, Stash, StashConfig, StoreOutcome, UsageMode,
    WritebackWord,
};
use std::collections::BTreeMap;

/// The cost of one memory transaction.
///
/// `latency` is when the result returns; `occupancy` is how long the
/// core's memory path (coalescer/L1 port + NoC injection) is busy with
/// the transaction's flits — the bandwidth component. Miss-heavy
/// configurations therefore serialize on their own traffic even when
/// warp parallelism hides the latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxCost {
    /// Cycles until the transaction's data is available.
    pub latency: u64,
    /// Cycles the core's memory path is occupied (flits injected+ejected).
    pub occupancy: u64,
}

/// One shared-state mutation recorded by a CU shard for the epoch merge.
///
/// A shard (see [`MemorySystem::fork_shard`]) runs one CU's blocks against
/// a private snapshot of the hierarchy; every operation that would touch
/// *shared* state — the LLC/registry and cross-core invalidations — is
/// recorded here with its issue cycle and a per-shard sequence number.
/// The merge sorts all shards' ops by `(cycle, cu, seq)` and replays them
/// against the master hierarchy in bounded cycle epochs, which makes the
/// merged state independent of thread count and epoch length.
#[derive(Debug, Clone, Copy)]
enum StagedOp {
    /// An LLC word read ([`Llc::load_word`]): materializes residency.
    LoadWord(LineAddr, usize),
    /// A word registration ([`Llc::register_word`]); the replayed
    /// outcome's previous owner drives the protocol invalidation.
    RegisterWord(LineAddr, usize, Registration),
    /// A registered word written back by `owner`.
    WritebackWord(LineAddr, usize, CoreId),
    /// A DMA store-through; the replayed previous owner is invalidated.
    StoreThrough(LineAddr, usize),
    /// A whole-line fill ([`Llc::line_fill`]) for `requester`.
    LineFill(LineAddr, CoreId),
    /// Fault injection marked the word corrupt.
    CorruptWord(LineAddr, usize),
    /// A store overwrote (repaired) the word's corruption.
    ClearCorrupt(LineAddr, usize),
    /// A parity check detected (and corrected) the word.
    CheckParity(LineAddr, usize),
}

/// A shard's staged-op log: `(issue_cycle, seq, op)` triples in issue
/// order, plus the running sequence counter.
#[derive(Debug, Clone, Default)]
pub struct StageLog {
    seq: u64,
    ops: Vec<(u64, u64, StagedOp)>,
}

impl StageLog {
    /// Number of staged operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations were staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Compact reduction of a finished CU shard — exactly the state
/// [`MemorySystem::absorb_result`] needs. Built worker-side by
/// [`MemorySystem::reduce_shard`] so the bulk of the snapshot is torn
/// down off the merge thread.
#[derive(Debug)]
pub struct ShardResult {
    cu: usize,
    cycles: u64,
    mapped_pages: usize,
    l1: DenovoCache,
    scratchpad: Option<Scratchpad>,
    stash: Option<Stash>,
    counters: Counters,
    energy: EnergyAccount,
    net: Network,
    gpu_instructions: u64,
    fault_trace: Vec<FaultEvent>,
    trace: Option<Box<TraceSink>>,
    log: StageLog,
    dram: u64,
}

impl ShardResult {
    /// The CU this shard simulated.
    pub fn cu(&self) -> usize {
        self.cu
    }

    /// Cycles the CU's blocks consumed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

/// The assembled memory hierarchy.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: SystemConfig,
    kind: MemConfigKind,
    net: Network,
    llc: Llc,
    l1s: Vec<DenovoCache>,
    scratchpads: Vec<Scratchpad>,
    stashes: Vec<Stash>,
    pt: PageTable,
    model: EnergyModel,
    energy: EnergyAccount,
    counters: Counters,
    gpu_instructions: u64,
    eager_stash_writebacks: bool,
    line_grain_registration: bool,
    verify: bool,
    fault: Option<FaultInjector>,
    trace: Option<Box<TraceSink>>,
    /// Kernel-local cycle of the operation in flight (stamped by the CU
    /// scheduler); orders staged ops in the epoch merge.
    now: u64,
    /// Staged-op log, present only in forked CU shards.
    stage: Option<Box<StageLog>>,
}

impl MemorySystem {
    /// Builds the memory system for one configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: SystemConfig, kind: MemConfigKind) -> Self {
        cfg.validate().expect("invalid system configuration");
        let cores = cfg.gpu_cus + cfg.cpu_cores;
        let l1s = (0..cores)
            .map(|_| DenovoCache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes))
            .collect();
        let scratchpads = if kind.uses_scratchpad() {
            (0..cfg.gpu_cus)
                .map(|_| Scratchpad::new(cfg.scratchpad_bytes, cfg.local_banks))
                .collect()
        } else {
            Vec::new()
        };
        let stashes = if kind.uses_stash() {
            (0..cfg.gpu_cus)
                .map(|_| {
                    Stash::new(StashConfig {
                        capacity_bytes: cfg.scratchpad_bytes,
                        chunk_bytes: cfg.stash_chunk_bytes,
                        map_entries: cfg.stash_map_entries,
                        vp_map_entries: cfg.vp_map_entries,
                        max_maps_per_thread_block: cfg.max_maps_per_thread_block,
                        page_bytes: cfg.page_bytes as u64,
                        replication_enabled: true,
                        prefetch: false,
                        fetch_words: 1,
                    })
                })
                .collect()
        } else {
            Vec::new()
        };
        Self {
            net: Network::with_latencies(
                Mesh::new(cfg.mesh_side),
                cfg.hop_round_trip_cycles,
                cfg.hop_round_trip_cycles_y,
            ),
            llc: Llc::with_interleave(cfg.l2_banks, cfg.line_bytes, cfg.l2_interleave_lines),
            l1s,
            scratchpads,
            stashes,
            pt: PageTable::new(cfg.page_bytes as u64),
            model: EnergyModel::default().scaled(cfg.energy_scale_pct),
            energy: EnergyAccount::new(),
            counters: Counters::new(),
            gpu_instructions: 0,
            eager_stash_writebacks: false,
            line_grain_registration: false,
            verify: false,
            fault: None,
            trace: None,
            now: 0,
            stage: None,
            cfg,
            kind,
        }
    }

    /// Enables the runtime invariant oracle: after every architectural
    /// transition, the L1s, stashes, and LLC registry are cross-checked
    /// against DeNovo's global invariants — at most one Registered holder
    /// per word, every Registered copy matched by a registry entry naming
    /// its structure, and every registry entry backed by a core that
    /// really holds the word. Verification walks every registered word
    /// after every transaction, so use it for correctness runs (the
    /// bench binaries' `--verify` flag), not for timing numbers.
    ///
    /// # Panics
    ///
    /// Once enabled, any subsequent operation that leaves the hierarchy
    /// in an invariant-violating state panics with the violated invariant
    /// and the operation that exposed it.
    pub fn set_verify(&mut self, on: bool) {
        self.verify = on;
    }

    /// Whether the runtime invariant oracle is enabled.
    pub fn verify_enabled(&self) -> bool {
        self.verify
    }

    // ------------------------------------------------------------------
    // Tracing (observability layer)
    // ------------------------------------------------------------------

    /// Installs a [`TraceSink`] with the given ring capacity. With no
    /// sink installed (the default) every emission site short-circuits on
    /// a single inlined `Option` check — no allocation, no formatting —
    /// and timing, counters, and `state_digest` are bit-identical to an
    /// untraced run (pinned by tests).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Box::new(TraceSink::new(capacity)));
    }

    /// Whether a trace sink is installed.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The installed sink, if any (exporters read events and the stall
    /// breakdown back out).
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_deref()
    }

    /// Takes the sink out of the memory system (end of a traced run).
    pub fn take_trace(&mut self) -> Option<Box<TraceSink>> {
        self.trace.take()
    }

    /// Stamps the sink's clock with a kernel-local cycle. The memory
    /// system is latency-and-accounting and does not know the clock, so
    /// the warp scheduler / machine stamp "now" before operations; all
    /// events emitted inside the operation reuse the stamp.
    #[inline]
    pub fn set_trace_time(&mut self, rel_cycle: u64) {
        if let Some(t) = self.trace.as_mut() {
            t.set_now(rel_cycle);
        }
    }

    /// Stamps the operation clock: the kernel-local issue cycle of the
    /// operation about to run. Orders staged ops in the epoch merge (and
    /// stamps the trace clock too, when tracing). Called unconditionally
    /// by the CU scheduler — a single store on the untraced, unsharded
    /// path.
    #[inline]
    pub fn set_now(&mut self, rel_cycle: u64) {
        self.now = rel_cycle;
        if let Some(t) = self.trace.as_mut() {
            t.set_now(rel_cycle);
        }
    }

    /// Records one shared-state mutation in the shard's staged-op log.
    /// Free (one branch) outside a shard.
    #[inline]
    fn stage_op(&mut self, op: StagedOp) {
        if let Some(log) = self.stage.as_mut() {
            let seq = log.seq;
            log.seq += 1;
            log.ops.push((self.now, seq, op));
        }
    }

    /// Sets the absolute-cycle base (cycles of previously completed
    /// kernels) so stamps stay monotone across kernels.
    pub fn set_trace_base(&mut self, base: u64) {
        if let Some(t) = self.trace.as_mut() {
            t.set_base(base);
        }
    }

    /// Attributes `cycles` on CU `cu` to `reason` in the stall breakdown.
    #[inline]
    pub fn trace_stall(&mut self, cu: usize, reason: StallReason, cycles: u64) {
        if let Some(t) = self.trace.as_mut() {
            t.stall(cu, reason, cycles);
        }
    }

    /// Runs `f` against the sink when tracing is enabled (event emission
    /// helper for the CU model).
    #[inline]
    pub fn trace_with(&mut self, f: impl FnOnce(&mut TraceSink)) {
        if let Some(t) = self.trace.as_mut() {
            f(t);
        }
    }

    // ------------------------------------------------------------------
    // Fault injection & resilience (chaos substrate)
    // ------------------------------------------------------------------

    /// Installs a deterministic fault-injection schedule. Call before any
    /// accesses. With no injector installed (the default) every
    /// fault/resilience path short-circuits on a single `Option` check —
    /// the machinery is overhead-free and all results are bit-identical
    /// to a fault-free build.
    pub fn set_fault_injector(&mut self, cfg: FaultConfig) {
        self.fault = Some(FaultInjector::new(cfg));
    }

    /// The installed fault injector, if any (the chaos harness reads the
    /// config and deterministic event trace back out).
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.fault.as_ref()
    }

    /// Whether the parity/ECC detection model is active.
    fn parity_on(&self) -> bool {
        self.fault.as_ref().is_some_and(|f| f.config().parity)
    }

    /// Records a stash allocation failure that degraded to the plain
    /// cache path (graceful degradation; the CU model reports the event
    /// when it rebinds the slot).
    pub fn note_stash_fallback(&mut self) {
        self.counters.bump(Counter::ResilienceStashFallback);
    }

    /// Corrupt words that survived every read check and the end-of-run
    /// scrub. Any nonzero value is a silent-corruption escape — the chaos
    /// harness's zero-tolerance gate.
    pub fn remaining_corruption(&self) -> usize {
        self.llc.corrupt_word_count()
            + self
                .stashes
                .iter()
                .map(Stash::corrupt_word_count)
                .sum::<usize>()
    }

    /// End-of-run parity scrub: with the parity model on, sweeps the LLC
    /// and every stash for corrupt words (counted as
    /// `fault.scrub_detected`). With parity off the sweep is skipped —
    /// whatever is corrupt stays corrupt, which is exactly what
    /// [`Self::remaining_corruption`] reports.
    pub fn scrub_faults(&mut self) {
        if !self.parity_on() {
            return;
        }
        let mut found = self.llc.scrub();
        for s in &mut self.stashes {
            found += s.scrub();
        }
        self.counters.add(Counter::FaultScrubDetected, found as u64);
    }

    /// An FNV-1a digest of the architectural state the protocol is
    /// responsible for: the LLC registry and resident lines, each L1's
    /// registered words, and each stash's pending writebacks, all in
    /// canonical (sorted) order. Latency, energy, and traffic are
    /// deliberately excluded — retries repeat *accounting*, never state —
    /// so a recovered faulty run digests identically to its fault-free
    /// golden replay.
    pub fn state_digest(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn put(h: &mut u64, v: u64) {
            for b in v.to_le_bytes() {
                *h = (*h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (line, word, reg) in self.llc.registered_words() {
            put(&mut h, line.0);
            put(&mut h, word as u64);
            match reg {
                Registration::Cache(core) => {
                    put(&mut h, 0);
                    put(&mut h, core.0 as u64);
                }
                Registration::Stash { core, map_index } => {
                    put(&mut h, 1);
                    put(&mut h, core.0 as u64);
                    put(&mut h, map_index as u64);
                }
            }
        }
        for line in self.llc.resident_line_addrs() {
            put(&mut h, line.0);
        }
        for l1 in &self.l1s {
            for pa in l1.registered_words() {
                put(&mut h, pa.0);
            }
            put(&mut h, u64::MAX); // per-core separator
        }
        for s in &self.stashes {
            let mut wbs: Vec<(usize, u64)> = s
                .pending_writebacks()
                .iter()
                .map(|wb| (wb.stash_word, wb.vaddr.0))
                .collect();
            wbs.sort_unstable();
            for (w, va) in wbs {
                put(&mut h, w as u64);
                put(&mut h, va);
            }
            put(&mut h, u64::MAX);
        }
        h
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// Serializes the complete hierarchy: configuration, network, LLC,
    /// L1s, local memories, page table, energy model and account,
    /// counters, ablation flags, fault injector, and trace sink. Only
    /// meaningful at a phase barrier, where no request is in flight and
    /// the latency-and-accounting model holds no transient state.
    ///
    /// # Panics
    ///
    /// Panics if called on a forked CU shard — snapshots are taken from
    /// the quiescent master only.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        assert!(
            self.stage.is_none(),
            "checkpoint requires the quiescent master, not a forked shard"
        );
        self.cfg.save(w);
        w.put_u8(self.kind.code());
        self.net.save(w);
        self.llc.save(w);
        w.put_usize(self.l1s.len());
        for l1 in &self.l1s {
            l1.save(w);
        }
        w.put_usize(self.scratchpads.len());
        for sp in &self.scratchpads {
            sp.save(w);
        }
        w.put_usize(self.stashes.len());
        for s in &self.stashes {
            s.save(w);
        }
        self.pt.save(w);
        self.model.save(w);
        self.energy.save(w);
        self.counters.save(w);
        w.put_u64(self.gpu_instructions);
        w.put_bool(self.eager_stash_writebacks);
        w.put_bool(self.line_grain_registration);
        w.put_bool(self.verify);
        match &self.fault {
            None => w.put_u8(0),
            Some(f) => {
                w.put_u8(1);
                f.save(w);
            }
        }
        match &self.trace {
            None => w.put_u8(0),
            Some(t) => {
                w.put_u8(1);
                t.save(w);
            }
        }
        w.put_u64(self.now);
    }

    /// Restores a hierarchy written by [`MemorySystem::save`], validating
    /// that component geometry is mutually consistent with the restored
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointCorrupt`] on any inconsistency.
    pub fn restore(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, SimError> {
        let corrupt = |detail: String| SimError::CheckpointCorrupt {
            what: "memory system",
            detail,
        };
        let cfg = SystemConfig::load(r)?;
        let kind = MemConfigKind::from_code(r.take_u8()?)?;
        let net = Network::load(r)?;
        if net.mesh().side() != cfg.mesh_side {
            return Err(corrupt(format!(
                "mesh side {} does not match configured {}",
                net.mesh().side(),
                cfg.mesh_side
            )));
        }
        let llc = Llc::load(r)?;
        if llc.banks() != cfg.l2_banks {
            return Err(corrupt(format!(
                "{} LLC banks for configured {}",
                llc.banks(),
                cfg.l2_banks
            )));
        }
        let cores = cfg.gpu_cus + cfg.cpu_cores;
        let n_l1 = r.take_usize()?;
        if n_l1 != cores {
            return Err(corrupt(format!("{n_l1} L1s for {cores} cores")));
        }
        let mut l1s = Vec::with_capacity(n_l1);
        for _ in 0..n_l1 {
            l1s.push(DenovoCache::load(r)?);
        }
        let n_sp = r.take_usize()?;
        let expected_sp = if kind.uses_scratchpad() {
            cfg.gpu_cus
        } else {
            0
        };
        if n_sp != expected_sp {
            return Err(corrupt(format!(
                "{n_sp} scratchpads for a {kind} configuration with {} CUs",
                cfg.gpu_cus
            )));
        }
        let mut scratchpads = Vec::with_capacity(n_sp);
        for _ in 0..n_sp {
            scratchpads.push(Scratchpad::load(r)?);
        }
        let n_stash = r.take_usize()?;
        let stash_ok = if kind.uses_stash() {
            // CPU stashes (§8 extension) extend the vector to all cores.
            n_stash == cfg.gpu_cus || n_stash == cores
        } else {
            n_stash == 0
        };
        if !stash_ok {
            return Err(corrupt(format!(
                "{n_stash} stashes for a {kind} configuration with {} CUs",
                cfg.gpu_cus
            )));
        }
        let mut stashes = Vec::with_capacity(n_stash);
        for _ in 0..n_stash {
            stashes.push(Stash::restore(r)?);
        }
        let pt = PageTable::load(r)?;
        let model = EnergyModel::load(r)?;
        let energy = EnergyAccount::load(r)?;
        let counters = Counters::load(r)?;
        let gpu_instructions = r.take_u64()?;
        let eager_stash_writebacks = r.take_bool()?;
        let line_grain_registration = r.take_bool()?;
        let verify = r.take_bool()?;
        let fault = match r.take_u8()? {
            0 => None,
            1 => Some(FaultInjector::load(r)?),
            v => return Err(corrupt(format!("unknown fault-injector code {v}"))),
        };
        let trace = match r.take_u8()? {
            0 => None,
            1 => Some(Box::new(TraceSink::load(r)?)),
            v => return Err(corrupt(format!("unknown trace-sink code {v}"))),
        };
        let now = r.take_u64()?;
        Ok(Self {
            cfg,
            kind,
            net,
            llc,
            l1s,
            scratchpads,
            stashes,
            pt,
            model,
            energy,
            counters,
            gpu_instructions,
            eager_stash_writebacks,
            line_grain_registration,
            verify,
            fault,
            trace,
            now,
            stage: None,
        })
    }

    /// A human-readable dump of in-flight protocol state for the
    /// no-progress watchdog: which request stalled, what every core still
    /// holds registered, what the retry counters saw, the active fault
    /// seed, and the last ring-buffered trace events leading up to the
    /// hang. Attached to [`SimError::Deadlock`] so a tripped run is
    /// diagnosable rather than a hang.
    fn diagnostic_dump(&self, site: &'static str, seq: u64, from: NodeId, to: NodeId) -> String {
        use std::fmt::Write as _;
        /// How many trailing trace events the dump carries.
        const DUMP_EVENTS: usize = 16;
        let mut out = String::new();
        let _ = write!(
            out,
            "request seq {seq} at {site} (node {} -> node {}) undeliverable;",
            from.0, to.0
        );
        let _ = write!(
            out,
            " llc: {} registered words, {} resident lines;",
            self.llc.registered_words().len(),
            self.llc.resident_line_addrs().len()
        );
        for (c, l1) in self.l1s.iter().enumerate() {
            let n = l1.registered_words().len();
            if n > 0 {
                let _ = write!(out, " l1[{c}]: {n} registered;");
            }
        }
        for (c, s) in self.stashes.iter().enumerate() {
            let n = s.pending_writebacks().len();
            if n > 0 {
                let _ = write!(out, " stash[{c}]: {n} pending writebacks;");
            }
        }
        let _ = write!(
            out,
            " retries {}, timeouts {}, fault events {}",
            self.counters.get("resilience.retry"),
            self.counters.get("resilience.timeout"),
            self.fault.as_ref().map_or(0, |f| f.trace().len())
        );
        if let Some(f) = self.fault.as_ref() {
            let _ = write!(out, "; fault seed {}", f.config().seed);
        }
        if let Some(t) = self.trace.as_ref() {
            let tail = t.last_events(DUMP_EVENTS);
            if !tail.is_empty() {
                let _ = write!(out, "; last {} trace events:", tail.len());
                for ev in tail {
                    let _ = write!(out, " {}@{}", ev.kind_name(), ev.at());
                }
            }
        }
        out
    }

    /// The invariant oracle (see [`Self::set_verify`]). Split into the
    /// owner→registry direction (every Registered word in an L1 or stash
    /// has a matching registry entry — and no two structures hold the
    /// same word Registered) and the registry→owner direction (every
    /// registry entry names a structure that holds the word Registered).
    fn check_invariants(&mut self, context: &str) {
        let line_bytes = self.cfg.line_bytes as u64;
        // Holder of each Registered word seen so far (SWMR witness).
        let mut holders: std::collections::HashMap<(LineAddr, usize), String> =
            std::collections::HashMap::new();

        // Owner → registry: L1-held Registered words.
        for (c, l1) in self.l1s.iter().enumerate() {
            for pa in l1.registered_words() {
                let line = pa.line(line_bytes);
                let w = pa.word_in_line(line_bytes);
                let holder = format!("core {c}'s L1");
                if let Some(prev) = holders.insert((line, w), holder.clone()) {
                    panic!(
                        "verify[{context}]: SWMR violated at {pa:?}: \
                         word Registered in both {prev} and {holder}"
                    );
                }
                let reg = self.llc.registration(line, w);
                assert!(
                    reg == Some(Registration::Cache(CoreId(c))),
                    "verify[{context}]: {holder} holds {pa:?} Registered \
                     but the registry entry is {reg:?}"
                );
            }
        }

        // Owner → registry: stash-held Registered words. The stash
        // reports them with virtual addresses; translate through its
        // VP-map with the page table as fallback (the same path real
        // writebacks take). The per-stash owned sets feed the registry
        // direction below: after a remap (ChgMap / next kernel's AddMap)
        // the Registered word lives in the *old* chunk awaiting its lazy
        // writeback, while reverse translation finds the new mapping.
        let mut stash_owned: Vec<std::collections::HashSet<(LineAddr, usize)>> =
            vec![std::collections::HashSet::new(); self.stashes.len()];
        for (c, owned) in stash_owned.iter_mut().enumerate() {
            for wb in self.stashes[c].pending_writebacks() {
                let pa = self.stashes[c]
                    .translate(wb.vaddr)
                    .unwrap_or_else(|| self.pt.translate(wb.vaddr));
                let line = pa.line(line_bytes);
                let w = pa.word_in_line(line_bytes);
                let holder = format!("core {c}'s stash");
                if let Some(prev) = holders.insert((line, w), holder.clone()) {
                    panic!(
                        "verify[{context}]: SWMR violated at {pa:?}: \
                         word Registered in both {prev} and {holder}"
                    );
                }
                let reg = self.llc.registration(line, w);
                assert!(
                    matches!(reg, Some(Registration::Stash { core, .. }) if core == CoreId(c)),
                    "verify[{context}]: {holder} holds {pa:?} (va {:?}) \
                     Registered but the registry entry is {reg:?}",
                    wb.vaddr
                );
                owned.insert((line, w));
            }
        }

        // Registry → owner: every registration names a live holder.
        for (line, w, reg) in self.llc.registered_words() {
            let pa = line.word_addr(w);
            match reg {
                Registration::Cache(core) => {
                    let st = self.l1s[core.0].word_state(pa);
                    assert!(
                        st == mem::coherence::WordState::Registered,
                        "verify[{context}]: registry says {core} holds {pa:?} \
                         Registered in its L1, but the L1 word state is {st}"
                    );
                }
                Registration::Stash { core, .. } => {
                    assert!(
                        core.0 < self.stashes.len(),
                        "verify[{context}]: registry names core {core}'s stash \
                         for {pa:?} but that core has no stash"
                    );
                    // A remapped word's Registered copy lives in the old
                    // chunk until its lazy writeback drains; the
                    // owner-direction sweep above already matched it to
                    // this registry entry, so it needs no lookup here.
                    if stash_owned[core.0].contains(&(line, w)) {
                        continue;
                    }
                    // Otherwise the owner must locate the word by VP-map
                    // reverse translation, exactly as a forwarded request
                    // would. A lost reverse translation (counted as
                    // remote.stash_stale on the forward path) leaves the
                    // word unlocatable; the data-holding check only
                    // applies when the stash can still find it.
                    if let Some(word) = self.stashes[core.0].remote_request(pa) {
                        let st = self.stashes[core.0].word_state(word);
                        assert!(
                            st == mem::coherence::WordState::Registered,
                            "verify[{context}]: registry says {core}'s stash \
                             holds {pa:?} Registered, but stash word {word} \
                             is {st}"
                        );
                    }
                }
            }
        }
    }

    #[inline]
    fn verify_after(&mut self, context: &str) {
        if self.verify {
            self.check_invariants(context);
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The memory configuration kind.
    pub fn kind(&self) -> MemConfigKind {
        self.kind
    }

    /// Replaces the energy model (ablations).
    pub fn set_energy_model(&mut self, model: EnergyModel) {
        self.model = model;
    }

    /// Disables the §4.5 replication optimization on every stash
    /// (ablation). Must be called before any accesses.
    pub fn disable_stash_replication(&mut self) {
        self.rebuild_stashes(|cfg| cfg.replication_enabled = false);
    }

    /// Ablation: drain every stash's dirty data at kernel boundaries
    /// (scratchpad-like eager writebacks) instead of the paper's lazy
    /// reclamation-time writebacks.
    pub fn set_eager_stash_writebacks(&mut self, eager: bool) {
        self.eager_stash_writebacks = eager;
    }

    /// Ablation: register cache store misses at *line* granularity (a
    /// single-writer MESI-style registry) instead of DeNovo's word
    /// granularity — quantifies the false sharing §4.3 warns about.
    /// Stash registrations always stay word-granular (the stash holds
    /// only the mapped words of a line).
    pub fn set_line_grain_registration(&mut self, line: bool) {
        self.line_grain_registration = line;
    }

    /// Whether the line-granularity registration ablation is active —
    /// certificate consumers must then require *line*-disjoint verdicts.
    pub fn line_grain_registration(&self) -> bool {
        self.line_grain_registration
    }

    /// §8 extension: give every *CPU core* a stash too ("expand the
    /// stash idea to other compute units"). Extends the stash vector to
    /// cover all cores — stash indices equal core IDs. Must be called
    /// before any accesses, on a stash-bearing configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no stashes.
    pub fn enable_cpu_stashes(&mut self) {
        assert!(
            self.kind.uses_stash(),
            "CPU stashes require a stash configuration"
        );
        let template = self.stashes.first().expect("stash config").config().clone();
        while self.stashes.len() < self.cfg.gpu_cus + self.cfg.cpu_cores {
            self.stashes.push(Stash::new(template.clone()));
        }
    }

    /// Whether CPU cores have stashes.
    pub fn cpu_stashes_enabled(&self) -> bool {
        self.stashes.len() > self.cfg.gpu_cus
    }

    /// §8 extension: prefetch mappings at `AddMap` time. Must be called
    /// before any accesses.
    pub fn set_stash_prefetch(&mut self, prefetch: bool) {
        self.rebuild_stashes(|cfg| cfg.prefetch = prefetch);
    }

    /// §8 extension: widen each stash load miss to fetch up to `words`
    /// neighbouring mapped words. Must be called before any accesses.
    pub fn set_stash_fetch_words(&mut self, words: usize) {
        self.rebuild_stashes(|cfg| cfg.fetch_words = words.max(1));
    }

    /// Whether `AddMap`-time prefetch is enabled (the CU model gates the
    /// stage on the prefetch transfer, like a DMA preload).
    pub fn stash_prefetch_enabled(&self) -> bool {
        self.stashes.first().is_some_and(|s| s.config().prefetch)
    }

    fn rebuild_stashes(&mut self, tweak: impl Fn(&mut StashConfig)) {
        for s in &mut self.stashes {
            let mut cfg = s.config().clone();
            tweak(&mut cfg);
            *s = Stash::new(cfg);
        }
    }

    // ------------------------------------------------------------------
    // Core/node geometry
    // ------------------------------------------------------------------

    /// The `CoreId` of GPU CU `cu` (CUs occupy the low core numbers).
    pub fn cu_core(&self, cu: usize) -> CoreId {
        debug_assert!(cu < self.cfg.gpu_cus);
        CoreId(cu)
    }

    /// The `CoreId` of CPU core `cpu`.
    pub fn cpu_core(&self, cpu: usize) -> CoreId {
        debug_assert!(cpu < self.cfg.cpu_cores);
        CoreId(self.cfg.gpu_cus + cpu)
    }

    fn node_of(&self, core: CoreId) -> NodeId {
        NodeId(core.0 % self.net.mesh().nodes())
    }

    fn home_of(&self, line: LineAddr) -> NodeId {
        NodeId(self.llc.bank_of(line) % self.net.mesh().nodes())
    }

    fn is_gpu(&self, core: CoreId) -> bool {
        core.0 < self.cfg.gpu_cus
    }

    // ------------------------------------------------------------------
    // Accounting primitives
    // ------------------------------------------------------------------

    fn send(&mut self, from: NodeId, to: NodeId, msg: Message) -> u64 {
        let hops = self.net.mesh().hops(from, to);
        self.energy
            .add(Component::Noc, msg.flits() * hops * self.model.noc_flit_hop);
        if let Some(t) = self.trace.as_mut() {
            self.net.trace_hops(from, to, msg, t);
        }
        self.net.send(from, to, msg)
    }

    /// Sends one request message under the installed fault schedule;
    /// returns `(send_latency, extra_wait)` — the network latency of the
    /// delivering attempt plus any injected delay / timeout / backoff
    /// cycles on top of it. Without an injector this is exactly
    /// [`Self::send`] with zero extra — the fast path the zero-overhead
    /// guarantee rests on.
    ///
    /// With an injector, the message gets a per-machine sequence number
    /// and may be delayed, duplicated (double-charged traffic; the
    /// receiver's sequence check suppresses the copy when resilience is
    /// on — the synchronous model applies state transitions exactly once
    /// either way), or dropped. A drop times out and retries with bounded
    /// exponential backoff until delivered or the retry budget runs out;
    /// with resilience off the first drop trips the watchdog immediately.
    ///
    /// **Schedule invariance:** every fault-handling wait — injected
    /// delay, timeout, backoff — is *accounting only* (counters, energy,
    /// traffic); the returned latency is always the fault-free send
    /// latency. The warp scheduler orders waves by completion time, so a
    /// latency perturbation would change the interleaving and hence the
    /// cache-eviction order, making the final state legitimately diverge
    /// from the fault-free golden replay. Keeping the schedule
    /// bit-identical is what lets the chaos harness compare architectural
    /// digests directly: any divergence is real corruption, never an
    /// artifact of reordering. Retries likewise repeat only accounting —
    /// the caller applies architectural state changes once, after this
    /// returns.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] when the message cannot be delivered — the
    /// simulator surfaces no-progress as a diagnosable error, never a
    /// hang.
    fn send_reliable(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: Message,
        site: &'static str,
    ) -> Result<u64, SimError> {
        if self.fault.is_none() {
            return Ok(self.send(from, to, msg));
        }
        let (resilient, policy) = {
            let cfg = self.fault.as_ref().expect("injector checked").config();
            (cfg.resilience, cfg.retry)
        };
        let seq = self.fault.as_mut().expect("injector checked").next_seq();
        let flit_energy = msg.flits() * self.net.mesh().hops(from, to) * self.model.noc_flit_hop;
        let mut attempt: u32 = 1;
        loop {
            self.energy.add(Component::Noc, flit_energy);
            let delivery = self.net.send_faulty(
                from,
                to,
                msg,
                self.fault.as_mut().expect("injector checked"),
                Attempt { site, seq, attempt },
            );
            match delivery {
                Delivery::Delivered { latency } => return Ok(latency),
                Delivery::Delayed { latency, .. } => {
                    self.counters.bump(Counter::FaultDelayInjected);
                    return Ok(latency);
                }
                Delivery::Duplicated { latency } => {
                    // The duplicate's flits burn NoC energy too.
                    self.energy.add(Component::Noc, flit_energy);
                    self.counters.bump(Counter::FaultDupInjected);
                    if resilient {
                        self.counters.bump(Counter::ResilienceDupSuppressed);
                    }
                    return Ok(latency);
                }
                Delivery::Dropped => {
                    self.counters.bump(Counter::FaultDropInjected);
                    if !resilient || attempt > policy.max_retries {
                        return Err(SimError::Deadlock {
                            site,
                            attempts: attempt,
                            dump: self.diagnostic_dump(site, seq, from, to),
                        });
                    }
                    self.counters.bump(Counter::ResilienceTimeout);
                    attempt += 1;
                    self.counters.bump(Counter::ResilienceRetry);
                    if let Some(t) = self.trace.as_mut() {
                        let at = t.now();
                        t.push(TraceEvent::RetryFired { at, attempt });
                    }
                    let backoff = policy.backoff(attempt - 1);
                    self.counters.add(Counter::ResilienceBackoffCycles, backoff);
                    self.fault.as_mut().expect("injector checked").log(
                        site,
                        FaultKind::Retry,
                        seq,
                        attempt,
                    );
                }
            }
        }
    }

    /// Sends a fire-and-forget writeback. Writebacks have no response to
    /// time out on, so they suffer only the loss fault: a lost writeback
    /// is re-sent (the dirty chunk is still held) when resilience is on,
    /// or silently vanishes when it is off — the caller must then skip
    /// the LLC update, leaving the stale registration the digest and
    /// oracle expose. Returns whether the message (eventually) arrived.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] when the resilient retry budget runs out.
    fn send_writeback(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: Message,
        site: &'static str,
    ) -> Result<bool, SimError> {
        if self.fault.is_none() {
            self.send(from, to, msg);
            return Ok(true);
        }
        let (resilient, policy) = {
            let cfg = self.fault.as_ref().expect("injector checked").config();
            (cfg.resilience, cfg.retry)
        };
        let seq = self.fault.as_mut().expect("injector checked").next_seq();
        let mut attempt: u32 = 1;
        loop {
            self.send(from, to, msg);
            if !self
                .fault
                .as_mut()
                .expect("injector checked")
                .lose_writeback(site)
            {
                return Ok(true);
            }
            self.counters.bump(Counter::FaultWbLost);
            if !resilient {
                return Ok(false);
            }
            if attempt > policy.max_retries {
                return Err(SimError::Deadlock {
                    site,
                    attempts: attempt,
                    dump: self.diagnostic_dump(site, seq, from, to),
                });
            }
            attempt += 1;
            self.counters.bump(Counter::ResilienceRetry);
            if let Some(t) = self.trace.as_mut() {
                let at = t.now();
                t.push(TraceEvent::RetryFired { at, attempt });
            }
            let backoff = policy.backoff(attempt - 1);
            self.counters.add(Counter::ResilienceBackoffCycles, backoff);
            self.fault.as_mut().expect("injector checked").log(
                site,
                FaultKind::Retry,
                seq,
                attempt,
            );
        }
    }

    /// Draws a flip for a data word arriving at the LLC; corrupt words
    /// join the ground-truth set the parity model checks against.
    fn maybe_flip_llc(&mut self, site: &'static str, line: LineAddr, word: usize) {
        if let Some(inj) = self.fault.as_mut() {
            if inj.flip_word(site) {
                self.llc.corrupt_word(line, word);
                self.stage_op(StagedOp::CorruptWord(line, word));
                self.counters.bump(Counter::FaultFlipInjected);
            }
        }
    }

    /// Draws a flip for a data word filled into CU `cu`'s stash.
    fn maybe_flip_stash(&mut self, site: &'static str, cu: usize, word: usize) {
        if let Some(inj) = self.fault.as_mut() {
            if inj.flip_word(site) {
                self.stashes[cu].flip_word(word);
                self.counters.bump(Counter::FaultFlipInjected);
            }
        }
    }

    /// Parity-checked read of an LLC word. Detection is free in time —
    /// the model charges no latency for the check itself (DESIGN.md §9's
    /// detection-vs-recovery contract).
    fn llc_parity_read(&mut self, line: LineAddr, word: usize) {
        if self.parity_on() && self.llc.check_parity(line, word) {
            self.stage_op(StagedOp::CheckParity(line, word));
            self.counters.bump(Counter::FaultParityDetected);
        }
    }

    /// An overwriting store to an LLC word silently repairs corruption.
    fn llc_overwrite(&mut self, line: LineAddr, word: usize) {
        if self.fault.is_some() && self.llc.clear_corrupt(line, word) {
            self.stage_op(StagedOp::ClearCorrupt(line, word));
            self.counters.bump(Counter::FaultFlipOverwritten);
        }
    }

    /// Parity-checked read of a stash word.
    fn stash_parity_read(&mut self, cu: usize, word: usize) {
        if self.parity_on() && self.stashes[cu].check_parity(word) {
            self.counters.bump(Counter::FaultParityDetected);
        }
    }

    /// An overwriting store/fill to a stash word silently repairs
    /// corruption (also clears stale markers left by a lost writeback
    /// whose chunk got recycled).
    fn stash_overwrite(&mut self, cu: usize, word: usize) {
        if self.fault.is_some() && self.stashes[cu].take_corrupt(word) {
            self.counters.bump(Counter::FaultFlipOverwritten);
        }
    }

    fn llc_access(&mut self, line: LineAddr) {
        self.energy.add(Component::L2, self.model.l2_access);
        self.counters.bump(Counter::LlcAccess);
        if let Some(t) = self.trace.as_mut() {
            let at = t.now();
            let bank = self.llc.bank_of(line) as u32;
            t.push(TraceEvent::LlcBank { bank, at });
        }
    }

    /// Records `n` issued GPU warp instructions (GPU core+ energy).
    pub fn note_gpu_instructions(&mut self, n: u64) {
        self.gpu_instructions += n;
        self.energy
            .add(Component::GpuCore, n * self.model.core_instruction);
    }

    fn round_trip(&self, core_node: NodeId, home: NodeId) -> u64 {
        self.cfg.l2_base_cycles + self.net.round_trip_cycles(core_node, home)
    }

    // ------------------------------------------------------------------
    // Cache (global) transactions
    // ------------------------------------------------------------------

    /// One coalesced global-memory transaction from GPU CU `cu`.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] when a request is undeliverable under the
    /// installed fault schedule.
    pub fn gpu_global_tx(
        &mut self,
        cu: usize,
        write: bool,
        tx: &Transaction,
    ) -> Result<TxCost, SimError> {
        let core = self.cu_core(cu);
        let flits_before = self.net.traffic().total_flits();
        let latency = self.cache_tx(core, write, tx, true)?;
        self.verify_after("gpu_global_tx");
        Ok(TxCost {
            latency,
            occupancy: (self.net.traffic().total_flits() - flits_before).div_ceil(2),
        })
    }

    /// A single-word CPU access. The (serial, single-outstanding-miss)
    /// CPU folds injection occupancy into the returned latency.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] when a request is undeliverable under the
    /// installed fault schedule.
    pub fn cpu_access(&mut self, cpu: usize, write: bool, va: VAddr) -> Result<u64, SimError> {
        let core = self.cpu_core(cpu);
        let tx = Transaction {
            line_va: va.align_down(self.cfg.line_bytes as u64),
            words: vec![va.align_down(WORD_BYTES)],
        };
        let flits_before = self.net.traffic().total_flits();
        let latency = self.cache_tx(core, write, &tx, false)?;
        self.verify_after("cpu_access");
        Ok(latency + (self.net.traffic().total_flits() - flits_before))
    }

    /// Graceful degradation: a warp access that *should* have gone
    /// through a stash mapping, re-issued down the plain cache path
    /// because the stash could not allocate (map table full or chunk
    /// ring oversubscribed). The tile's addressing still locates the
    /// data in global memory and the ordinary DeNovo cache protocol
    /// provides coherence, so the run completes with cache-config
    /// semantics instead of aborting.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Deadlock`] from the underlying sends.
    pub fn stash_fallback_tx(
        &mut self,
        cu: usize,
        write: bool,
        tile: &TileMap,
        lane_words: &[u32],
    ) -> Result<TxCost, SimError> {
        self.counters.bump(Counter::ResilienceFallbackTx);
        let core = self.cu_core(cu);
        let flits_before = self.net.traffic().total_flits();
        let vas: Vec<VAddr> = lane_words
            .iter()
            .map(|&w| tile.virt_of_local_offset(u64::from(w) * WORD_BYTES))
            .collect();
        let mut latency = 0u64;
        for t in coalesce(&vas, self.cfg.line_bytes as u64) {
            latency = latency.max(self.cache_tx(core, write, &t, true)?);
        }
        self.verify_after("stash_fallback_tx");
        Ok(TxCost {
            latency,
            occupancy: (self.net.traffic().total_flits() - flits_before).div_ceil(2),
        })
    }

    fn cache_tx(
        &mut self,
        core: CoreId,
        write: bool,
        tx: &Transaction,
        charge_l1: bool,
    ) -> Result<u64, SimError> {
        self.counters.bump(match (charge_l1, write) {
            (true, false) => Counter::GpuL1LoadTx,
            (true, true) => Counter::GpuL1StoreTx,
            (false, false) => Counter::CpuL1LoadTx,
            (false, true) => Counter::CpuL1StoreTx,
        });
        // Physically indexed L1: a TLB access per transaction. The paper
        // does not charge CPU-side core/L1 energy (§5.2).
        if charge_l1 {
            self.energy.add(Component::L1, self.model.tlb_access);
        }

        let pas: Vec<PAddr> = tx.words.iter().map(|&va| self.pt.translate(va)).collect();
        let line = pas[0].line(self.cfg.line_bytes as u64);
        let hit = pas.iter().all(|&pa| {
            let st = self.l1s[core.0].word_state(pa);
            if write {
                st.store_hits()
            } else {
                st.load_hits()
            }
        });
        if let Some(t) = self.trace.as_mut() {
            let at = t.now();
            t.push(TraceEvent::L1Access {
                core: core.0 as u32,
                at,
                store: write,
                hit,
            });
        }
        if hit {
            self.l1s[core.0].touch(pas[0]);
            if charge_l1 {
                self.energy.add(Component::L1, self.model.l1_hit);
            }
            return Ok(self.cfg.l1_hit_cycles);
        }

        if charge_l1 {
            self.energy.add(Component::L1, self.model.l1_miss);
        }
        self.counters.bump(if charge_l1 {
            Counter::GpuL1Miss
        } else {
            Counter::CpuL1Miss
        });

        // Allocate the tag, writing back any displaced registered words.
        let ensure = self.l1s[core.0].ensure_line(pas[0]);
        if let Some(ev) = ensure.evicted {
            self.evict_writeback(core, &ev.line, &ev.registered_words)?;
        }

        let my_node = self.node_of(core);
        let home = self.home_of(line);

        if write {
            // DeNovo store miss: obtain registration for each word; the
            // data stays in the L1 until evicted. In the line-granularity
            // ablation the whole line registers to this core (MESI-style
            // single writer), revoking every other core's words in it.
            let mut revoked: Vec<(Registration, PAddr)> = Vec::new();
            for &pa in &pas {
                let w = pa.word_in_line(self.cfg.line_bytes as u64);
                let out = self.llc.register_word(line, w, Registration::Cache(core));
                self.stage_op(StagedOp::RegisterWord(line, w, Registration::Cache(core)));
                // Registration makes the LLC copy stale: any corruption
                // there is overwritten by the eventual writeback.
                self.llc_overwrite(line, w);
                if let Some(prev) = out.previous {
                    revoked.push((prev, pa));
                }
                self.l1s[core.0].set_word(pa, mem::coherence::WordState::Registered);
            }
            if self.line_grain_registration {
                for w in 0..self.l1s[core.0].words_per_line() {
                    let pa = line.word_addr(w);
                    let out = self.llc.register_word(line, w, Registration::Cache(core));
                    self.stage_op(StagedOp::RegisterWord(line, w, Registration::Cache(core)));
                    if let Some(prev) = out.previous {
                        self.counters.bump(Counter::CoherenceFalseSharingRevocation);
                        revoked.push((prev, pa));
                    }
                    self.l1s[core.0].set_word(pa, mem::coherence::WordState::Registered);
                }
            }
            self.llc_access(line);
            self.send_reliable(
                my_node,
                home,
                Message::control(MsgClass::Write),
                "cache.store",
            )?;
            self.send(home, my_node, Message::control(MsgClass::Write));
            for &(prev, pa) in &revoked {
                self.invalidate_previous_owner(prev, pa, home)?;
            }
            return Ok(self.round_trip(my_node, home));
        }

        // Load miss: fill the whole line from the LLC, word-fill anything
        // registered elsewhere via forwarding.
        let (from_memory, skip) = self.llc.line_fill(line, core);
        self.stage_op(StagedOp::LineFill(line, core));
        self.llc_access(line);
        if from_memory {
            self.counters.bump(Counter::DramLineFetch);
        }
        let supplied = self.l1s[core.0].words_per_line() - skip.len();
        self.send_reliable(
            my_node,
            home,
            Message::control(MsgClass::Read),
            "cache.load",
        )?;
        self.send(
            home,
            my_node,
            Message::data(MsgClass::Read, supplied * WORD_BYTES as usize),
        );
        // Parity-check every word the LLC supplied into the fill.
        if self.fault.is_some() {
            for w in 0..self.l1s[core.0].words_per_line() {
                if !skip.contains(&w) {
                    self.llc_parity_read(line, w);
                }
            }
        }
        self.l1s[core.0].fill_line_shared(pas[0], &skip);
        let mut latency = self.round_trip(my_node, home)
            + if from_memory {
                self.cfg.dram_extra_cycles
            } else {
                0
            };

        // Forward-fetch the needed words the LLC could not supply.
        for &pa in &pas {
            let w = pa.word_in_line(self.cfg.line_bytes as u64);
            if !skip.contains(&w) {
                continue;
            }
            self.stage_op(StagedOp::LoadWord(line, w));
            if let LlcLoadOutcome::Forward(reg) = self.llc.load_word(line, w) {
                let flat = self.forward_fetch(core, pa, reg)?;
                self.l1s[core.0].set_word(pa, mem::coherence::WordState::Shared);
                latency = latency.max(flat);
            }
        }
        Ok(latency)
    }

    /// Three-leg forwarding of one word registered at another core (§4.3).
    fn forward_fetch(
        &mut self,
        requester: CoreId,
        pa: PAddr,
        reg: Registration,
    ) -> Result<u64, SimError> {
        let owner = reg.core();
        let rn = self.node_of(requester);
        let home = self.home_of(pa.line(self.cfg.line_bytes as u64));
        let on = self.node_of(owner);
        if owner == requester {
            // The registry redirects the request back to the requesting
            // core — its *other* local structure holds the word (data
            // moved between cache and stash across kernels). A registry
            // lookup round trip plus a local read; no data crosses the
            // network.
            self.counters.bump(Counter::RemoteSelfForward);
            self.send_reliable(rn, home, Message::control(MsgClass::Read), "forward.req")?;
            self.send(home, rn, Message::control(MsgClass::Read));
            self.llc_access(pa.line(self.cfg.line_bytes as u64));
            match reg {
                Registration::Stash { .. } => {
                    self.energy.add(Component::LocalMem, self.model.stash_hit);
                }
                Registration::Cache(_) => {
                    self.energy.add(Component::L1, self.model.l1_hit);
                }
            }
            return Ok(self.round_trip(rn, home) + self.cfg.l1_hit_cycles);
        }
        self.counters.bump(Counter::RemoteForward);
        let l1 = self.send_reliable(rn, home, Message::control(MsgClass::Read), "forward.req")?;
        let l2 = self.send(home, on, Message::control(MsgClass::Read));
        // Owner supplies the word; it keeps its registration (DeNovo).
        match reg {
            Registration::Stash { core, .. } => {
                let cu = core.0;
                if cu < self.stashes.len() {
                    // VP-map reverse translation locates the stash word.
                    self.energy.add(Component::LocalMem, self.model.stash_hit);
                    self.energy.add(Component::LocalMem, self.model.tlb_access);
                    if self.stashes[cu].remote_request(pa).is_none() {
                        self.counters.bump(Counter::RemoteStashStale);
                    }
                }
            }
            Registration::Cache(owner_core) => {
                if self.is_gpu(owner_core) {
                    self.energy.add(Component::L1, self.model.l1_hit);
                }
            }
        }
        let l3 = self.send(on, rn, Message::data(MsgClass::Read, WORD_BYTES as usize));
        Ok(self.cfg.remote_base_cycles + l1 + l2 + l3)
    }

    /// Invalidates the previous owner of a word whose registration moved.
    /// The invalidation is a protocol-critical message: a drop without
    /// resilience fail-stops (watchdog) rather than leaving two owners.
    fn invalidate_previous_owner(
        &mut self,
        prev: Registration,
        pa: PAddr,
        home: NodeId,
    ) -> Result<(), SimError> {
        let owner = prev.core();
        let on = self.node_of(owner);
        self.send_reliable(
            home,
            on,
            Message::control(MsgClass::Write),
            "coherence.invalidate",
        )?;
        match prev {
            Registration::Stash { core, .. } => {
                if core.0 < self.stashes.len() {
                    self.stashes[core.0].surrender_word(pa);
                }
            }
            Registration::Cache(owner_core) => {
                self.l1s[owner_core.0].downgrade_word(pa, mem::coherence::WordState::Invalid);
            }
        }
        Ok(())
    }

    /// Writes back a displaced line's registered words (L1 eviction).
    fn evict_writeback(
        &mut self,
        core: CoreId,
        line: &LineAddr,
        words: &[usize],
    ) -> Result<(), SimError> {
        if words.is_empty() {
            return Ok(());
        }
        let my_node = self.node_of(core);
        let home = self.home_of(*line);
        let delivered = self.send_writeback(
            my_node,
            home,
            Message::data(MsgClass::Writeback, words.len() * WORD_BYTES as usize),
            "cache.evict_wb",
        )?;
        self.llc_access(*line);
        if !delivered {
            // The lost writeback's registrations stay behind in the
            // registry while the L1 line is gone — the stale-state escape
            // class the digest and oracle expose.
            return Ok(());
        }
        for &w in words {
            self.stage_op(StagedOp::WritebackWord(*line, w, core));
            if self.llc.writeback_word(*line, w, core) {
                self.maybe_flip_llc("cache.evict_wb", *line, w);
            }
        }
        self.counters.add(Counter::WbCacheWords, words.len() as u64);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scratchpad transactions
    // ------------------------------------------------------------------

    /// One warp scratchpad transaction on CU `cu` at byte offsets
    /// `base_bytes + 4 * lane_word` — direct addressed, never misses.
    pub fn scratch_tx(&mut self, cu: usize, base_bytes: usize, lane_words: &[u32]) -> u64 {
        self.counters.bump(Counter::ScratchAccess);
        self.energy
            .add(Component::LocalMem, self.model.scratchpad_access);
        let offsets: Vec<usize> = lane_words
            .iter()
            .map(|&w| base_bytes + w as usize * WORD_BYTES as usize)
            .collect();
        self.scratchpads[cu]
            .conflict_cycles(&offsets)
            .max(self.cfg.l1_hit_cycles)
    }

    /// Scratchpad allocation for a thread block (machine-level runtime).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfRange`] if the space does not fit.
    pub fn scratch_alloc(&mut self, cu: usize, bytes: usize) -> Result<usize, SimError> {
        self.scratchpads[cu].alloc(bytes)
    }

    /// Frees every scratchpad allocation on `cu` (wave boundary).
    pub fn scratch_free_all(&mut self, cu: usize) {
        if cu < self.scratchpads.len() {
            self.scratchpads[cu].free_all();
        }
    }

    // ------------------------------------------------------------------
    // Stash transactions
    // ------------------------------------------------------------------

    /// `AddMap` on CU `cu` for thread block `tb`.
    ///
    /// # Errors
    ///
    /// Propagates the stash's table/range errors.
    pub fn stash_add_map(
        &mut self,
        cu: usize,
        tb: usize,
        tile: TileMap,
        base_word: usize,
        mode: UsageMode,
    ) -> Result<AddMapOutcome, SimError> {
        let out = self.stashes[cu].add_map(tb, tile, base_word, mode)?;
        self.counters.bump(Counter::StashAddMap);
        if out.replicates {
            self.counters.bump(Counter::StashAddMapReplicated);
        }
        // Displaced-entry writebacks block the core; charged by the caller
        // via the returned outcome if desired (rare).
        let wbs = out.writebacks.clone();
        self.perform_stash_writebacks(cu, &wbs)?;
        self.counters
            .add(Counter::StashVpFills, out.new_pages as u64);
        self.energy.add(
            Component::LocalMem,
            out.new_pages as u64 * self.model.tlb_access,
        );
        self.verify_after("stash_add_map");
        Ok(out)
    }

    /// `ChgMap` on CU `cu`: rebinds thread block `tb`'s map slot to a new
    /// tile or mode, flushing / re-registering as §4.2 requires.
    ///
    /// # Errors
    ///
    /// Propagates the stash's mapping errors.
    pub fn stash_chg_map(
        &mut self,
        cu: usize,
        tb: usize,
        slot: usize,
        tile: TileMap,
        mode: UsageMode,
    ) -> Result<(), SimError> {
        let out = self.stashes[cu].chg_map(tb, slot, tile, mode)?;
        self.counters.bump(Counter::StashChgMap);
        let wbs = out.writebacks.clone();
        self.perform_stash_writebacks(cu, &wbs)?;
        if !out.registrations.is_empty() {
            let map = self.stashes[cu]
                .resolve_slot(tb, slot)
                .ok_or_else(|| SimError::InvalidMapping(format!("slot {slot} unbound")))?;
            let regs = out.registrations.clone();
            self.stash_global_fetches(cu, map, &[], &regs)?;
        }
        self.counters
            .add(Counter::StashVpFills, out.new_pages as u64);
        self.energy.add(
            Component::LocalMem,
            out.new_pages as u64 * self.model.tlb_access,
        );
        self.verify_after("stash_chg_map");
        Ok(())
    }

    /// Resolves a thread block's map slot (the per-instruction lookup).
    pub fn stash_resolve_slot(&self, cu: usize, tb: usize, slot: usize) -> Option<MapIndex> {
        self.stashes.get(cu)?.resolve_slot(tb, slot)
    }

    /// One warp stash transaction: `lane_words` are word offsets into the
    /// allocation at `base_word`, under map `map`.
    ///
    /// # Errors
    ///
    /// Propagates invalid-mapping errors from the stash.
    pub fn stash_tx(
        &mut self,
        cu: usize,
        write: bool,
        base_word: usize,
        lane_words: &[u32],
        map: MapIndex,
    ) -> Result<TxCost, SimError> {
        let flits_before = self.net.traffic().total_flits();
        self.counters.bump(if write {
            Counter::StashStoreTx
        } else {
            Counter::StashLoadTx
        });
        let mut words: Vec<usize> = lane_words.iter().map(|&w| base_word + w as usize).collect();
        words.sort_unstable();
        words.dedup();

        // Bank conflicts behave exactly like the scratchpad's.
        let bank_cycles = {
            let banks = self.cfg.local_banks;
            let mut per_bank = vec![0u64; banks];
            for &w in &words {
                per_bank[w % banks] += 1;
            }
            per_bank.into_iter().max().unwrap_or(1).max(1)
        };

        let mut missed = false;
        let mut latency = bank_cycles.max(self.cfg.l1_hit_cycles);
        // Collect per-line global actions so words sharing a line batch
        // into one message pair.
        let mut load_fetches: Vec<(usize, VAddr)> = Vec::new();
        let mut registrations: Vec<(usize, VAddr)> = Vec::new();

        for &w in &words {
            if write {
                match self.stashes[cu].store(w, map)? {
                    StoreOutcome::Hit => {
                        // Stores silently overwrite (and so repair) a
                        // corrupt word without detecting it.
                        self.stash_overwrite(cu, w);
                    }
                    StoreOutcome::Miss {
                        vaddr,
                        writebacks,
                        needs_registration,
                    } => {
                        missed = true;
                        self.perform_stash_writebacks(cu, &writebacks)?;
                        if needs_registration {
                            registrations.push((w, vaddr));
                        } else {
                            self.stashes[cu].complete_store_fill(w, map);
                            self.stash_overwrite(cu, w);
                        }
                    }
                }
            } else {
                match self.stashes[cu].load(w, map)? {
                    LoadOutcome::Hit => {
                        self.stash_parity_read(cu, w);
                    }
                    LoadOutcome::ReplicaHit { writebacks, .. } => {
                        // Reclaiming the chunk for the replica may have
                        // displaced an older mapping's dirty words; those
                        // writebacks must reach the LLC even though no
                        // fetch follows, or their registrations go stale.
                        self.perform_stash_writebacks(cu, &writebacks)?;
                        // One extra storage read for the internal copy.
                        self.counters.bump(Counter::StashReplicaHit);
                        self.energy.add(Component::LocalMem, self.model.stash_hit);
                        self.stash_parity_read(cu, w);
                    }
                    LoadOutcome::Miss { vaddr, writebacks } => {
                        missed = true;
                        self.perform_stash_writebacks(cu, &writebacks)?;
                        load_fetches.push((w, vaddr));
                        // §8 flexible communication granularity: widen
                        // the miss to neighbouring mapped words.
                        let widen = self.stashes[cu].config().fetch_words;
                        if widen > 1 {
                            for (nw, nva) in self.stashes[cu].prefetch_candidates(w, map, widen) {
                                if !load_fetches.iter().any(|&(x, _)| x == nw) {
                                    self.counters.bump(Counter::StashWidenedFetch);
                                    load_fetches.push((nw, nva));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Local storage energy: hit vs miss per transaction (Table 3).
        self.energy.add(
            Component::LocalMem,
            if missed {
                self.model.stash_miss
            } else {
                self.model.stash_hit
            },
        );
        if missed {
            self.counters.bump(Counter::StashMiss);
            // Miss translation: VP-map TLB access + 6 ALU ops (10 cycles).
            self.energy.add(Component::LocalMem, self.model.tlb_access);
            latency += self.cfg.stash_translation_cycles;
            if let Some(t) = self.trace.as_mut() {
                let at = t.now();
                t.push(TraceEvent::StashChunkMiss {
                    cu: cu as u32,
                    at,
                    words: (load_fetches.len() + registrations.len()) as u32,
                });
            }
        } else {
            self.counters.bump(Counter::StashHit);
        }

        latency += self.stash_global_fetches(cu, map, &load_fetches, &registrations)?;
        self.verify_after("stash_tx");
        Ok(TxCost {
            latency,
            occupancy: (self.net.traffic().total_flits() - flits_before).div_ceil(2),
        })
    }

    /// Performs the grouped global actions of a stash transaction; returns
    /// the added latency.
    fn stash_global_fetches(
        &mut self,
        cu: usize,
        map: MapIndex,
        load_fetches: &[(usize, VAddr)],
        registrations: &[(usize, VAddr)],
    ) -> Result<u64, SimError> {
        // `cu` indexes the stash vector, which equals the core ID (CPU
        // stashes, when enabled, sit above the CU range).
        let core = CoreId(cu);
        let my_node = self.node_of(core);
        let line_bytes = self.cfg.line_bytes as u64;
        let mut extra = 0u64;

        // Loads, grouped by physical line.
        let mut by_line: Vec<(LineAddr, Vec<(usize, PAddr)>)> = Vec::new();
        for &(w, va) in load_fetches {
            let pa = self.pt.translate(va);
            self.stashes[cu].note_translation(va, pa);
            let line = pa.line(line_bytes);
            match by_line.iter_mut().find(|(l, _)| *l == line) {
                Some((_, v)) => v.push((w, pa)),
                None => by_line.push((line, vec![(w, pa)])),
            }
        }
        for (line, group) in by_line {
            let home = self.home_of(line);
            self.send_reliable(
                my_node,
                home,
                Message::control(MsgClass::Read),
                "stash.fetch",
            )?;
            self.llc_access(line);
            let mut lat = self.round_trip(my_node, home);
            let mut supplied = 0usize;
            let mut self_forwards = 0usize;
            for &(w, pa) in &group {
                let widx = pa.word_in_line(line_bytes);
                self.stage_op(StagedOp::LoadWord(line, widx));
                match self.llc.load_word(line, widx) {
                    LlcLoadOutcome::Data { from_memory } => {
                        if from_memory {
                            self.counters.bump(Counter::DramLineFetch);
                            lat = lat
                                .max(self.round_trip(my_node, home) + self.cfg.dram_extra_cycles);
                        }
                        self.llc_parity_read(line, widx);
                        supplied += 1;
                    }
                    LlcLoadOutcome::Forward(reg) if reg.core() == core => {
                        // Registry redirect to this core's own L1/stash:
                        // the words transfer locally; one redirect
                        // message pair covers the whole line group.
                        self_forwards += 1;
                        match reg {
                            Registration::Stash { .. } => {
                                self.energy.add(Component::LocalMem, self.model.stash_hit)
                            }
                            Registration::Cache(_) => {
                                self.energy.add(Component::L1, self.model.l1_hit)
                            }
                        }
                    }
                    LlcLoadOutcome::Forward(reg) => {
                        lat = lat.max(self.forward_fetch(core, pa, reg)?);
                    }
                }
                self.stashes[cu].complete_load_fill(w);
                // The fill overwrites any stale corruption marker, then
                // the arriving word may itself be flipped in flight.
                self.stash_overwrite(cu, w);
                self.maybe_flip_stash("stash.fetch", cu, w);
            }
            if self_forwards > 0 {
                self.counters
                    .add(Counter::RemoteSelfForward, self_forwards as u64);
                self.send(home, my_node, Message::control(MsgClass::Read));
                lat = lat.max(self.round_trip(my_node, home) + self.cfg.l1_hit_cycles);
            }
            if supplied > 0 {
                self.send(
                    home,
                    my_node,
                    Message::data(MsgClass::Read, supplied * WORD_BYTES as usize),
                );
            }
            self.counters
                .add(Counter::StashFetchWords, group.len() as u64);
            extra = extra.max(lat);
        }

        // Registrations, grouped by physical line; the request carries the
        // stash-map index that the registry records (§4.3).
        let mut by_line: Vec<(LineAddr, Vec<(usize, PAddr)>)> = Vec::new();
        for &(w, va) in registrations {
            let pa = self.pt.translate(va);
            self.stashes[cu].note_translation(va, pa);
            let line = pa.line(line_bytes);
            match by_line.iter_mut().find(|(l, _)| *l == line) {
                Some((_, v)) => v.push((w, pa)),
                None => by_line.push((line, vec![(w, pa)])),
            }
        }
        for (line, group) in by_line {
            let home = self.home_of(line);
            self.send_reliable(
                my_node,
                home,
                Message::control(MsgClass::Write),
                "stash.register",
            )?;
            self.send(home, my_node, Message::control(MsgClass::Write));
            self.llc_access(line);
            for &(w, pa) in &group {
                let widx = pa.word_in_line(line_bytes);
                let reg = Registration::Stash {
                    core,
                    map_index: map.0,
                };
                let out = self.llc.register_word(line, widx, reg);
                self.stage_op(StagedOp::RegisterWord(line, widx, reg));
                self.llc_overwrite(line, widx);
                if let Some(prev) = out.previous {
                    self.invalidate_previous_owner(prev, pa, home)?;
                }
                self.stashes[cu].complete_store_fill(w, map);
                self.stash_overwrite(cu, w);
            }
            self.counters
                .add(Counter::StashRegisterWords, group.len() as u64);
            extra = extra.max(self.round_trip(my_node, home));
        }
        Ok(extra)
    }

    /// Sends a batch of stash writebacks (lazy or blocking) to the LLC.
    fn perform_stash_writebacks(
        &mut self,
        cu: usize,
        wbs: &[WritebackWord],
    ) -> Result<(), SimError> {
        if wbs.is_empty() {
            return Ok(());
        }
        let core = CoreId(cu);
        let my_node = self.node_of(core);
        let line_bytes = self.cfg.line_bytes as u64;
        let mut by_line: Vec<(LineAddr, Vec<(PAddr, usize)>)> = Vec::new();
        for wb in wbs {
            let pa = self.stashes[cu]
                .translate(wb.vaddr)
                .unwrap_or_else(|| self.pt.translate(wb.vaddr));
            let line = pa.line(line_bytes);
            match by_line.iter_mut().find(|(l, _)| *l == line) {
                Some((_, v)) => v.push((pa, wb.stash_word)),
                None => by_line.push((line, vec![(pa, wb.stash_word)])),
            }
        }
        for (line, group) in by_line {
            let home = self.home_of(line);
            // One storage read + VP-map translation per chunk-batch.
            self.energy.add(Component::LocalMem, self.model.stash_hit);
            self.energy.add(Component::LocalMem, self.model.tlb_access);
            let delivered = self.send_writeback(
                my_node,
                home,
                Message::data(MsgClass::Writeback, group.len() * WORD_BYTES as usize),
                "stash.wb",
            )?;
            self.llc_access(line);
            if !delivered {
                // Lost: the data never reaches the LLC and the stale
                // registrations remain (escape class). Corrupt markers
                // stay in the stash until the words are refilled or the
                // scrub sweeps them.
                continue;
            }
            for (pa, sw) in group {
                let widx = pa.word_in_line(line_bytes);
                let was_corrupt = self.fault.is_some() && self.stashes[cu].take_corrupt(sw);
                let accepted = self.llc.writeback_word(line, widx, core);
                self.stage_op(StagedOp::WritebackWord(line, widx, core));
                if accepted {
                    if was_corrupt {
                        // The writeback carries the corruption onward.
                        self.llc.corrupt_word(line, widx);
                        self.stage_op(StagedOp::CorruptWord(line, widx));
                    } else {
                        self.llc_overwrite(line, widx);
                        self.maybe_flip_llc("stash.wb", line, widx);
                    }
                } else if was_corrupt {
                    // A stale writeback is discarded, corruption and all.
                    self.counters.bump(Counter::FaultFlipOverwritten);
                }
                self.counters.bump(Counter::WbStashWords);
            }
        }
        Ok(())
    }

    /// A warp access to *unmapped* stash space (§3.3's Temporary /
    /// Global-unmapped modes): the stash behaves exactly like a
    /// scratchpad — direct addressing, bank conflicts, no global actions.
    pub fn stash_raw_tx(&mut self, _cu: usize, base_word: usize, lane_words: &[u32]) -> u64 {
        self.counters.bump(Counter::StashRawAccess);
        self.energy.add(Component::LocalMem, self.model.stash_hit);
        let banks = self.cfg.local_banks;
        let mut per_bank = vec![0u64; banks];
        for &w in lane_words {
            per_bank[(base_word + w as usize) % banks] += 1;
        }
        per_bank
            .into_iter()
            .max()
            .unwrap_or(1)
            .max(self.cfg.l1_hit_cycles)
    }

    /// Thread block `tb` on CU `cu` completed.
    pub fn end_thread_block(&mut self, cu: usize, tb: usize) {
        if let Some(s) = self.stashes.get_mut(cu) {
            s.end_thread_block(tb);
        }
        self.verify_after("end_thread_block");
    }

    /// Kernel boundary: self-invalidation in GPU L1s and stashes;
    /// scratchpad allocations are freed by the machine's allocator.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] when an eager writeback is undeliverable
    /// under the installed fault schedule.
    pub fn end_kernel(&mut self) -> Result<(), SimError> {
        for cu in 0..self.cfg.gpu_cus {
            self.l1s[cu].self_invalidate();
        }
        if self.eager_stash_writebacks {
            for cu in 0..self.stashes.len() {
                let wbs = self.stashes[cu].drain_writebacks();
                self.counters.add(Counter::WbEagerDrained, wbs.len() as u64);
                self.perform_stash_writebacks(cu, &wbs)?;
            }
        }
        for s in &mut self.stashes {
            s.end_kernel();
        }
        self.counters.bump(Counter::GpuKernels);
        if let Some(t) = self.trace.as_mut() {
            let at = t.now();
            let kernel = self.counters.value(Counter::GpuKernels) as u32;
            t.push(TraceEvent::EnergyEpoch { at, kernel });
        }
        self.verify_after("end_kernel");
        Ok(())
    }

    /// §8 extension: eagerly fetches every unfetched word of a fresh
    /// mapping (an `AddMap`-time prefetch). Returns the blocking latency,
    /// charged like a DMA preload by the CU model.
    pub fn stash_prefetch_mapping(&mut self, cu: usize, map: MapIndex) -> Result<u64, SimError> {
        let wbs = self.stashes[cu].claim_chunks(map);
        self.perform_stash_writebacks(cu, &wbs)?;
        let words = self.stashes[cu].unfetched_words(map);
        if words.is_empty() {
            return Ok(0);
        }
        self.counters
            .add(Counter::StashPrefetchWords, words.len() as u64);
        self.energy.add(Component::LocalMem, self.model.stash_miss);
        self.energy.add(Component::LocalMem, self.model.tlb_access);
        let lat = self.stash_global_fetches(cu, map, &words, &[])?;
        self.verify_after("stash_prefetch_mapping");
        // Pipelined like a DMA transfer: inject at 2 flits/cycle.
        Ok(lat + (words.len() as u64).div_ceil(4))
    }

    // ------------------------------------------------------------------
    // DMA (ScratchGD)
    // ------------------------------------------------------------------

    /// Runs a blocking DMA transfer of `tile` on CU `cu`; returns the
    /// transfer's completion latency in cycles.
    ///
    /// Under a fault schedule the engine may deliver only a prefix of the
    /// transfer. With resilience on, the engine's length check NACKs the
    /// short transfer and the lost tail is re-sent — every word still
    /// lands, at a timeout + backoff + resend cost. With resilience off
    /// the tail words silently never move: the truncation escape class.
    ///
    /// # Errors
    ///
    /// [`SimError::Deadlock`] when a request is undeliverable under the
    /// installed fault schedule.
    pub fn dma_transfer(
        &mut self,
        cu: usize,
        tile: &TileMap,
        store: bool,
    ) -> Result<u64, SimError> {
        let dir = if store {
            DmaDirection::ScratchToGlobal
        } else {
            DmaDirection::GlobalToScratch
        };
        let dma = DmaTransfer::new(*tile, dir);
        let core = self.cu_core(cu);
        let my_node = self.node_of(core);
        let line_bytes = self.cfg.line_bytes as u64;
        let site = if store { "dma.store" } else { "dma.load" };

        let mut truncated_tail = 0u64;
        let vaddrs: Vec<VAddr> = match self
            .fault
            .as_mut()
            .and_then(|inj| inj.truncate_dma(site, dma.word_count()))
        {
            Some(delivered) => {
                self.counters.bump(Counter::FaultDmaTruncated);
                let resilient = self.fault.as_ref().is_some_and(|f| f.config().resilience);
                let (head, tail) = dma.split_at_truncation(delivered);
                if resilient {
                    // The resend makes the transfer whole: state for
                    // every word is applied (once), the penalty is pure
                    // accounting after the loop.
                    truncated_tail = tail.len() as u64;
                    dma.word_vaddrs().collect()
                } else {
                    head
                }
            }
            None => dma.word_vaddrs().collect(),
        };

        // Group the transferred words by physical line.
        let mut by_line: Vec<(LineAddr, Vec<PAddr>)> = Vec::new();
        for &va in &vaddrs {
            let pa = self.pt.translate(va);
            let line = pa.line(line_bytes);
            match by_line.iter_mut().find(|(l, _)| *l == line) {
                Some((_, v)) => v.push(pa),
                None => by_line.push((line, vec![pa])),
            }
        }

        self.counters.add(Counter::DmaWords, vaddrs.len() as u64);
        let mut issue = 0u64;
        let mut done = 0u64;
        for (line, pas) in by_line {
            let home = self.home_of(line);
            let mut lat = self.round_trip(my_node, home);
            if store {
                self.send_reliable(
                    my_node,
                    home,
                    Message::data(MsgClass::Write, pas.len() * WORD_BYTES as usize),
                    site,
                )?;
                self.llc_access(line);
                for pa in &pas {
                    let widx = pa.word_in_line(line_bytes);
                    self.stage_op(StagedOp::StoreThrough(line, widx));
                    if let Some(prev) = self.llc.store_through(line, widx) {
                        self.invalidate_previous_owner(prev, *pa, home)?;
                    }
                    // A DMA store overwrites the LLC word, then the
                    // arriving data may itself be flipped in flight.
                    self.llc_overwrite(line, widx);
                    self.maybe_flip_llc(site, line, widx);
                }
            } else {
                self.send_reliable(my_node, home, Message::control(MsgClass::Read), site)?;
                self.llc_access(line);
                let mut supplied = 0usize;
                for pa in &pas {
                    let widx = pa.word_in_line(line_bytes);
                    self.stage_op(StagedOp::LoadWord(line, widx));
                    match self.llc.load_word(line, widx) {
                        LlcLoadOutcome::Data { from_memory } => {
                            if from_memory {
                                self.counters.bump(Counter::DramLineFetch);
                                lat += self.cfg.dram_extra_cycles;
                            }
                            self.llc_parity_read(line, widx);
                            supplied += 1;
                        }
                        LlcLoadOutcome::Forward(reg) => {
                            lat = lat.max(self.forward_fetch(core, *pa, reg)?);
                        }
                    }
                }
                if supplied > 0 {
                    self.send(
                        home,
                        my_node,
                        Message::data(MsgClass::Read, supplied * WORD_BYTES as usize),
                    );
                }
            }
            // The DMA engine also accesses the scratchpad for every word
            // it moves (§6.2: DMA "accesses the scratchpad at the DMA
            // load, the program access, and the DMA store").
            self.energy.add(
                Component::LocalMem,
                pas.len() as u64 * self.model.scratchpad_access,
            );
            // Pipelined at NoC injection bandwidth: each line-group's
            // request+response flits occupy the port; the transfer
            // completes with the last response (core-granularity
            // blocking, §5.3).
            let flits = 2 + (pas.len() * WORD_BYTES as usize).div_ceil(16) as u64;
            done = done.max(issue + lat);
            issue += flits.div_ceil(2);
        }
        let total = done.max(issue);
        if let Some(t) = self.trace.as_mut() {
            let at = t.now();
            t.push(TraceEvent::DmaBurst {
                cu: cu as u32,
                at,
                words: vaddrs.len() as u32,
                store,
                cycles: total,
            });
        }
        if truncated_tail > 0 {
            // Length-check NACK round trip, one backoff, then the tail
            // re-sends as a single burst to its first line's home. The
            // whole recovery is accounting-only (counters, energy,
            // traffic): the returned latency stays the fault-free value
            // so the warp schedule matches the golden replay.
            let policy = self.fault.as_ref().expect("truncated").config().retry;
            self.counters.bump(Counter::ResilienceNack);
            self.counters.bump(Counter::ResilienceRetry);
            let backoff = policy.backoff(1);
            self.counters.add(Counter::ResilienceBackoffCycles, backoff);
            let (_, tail) = dma.split_at_truncation(dma.word_count() - truncated_tail);
            let first_line = self.pt.translate(tail[0]).line(line_bytes);
            let home = self.home_of(first_line);
            self.send(my_node, home, Message::control(MsgClass::Write));
            self.send(home, my_node, Message::control(MsgClass::Write));
            self.send(
                my_node,
                home,
                Message::data(
                    if store {
                        MsgClass::Write
                    } else {
                        MsgClass::Read
                    },
                    truncated_tail as usize * WORD_BYTES as usize,
                ),
            );
        }
        self.verify_after("dma_transfer");
        Ok(total)
    }

    // ------------------------------------------------------------------
    // Epoch-parallel sharding
    // ------------------------------------------------------------------

    /// Forks a per-CU shard for epoch-parallel kernel execution: a
    /// snapshot of the hierarchy with its accounting zeroed (so shard
    /// accounting sums cleanly back into the master) and a staged-op log
    /// armed. The private structures (L1s, stashes, scratchpads) clone;
    /// the LLC forks as a copy-on-write view ([`mem::llc::Llc::fork`])
    /// whose cost is proportional to the lines the shard actually
    /// touches, not the resident footprint. `salt` derives the shard's
    /// fault-injection stream so parallel chaos runs are reproducible at
    /// any thread count.
    #[must_use]
    pub fn fork_shard(&self, salt: u64) -> MemorySystem {
        MemorySystem {
            cfg: self.cfg.clone(),
            kind: self.kind,
            net: {
                let mut net = self.net.clone();
                net.reset_accounting();
                net
            },
            // A copy-on-write view: the slot table and word arena are
            // shared with the master, and the shard's touched lines get
            // private overlay copies — the dominant fork cost on
            // many-kernel workloads was cloning the whole LLC arena.
            llc: self.llc.fork(),
            l1s: self.l1s.clone(),
            scratchpads: self.scratchpads.clone(),
            stashes: self.stashes.clone(),
            pt: self.pt.clone(),
            model: self.model.clone(),
            energy: EnergyAccount::new(),
            counters: Counters::new(),
            gpu_instructions: 0,
            eager_stash_writebacks: self.eager_stash_writebacks,
            line_grain_registration: self.line_grain_registration,
            verify: self.verify,
            fault: self
                .fault
                .as_ref()
                .map(|f| FaultInjector::new(f.config().fork(salt))),
            trace: self.trace.as_ref().map(|t| {
                let mut fresh = TraceSink::new(t.capacity());
                fresh.set_base(t.abs(0));
                Box::new(fresh)
            }),
            now: self.now,
            stage: Some(Box::default()),
        }
    }

    /// Reduces a finished shard to the pieces the merge needs — CU
    /// `cu`'s private structures (L1, scratchpad, stash), the shard's
    /// accounting deltas, its fault/stall traces, the staged-op log, and
    /// its DRAM-fetch count. The rest of the snapshot (every other
    /// core's structures, the LLC, the page table) is dropped here, on
    /// the calling thread: workers reduce their own shards, so both the
    /// clone and the teardown of the bulky state run in parallel instead
    /// of serially on the merge thread.
    #[must_use]
    pub fn reduce_shard(mut self, cu: usize, cycles: u64) -> ShardResult {
        let mapped_pages = self.pt.mapped_pages();
        let l1 = self.l1s.swap_remove(cu);
        let scratchpad = (cu < self.scratchpads.len()).then(|| self.scratchpads.swap_remove(cu));
        let stash = (cu < self.stashes.len()).then(|| self.stashes.swap_remove(cu));
        let fault_trace = self
            .fault
            .as_ref()
            .map(|f| f.trace().to_vec())
            .unwrap_or_default();
        let dram = self.llc.dram_line_fetches();
        ShardResult {
            cu,
            cycles,
            mapped_pages,
            l1,
            scratchpad,
            stash,
            counters: self.counters,
            energy: self.energy,
            net: self.net,
            gpu_instructions: self.gpu_instructions,
            fault_trace,
            trace: self.trace,
            log: self.stage.map_or_else(StageLog::default, |b| *b),
            dram,
        }
    }

    /// Absorbs a reduced shard back into the master: the CU's private
    /// structures move over wholesale, shard accounting (counters,
    /// energy, traffic, instructions, fault trace, stall trace) is
    /// summed in, and the staged-op log plus the shard's DRAM-fetch
    /// count are returned for the epoch replay.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidMapping`] when the shard mapped pages the
    /// master's pre-touch pass missed — the kernel's footprint escaped
    /// the static walk, so frame assignment would depend on CU
    /// interleaving and determinism cannot be guaranteed.
    pub fn absorb_result(&mut self, r: ShardResult) -> Result<(StageLog, u64), SimError> {
        if r.mapped_pages != self.pt.mapped_pages() {
            return Err(SimError::InvalidMapping(format!(
                "CU {} shard mapped {} pages vs master {}: kernel footprint \
                 escaped the pre-touch pass",
                r.cu,
                r.mapped_pages,
                self.pt.mapped_pages()
            )));
        }
        self.l1s[r.cu] = r.l1;
        if let Some(sp) = r.scratchpad {
            self.scratchpads[r.cu] = sp;
        }
        if let Some(st) = r.stash {
            self.stashes[r.cu] = st;
        }
        self.counters.merge(&r.counters);
        self.energy.merge(&r.energy);
        self.net.absorb(&r.net);
        self.gpu_instructions += r.gpu_instructions;
        if let Some(mine) = self.fault.as_mut() {
            mine.absorb_trace(&r.fault_trace);
        }
        if let (Some(mine), Some(theirs)) = (self.trace.as_mut(), r.trace.as_ref()) {
            mine.absorb(theirs);
        }
        Ok((r.log, r.dram))
    }

    /// Replays the shards' staged operations against the master LLC in
    /// deterministic `(cycle, cu, seq)` order, applied in bounded cycle
    /// epochs of `epoch_cycles`. The epoch boundaries only slice one
    /// globally-sorted stream, so the merged state is identical for
    /// every epoch length and thread count.
    ///
    /// Replay touches the registry only; protocol invalidations are
    /// reconciled *after* the full stream against final ownership. A
    /// mid-stream invalidation would be wrong: each CU's merged-back
    /// structures hold that CU's *final* state, so revoking a copy
    /// because some mid-history registration displaced it clobbers the
    /// final owner whenever that owner re-registered later. The
    /// reconciliation pass instead invalidates every copy whose core
    /// lost the word — exactly the set a sequential interleaving of the
    /// merged stream would have invalidated and not restored.
    ///
    /// `dram_pre` is the master's DRAM-fetch count at fork time and
    /// `shard_dram` each shard's count at absorb time: replay re-fetches
    /// lines the shards already counted, so the counter is rebuilt as
    /// `pre + Σ (shard − pre)` afterwards.
    ///
    /// # Certified fast path
    ///
    /// With `certified` a [`crate::certificate::ConflictCertificate`]
    /// vouches that every word is ownership-claimed (registration or DMA
    /// store-through) by at most one CU this kernel. The replay is
    /// unchanged, but reconciliation only tracks *cross-core carryover*:
    /// displaced previous owners whose core differs from the claiming
    /// CU — i.e. registrations left over from earlier kernels or CPU
    /// phases. Every candidate the full pass would additionally track is
    /// then a same-core revocation, and those are no-ops: the sole
    /// claiming CU's shard resolved its own words sequentially and its
    /// merged-back structures already carry the outcome. Digests are
    /// byte-identical; only the reconciliation set shrinks.
    ///
    /// When the run-time invariant oracle is armed
    /// ([`MemorySystem::set_verify`]), every certified merge is
    /// cross-checked against the actual staged footprints first.
    ///
    /// # Errors
    ///
    /// [`SimError::CertificateViolation`] if the oracle catches two CUs
    /// claiming the same word in a certified kernel — the certificate's
    /// soundness obligation (certified ⇒ runtime-disjoint) is broken and
    /// the merge cannot be trusted.
    pub fn apply_staged(
        &mut self,
        logs: Vec<(usize, StageLog)>,
        epoch_cycles: u64,
        dram_pre: u64,
        shard_dram: &[u64],
        certified: bool,
    ) -> Result<(), SimError> {
        let mut ops: Vec<(u64, usize, u64, StagedOp)> = Vec::new();
        for (cu, log) in logs {
            ops.reserve(log.ops.len());
            for (cycle, seq, op) in log.ops {
                ops.push((cycle, cu, seq, op));
            }
        }
        ops.sort_by_key(|op| (op.0, op.1, op.2));
        if certified && self.verify {
            Self::oracle_check(&ops)?;
        }
        // Every registration that ever named a word this kernel, keyed
        // and iterated in address order (deterministic reconciliation).
        // Under a certificate only cross-core carryover is tracked (see
        // above): the claiming CU's own registrations are skipped.
        let mut touched: BTreeMap<(LineAddr, usize), Vec<Registration>> = BTreeMap::new();
        let note = |touched: &mut BTreeMap<(LineAddr, usize), Vec<Registration>>,
                    line: LineAddr,
                    w: usize,
                    reg: Registration| {
            let cands = touched.entry((line, w)).or_default();
            if !cands.contains(&reg) {
                cands.push(reg);
            }
        };
        let epoch = epoch_cycles.max(1);
        let mut i = 0;
        while i < ops.len() {
            let epoch_end = (ops[i].0 / epoch + 1) * epoch;
            while i < ops.len() && ops[i].0 < epoch_end {
                let cu = ops[i].1;
                match ops[i].3 {
                    StagedOp::LoadWord(line, w) => {
                        let _ = self.llc.load_word(line, w);
                    }
                    StagedOp::RegisterWord(line, w, reg) => {
                        let out = self.llc.register_word(line, w, reg);
                        if !certified {
                            note(&mut touched, line, w, reg);
                        }
                        if let Some(prev) = out.previous {
                            if !certified || prev.core() != CoreId(cu) {
                                note(&mut touched, line, w, prev);
                            }
                        }
                    }
                    StagedOp::WritebackWord(line, w, core) => {
                        let _ = self.llc.writeback_word(line, w, core);
                    }
                    StagedOp::StoreThrough(line, w) => {
                        if let Some(prev) = self.llc.store_through(line, w) {
                            if !certified || prev.core() != CoreId(cu) {
                                note(&mut touched, line, w, prev);
                            }
                        }
                    }
                    StagedOp::LineFill(line, core) => {
                        let _ = self.llc.line_fill(line, core);
                    }
                    StagedOp::CorruptWord(line, w) => self.llc.corrupt_word(line, w),
                    StagedOp::ClearCorrupt(line, w) => {
                        let _ = self.llc.clear_corrupt(line, w);
                    }
                    StagedOp::CheckParity(line, w) => {
                        let _ = self.llc.check_parity(line, w);
                    }
                }
                i += 1;
            }
        }
        // Reconcile: revoke every copy whose core is not the word's
        // final owner. Same-core transfers (old map → new map, L1 →
        // stash) were already resolved inside the owning shard, and its
        // merged-back structures carry the result — revoking by core,
        // not by exact registration, leaves them alone.
        for ((line, w), cands) in &touched {
            let owner_core = self.llc.registration(*line, *w).map(|r| r.core());
            for &r in cands {
                if Some(r.core()) != owner_core {
                    let pa = line.word_addr(*w);
                    match r {
                        Registration::Stash { core, .. } => {
                            if core.0 < self.stashes.len() {
                                self.stashes[core.0].surrender_word(pa);
                            }
                        }
                        Registration::Cache(c) => {
                            self.l1s[c.0].downgrade_word(pa, mem::coherence::WordState::Invalid);
                        }
                    }
                }
            }
        }
        let total: u64 = shard_dram.iter().map(|&d| d - dram_pre).sum();
        self.llc.set_dram_line_fetches(dram_pre + total);
        self.verify_after("apply_staged");
        Ok(())
    }

    /// The dynamic footprint oracle: walks a merged, sorted op stream
    /// and errors on the first word that two distinct CUs ownership-claim
    /// (word registration or DMA store-through). Claims are exactly the
    /// operations whose reconciliation entries the certified fast path
    /// skips, so passing the oracle implies the fast path was sound for
    /// this kernel. Loads, line fills and writebacks never claim: a
    /// writeback can legitimately come from a pre-kernel owner on
    /// another core, and neither affects final ownership.
    fn oracle_check(ops: &[(u64, usize, u64, StagedOp)]) -> Result<(), SimError> {
        let mut claims: BTreeMap<(LineAddr, usize), usize> = BTreeMap::new();
        for &(_, cu, _, op) in ops {
            let claimed = match op {
                StagedOp::RegisterWord(line, w, _) | StagedOp::StoreThrough(line, w) => {
                    Some((line, w))
                }
                _ => None,
            };
            let Some(key) = claimed else { continue };
            let first = *claims.entry(key).or_insert(cu);
            if first != cu {
                return Err(SimError::CertificateViolation {
                    word: key.0.word_addr(key.1).0,
                    first_cu: first,
                    second_cu: cu,
                });
            }
        }
        Ok(())
    }

    /// Pre-touches every page a kernel can reach, in program order, so
    /// frame assignment is fixed before the CUs fork and no shard ever
    /// allocates a frame. Covers map/DMA tiles (page-by-page) and global
    /// warp lanes; stash fallback and lazy-writeback addresses fall
    /// inside tiles mapped here or by earlier kernels.
    pub fn pretouch_kernel(&mut self, kernel: &crate::program::Kernel) {
        let page_bytes = self.cfg.page_bytes as u64;
        let touch_tile = |pt: &mut PageTable, tile: &TileMap| {
            for page in tile.pages_touched(page_bytes) {
                let _ = pt.translate(VAddr(page * page_bytes));
            }
        };
        for block in &kernel.blocks {
            for stage in &block.stages {
                for req in &stage.maps {
                    touch_tile(&mut self.pt, &req.tile);
                }
                for req in &stage.dmas {
                    touch_tile(&mut self.pt, &req.tile);
                }
                for warp in &stage.warps {
                    for op in warp {
                        if let crate::program::WarpOp::GlobalMem { lanes, .. } = op {
                            for &va in lanes {
                                let _ = self.pt.translate(va);
                            }
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    /// Total GPU warp instructions recorded.
    pub fn gpu_instructions(&self) -> u64 {
        self.gpu_instructions
    }

    /// Accumulated energy account.
    pub fn energy(&self) -> &EnergyAccount {
        &self.energy
    }

    /// Accumulated traffic statistics.
    pub fn traffic(&self) -> &noc::TrafficStats {
        self.net.traffic()
    }

    /// Per-router flit-traversal profile (hotspot analysis).
    pub fn router_flit_profile(&self) -> &[u64] {
        self.net.router_flit_profile()
    }

    /// Raw event counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Direct read access to a CU's stash (tests/diagnostics).
    pub fn stash(&self, cu: usize) -> Option<&Stash> {
        self.stashes.get(cu)
    }

    /// Direct read access to the LLC/registry (tests/diagnostics).
    pub fn llc(&self) -> &Llc {
        &self.llc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro(kind: MemConfigKind) -> MemorySystem {
        MemorySystem::new(SystemConfig::for_microbenchmarks(), kind)
    }

    fn tx(vas: &[u64]) -> Transaction {
        Transaction {
            line_va: VAddr(vas[0]).align_down(64),
            words: vas.iter().map(|&v| VAddr(v)).collect(),
        }
    }

    #[test]
    fn cache_load_miss_then_hit() {
        let mut m = micro(MemConfigKind::Cache);
        let t = tx(&[0x1000]);
        let miss = m.gpu_global_tx(0, false, &t).unwrap();
        assert!(miss.latency > m.config().l1_hit_cycles);
        assert!(miss.occupancy > 0, "a miss injects flits");
        let hit = m.gpu_global_tx(0, false, &t).unwrap();
        assert_eq!(hit.latency, m.config().l1_hit_cycles);
        assert_eq!(hit.occupancy, 0, "hits stay inside the CU");
        assert_eq!(m.counters().get("gpu.l1.miss"), 1);
        // The whole line was filled: a neighbouring word also hits.
        assert_eq!(
            m.gpu_global_tx(0, false, &tx(&[0x1004])).unwrap().latency,
            1
        );
    }

    #[test]
    fn cache_store_registers_at_llc() {
        let mut m = micro(MemConfigKind::Cache);
        m.gpu_global_tx(0, true, &tx(&[0x2000])).unwrap();
        // Some word of some line is registered to CU 0.
        assert_eq!(m.llc().words_registered_to(CoreId(0)), 1);
        // A store hit afterwards.
        assert_eq!(m.gpu_global_tx(0, true, &tx(&[0x2000])).unwrap().latency, 1);
    }

    #[test]
    fn cpu_read_of_gpu_written_word_forwards() {
        let mut m = micro(MemConfigKind::Cache);
        m.gpu_global_tx(0, true, &tx(&[0x3000])).unwrap();
        let before = m.counters().get("remote.forward");
        m.cpu_access(0, false, VAddr(0x3000)).unwrap();
        assert_eq!(m.counters().get("remote.forward"), before + 1);
    }

    #[test]
    fn stash_roundtrip_through_memsys() {
        let mut m = micro(MemConfigKind::Stash);
        let tile = TileMap::new(VAddr(0x10000), 4, 16, 64, 0, 1).unwrap();
        let out = m
            .stash_add_map(0, 0, tile, 0, UsageMode::MappedCoherent)
            .unwrap();
        // First load misses (fetch), second hits.
        let c1 = m.stash_tx(0, false, 0, &[0], out.index).unwrap();
        assert!(c1.latency > 1 + m.config().stash_translation_cycles);
        assert!(c1.occupancy > 0);
        let c2 = m.stash_tx(0, false, 0, &[0], out.index).unwrap();
        assert_eq!(c2.latency, 1);
        assert_eq!(c2.occupancy, 0);
        assert_eq!(m.counters().get("stash.hit"), 1);
        assert_eq!(m.counters().get("stash.miss"), 1);
        // Stores register at the LLC with a stash registration.
        m.stash_tx(0, true, 0, &[1], out.index).unwrap();
        assert_eq!(m.llc().words_registered_to(CoreId(0)), 1);
    }

    #[test]
    fn cpu_pulls_stash_data_via_forwarding() {
        let mut m = micro(MemConfigKind::Stash);
        let tile = TileMap::new(VAddr(0x10000), 4, 16, 64, 0, 1).unwrap();
        let out = m
            .stash_add_map(0, 0, tile, 0, UsageMode::MappedCoherent)
            .unwrap();
        m.stash_tx(0, true, 0, &[0], out.index).unwrap();
        m.end_thread_block(0, 0);
        m.end_kernel().unwrap();
        // The data was NOT written back (lazy): the CPU read forwards.
        assert_eq!(m.counters().get("wb.stash_words"), 0);
        let before = m.counters().get("remote.forward");
        m.cpu_access(0, false, VAddr(0x10000)).unwrap();
        assert_eq!(m.counters().get("remote.forward"), before + 1);
    }

    #[test]
    fn scratchpad_tx_is_local_only() {
        let mut m = micro(MemConfigKind::Scratch);
        let base = m.scratch_alloc(0, 1024).unwrap();
        let lanes: Vec<u32> = (0..32).collect();
        let lat = m.scratch_tx(0, base, &lanes);
        assert_eq!(lat, 1);
        assert_eq!(m.traffic().total_messages(), 0);
        assert_eq!(m.counters().get("scratch.access"), 1);
    }

    #[test]
    fn dma_moves_whole_tile() {
        let mut m = micro(MemConfigKind::ScratchGD);
        let tile = TileMap::new(VAddr(0x10000), 4, 16, 64, 0, 1).unwrap();
        let lat = m.dma_transfer(0, &tile, false).unwrap();
        assert!(lat > 0);
        assert_eq!(m.counters().get("dma.words"), 64);
        // 64 elements of 16-byte objects span 16 lines: 16 request pairs.
        assert_eq!(m.traffic().messages(MsgClass::Read), 32);
    }

    #[test]
    fn dma_store_revokes_stale_registrations() {
        let mut m = micro(MemConfigKind::ScratchGD);
        // A GPU global store registers a word...
        m.gpu_global_tx(0, true, &tx(&[0x10000])).unwrap();
        assert_eq!(m.llc().words_registered_to(CoreId(0)), 1);
        // ...then a DMA store of the same tile writes through and revokes.
        let tile = TileMap::new(VAddr(0x10000), 4, 16, 4, 0, 1).unwrap();
        m.dma_transfer(0, &tile, true).unwrap();
        assert_eq!(m.llc().words_registered_to(CoreId(0)), 0);
    }

    #[test]
    fn lazy_writeback_traffic_appears_on_reclaim() {
        let mut m = micro(MemConfigKind::Stash);
        let t1 = TileMap::new(VAddr(0x10000), 4, 16, 16, 0, 1).unwrap();
        let out1 = m
            .stash_add_map(0, 0, t1, 0, UsageMode::MappedCoherent)
            .unwrap();
        m.stash_tx(0, true, 0, &[0], out1.index).unwrap();
        m.end_thread_block(0, 0);
        m.end_kernel().unwrap();
        assert_eq!(m.counters().get("wb.stash_words"), 0);
        // A new, different mapping reclaims the same stash space.
        let t2 = TileMap::new(VAddr(0x20000), 4, 16, 16, 0, 1).unwrap();
        let out2 = m
            .stash_add_map(0, 1, t2, 0, UsageMode::MappedCoherent)
            .unwrap();
        m.stash_tx(0, false, 0, &[0], out2.index).unwrap();
        assert_eq!(m.counters().get("wb.stash_words"), 1);
        assert!(m.traffic().messages(MsgClass::Writeback) > 0);
    }

    #[test]
    fn eager_writebacks_drain_at_kernel_end() {
        let mut m = micro(MemConfigKind::Stash);
        m.set_eager_stash_writebacks(true);
        let tile = TileMap::new(VAddr(0x10000), 4, 16, 64, 0, 1).unwrap();
        let out = m
            .stash_add_map(0, 0, tile, 0, UsageMode::MappedCoherent)
            .unwrap();
        m.stash_tx(0, true, 0, &[0, 1, 2], out.index).unwrap();
        m.end_thread_block(0, 0);
        m.end_kernel().unwrap();
        // The dirty words were flushed at the boundary (scratchpad-like),
        // so the CPU read hits the LLC instead of forwarding.
        assert_eq!(m.counters().get("wb.stash_words"), 3);
        let before = m.counters().get("remote.forward");
        m.cpu_access(0, false, VAddr(0x10000)).unwrap();
        assert_eq!(m.counters().get("remote.forward"), before);
    }

    #[test]
    fn widened_fetches_fill_neighbours() {
        let mut m = micro(MemConfigKind::Stash);
        m.set_stash_fetch_words(4);
        let tile = TileMap::new(VAddr(0x10000), 4, 16, 64, 0, 1).unwrap();
        let out = m
            .stash_add_map(0, 0, tile, 0, UsageMode::MappedCoherent)
            .unwrap();
        m.stash_tx(0, false, 0, &[0], out.index).unwrap();
        // The miss widened to 4 words: the next three now hit.
        assert_eq!(m.counters().get("stash.fetch_words"), 4);
        assert_eq!(m.counters().get("stash.widened_fetch"), 3);
        let cost = m.stash_tx(0, false, 0, &[1, 2, 3], out.index).unwrap();
        assert_eq!(cost.latency, 1);
    }

    #[test]
    fn addmap_prefetch_fetches_whole_mapping() {
        let mut m = micro(MemConfigKind::Stash);
        m.set_stash_prefetch(true);
        assert!(m.stash_prefetch_enabled());
        let tile = TileMap::new(VAddr(0x10000), 4, 16, 64, 0, 1).unwrap();
        let out = m
            .stash_add_map(0, 0, tile, 0, UsageMode::MappedCoherent)
            .unwrap();
        let lat = m.stash_prefetch_mapping(0, out.index).unwrap();
        assert!(lat > 0);
        assert_eq!(m.counters().get("stash.prefetch_words"), 64);
        // Every subsequent load hits.
        let cost = m
            .stash_tx(0, false, 0, &(0..32).collect::<Vec<_>>(), out.index)
            .unwrap();
        assert_eq!(cost.latency, 1);
        assert_eq!(m.counters().get("stash.miss"), 0);
    }

    #[test]
    fn line_grain_registration_causes_false_sharing() {
        let mut m = MemorySystem::new(SystemConfig::for_applications(), MemConfigKind::Cache);
        m.set_line_grain_registration(true);
        // Two CUs store to different words of the same line: the second
        // store revokes the first core's whole-line registration.
        m.gpu_global_tx(0, true, &tx(&[0x5000])).unwrap();
        m.gpu_global_tx(1, true, &tx(&[0x5004])).unwrap();
        assert!(m.counters().get("coherence.false_sharing_revocation") > 0);
        assert_eq!(m.llc().words_registered_to(CoreId(0)), 0);
        // Word-granular DeNovo has no such revocations.
        let mut w = MemorySystem::new(SystemConfig::for_applications(), MemConfigKind::Cache);
        w.gpu_global_tx(0, true, &tx(&[0x5000])).unwrap();
        w.gpu_global_tx(1, true, &tx(&[0x5004])).unwrap();
        assert_eq!(w.counters().get("coherence.false_sharing_revocation"), 0);
        assert_eq!(w.llc().words_registered_to(CoreId(0)), 1);
    }

    #[test]
    fn verify_oracle_accepts_correct_mixed_traffic() {
        for kind in MemConfigKind::ALL {
            let mut m = micro(kind);
            m.set_verify(true);
            assert!(m.verify_enabled());
            // Cache traffic: two CUs and a CPU contending on one line.
            m.gpu_global_tx(0, true, &tx(&[0x1000, 0x1004])).unwrap();
            m.cpu_access(0, false, VAddr(0x1000)).unwrap();
            m.cpu_access(1, true, VAddr(0x1008)).unwrap();
            m.gpu_global_tx(0, false, &tx(&[0x1008])).unwrap();
            if kind.uses_stash() {
                let tile = TileMap::new(VAddr(0x10000), 4, 16, 16, 0, 1).unwrap();
                let out = m
                    .stash_add_map(0, 0, tile, 0, UsageMode::MappedCoherent)
                    .unwrap();
                m.stash_tx(0, true, 0, &[0, 1], out.index).unwrap();
                m.stash_tx(0, false, 0, &[2], out.index).unwrap();
                m.end_thread_block(0, 0);
                // Lazily-held registered stash data survives the boundary.
                m.end_kernel().unwrap();
                m.cpu_access(0, false, VAddr(0x10000)).unwrap();
            }
            if kind.uses_dma() {
                let tile = TileMap::new(VAddr(0x20000), 4, 16, 16, 0, 1).unwrap();
                m.dma_transfer(0, &tile, false).unwrap();
                m.dma_transfer(0, &tile, true).unwrap();
            }
            m.end_kernel().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "registry says")]
    fn verify_oracle_rejects_phantom_registration() {
        let mut m = micro(MemConfigKind::Cache);
        m.set_verify(true);
        // Corrupt the registry directly: claim core 3's L1 owns a word it
        // never stored to. The next checked operation must panic.
        m.llc
            .register_word(LineAddr(0x4000), 0, Registration::Cache(CoreId(3)));
        m.cpu_access(0, false, VAddr(0x8000)).unwrap();
    }

    #[test]
    #[should_panic(expected = "Registered but the registry entry")]
    fn verify_oracle_rejects_lost_registration() {
        let mut m = micro(MemConfigKind::Cache);
        m.set_verify(true);
        m.gpu_global_tx(0, true, &tx(&[0x1000])).unwrap();
        // Corrupt the registry the other way: drop CU 0's registration
        // while its L1 still holds the word Registered.
        let line = m.pt.translate(VAddr(0x1000)).line(64);
        m.llc.writeback_word(line, 0, CoreId(0));
        m.cpu_access(0, false, VAddr(0x8000)).unwrap();
    }

    #[test]
    fn instruction_energy_lands_in_core_component() {
        let mut m = micro(MemConfigKind::Cache);
        m.note_gpu_instructions(10);
        assert_eq!(m.gpu_instructions(), 10);
        assert!(m.energy().component(Component::GpuCore) > 0);
        assert_eq!(m.energy().component(Component::L1), 0);
    }
}
