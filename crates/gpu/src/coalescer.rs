//! The memory coalescer: groups a warp's lane addresses into line-sized
//! transactions.
//!
//! A warp memory instruction presents up to 32 lane addresses. Lanes that
//! fall in the same cache line coalesce into one L1 transaction; a
//! unit-stride access coalesces perfectly (two 64 B transactions for 32
//! four-byte lanes) while an AoS-strided access shatters into one
//! transaction per object — the mechanism behind the cache's wasted
//! fetches and energy on AoS data (§1.1), which the stash's compact
//! storage avoids.

use mem::addr::VAddr;

/// One coalesced transaction: distinct words of one cache line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// The virtual line base address.
    pub line_va: VAddr,
    /// The distinct word addresses accessed within the line, sorted.
    pub words: Vec<VAddr>,
}

/// Coalesces per-lane addresses into per-line transactions.
///
/// Duplicate lane addresses (broadcast reads) collapse into one word.
/// Transactions are returned in first-touch order, matching issue order.
///
/// # Example
///
/// ```
/// use gpu::coalescer::coalesce;
/// use mem::addr::VAddr;
///
/// // Unit stride: 32 lanes, 2 lines.
/// let lanes: Vec<VAddr> = (0..32).map(|i| VAddr(0x1000 + i * 4)).collect();
/// let txs = coalesce(&lanes, 64);
/// assert_eq!(txs.len(), 2);
/// assert_eq!(txs[0].words.len(), 16);
/// ```
#[inline]
pub fn coalesce(lanes: &[VAddr], line_bytes: u64) -> Vec<Transaction> {
    // A unit-stride warp touches at most ceil(32*4/64)+1 lines; reserving
    // a handful of slots up front covers the common shapes without a
    // reallocation, and a fully shattered warp grows from there.
    let mut txs: Vec<Transaction> = Vec::with_capacity(4.min(lanes.len()));
    let words_per_line = (line_bytes / 4) as usize;
    for &va in lanes {
        let word_va = va.align_down(4);
        let line_va = va.align_down(line_bytes);
        match txs.iter_mut().find(|t| t.line_va == line_va) {
            Some(t) => {
                if !t.words.contains(&word_va) {
                    t.words.push(word_va);
                }
            }
            None => {
                let mut words = Vec::with_capacity(words_per_line.min(lanes.len()));
                words.push(word_va);
                txs.push(Transaction { line_va, words });
            }
        }
    }
    for t in &mut txs {
        t.words.sort_unstable();
    }
    txs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_aos_shatters() {
        // 32 lanes reading one 4 B field of 64 B objects: 32 transactions.
        let lanes: Vec<VAddr> = (0..32).map(|i| VAddr(0x1000 + i * 64)).collect();
        let txs = coalesce(&lanes, 64);
        assert_eq!(txs.len(), 32);
        assert!(txs.iter().all(|t| t.words.len() == 1));
    }

    #[test]
    fn broadcast_collapses() {
        let lanes = vec![VAddr(0x2000); 32];
        let txs = coalesce(&lanes, 64);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].words, vec![VAddr(0x2000)]);
    }

    #[test]
    fn misaligned_bytes_share_a_word() {
        let txs = coalesce(&[VAddr(0x1001), VAddr(0x1002)], 64);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].words, vec![VAddr(0x1000)]);
    }

    #[test]
    fn empty_lanes_mean_no_transactions() {
        assert!(coalesce(&[], 64).is_empty());
    }

    #[test]
    fn preserves_first_touch_order() {
        let lanes = vec![VAddr(0x2000), VAddr(0x1000), VAddr(0x2004)];
        let txs = coalesce(&lanes, 64);
        assert_eq!(txs[0].line_va, VAddr(0x2000));
        assert_eq!(txs[1].line_va, VAddr(0x1000));
        assert_eq!(txs[0].words.len(), 2);
    }

    #[test]
    fn duplicates_among_distinct_lanes_do_not_add_transactions() {
        // 16 pairs of duplicate lanes over one line: every second lane
        // repeats its predecessor's address. Still one transaction with
        // the 16 distinct words, exactly as if each appeared once.
        let lanes: Vec<VAddr> = (0..32).map(|i| VAddr(0x3000 + (i / 2) * 4)).collect();
        let txs = coalesce(&lanes, 64);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].words.len(), 16);
        assert_eq!(txs[0].words[0], VAddr(0x3000));
        assert_eq!(txs[0].words[15], VAddr(0x303c));
    }

    #[test]
    fn unaligned_warp_straddles_a_line_boundary() {
        // Unit-stride words starting 8 B before a line boundary: the warp
        // spans three lines (2 + 16 + 14 words), not the aligned two.
        let lanes: Vec<VAddr> = (0..32).map(|i| VAddr(0x1038 + i * 4)).collect();
        let txs = coalesce(&lanes, 64);
        assert_eq!(txs.len(), 3);
        assert_eq!(txs[0].line_va, VAddr(0x1000));
        assert_eq!(txs[0].words.len(), 2);
        assert_eq!(txs[1].line_va, VAddr(0x1040));
        assert_eq!(txs[1].words.len(), 16);
        assert_eq!(txs[2].line_va, VAddr(0x1080));
        assert_eq!(txs[2].words.len(), 14);
    }

    #[test]
    fn single_lane_warp_is_one_single_word_transaction() {
        // A one-lane warp (divergent tail) still costs a full transaction.
        let txs = coalesce(&[VAddr(0x4004)], 64);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].line_va, VAddr(0x4000));
        assert_eq!(txs[0].words, vec![VAddr(0x4004)]);
    }
}
