//! The machine model: GPU CUs, CPU cores, and the memory-system
//! orchestrator that ties the substrates together.
//!
//! This crate assembles the pieces the other crates provide — L1 caches and
//! the LLC/registry from `mem`, the stash from `stash`, the mesh from
//! `noc`, the energy model from `energy` — into the paper's simulated
//! machine (Figure 4), and executes *memory-access programs*:
//!
//! * [`program`] — the workload IR: kernels of thread blocks of per-warp
//!   operation streams, plus CPU phases;
//! * [`config::MemConfigKind`] — the six memory configurations of §5.3
//!   (Scratch, ScratchG, ScratchGD, Cache, Stash, StashG);
//! * [`memsys::MemorySystem`] — the shared memory hierarchy: every access
//!   updates coherence state and accounts latency, traffic and energy;
//! * [`cu`] / [`cpu`] — timing models (in-order warps with round-robin
//!   latency hiding on the GPU; serial in-order CPU cores in parallel);
//! * [`machine::Machine`] — runs a [`program::Program`] end to end and
//!   produces a [`report::RunReport`] with the quantities every figure of
//!   the paper is built from.
//!
//! # Example
//!
//! ```
//! use gpu::config::MemConfigKind;
//! use gpu::machine::Machine;
//! use gpu::program::{Kernel, Phase, Program, Stage, ThreadBlock, WarpOp};
//! use mem::addr::VAddr;
//! use sim::config::SystemConfig;
//!
//! let mut tb = ThreadBlock::new();
//! let mut stage = Stage::new(1);
//! stage.warps[0] = vec![WarpOp::GlobalMem {
//!     write: false,
//!     lanes: (0..32).map(|i| VAddr(0x1000 + i * 4)).collect(),
//! }];
//! tb.stages.push(stage);
//! let program = Program {
//!     phases: vec![Phase::Gpu(Kernel { blocks: vec![tb] })],
//! };
//! let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Cache);
//! let report = machine.run(&program).unwrap();
//! assert!(report.gpu_cycles > 0);
//! ```

#![forbid(unsafe_code)]

pub mod certificate;
pub mod coalescer;
pub mod config;
pub mod cpu;
pub mod cu;
pub mod machine;
pub mod memsys;
pub mod program;
pub mod report;

pub use certificate::{ConflictCertificate, KernelCertificate};
pub use config::MemConfigKind;
pub use machine::Machine;
pub use program::{Kernel, Phase, Program, Stage, ThreadBlock, WarpOp};
pub use report::RunReport;
