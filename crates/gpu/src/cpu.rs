//! CPU timing model.
//!
//! CPU cores are simple in-order machines with one outstanding memory
//! access: each op costs one issue cycle plus its memory latency. Cores of
//! a phase run in parallel, so the phase's duration is the slowest core's.
//! The paper parallelizes microbenchmark CPU code across 15 cores "to
//! prevent the CPU accesses from dominating execution time" — the same
//! structure the `workloads` crate emits.
//!
//! With [`MemorySystem::enable_cpu_stashes`] (the paper's §8 extension to
//! "other compute units"), a phase may declare per-core stash mappings
//! ([`CpuPhase::stash_maps`]); its [`CpuOp::StashMem`] ops then enjoy the
//! same implicit, compact, word-granular transfers CUs get.

use crate::memsys::MemorySystem;
use crate::program::{CpuOp, CpuPhase};
use sim::SimError;
use stash::MapIndex;

/// Thread-block id space for CPU-phase stash mappings (disjoint from GPU
/// thread blocks, which count up from zero).
const CPU_TB_BASE: usize = 0x0800_0000;

/// Runs a CPU phase; returns its duration in CPU cycles.
///
/// # Errors
///
/// Returns an error if the phase declares stash mappings without
/// [`MemorySystem::enable_cpu_stashes`], or a `StashMem` op references an
/// undeclared slot.
///
/// # Panics
///
/// Panics if the phase uses more cores than the machine has.
pub fn run_cpu_phase(mem: &mut MemorySystem, phase: &CpuPhase) -> Result<u64, SimError> {
    assert!(
        phase.per_core.len() <= mem.config().cpu_cores,
        "phase uses {} cores, machine has {}",
        phase.per_core.len(),
        mem.config().cpu_cores
    );
    if !phase.stash_maps.is_empty() && !mem.cpu_stashes_enabled() {
        return Err(SimError::InvalidMapping(
            "CPU stash mappings need MemorySystem::enable_cpu_stashes".into(),
        ));
    }

    // Establish this phase's per-core mappings (bump-allocated from the
    // base of each core's stash).
    let gpu_cus = mem.config().gpu_cus;
    let chunk_words = mem.config().stash_chunk_bytes / 4;
    let mut core_maps: Vec<Vec<(MapIndex, usize)>> = Vec::new();
    for (c, tiles) in phase.stash_maps.iter().enumerate() {
        let core_id = gpu_cus + c;
        let tb = CPU_TB_BASE + core_id;
        let mut maps = Vec::with_capacity(tiles.len());
        let mut next_word = 0usize;
        for tile in tiles {
            let out = mem.stash_add_map(
                core_id,
                tb,
                *tile,
                next_word,
                stash::UsageMode::MappedCoherent,
            )?;
            next_word += (tile.local_words() as usize).next_multiple_of(chunk_words);
            maps.push((out.index, 0));
        }
        core_maps.push(maps);
    }

    let mut slowest = 0u64;
    for (core, ops) in phase.per_core.iter().enumerate() {
        let mut t = 0u64;
        for op in ops {
            match op {
                CpuOp::Compute(n) => t += u64::from(*n),
                CpuOp::Mem { write, vaddr } => {
                    t += 1 + mem.cpu_access(core, *write, *vaddr)?;
                }
                CpuOp::StashMem { write, slot, word } => {
                    let (map, _) =
                        *core_maps
                            .get(core)
                            .and_then(|m| m.get(*slot))
                            .ok_or_else(|| {
                                SimError::InvalidMapping(format!(
                                    "CPU core {core} has no stash mapping slot {slot}"
                                ))
                            })?;
                    let cost = mem.stash_tx(gpu_cus + core, *write, 0, &[*word], map)?;
                    t += 1 + cost.latency + cost.occupancy;
                }
            }
        }
        slowest = slowest.max(t);
    }

    // Phase teardown: seal dirty chunks for lazy writeback, exactly like
    // a GPU thread block completing.
    for (c, _) in phase.stash_maps.iter().enumerate() {
        let core_id = gpu_cus + c;
        mem.end_thread_block(core_id, CPU_TB_BASE + core_id);
    }
    Ok(slowest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfigKind;
    use mem::addr::VAddr;
    use mem::tile::TileMap;
    use sim::config::SystemConfig;

    fn memsys() -> MemorySystem {
        MemorySystem::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Cache)
    }

    #[test]
    fn parallel_cores_take_max_not_sum() {
        let mut m = memsys();
        let ops = vec![CpuOp::Compute(100)];
        let serial = run_cpu_phase(
            &mut m,
            &CpuPhase {
                per_core: vec![ops.clone()],
                stash_maps: Vec::new(),
            },
        )
        .unwrap();
        let parallel = run_cpu_phase(
            &mut m,
            &CpuPhase {
                per_core: vec![ops.clone(); 15],
                stash_maps: Vec::new(),
            },
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn memory_ops_add_latency() {
        let mut m = memsys();
        let t = run_cpu_phase(
            &mut m,
            &CpuPhase {
                per_core: vec![vec![CpuOp::Mem {
                    write: false,
                    vaddr: VAddr(0x4000),
                }]],
                stash_maps: Vec::new(),
            },
        )
        .unwrap();
        assert!(t > 1, "a cold miss must cost more than the issue cycle");
    }

    #[test]
    fn cpu_stash_requires_the_switch() {
        let mut m = MemorySystem::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
        let tile = TileMap::new(VAddr(0x8000), 4, 16, 16, 0, 1).unwrap();
        let phase = CpuPhase {
            per_core: vec![vec![CpuOp::StashMem {
                write: false,
                slot: 0,
                word: 0,
            }]],
            stash_maps: vec![vec![tile]],
        };
        assert!(run_cpu_phase(&mut m, &phase).is_err());
        m.enable_cpu_stashes();
        let t = run_cpu_phase(&mut m, &phase).unwrap();
        assert!(t > 1, "the first access misses and fetches");
        // A second identical phase: the mapping replicates and the data
        // is still resident (Shared words survive — no kernel-end
        // self-invalidation on CPU cores in this extension).
        let t2 = run_cpu_phase(&mut m, &phase).unwrap();
        assert!(t2 <= t);
    }

    #[test]
    fn undeclared_slot_errors() {
        let mut m = MemorySystem::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
        m.enable_cpu_stashes();
        let phase = CpuPhase {
            per_core: vec![vec![CpuOp::StashMem {
                write: false,
                slot: 3,
                word: 0,
            }]],
            stash_maps: vec![vec![]],
        };
        assert!(run_cpu_phase(&mut m, &phase).is_err());
    }

    #[test]
    #[should_panic(expected = "cores")]
    fn too_many_cores_panics() {
        let mut m = memsys();
        let _ = run_cpu_phase(
            &mut m,
            &CpuPhase {
                per_core: vec![Vec::new(); 16],
                stash_maps: Vec::new(),
            },
        );
    }
}
