//! The six simulated memory configurations (§5.3).

/// Which local-memory organization the GPU CUs use, and how aggressively
/// accesses are mapped to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemConfigKind {
    /// 16 KB scratchpad + 32 KB L1; accesses as in the original program.
    Scratch,
    /// `Scratch` with all global accesses converted to scratchpad accesses.
    ScratchG,
    /// `ScratchG` with D2MA-style DMA support for the copies.
    ScratchGD,
    /// 32 KB L1 only; scratchpad accesses converted to global accesses.
    Cache,
    /// 16 KB stash + 32 KB L1; scratchpad accesses converted to stash.
    Stash,
    /// `Stash` with all global accesses converted to stash accesses.
    StashG,
}

impl MemConfigKind {
    /// All configurations in the paper's figure order.
    pub const ALL: [MemConfigKind; 6] = [
        MemConfigKind::Scratch,
        MemConfigKind::ScratchG,
        MemConfigKind::ScratchGD,
        MemConfigKind::Cache,
        MemConfigKind::Stash,
        MemConfigKind::StashG,
    ];

    /// The four configurations Figure 5 compares (microbenchmarks have no
    /// other global accesses, so ScratchG ≡ Scratch and StashG ≡ Stash).
    pub const FIGURE5: [MemConfigKind; 4] = [
        MemConfigKind::Scratch,
        MemConfigKind::Cache,
        MemConfigKind::ScratchGD,
        MemConfigKind::Stash,
    ];

    /// The five configurations Figure 6 compares.
    pub const FIGURE6: [MemConfigKind; 5] = [
        MemConfigKind::Scratch,
        MemConfigKind::ScratchG,
        MemConfigKind::Cache,
        MemConfigKind::Stash,
        MemConfigKind::StashG,
    ];

    /// Whether CUs have a scratchpad.
    pub fn uses_scratchpad(self) -> bool {
        matches!(
            self,
            MemConfigKind::Scratch | MemConfigKind::ScratchG | MemConfigKind::ScratchGD
        )
    }

    /// Whether CUs have a stash.
    pub fn uses_stash(self) -> bool {
        matches!(self, MemConfigKind::Stash | MemConfigKind::StashG)
    }

    /// Whether scratchpad data moves via the DMA engine.
    pub fn uses_dma(self) -> bool {
        self == MemConfigKind::ScratchGD
    }

    /// Whether *global* array accesses are converted to local-memory
    /// accesses (the "G" variants).
    pub fn globals_to_local(self) -> bool {
        matches!(
            self,
            MemConfigKind::ScratchG | MemConfigKind::ScratchGD | MemConfigKind::StashG
        )
    }

    /// Stable one-byte snapshot encoding (figure order).
    pub fn code(self) -> u8 {
        match self {
            MemConfigKind::Scratch => 0,
            MemConfigKind::ScratchG => 1,
            MemConfigKind::ScratchGD => 2,
            MemConfigKind::Cache => 3,
            MemConfigKind::Stash => 4,
            MemConfigKind::StashG => 5,
        }
    }

    /// Decodes a [`MemConfigKind::code`] byte, rejecting unknown values.
    pub fn from_code(code: u8) -> Result<Self, sim::SimError> {
        Ok(match code {
            0 => MemConfigKind::Scratch,
            1 => MemConfigKind::ScratchG,
            2 => MemConfigKind::ScratchGD,
            3 => MemConfigKind::Cache,
            4 => MemConfigKind::Stash,
            5 => MemConfigKind::StashG,
            v => {
                return Err(sim::SimError::CheckpointCorrupt {
                    what: "memory configuration",
                    detail: format!("unknown configuration code {v}"),
                })
            }
        })
    }

    /// The figure label.
    pub fn name(self) -> &'static str {
        match self {
            MemConfigKind::Scratch => "Scratch",
            MemConfigKind::ScratchG => "ScratchG",
            MemConfigKind::ScratchGD => "ScratchGD",
            MemConfigKind::Cache => "Cache",
            MemConfigKind::Stash => "Stash",
            MemConfigKind::StashG => "StashG",
        }
    }
}

impl std::fmt::Display for MemConfigKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_flags_are_exclusive() {
        for k in MemConfigKind::ALL {
            assert!(
                !(k.uses_scratchpad() && k.uses_stash()),
                "{k} cannot have both local structures"
            );
        }
        assert!(!MemConfigKind::Cache.uses_scratchpad());
        assert!(!MemConfigKind::Cache.uses_stash());
    }

    #[test]
    fn dma_implies_scratchpad() {
        for k in MemConfigKind::ALL {
            if k.uses_dma() {
                assert!(k.uses_scratchpad());
            }
        }
    }

    #[test]
    fn g_variants_convert_globals() {
        assert!(MemConfigKind::ScratchG.globals_to_local());
        assert!(MemConfigKind::StashG.globals_to_local());
        assert!(MemConfigKind::ScratchGD.globals_to_local());
        assert!(!MemConfigKind::Scratch.globals_to_local());
        assert!(!MemConfigKind::Cache.globals_to_local());
    }

    #[test]
    fn figure_sets_are_subsets_of_all() {
        for k in MemConfigKind::FIGURE5 {
            assert!(MemConfigKind::ALL.contains(&k));
        }
        for k in MemConfigKind::FIGURE6 {
            assert!(MemConfigKind::ALL.contains(&k));
        }
    }
}
