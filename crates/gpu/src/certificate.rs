//! Conflict certificates: static proofs that a kernel's CUs never claim
//! the same word, letting the epoch merge skip full reconciliation.
//!
//! A certificate is *produced* by the `verify::dataflow` footprint pass
//! (which lives above this crate in the dependency graph) and *consumed*
//! by [`crate::machine::Machine::run_parallel`]: for a certified kernel,
//! [`crate::memsys::MemorySystem::apply_staged`] only tracks cross-core
//! carryover registrations (words some *other* core owned before the
//! kernel) instead of every registration the kernel replays, shrinking
//! the per-word reconciliation pass to the cross-kernel residue.
//!
//! # Soundness contract
//!
//! Certification is one-directional: **certified ⇒ runtime-disjoint**,
//! never the converse. A certificate asserts that within each certified
//! kernel, every shared word is ownership-claimed (word registration or
//! DMA store-through) by at most one CU. Under that assumption the
//! skipped reconciliation entries are provably no-ops — the sole
//! claiming CU's shard already resolved its own-word state sequentially,
//! and the merged-back shard structures carry the result — so digests
//! stay byte-identical. A *false* certificate can corrupt the merge,
//! which is why the dynamic footprint oracle (`MemorySystem::set_verify`)
//! cross-checks every certified merge and raises
//! [`sim::SimError::CertificateViolation`] on any word claimed by two
//! CUs.
//!
//! The verdicts are recorded at both word and line granularity because
//! the `line_grain_registration` ablation widens every cache-store
//! registration to the full line: a kernel whose CUs touch disjoint
//! words of a shared line is safe under word-granular DeNovo but races
//! under the MESI-style ablation. The machine picks the verdict that
//! matches its registration mode.

use crate::machine::BlockDistribution;

/// Per-kernel disjointness verdicts, indexed by GPU-phase ordinal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCertificate {
    /// All inter-CU footprint pairs are provably word-disjoint.
    pub word_disjoint: bool,
    /// All inter-CU footprint pairs are provably *line*-disjoint —
    /// required instead of `word_disjoint` when the machine runs the
    /// `line_grain_registration` ablation.
    pub line_disjoint: bool,
}

/// A static conflict certificate for one program on one machine shape.
///
/// The block-to-CU assignment is part of the proof: the footprint pass
/// groups blocks with [`crate::machine::assign_blocks`] under the same
/// `(cus, distribution)` the machine will use, and the machine ignores
/// a certificate whose shape does not match its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictCertificate {
    /// Number of GPU CUs the footprints were grouped over.
    pub cus: usize,
    /// The block distribution policy the grouping assumed.
    pub distribution: BlockDistribution,
    /// One verdict per GPU phase, in program order.
    pub kernels: Vec<KernelCertificate>,
}

impl ConflictCertificate {
    /// Number of kernels whose word-granular verdict is disjoint.
    #[must_use]
    pub fn certified_kernels(&self) -> usize {
        self.kernels.iter().filter(|k| k.word_disjoint).count()
    }
}
