//! The workload intermediate representation.
//!
//! A [`Program`] is what the memory system *sees* of an application: a
//! sequence of GPU kernels and CPU phases. Each kernel is a set of thread
//! blocks; each thread block declares its local-memory allocations and a
//! sequence of [`Stage`]s — barrier-separated phases (the region between
//! `__syncthreads` calls in real kernels). A stage carries its mapping
//! setup (`AddMap` on a slot's first binding, `ChgMap` on rebinding — how
//! k-stepped kernels like SGEMM stay within the 4-entry map index table),
//! its DMA transfers, and per-warp streams of operations.
//!
//! The `workloads` crate lowers each benchmark to a per-configuration
//! `Program`: the Scratch variants carry explicit copy loops, the DMA
//! variant carries [`DmaReq`]s, and the stash variants carry [`MapReq`]s —
//! exactly the code differences of Figure 1.

use mem::addr::VAddr;
use mem::tile::TileMap;
use stash::UsageMode;

/// Identifies one of a thread block's local-memory allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllocId(pub usize);

/// A local-memory allocation request (scratchpad or stash space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalAlloc {
    /// Size in 4-byte words.
    pub words: u64,
}

/// A mapping request: bind `tile` to map-index-table slot `slot`, backed
/// by allocation `alloc`. The first binding of a slot is an `AddMap`;
/// rebinding an already-bound slot is a `ChgMap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapReq {
    /// The map-index-table slot being bound.
    pub slot: usize,
    /// Which allocation receives the mapping.
    pub alloc: AllocId,
    /// The global tile being mapped.
    pub tile: TileMap,
    /// Coherent or non-coherent mapping.
    pub mode: UsageMode,
}

/// A DMA transfer request for the `ScratchGD` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaReq {
    /// Which allocation the transfer fills / drains.
    pub alloc: AllocId,
    /// The global tile moved.
    pub tile: TileMap,
    /// Preload global → scratchpad before the stage body.
    pub load: bool,
    /// Write back scratchpad → global after the stage body.
    pub store: bool,
}

/// One warp-level operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarpOp {
    /// `n` non-memory instructions (ALU, control, address arithmetic).
    Compute(u32),
    /// A global memory instruction; one virtual address per active lane.
    GlobalMem {
        /// Store (true) or load.
        write: bool,
        /// Per-lane addresses (≤ 32; inactive lanes omitted).
        lanes: Vec<VAddr>,
    },
    /// A local-memory instruction (scratchpad or stash, per the machine's
    /// configuration); one *word offset into the allocation* per lane.
    LocalMem {
        /// Store (true) or load.
        write: bool,
        /// The allocation accessed.
        alloc: AllocId,
        /// Map-index-table slot (stash configurations).
        slot: usize,
        /// Per-lane word offsets within the allocation.
        lanes: Vec<u32>,
    },
}

impl WarpOp {
    /// Number of warp instructions this op represents.
    pub fn instruction_count(&self) -> u64 {
        match self {
            WarpOp::Compute(n) => u64::from(*n),
            _ => 1,
        }
    }
}

/// A barrier-separated phase of a thread block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stage {
    /// Slot bindings performed before the stage body (AddMap/ChgMap).
    pub maps: Vec<MapReq>,
    /// DMA transfers: loads run before the body (blocking the core),
    /// stores after it.
    pub dmas: Vec<DmaReq>,
    /// Per-warp operation streams; all warps finish before the next
    /// stage starts (the `__syncthreads` barrier).
    pub warps: Vec<Vec<WarpOp>>,
    /// The stage's addresses were computed from input *data* (e.g. an
    /// on-demand index list), not just thread/block ids. The lowered
    /// lanes are one concrete witness; a different input could produce
    /// different ones, so static analyses must treat the stage's index
    /// expressions as unknown (`verify::dataflow` sends them to ⊤) even
    /// though the simulator executes the concrete lanes recorded here.
    pub tainted: bool,
}

impl Stage {
    /// Creates an empty stage with `warps` empty streams.
    pub fn new(warps: usize) -> Self {
        Self {
            maps: Vec::new(),
            dmas: Vec::new(),
            warps: vec![Vec::new(); warps],
            tainted: false,
        }
    }

    /// Total warp instructions in the stage.
    pub fn instruction_count(&self) -> u64 {
        self.warps
            .iter()
            .flatten()
            .map(WarpOp::instruction_count)
            .sum()
    }
}

/// One thread block: allocations plus its staged execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadBlock {
    /// Local allocations (index = [`AllocId`]).
    pub allocs: Vec<LocalAlloc>,
    /// Barrier-separated stages, in order.
    pub stages: Vec<Stage>,
}

impl ThreadBlock {
    /// Creates an empty thread block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total warp instructions in the block (setup ops excluded).
    pub fn instruction_count(&self) -> u64 {
        self.stages.iter().map(Stage::instruction_count).sum()
    }

    /// Total local words the block allocates.
    pub fn local_words(&self) -> u64 {
        self.allocs.iter().map(|a| a.words).sum()
    }

    /// All mapping requests across stages (diagnostics).
    pub fn maps(&self) -> impl Iterator<Item = &MapReq> {
        self.stages.iter().flat_map(|s| s.maps.iter())
    }
}

/// One GPU kernel: the unit of CPU→GPU invocation, and of scratchpad
/// flushing / stash self-invalidation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Kernel {
    /// Thread blocks, distributed round-robin over the CUs.
    pub blocks: Vec<ThreadBlock>,
}

/// One CPU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuOp {
    /// `n` non-memory instructions.
    Compute(u32),
    /// A single-word memory access.
    Mem {
        /// Store (true) or load.
        write: bool,
        /// The accessed virtual address.
        vaddr: VAddr,
    },
    /// A CPU-side stash access (the paper's §8 extension: "expand the
    /// stash idea to other compute units (e.g., CPUs)"). Requires the
    /// phase to declare a mapping in [`CpuPhase::stash_maps`] and the
    /// machine's `enable_cpu_stashes` switch.
    StashMem {
        /// Store (true) or load.
        write: bool,
        /// Which of this core's phase mappings is accessed.
        slot: usize,
        /// Word offset within the mapping.
        word: u32,
    },
}

/// A CPU phase: each core runs its op stream; cores run in parallel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CpuPhase {
    /// One op stream per participating CPU core.
    pub per_core: Vec<Vec<CpuOp>>,
    /// Per-core stash mappings established at phase start (CPU-side
    /// stash extension); empty when CPUs use only their caches.
    pub stash_maps: Vec<Vec<TileMap>>,
}

/// One phase of an application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Phase {
    /// A GPU kernel launch (runs to completion).
    Gpu(Kernel),
    /// A CPU phase (after the preceding kernels complete).
    Cpu(CpuPhase),
}

/// A whole application, as the memory system sees it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Phases in program order.
    pub phases: Vec<Phase>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total GPU warp instructions across all kernels.
    pub fn gpu_instruction_count(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Gpu(k) => k.blocks.iter().map(ThreadBlock::instruction_count).sum(),
                Phase::Cpu(_) => 0,
            })
            .sum()
    }

    /// Number of GPU kernels.
    pub fn kernel_count(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| matches!(p, Phase::Gpu(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> ThreadBlock {
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: 64 });
        let mut stage = Stage::new(2);
        stage.warps[0] = vec![
            WarpOp::Compute(3),
            WarpOp::LocalMem {
                write: false,
                alloc: AllocId(0),
                slot: 0,
                lanes: (0..32).collect(),
            },
        ];
        stage.warps[1] = vec![WarpOp::GlobalMem {
            write: true,
            lanes: vec![VAddr(0x100)],
        }];
        tb.stages.push(stage);
        tb
    }

    #[test]
    fn instruction_counting() {
        let tb = block();
        // 3 compute + 1 local + 1 global.
        assert_eq!(tb.instruction_count(), 5);
        assert_eq!(tb.local_words(), 64);
    }

    #[test]
    fn program_aggregates() {
        let p = Program {
            phases: vec![
                Phase::Gpu(Kernel {
                    blocks: vec![block(), block()],
                }),
                Phase::Cpu(CpuPhase {
                    per_core: vec![vec![CpuOp::Compute(1)]],
                    stash_maps: Vec::new(),
                }),
                Phase::Gpu(Kernel {
                    blocks: vec![block()],
                }),
            ],
        };
        assert_eq!(p.gpu_instruction_count(), 15);
        assert_eq!(p.kernel_count(), 2);
    }

    #[test]
    fn stage_new_sizes_warp_streams() {
        let s = Stage::new(8);
        assert_eq!(s.warps.len(), 8);
        assert_eq!(s.instruction_count(), 0);
    }
}
