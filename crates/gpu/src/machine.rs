//! The whole machine: runs a [`Program`] across its GPU and CPU phases.

use crate::config::MemConfigKind;
use crate::cpu::run_cpu_phase;
use crate::cu::run_cu_blocks;
use crate::memsys::MemorySystem;
use crate::program::{Kernel, Phase, Program, ThreadBlock};
use crate::report::RunReport;
use sim::config::SystemConfig;
use sim::SimError;

/// A simulated machine: one [`SystemConfig`] + one [`MemConfigKind`].
///
/// # Example
///
/// ```
/// use gpu::config::MemConfigKind;
/// use gpu::machine::Machine;
/// use gpu::program::Program;
/// use sim::config::SystemConfig;
///
/// let mut machine = Machine::new(SystemConfig::for_applications(), MemConfigKind::StashG);
/// let report = machine.run(&Program::new()).unwrap();
/// assert_eq!(report.gpu_cycles, 0);
/// ```
#[derive(Debug)]
pub struct Machine {
    mem: MemorySystem,
    next_tb_id: usize,
}

impl Machine {
    /// Builds a machine.
    ///
    /// # Panics
    ///
    /// Panics if the system configuration is invalid.
    pub fn new(cfg: SystemConfig, kind: MemConfigKind) -> Self {
        Self {
            mem: MemorySystem::new(cfg, kind),
            next_tb_id: 0,
        }
    }

    /// The underlying memory system (diagnostics, ablation switches).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to the memory system (ablation switches; call before
    /// running).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Runs a program to completion and reports the measurements.
    ///
    /// # Errors
    ///
    /// Propagates allocation, mapping and configuration errors from the
    /// program's operations.
    pub fn run(&mut self, program: &Program) -> Result<RunReport, SimError> {
        let mut gpu_cycles = 0u64;
        let mut cpu_cycles = 0u64;
        for phase in &program.phases {
            match phase {
                Phase::Gpu(kernel) => {
                    // Keep trace stamps monotone across kernels: each
                    // kernel's scheduler restarts at cycle 0, offset by
                    // the cycles already spent.
                    self.mem.set_trace_base(gpu_cycles);
                    gpu_cycles += self.run_kernel(kernel)?;
                }
                Phase::Cpu(cpu) => cpu_cycles += run_cpu_phase(&mut self.mem, cpu)?,
            }
        }
        // End-of-run scrub: any injected corruption still latent in the
        // LLC or a stash is surfaced (parity on) before reporting, so a
        // fault-free report implies clean architectural state.
        self.mem.scrub_faults();
        let cfg = self.mem.config();
        let total_picos =
            cfg.gpu_clock.cycles_to_picos(gpu_cycles) + cfg.cpu_clock.cycles_to_picos(cpu_cycles);
        Ok(RunReport {
            gpu_cycles,
            cpu_cycles,
            total_picos,
            gpu_instructions: self.mem.gpu_instructions(),
            energy: *self.mem.energy(),
            traffic: *self.mem.traffic(),
            counters: self.mem.counters().clone(),
        })
    }

    fn run_kernel(&mut self, kernel: &Kernel) -> Result<u64, SimError> {
        let cus = self.mem.config().gpu_cus;
        let mut per_cu: Vec<Vec<(usize, &ThreadBlock)>> = vec![Vec::new(); cus];
        for (i, block) in kernel.blocks.iter().enumerate() {
            let id = self.next_tb_id;
            self.next_tb_id += 1;
            per_cu[i % cus].push((id, block));
        }
        // CUs run concurrently; the kernel completes with the slowest CU.
        // (State interactions across CUs within a kernel are processed
        // sequentially, which is exact for the paper's workloads — GPU
        // kernels share no data within a kernel, §1.2.)
        let mut kernel_cycles = 0u64;
        let mut cu_cycles = vec![0u64; cus];
        for (cu, blocks) in per_cu.iter().enumerate() {
            if blocks.is_empty() {
                continue;
            }
            cu_cycles[cu] = run_cu_blocks(&mut self.mem, cu, blocks)?;
            kernel_cycles = kernel_cycles.max(cu_cycles[cu]);
        }
        let launch = self.mem.config().kernel_launch_cycles;
        if self.mem.trace_enabled() {
            // Close the decomposition: every CU is attributed the full
            // kernel duration — cycles past its own last block are idle
            // (waiting on the slowest CU), plus the launch overhead —
            // so per-CU totals sum exactly to the report's gpu_cycles.
            for (cu, &used) in cu_cycles.iter().enumerate() {
                self.mem
                    .trace_stall(cu, sim::trace::StallReason::Idle, kernel_cycles - used);
                self.mem
                    .trace_stall(cu, sim::trace::StallReason::KernelLaunch, launch);
            }
            self.mem.set_trace_time(kernel_cycles);
        }
        self.mem.end_kernel()?;
        Ok(kernel_cycles + launch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{AllocId, CpuOp, CpuPhase, LocalAlloc, MapReq, Stage, WarpOp};
    use mem::addr::VAddr;
    use mem::tile::TileMap;
    use stash::UsageMode;

    fn stash_kernel(elems: u64, writes: bool) -> Kernel {
        let tile = TileMap::new(VAddr(0x40000), 4, 16, elems, 0, 1).unwrap();
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: elems });
        let mut stage = Stage::new(1);
        stage.maps.push(MapReq {
            slot: 0,
            alloc: AllocId(0),
            tile,
            mode: UsageMode::MappedCoherent,
        });
        let lanes: Vec<u32> = (0..elems.min(32) as u32).collect();
        stage.warps[0] = vec![WarpOp::LocalMem {
            write: false,
            alloc: AllocId(0),
            slot: 0,
            lanes: lanes.clone(),
        }];
        if writes {
            stage.warps[0].push(WarpOp::LocalMem {
                write: true,
                alloc: AllocId(0),
                slot: 0,
                lanes,
            });
        }
        tb.stages.push(stage);
        Kernel { blocks: vec![tb] }
    }

    #[test]
    fn gpu_then_cpu_phases_accumulate_time() {
        let program = Program {
            phases: vec![
                Phase::Gpu(stash_kernel(32, true)),
                Phase::Cpu(CpuPhase {
                    per_core: vec![vec![CpuOp::Mem {
                        write: false,
                        vaddr: VAddr(0x40000),
                    }]],
                    stash_maps: Vec::new(),
                }),
            ],
        };
        let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
        let report = machine.run(&program).unwrap();
        assert!(report.gpu_cycles > 0);
        assert!(report.cpu_cycles > 0);
        assert!(report.total_picos > 0);
        // The CPU pulled GPU-registered stash data via forwarding, not a
        // bursty kernel-end writeback.
        assert_eq!(report.counters.get("wb.stash_words"), 0);
        assert_eq!(report.counters.get("remote.forward"), 1);
    }

    #[test]
    fn cross_kernel_reuse_avoids_second_fetch() {
        // The same tile mapped by two kernels: kernel 2's accesses hit on
        // kernel 1's registered data.
        let program = Program {
            phases: vec![
                Phase::Gpu(stash_kernel(32, true)),
                Phase::Gpu(stash_kernel(32, true)),
            ],
        };
        let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
        let report = machine.run(&program).unwrap();
        // Kernel 1: 32 load fetches. Kernel 2: loads hit registered words.
        assert_eq!(report.counters.get("stash.fetch_words"), 32);
        assert_eq!(report.counters.get("stash.addmap_replicated"), 1);
    }

    #[test]
    fn blocks_distribute_across_cus() {
        let kernel = Kernel {
            blocks: (0..30)
                .map(|_| stash_kernel(32, false).blocks.remove(0))
                .collect(),
        };
        let program = Program {
            phases: vec![Phase::Gpu(kernel)],
        };
        let mut machine = Machine::new(SystemConfig::for_applications(), MemConfigKind::Stash);
        let report = machine.run(&program).unwrap();
        // 30 blocks × 1 AddMap each, across 15 CUs.
        assert_eq!(report.counters.get("stash.addmap"), 30);
    }

    #[test]
    fn empty_program_is_trivial() {
        let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Scratch);
        let report = machine.run(&Program::new()).unwrap();
        assert_eq!(report.total_picos, 0);
        assert_eq!(report.gpu_instructions, 0);
    }
}
