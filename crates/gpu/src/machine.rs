//! The whole machine: runs a [`Program`] across its GPU and CPU phases.

use crate::certificate::ConflictCertificate;
use crate::config::MemConfigKind;
use crate::cpu::run_cpu_phase;
use crate::cu::run_cu_blocks;
use crate::memsys::{MemorySystem, ShardResult, StageLog};
use crate::program::{Kernel, Phase, Program, ThreadBlock};
use crate::report::RunReport;
use sim::config::SystemConfig;
use sim::SimError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a kernel's thread blocks are spread across CUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockDistribution {
    /// Block `i` lands on CU `i % cus` — the seed behaviour, kept for
    /// the sequential path's pinned digests.
    RoundRobin,
    /// Greedy least-loaded by [`ThreadBlock::instruction_count`]: each
    /// block (in program order) goes to the CU with the smallest
    /// instruction load so far, ties broken by lowest CU id. Output
    /// order stays deterministic — per-CU lists preserve program order
    /// and thread-block ids are assigned in global block order.
    Balanced,
}

/// Settings for [`Machine::run_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Worker threads executing CU shards (clamped to the number of CUs
    /// with blocks; 1 runs the shards sequentially in CU order).
    pub threads: usize,
    /// Epoch length in kernel-local cycles for the staged-op merge. Any
    /// value produces identical state — the epochs slice one globally
    /// sorted stream — so this only sets the invariant-check cadence.
    pub epoch_cycles: u64,
    /// Block-to-CU distribution policy.
    pub distribution: BlockDistribution,
}

impl ParallelConfig {
    /// A config with `threads` workers, 64-cycle epochs, and balanced
    /// block distribution.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            epoch_cycles: 64,
            distribution: BlockDistribution::Balanced,
        }
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::with_threads(1)
    }
}

/// The block-to-CU assignment a kernel would get under `dist` on a
/// machine with `cus` CUs: entry `i` is block `i`'s CU.
///
/// This is the single source of truth for placement — both
/// [`Machine::run_parallel`] and the `verify::dataflow` footprint pass
/// (which groups block footprints per CU to prove inter-CU disjointness)
/// call it, so a [`ConflictCertificate`] always reasons about exactly
/// the grouping the machine executes.
#[must_use]
pub fn assign_blocks(kernel: &Kernel, dist: BlockDistribution, cus: usize) -> Vec<usize> {
    let mut load = vec![0u64; cus];
    kernel
        .blocks
        .iter()
        .enumerate()
        .map(|(i, block)| {
            let cu = match dist {
                BlockDistribution::RoundRobin => i % cus,
                BlockDistribution::Balanced => {
                    // min_by_key returns the first minimum: lowest CU id
                    // wins ties, so the placement is deterministic.
                    load.iter()
                        .enumerate()
                        .min_by_key(|&(_, &l)| l)
                        .map_or(0, |(cu, _)| cu)
                }
            };
            // Count an empty block as one unit so pure-launch blocks
            // still spread out instead of piling onto CU 0.
            load[cu] += block.instruction_count().max(1);
            cu
        })
        .collect()
}

/// Progress through a program's phase list — everything a resumed run
/// needs besides the memory system itself. Phases are the machine's
/// quiescence points: after [`MemorySystem::end_kernel`] no request is in
/// flight, no warp state is live, and no shard exists, so a cursor plus a
/// memory-system snapshot reproduces the run exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCursor {
    /// Index of the next phase to execute.
    pub next_phase: usize,
    /// GPU kernels completed so far (the certificate ordinal).
    pub ordinal: u64,
    /// GPU cycles accumulated over completed phases.
    pub gpu_cycles: u64,
    /// CPU cycles accumulated over completed phases.
    pub cpu_cycles: u64,
}

/// A stable fingerprint of a program's full structure, stored in every
/// checkpoint so a snapshot can only resume the program it was taken
/// from.
#[must_use]
pub fn program_fingerprint(program: &Program) -> u64 {
    sim::snapshot::fnv1a(format!("{program:?}").as_bytes())
}

/// Checkpoint section tag: machine progress metadata.
pub const SECTION_META: u32 = u32::from_le_bytes(*b"META");
/// Checkpoint section tag: the serialized memory system.
pub const SECTION_MSYS: u32 = u32::from_le_bytes(*b"MSYS");

/// A simulated machine: one [`SystemConfig`] + one [`MemConfigKind`].
///
/// # Example
///
/// ```
/// use gpu::config::MemConfigKind;
/// use gpu::machine::Machine;
/// use gpu::program::Program;
/// use sim::config::SystemConfig;
///
/// let mut machine = Machine::new(SystemConfig::for_applications(), MemConfigKind::StashG);
/// let report = machine.run(&Program::new()).unwrap();
/// assert_eq!(report.gpu_cycles, 0);
/// ```
#[derive(Debug)]
pub struct Machine {
    mem: MemorySystem,
    next_tb_id: usize,
    certificate: Option<ConflictCertificate>,
    certified_kernels: u64,
}

impl Machine {
    /// Builds a machine.
    ///
    /// # Panics
    ///
    /// Panics if the system configuration is invalid.
    pub fn new(cfg: SystemConfig, kind: MemConfigKind) -> Self {
        Self {
            mem: MemorySystem::new(cfg, kind),
            next_tb_id: 0,
            certificate: None,
            certified_kernels: 0,
        }
    }

    /// Installs a [`ConflictCertificate`] for subsequent
    /// [`Machine::run_parallel`] calls. A kernel merges through the
    /// certified fast path only when the certificate's machine shape
    /// (`cus`, `distribution`) matches the run and the kernel's verdict
    /// at the machine's registration granularity is disjoint; everything
    /// else silently falls back to full reconciliation, so installing a
    /// certificate can never change results — only merge work.
    pub fn set_certificate(&mut self, cert: ConflictCertificate) {
        self.certificate = Some(cert);
    }

    /// Removes any installed certificate (full reconciliation resumes).
    pub fn clear_certificate(&mut self) {
        self.certificate = None;
    }

    /// How many kernel merges ran the certified fast path so far.
    pub fn certified_kernels(&self) -> u64 {
        self.certified_kernels
    }

    /// The underlying memory system (diagnostics, ablation switches).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable access to the memory system (ablation switches; call before
    /// running).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Runs a program to completion and reports the measurements.
    ///
    /// # Errors
    ///
    /// Propagates allocation, mapping and configuration errors from the
    /// program's operations.
    pub fn run(&mut self, program: &Program) -> Result<RunReport, SimError> {
        let mut gpu_cycles = 0u64;
        let mut cpu_cycles = 0u64;
        for phase in &program.phases {
            match phase {
                Phase::Gpu(kernel) => {
                    // Keep trace stamps monotone across kernels: each
                    // kernel's scheduler restarts at cycle 0, offset by
                    // the cycles already spent.
                    self.mem.set_trace_base(gpu_cycles);
                    gpu_cycles += self.run_kernel(kernel)?;
                }
                Phase::Cpu(cpu) => cpu_cycles += run_cpu_phase(&mut self.mem, cpu)?,
            }
        }
        // End-of-run scrub: any injected corruption still latent in the
        // LLC or a stash is surfaced (parity on) before reporting, so a
        // fault-free report implies clean architectural state.
        self.mem.scrub_faults();
        let cfg = self.mem.config();
        let total_picos =
            cfg.gpu_clock.cycles_to_picos(gpu_cycles) + cfg.cpu_clock.cycles_to_picos(cpu_cycles);
        Ok(RunReport {
            gpu_cycles,
            cpu_cycles,
            total_picos,
            gpu_instructions: self.mem.gpu_instructions(),
            energy: *self.mem.energy(),
            traffic: *self.mem.traffic(),
            counters: self.mem.counters().clone(),
        })
    }

    /// Runs a program like [`Machine::run`], but executes each kernel's
    /// CUs as parallel shards merged deterministically at epoch
    /// boundaries: every CU gets a private snapshot of the memory
    /// system, runs its blocks against it, and the shards' staged
    /// LLC/registry operations are replayed in `(cycle, cu, seq)` order.
    /// Reports, counters, stall breakdowns, and state digests are
    /// identical for every `threads` value and every `epoch_cycles`
    /// value — only wall-clock time changes.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`Machine::run`]; when several CUs
    /// fail in one kernel, the lowest-numbered CU's error is returned
    /// (all shards are joined first), keeping the error deterministic.
    pub fn run_parallel(
        &mut self,
        program: &Program,
        par: &ParallelConfig,
    ) -> Result<RunReport, SimError> {
        let mut gpu_cycles = 0u64;
        let mut cpu_cycles = 0u64;
        let mut ordinal = 0u64;
        for phase in &program.phases {
            match phase {
                Phase::Gpu(kernel) => {
                    self.mem.set_trace_base(gpu_cycles);
                    gpu_cycles += self.run_kernel_parallel(kernel, par, ordinal)?;
                    ordinal += 1;
                }
                Phase::Cpu(cpu) => cpu_cycles += run_cpu_phase(&mut self.mem, cpu)?,
            }
        }
        self.mem.scrub_faults();
        let cfg = self.mem.config();
        let total_picos =
            cfg.gpu_clock.cycles_to_picos(gpu_cycles) + cfg.cpu_clock.cycles_to_picos(cpu_cycles);
        Ok(RunReport {
            gpu_cycles,
            cpu_cycles,
            total_picos,
            gpu_instructions: self.mem.gpu_instructions(),
            energy: *self.mem.energy(),
            traffic: *self.mem.traffic(),
            counters: self.mem.counters().clone(),
        })
    }

    /// Runs a program from `cursor`, calling `at_barrier` after every
    /// completed phase — the machine's quiescence points, where
    /// [`Machine::checkpoint`] captures complete state. `par` selects the
    /// parallel CU-shard path; `None` runs the sequential seed path.
    /// Reports, counters, and state digests are identical to an
    /// uninterrupted [`Machine::run`] / [`Machine::run_parallel`] of the
    /// same program.
    ///
    /// The end-of-run fault scrub happens only at true completion, so a
    /// checkpoint taken mid-program still carries latent corruption for
    /// the resumed run to detect — recovery cannot launder faults.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors and any error `at_barrier` returns
    /// (e.g. a failed checkpoint write).
    pub fn run_from<F>(
        &mut self,
        program: &Program,
        par: Option<&ParallelConfig>,
        cursor: &mut RunCursor,
        mut at_barrier: F,
    ) -> Result<RunReport, SimError>
    where
        F: FnMut(&Machine, &RunCursor) -> Result<(), SimError>,
    {
        while cursor.next_phase < program.phases.len() {
            match &program.phases[cursor.next_phase] {
                Phase::Gpu(kernel) => {
                    self.mem.set_trace_base(cursor.gpu_cycles);
                    let cycles = match par {
                        Some(p) => self.run_kernel_parallel(kernel, p, cursor.ordinal)?,
                        None => self.run_kernel(kernel)?,
                    };
                    cursor.gpu_cycles += cycles;
                    cursor.ordinal += 1;
                }
                Phase::Cpu(cpu) => cursor.cpu_cycles += run_cpu_phase(&mut self.mem, cpu)?,
            }
            cursor.next_phase += 1;
            at_barrier(&*self, cursor)?;
        }
        self.mem.scrub_faults();
        let cfg = self.mem.config();
        let total_picos = cfg.gpu_clock.cycles_to_picos(cursor.gpu_cycles)
            + cfg.cpu_clock.cycles_to_picos(cursor.cpu_cycles);
        Ok(RunReport {
            gpu_cycles: cursor.gpu_cycles,
            cpu_cycles: cursor.cpu_cycles,
            total_picos,
            gpu_instructions: self.mem.gpu_instructions(),
            energy: *self.mem.energy(),
            traffic: *self.mem.traffic(),
            counters: self.mem.counters().clone(),
        })
    }

    /// Captures a crash-consistent snapshot of the machine at a phase
    /// barrier: the program fingerprint, the run cursor, thread-block and
    /// certificate progress, and the complete memory hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the memory system is mid-shard (never the case between
    /// phases).
    #[must_use]
    pub fn checkpoint(&self, program: &Program, cursor: RunCursor) -> sim::snapshot::Snapshot {
        let mut meta = sim::snapshot::Writer::new();
        meta.put_u64(program_fingerprint(program));
        meta.put_usize(cursor.next_phase);
        meta.put_u64(cursor.ordinal);
        meta.put_u64(cursor.gpu_cycles);
        meta.put_u64(cursor.cpu_cycles);
        meta.put_usize(self.next_tb_id);
        meta.put_u64(self.certified_kernels);
        let mut msys = sim::snapshot::Writer::new();
        self.mem.save(&mut msys);
        let mut snap = sim::snapshot::Snapshot::new();
        snap.push_section(SECTION_META, meta.into_bytes());
        snap.push_section(SECTION_MSYS, msys.into_bytes());
        snap
    }

    /// Rebuilds a machine from a [`Machine::checkpoint`] snapshot,
    /// verifying the snapshot belongs to `program`. Returns the machine
    /// and the cursor to hand back to [`Machine::run_from`].
    ///
    /// An installed [`ConflictCertificate`] is *not* part of a snapshot
    /// (certificates never change results, only merge work) — re-install
    /// one after resuming if the fast path is wanted.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointCorrupt`] if the fingerprint does
    /// not match `program`, the cursor is out of range, or any section
    /// fails validation.
    pub fn resume(
        snap: &sim::snapshot::Snapshot,
        program: &Program,
    ) -> Result<(Self, RunCursor), SimError> {
        let corrupt = |detail: String| SimError::CheckpointCorrupt {
            what: "machine checkpoint",
            detail,
        };
        let meta = snap.section(SECTION_META, "checkpoint META section")?;
        let mut r = sim::snapshot::Reader::new(meta, "checkpoint META section");
        let fingerprint = r.take_u64()?;
        let expected = program_fingerprint(program);
        if fingerprint != expected {
            return Err(corrupt(format!(
                "snapshot fingerprint {fingerprint:#018x} does not match \
                 the program's {expected:#018x}"
            )));
        }
        let cursor = RunCursor {
            next_phase: r.take_usize()?,
            ordinal: r.take_u64()?,
            gpu_cycles: r.take_u64()?,
            cpu_cycles: r.take_u64()?,
        };
        if cursor.next_phase > program.phases.len() {
            return Err(corrupt(format!(
                "cursor phase {} beyond the program's {} phases",
                cursor.next_phase,
                program.phases.len()
            )));
        }
        let next_tb_id = r.take_usize()?;
        let certified_kernels = r.take_u64()?;
        r.finish()?;
        let msys = snap.section(SECTION_MSYS, "checkpoint MSYS section")?;
        let mut r = sim::snapshot::Reader::new(msys, "checkpoint MSYS section");
        let mem = MemorySystem::restore(&mut r)?;
        r.finish()?;
        Ok((
            Self {
                mem,
                next_tb_id,
                certificate: None,
                certified_kernels,
            },
            cursor,
        ))
    }

    /// Distributes a kernel's blocks across CUs, assigning thread-block
    /// ids in global block order regardless of policy.
    fn distribute<'k>(
        &mut self,
        kernel: &'k Kernel,
        dist: BlockDistribution,
        cus: usize,
    ) -> Vec<Vec<(usize, &'k ThreadBlock)>> {
        let assignment = assign_blocks(kernel, dist, cus);
        let mut per_cu: Vec<Vec<(usize, &'k ThreadBlock)>> = vec![Vec::new(); cus];
        for (block, &cu) in kernel.blocks.iter().zip(&assignment) {
            let id = self.next_tb_id;
            self.next_tb_id += 1;
            per_cu[cu].push((id, block));
        }
        per_cu
    }

    fn run_kernel_parallel(
        &mut self,
        kernel: &Kernel,
        par: &ParallelConfig,
        ordinal: u64,
    ) -> Result<u64, SimError> {
        let cus = self.mem.config().gpu_cus;
        // The kernel merges through the certified fast path when an
        // installed certificate proves its inter-CU footprints disjoint
        // for exactly this machine shape, at the granularity the
        // registry actually registers at.
        let certified = self.certificate.as_ref().is_some_and(|c| {
            c.cus == cus
                && c.distribution == par.distribution
                && usize::try_from(ordinal)
                    .ok()
                    .and_then(|k| c.kernels.get(k))
                    .is_some_and(|k| {
                        if self.mem.line_grain_registration() {
                            k.line_disjoint
                        } else {
                            k.word_disjoint
                        }
                    })
        });
        let per_cu = self.distribute(kernel, par.distribution, cus);
        // Fix every frame assignment before forking: shards must never
        // allocate a frame, or the address map would depend on the CU
        // interleaving.
        self.mem.pretouch_kernel(kernel);
        let dram_pre = self.mem.llc().dram_line_fetches();
        // One job per CU that has work, claimed off a shared cursor.
        // Each worker forks its own shard from the (now read-only)
        // master, runs it, and reduces it in place — so the snapshot
        // clone and its teardown, the dominant per-kernel costs, run on
        // the worker threads instead of serially on this one. The salt
        // ties the shard's fault stream to (kernel, cu), independent of
        // the thread count.
        let jobs: Vec<usize> = per_cu
            .iter()
            .enumerate()
            .filter(|(_, blocks)| !blocks.is_empty())
            .map(|(cu, _)| cu)
            .collect();
        let results: Vec<Mutex<Option<Result<ShardResult, SimError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let workers = par.threads.clamp(1, jobs.len().max(1));
        let cursor = AtomicUsize::new(0);
        let master = &self.mem;
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&cu) = jobs.get(i) else { break };
                    let mut shard = master.fork_shard((ordinal << 32) | cu as u64);
                    let outcome = run_cu_blocks(&mut shard, cu, &per_cu[cu])
                        .map(|cycles| shard.reduce_shard(cu, cycles));
                    *results[i].lock().expect("result lock") = Some(outcome);
                });
            }
        });
        // Join every worker first, then surface the lowest-numbered
        // CU's error (jobs are in ascending CU order) so failures are
        // deterministic regardless of which worker hit one first.
        let mut reduced = Vec::with_capacity(jobs.len());
        for result in &results {
            reduced.push(
                result
                    .lock()
                    .expect("result lock")
                    .take()
                    .expect("worker ran this job")?,
            );
        }
        // Merge in CU order: private structures + accounting move over,
        // staged logs replay afterwards.
        let mut kernel_cycles = 0u64;
        let mut cu_cycles = vec![0u64; cus];
        let mut logs: Vec<(usize, StageLog)> = Vec::with_capacity(reduced.len());
        let mut shard_dram = Vec::with_capacity(reduced.len());
        for r in reduced {
            let cu = r.cu();
            cu_cycles[cu] = r.cycles();
            kernel_cycles = kernel_cycles.max(r.cycles());
            let (log, dram) = self.mem.absorb_result(r)?;
            logs.push((cu, log));
            shard_dram.push(dram);
        }
        self.mem
            .apply_staged(logs, par.epoch_cycles, dram_pre, &shard_dram, certified)?;
        if certified {
            self.certified_kernels += 1;
        }
        let launch = self.mem.config().kernel_launch_cycles;
        if self.mem.trace_enabled() {
            for (cu, &used) in cu_cycles.iter().enumerate() {
                self.mem
                    .trace_stall(cu, sim::trace::StallReason::Idle, kernel_cycles - used);
                self.mem
                    .trace_stall(cu, sim::trace::StallReason::KernelLaunch, launch);
            }
            self.mem.set_trace_time(kernel_cycles);
        }
        self.mem.end_kernel()?;
        Ok(kernel_cycles + launch)
    }

    fn run_kernel(&mut self, kernel: &Kernel) -> Result<u64, SimError> {
        let cus = self.mem.config().gpu_cus;
        let per_cu = self.distribute(kernel, BlockDistribution::RoundRobin, cus);
        // CUs run concurrently; the kernel completes with the slowest CU.
        // (State interactions across CUs within a kernel are processed
        // sequentially, which is exact for the paper's workloads — GPU
        // kernels share no data within a kernel, §1.2.)
        let mut kernel_cycles = 0u64;
        let mut cu_cycles = vec![0u64; cus];
        for (cu, blocks) in per_cu.iter().enumerate() {
            if blocks.is_empty() {
                continue;
            }
            cu_cycles[cu] = run_cu_blocks(&mut self.mem, cu, blocks)?;
            kernel_cycles = kernel_cycles.max(cu_cycles[cu]);
        }
        let launch = self.mem.config().kernel_launch_cycles;
        if self.mem.trace_enabled() {
            // Close the decomposition: every CU is attributed the full
            // kernel duration — cycles past its own last block are idle
            // (waiting on the slowest CU), plus the launch overhead —
            // so per-CU totals sum exactly to the report's gpu_cycles.
            for (cu, &used) in cu_cycles.iter().enumerate() {
                self.mem
                    .trace_stall(cu, sim::trace::StallReason::Idle, kernel_cycles - used);
                self.mem
                    .trace_stall(cu, sim::trace::StallReason::KernelLaunch, launch);
            }
            self.mem.set_trace_time(kernel_cycles);
        }
        self.mem.end_kernel()?;
        Ok(kernel_cycles + launch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{AllocId, CpuOp, CpuPhase, LocalAlloc, MapReq, Stage, WarpOp};
    use mem::addr::VAddr;
    use mem::tile::TileMap;
    use stash::UsageMode;

    fn stash_kernel(elems: u64, writes: bool) -> Kernel {
        let tile = TileMap::new(VAddr(0x40000), 4, 16, elems, 0, 1).unwrap();
        let mut tb = ThreadBlock::new();
        tb.allocs.push(LocalAlloc { words: elems });
        let mut stage = Stage::new(1);
        stage.maps.push(MapReq {
            slot: 0,
            alloc: AllocId(0),
            tile,
            mode: UsageMode::MappedCoherent,
        });
        let lanes: Vec<u32> = (0..elems.min(32) as u32).collect();
        stage.warps[0] = vec![WarpOp::LocalMem {
            write: false,
            alloc: AllocId(0),
            slot: 0,
            lanes: lanes.clone(),
        }];
        if writes {
            stage.warps[0].push(WarpOp::LocalMem {
                write: true,
                alloc: AllocId(0),
                slot: 0,
                lanes,
            });
        }
        tb.stages.push(stage);
        Kernel { blocks: vec![tb] }
    }

    #[test]
    fn gpu_then_cpu_phases_accumulate_time() {
        let program = Program {
            phases: vec![
                Phase::Gpu(stash_kernel(32, true)),
                Phase::Cpu(CpuPhase {
                    per_core: vec![vec![CpuOp::Mem {
                        write: false,
                        vaddr: VAddr(0x40000),
                    }]],
                    stash_maps: Vec::new(),
                }),
            ],
        };
        let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
        let report = machine.run(&program).unwrap();
        assert!(report.gpu_cycles > 0);
        assert!(report.cpu_cycles > 0);
        assert!(report.total_picos > 0);
        // The CPU pulled GPU-registered stash data via forwarding, not a
        // bursty kernel-end writeback.
        assert_eq!(report.counters.get("wb.stash_words"), 0);
        assert_eq!(report.counters.get("remote.forward"), 1);
    }

    #[test]
    fn cross_kernel_reuse_avoids_second_fetch() {
        // The same tile mapped by two kernels: kernel 2's accesses hit on
        // kernel 1's registered data.
        let program = Program {
            phases: vec![
                Phase::Gpu(stash_kernel(32, true)),
                Phase::Gpu(stash_kernel(32, true)),
            ],
        };
        let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Stash);
        let report = machine.run(&program).unwrap();
        // Kernel 1: 32 load fetches. Kernel 2: loads hit registered words.
        assert_eq!(report.counters.get("stash.fetch_words"), 32);
        assert_eq!(report.counters.get("stash.addmap_replicated"), 1);
    }

    #[test]
    fn blocks_distribute_across_cus() {
        let kernel = Kernel {
            blocks: (0..30)
                .map(|_| stash_kernel(32, false).blocks.remove(0))
                .collect(),
        };
        let program = Program {
            phases: vec![Phase::Gpu(kernel)],
        };
        let mut machine = Machine::new(SystemConfig::for_applications(), MemConfigKind::Stash);
        let report = machine.run(&program).unwrap();
        // 30 blocks × 1 AddMap each, across 15 CUs.
        assert_eq!(report.counters.get("stash.addmap"), 30);
    }

    fn contended_program() -> Program {
        // 30 blocks across two kernels all mapping the SAME tile with
        // writes: CUs race for word ownership, the adversarial case for
        // the epoch merge.
        let kernel = || Kernel {
            blocks: (0..30)
                .map(|_| stash_kernel(32, true).blocks.remove(0))
                .collect(),
        };
        Program {
            phases: vec![Phase::Gpu(kernel()), Phase::Gpu(kernel())],
        }
    }

    #[test]
    fn parallel_is_invariant_across_threads_and_epochs() {
        let program = contended_program();
        let mut baseline: Option<(String, u64)> = None;
        for threads in [1, 2, 4, 8] {
            for epoch_cycles in [1, 64, 4096] {
                let mut machine =
                    Machine::new(SystemConfig::for_applications(), MemConfigKind::Stash);
                let mut par = ParallelConfig::with_threads(threads);
                par.epoch_cycles = epoch_cycles;
                let report = machine.run_parallel(&program, &par).unwrap();
                let key = (format!("{report:?}"), machine.memory().state_digest());
                match &baseline {
                    None => baseline = Some(key),
                    Some(b) => {
                        assert_eq!(*b, key, "threads={threads} epoch_cycles={epoch_cycles}");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_merge_passes_the_invariant_oracle() {
        let program = contended_program();
        let mut machine = Machine::new(SystemConfig::for_applications(), MemConfigKind::Stash);
        machine.memory_mut().set_verify(true);
        machine
            .run_parallel(&program, &ParallelConfig::with_threads(4))
            .unwrap();
    }

    #[test]
    fn balanced_distribution_runs_every_block() {
        let kernel = Kernel {
            blocks: (0..30)
                .map(|_| stash_kernel(32, false).blocks.remove(0))
                .collect(),
        };
        let program = Program {
            phases: vec![Phase::Gpu(kernel)],
        };
        let mut machine = Machine::new(SystemConfig::for_applications(), MemConfigKind::Stash);
        let report = machine
            .run_parallel(&program, &ParallelConfig::with_threads(8))
            .unwrap();
        assert_eq!(report.counters.get("stash.addmap"), 30);
    }

    #[test]
    fn empty_program_is_trivial() {
        let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), MemConfigKind::Scratch);
        let report = machine.run(&Program::new()).unwrap();
        assert_eq!(report.total_picos, 0);
        assert_eq!(report.gpu_instructions, 0);
    }

    #[test]
    fn run_from_matches_run_and_resume_matches_both() {
        let program = contended_program();
        let mut golden = Machine::new(SystemConfig::for_applications(), MemConfigKind::Stash);
        let golden_report = golden.run(&program).unwrap();
        let golden_digest = golden.memory().state_digest();

        // run_from over the whole program, checkpointing at every
        // barrier, must match a plain run exactly.
        let mut first = Machine::new(SystemConfig::for_applications(), MemConfigKind::Stash);
        let mut cursor = RunCursor::default();
        let mut snaps = Vec::new();
        let full_report = first
            .run_from(&program, None, &mut cursor, |m, c| {
                snaps.push(m.checkpoint(&program, *c));
                Ok(())
            })
            .unwrap();
        assert_eq!(full_report, golden_report);
        assert_eq!(first.memory().state_digest(), golden_digest);
        assert_eq!(snaps.len(), program.phases.len());

        // Resume from the first-barrier snapshot and still match the
        // golden sequential run bit-for-bit.
        let (mut resumed, mut rc) = Machine::resume(&snaps[0], &program).unwrap();
        assert_eq!(rc.next_phase, 1);
        let resumed_report = resumed
            .run_from(&program, None, &mut rc, |_, _| Ok(()))
            .unwrap();
        assert_eq!(resumed_report, golden_report);
        assert_eq!(resumed.memory().state_digest(), golden_digest);
    }

    #[test]
    fn parallel_resume_matches_parallel_straight_through_at_any_threads() {
        // The parallel path distributes blocks differently from the
        // sequential seed path (Balanced vs RoundRobin), so its golden is
        // its own straight-through run — which PR 6 pins identical for
        // every thread count.
        let program = contended_program();
        let mut golden = Machine::new(SystemConfig::for_applications(), MemConfigKind::Stash);
        let golden_report = golden
            .run_parallel(&program, &ParallelConfig::with_threads(1))
            .unwrap();
        let golden_digest = golden.memory().state_digest();

        let mut first = Machine::new(SystemConfig::for_applications(), MemConfigKind::Stash);
        let mut cursor = RunCursor::default();
        let mut snaps = Vec::new();
        let two = ParallelConfig::with_threads(2);
        first
            .run_from(&program, Some(&two), &mut cursor, |m, c| {
                snaps.push(m.checkpoint(&program, *c));
                Ok(())
            })
            .unwrap();

        // Finish from the first barrier with a *different* thread count.
        let (mut resumed, mut rc) = Machine::resume(&snaps[0], &program).unwrap();
        let eight = ParallelConfig::with_threads(8);
        let resumed_report = resumed
            .run_from(&program, Some(&eight), &mut rc, |_, _| Ok(()))
            .unwrap();
        assert_eq!(resumed_report, golden_report);
        assert_eq!(resumed.memory().state_digest(), golden_digest);
    }

    #[test]
    fn faulty_run_resumes_identically_including_end_scrub() {
        // A checkpoint taken mid-program carries latent injected
        // corruption and the injector's RNG position; the resumed run's
        // end-of-run parity scrub must land exactly where the
        // straight-through run's does.
        use sim::fault::FaultConfig;
        let program = contended_program();
        let mut exercised = false;
        for seed in 1..=32u64 {
            let fault = FaultConfig::chaos(seed);
            let mut golden = Machine::new(SystemConfig::for_applications(), MemConfigKind::Stash);
            golden.memory_mut().set_fault_injector(fault.clone());
            let Ok(golden_report) = golden.run(&program) else {
                continue; // watchdog trip: fine, but not this test's target
            };
            let injected = golden_report.counters.get("fault.flip_injected")
                + golden_report.counters.get("fault.drop_injected")
                + golden_report.counters.get("fault.wb_lost");
            if injected == 0 {
                continue;
            }
            let mut first = Machine::new(SystemConfig::for_applications(), MemConfigKind::Stash);
            first.memory_mut().set_fault_injector(fault);
            let mut cursor = RunCursor::default();
            let mut snap = None;
            first
                .run_from(&program, None, &mut cursor, |m, c| {
                    if snap.is_none() {
                        snap = Some(m.checkpoint(&program, *c));
                    }
                    Ok(())
                })
                .unwrap();
            let (mut resumed, mut rc) = Machine::resume(&snap.unwrap(), &program).unwrap();
            let resumed_report = resumed
                .run_from(&program, None, &mut rc, |_, _| Ok(()))
                .unwrap();
            assert_eq!(resumed_report, golden_report, "seed {seed}");
            assert_eq!(
                resumed.memory().state_digest(),
                golden.memory().state_digest(),
                "seed {seed}"
            );
            assert_eq!(
                resumed.memory().remaining_corruption(),
                golden.memory().remaining_corruption(),
                "seed {seed}"
            );
            exercised = true;
            break;
        }
        assert!(
            exercised,
            "no seed in 1..=32 completed with injected faults"
        );
    }

    #[test]
    fn checkpoint_survives_the_container_format() {
        let program = contended_program();
        let mut machine = Machine::new(SystemConfig::for_applications(), MemConfigKind::Stash);
        let mut cursor = RunCursor::default();
        let mut snap = None;
        machine
            .run_from(&program, None, &mut cursor, |m, c| {
                if snap.is_none() {
                    snap = Some(m.checkpoint(&program, *c));
                }
                Ok(())
            })
            .unwrap();
        let bytes = snap.unwrap().to_bytes();
        let reread = sim::snapshot::Snapshot::from_bytes(&bytes).unwrap();
        let (m2, rc) = Machine::resume(&reread, &program).unwrap();
        assert_eq!(rc.next_phase, 1);
        assert!(m2.memory().state_digest() != 0);
    }

    #[test]
    fn resume_rejects_a_different_program() {
        let program = contended_program();
        let mut machine = Machine::new(SystemConfig::for_applications(), MemConfigKind::Stash);
        let mut cursor = RunCursor::default();
        let mut snap = None;
        machine
            .run_from(&program, None, &mut cursor, |m, c| {
                if snap.is_none() {
                    snap = Some(m.checkpoint(&program, *c));
                }
                Ok(())
            })
            .unwrap();
        let other = Program {
            phases: vec![Phase::Gpu(stash_kernel(16, false))],
        };
        let err = Machine::resume(&snap.unwrap(), &other).unwrap_err();
        assert!(matches!(
            err,
            SimError::CheckpointCorrupt {
                what: "machine checkpoint",
                ..
            }
        ));
    }
}
