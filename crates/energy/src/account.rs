//! Energy accounting by hierarchy component.

use crate::model::Energy;

/// The five energy components of Figures 5b and 6b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// "GPU core+": instruction cache, constant cache, register file, SFU,
    /// FPU, scheduler and pipeline.
    GpuCore,
    /// The GPU L1 data cache.
    L1,
    /// The local memory: scratchpad or stash (including map structures).
    LocalMem,
    /// The shared L2 cache banks.
    L2,
    /// The on-chip network.
    Noc,
}

impl Component {
    /// All components in the figures' stacking order.
    pub const ALL: [Component; 5] = [
        Component::GpuCore,
        Component::L1,
        Component::LocalMem,
        Component::L2,
        Component::Noc,
    ];

    /// Label used by the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Component::GpuCore => "GPU core+",
            Component::L1 => "L1 D$",
            Component::LocalMem => "Scratch/Stash",
            Component::L2 => "L2 $",
            Component::Noc => "N/W",
        }
    }

    fn idx(self) -> usize {
        match self {
            Component::GpuCore => 0,
            Component::L1 => 1,
            Component::LocalMem => 2,
            Component::L2 => 3,
            Component::Noc => 4,
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated dynamic energy, split by [`Component`].
///
/// # Example
///
/// ```
/// use energy::{Component, EnergyAccount};
///
/// let mut acct = EnergyAccount::new();
/// acct.add(Component::L2, 240_000);
/// acct.add(Component::L2, 240_000);
/// assert_eq!(acct.component(Component::L2), 480_000);
/// assert_eq!(acct.total(), 480_000);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyAccount {
    by_component: [Energy; 5],
}

impl EnergyAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `energy` femtojoules to one component.
    pub fn add(&mut self, component: Component, energy: Energy) {
        self.by_component[component.idx()] += energy;
    }

    /// Energy accumulated in one component.
    pub fn component(&self, component: Component) -> Energy {
        self.by_component[component.idx()]
    }

    /// Total energy across all components.
    pub fn total(&self) -> Energy {
        self.by_component.iter().sum()
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        for i in 0..5 {
            self.by_component[i] += other.by_component[i];
        }
    }

    /// Iterates `(component, energy)` in figure stacking order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, Energy)> + '_ {
        Component::ALL.into_iter().map(|c| (c, self.component(c)))
    }

    /// Serializes the five per-component totals in stacking order.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        for &e in &self.by_component {
            w.put_u64(e);
        }
    }

    /// Restores an account written by [`EnergyAccount::save`].
    pub fn load(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, sim::SimError> {
        let mut acct = Self::new();
        for e in &mut acct.by_component {
            *e = r.take_u64()?;
        }
        Ok(acct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_accumulate_independently() {
        let mut a = EnergyAccount::new();
        a.add(Component::GpuCore, 10);
        a.add(Component::Noc, 5);
        a.add(Component::GpuCore, 10);
        assert_eq!(a.component(Component::GpuCore), 20);
        assert_eq!(a.component(Component::Noc), 5);
        assert_eq!(a.component(Component::L1), 0);
        assert_eq!(a.total(), 25);
    }

    #[test]
    fn merge_sums_componentwise() {
        let mut a = EnergyAccount::new();
        a.add(Component::L1, 7);
        let mut b = EnergyAccount::new();
        b.add(Component::L1, 3);
        b.add(Component::L2, 2);
        a.merge(&b);
        assert_eq!(a.component(Component::L1), 10);
        assert_eq!(a.component(Component::L2), 2);
    }

    #[test]
    fn account_round_trips_through_snapshot() {
        let mut a = EnergyAccount::new();
        a.add(Component::GpuCore, 123);
        a.add(Component::Noc, 456);
        let mut w = sim::snapshot::Writer::new();
        a.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = sim::snapshot::Reader::new(&bytes, "energy account");
        let restored = EnergyAccount::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored, a);
    }

    #[test]
    fn iter_covers_all_components_in_order() {
        let acct = EnergyAccount::new();
        let labels: Vec<_> = acct.iter().map(|(c, _)| c.label()).collect();
        assert_eq!(
            labels,
            vec!["GPU core+", "L1 D$", "Scratch/Stash", "L2 $", "N/W"]
        );
    }
}
