//! Table 3 reproduction: per-access energy for the hardware units.
//!
//! The `table3` bench binary prints [`rows`] in the paper's layout; this
//! module also exposes the derived percentages the paper quotes in §6.1.

use crate::model::{format_pj, EnergyModel};

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Hardware unit name.
    pub unit: &'static str,
    /// Hit energy, formatted as the paper prints it.
    pub hit: String,
    /// Miss energy, or "–" where the unit cannot miss.
    pub miss: String,
}

/// Produces Table 3's rows from an energy model.
pub fn rows(model: &EnergyModel) -> Vec<Row> {
    model
        .table3_rows()
        .into_iter()
        .map(|(unit, hit, miss)| Row {
            unit,
            hit: format_pj(hit),
            miss: miss.map_or_else(|| "–".to_owned(), format_pj),
        })
        .collect()
}

/// §6.1's headline ratios, as integer percentages:
/// `(scratchpad/L1-hit, stash-miss/L1-miss)`.
pub fn headline_ratios(model: &EnergyModel) -> (u64, u64) {
    (
        model.scratchpad_access * 100 / model.l1_hit,
        model.stash_miss * 100 / model.l1_miss,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_like_the_paper() {
        let rows = rows(&EnergyModel::default());
        let scratch = &rows[0];
        assert_eq!(scratch.unit, "Scratchpad");
        assert_eq!(scratch.hit, "55.3 pJ");
        assert_eq!(scratch.miss, "–");
        let stash = &rows[1];
        assert_eq!(stash.hit, "55.4 pJ");
        assert_eq!(stash.miss, "86.8 pJ");
        let l1 = &rows[2];
        assert_eq!(l1.hit, "177.0 pJ");
        assert_eq!(l1.miss, "197.0 pJ");
    }

    #[test]
    fn headline_ratios_near_paper_quotes() {
        let (scratch_vs_l1, stash_vs_l1_miss) = headline_ratios(&EnergyModel::default());
        assert!((29..=32).contains(&scratch_vs_l1));
        assert!((40..=45).contains(&stash_vs_l1_miss));
    }
}
