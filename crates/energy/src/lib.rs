//! Energy model: GPUWattch/McPAT-style per-event accounting.
//!
//! The paper extends GPUWattch to measure the GPU CUs and the memory
//! hierarchy (including all stash components) and uses McPAT for the NoC.
//! Its published Table 3 gives the per-access energies that dominate the
//! results; this crate encodes those constants exactly and adds calibrated
//! estimates for the components the paper uses but does not tabulate (L2
//! access, NoC flit-hop, core instruction energy).
//!
//! Energy is accounted in integer femtojoules into the five components of
//! Figures 5b and 6b: **GPU core+**, **L1 D$**, **Scratch/Stash**, **L2 $**,
//! and **N/W**.
//!
//! # Example
//!
//! ```
//! use energy::{Component, EnergyAccount, EnergyModel};
//!
//! let model = EnergyModel::default();
//! let mut acct = EnergyAccount::new();
//! acct.add(Component::LocalMem, model.scratchpad_access);
//! acct.add(Component::L1, model.l1_hit);
//! assert!(acct.component(Component::L1) > acct.component(Component::LocalMem));
//! ```

#![forbid(unsafe_code)]

pub mod account;
pub mod model;
pub mod table3;

pub use account::{Component, EnergyAccount};
pub use model::{Energy, EnergyModel};
