//! Per-event energy constants.

/// Energy in femtojoules (1 pJ = 1000 fJ), kept integral for determinism.
pub type Energy = u64;

/// Converts picojoules expressed in tenths (e.g. 553 = 55.3 pJ) to [`Energy`].
pub const fn tenth_pj(tenths: u64) -> Energy {
    tenths * 100
}

/// Per-event energy model.
///
/// The first four groups are the paper's Table 3 verbatim; the rest are
/// calibrated estimates documented field-by-field. All values are per
/// *transaction* (one coalesced access, one message flit-hop, one warp
/// instruction), matching how the simulator counts events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnergyModel {
    /// Scratchpad access (Table 3: 55.3 pJ; scratchpads never miss).
    pub scratchpad_access: Energy,
    /// Stash hit (Table 3: 55.4 pJ — scratchpad plus the 2-bit state read).
    pub stash_hit: Energy,
    /// Stash miss (Table 3: 86.8 pJ — adds stash-map + translation ALUs).
    pub stash_miss: Energy,
    /// L1 cache hit (Table 3: 177 pJ — TLB + tags + data).
    pub l1_hit: Energy,
    /// L1 cache miss (Table 3: 197 pJ).
    pub l1_miss: Energy,
    /// TLB access (Table 3: 14.1 pJ; charged wherever a translation runs).
    pub tlb_access: Energy,
    /// Shared-L2 bank access. Not tabulated by the paper; GPUWattch-class
    /// estimate for a 256 KB bank of a 4 MB NUCA L2.
    pub l2_access: Energy,
    /// One flit traversing one link+router (McPAT-class estimate for a
    /// 16-byte flit).
    pub noc_flit_hop: Energy,
    /// One warp instruction through fetch/decode/RF/pipeline ("GPU core+"
    /// includes the instruction cache, register file, FPU and scheduler).
    /// Calibrated so the GPU-core+ share of Figure 5b's Scratch bars lands
    /// near the paper's.
    pub core_instruction: Energy,
    /// One stash-map translation (six ALU ops, §4.1.3). Table 3's 86.8 pJ
    /// stash-miss energy already includes it; this standalone constant
    /// exists for the ablation that moves index computation between core
    /// software and the map hardware.
    pub map_translation: Energy,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            scratchpad_access: tenth_pj(553),
            stash_hit: tenth_pj(554),
            stash_miss: tenth_pj(868),
            l1_hit: tenth_pj(1770),
            l1_miss: tenth_pj(1970),
            tlb_access: tenth_pj(141),
            l2_access: tenth_pj(1600),
            noc_flit_hop: tenth_pj(150),
            core_instruction: tenth_pj(2800),
            map_translation: tenth_pj(60),
        }
    }
}

impl EnergyModel {
    /// A uniformly scaled model: every constant multiplied by
    /// `pct`/100 (integer arithmetic; 100 is the identity). The DSE
    /// sweep uses this to explore process/voltage corners — a pure
    /// output scale that provably never changes timing decisions.
    #[must_use]
    pub fn scaled(&self, pct: u64) -> Self {
        let s = |e: Energy| e * pct / 100;
        Self {
            scratchpad_access: s(self.scratchpad_access),
            stash_hit: s(self.stash_hit),
            stash_miss: s(self.stash_miss),
            l1_hit: s(self.l1_hit),
            l1_miss: s(self.l1_miss),
            tlb_access: s(self.tlb_access),
            l2_access: s(self.l2_access),
            noc_flit_hop: s(self.noc_flit_hop),
            core_instruction: s(self.core_instruction),
            map_translation: s(self.map_translation),
        }
    }

    /// Serializes all ten per-event constants in declaration order.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        w.put_u64(self.scratchpad_access);
        w.put_u64(self.stash_hit);
        w.put_u64(self.stash_miss);
        w.put_u64(self.l1_hit);
        w.put_u64(self.l1_miss);
        w.put_u64(self.tlb_access);
        w.put_u64(self.l2_access);
        w.put_u64(self.noc_flit_hop);
        w.put_u64(self.core_instruction);
        w.put_u64(self.map_translation);
    }

    /// Restores a model written by [`EnergyModel::save`].
    pub fn load(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, sim::SimError> {
        Ok(Self {
            scratchpad_access: r.take_u64()?,
            stash_hit: r.take_u64()?,
            stash_miss: r.take_u64()?,
            l1_hit: r.take_u64()?,
            l1_miss: r.take_u64()?,
            tlb_access: r.take_u64()?,
            l2_access: r.take_u64()?,
            noc_flit_hop: r.take_u64()?,
            core_instruction: r.take_u64()?,
            map_translation: r.take_u64()?,
        })
    }

    /// The paper's Table 3 rows: `(unit, hit_energy, miss_energy)`,
    /// in femtojoules, `None` where the unit cannot miss.
    pub fn table3_rows(&self) -> Vec<(&'static str, Energy, Option<Energy>)> {
        vec![
            ("Scratchpad", self.scratchpad_access, None),
            ("Stash", self.stash_hit, Some(self.stash_miss)),
            ("L1 cache", self.l1_hit, Some(self.l1_miss)),
            ("TLB access", self.tlb_access, Some(self.tlb_access)),
        ]
    }
}

/// Formats an [`Energy`] as picojoules with one decimal.
pub fn format_pj(e: Energy) -> String {
    format!("{}.{} pJ", e / 1000, (e % 1000) / 100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_constants_match_paper() {
        let m = EnergyModel::default();
        assert_eq!(m.scratchpad_access, 55_300);
        assert_eq!(m.stash_hit, 55_400);
        assert_eq!(m.stash_miss, 86_800);
        assert_eq!(m.l1_hit, 177_000);
        assert_eq!(m.l1_miss, 197_000);
        assert_eq!(m.tlb_access, 14_100);
    }

    #[test]
    fn paper_ratios_hold() {
        let m = EnergyModel::default();
        // "scratchpad access energy is 29% of the L1 cache hit energy"
        let pct = m.scratchpad_access * 100 / m.l1_hit;
        assert!((29..=32).contains(&pct), "got {pct}%");
        // "stash's miss energy is 41% of the L1 cache miss energy" — the
        // paper rounds 86.8/197 = 44%; they state 41% against a slightly
        // different denominator; accept the 40–45 band.
        let pct = m.stash_miss * 100 / m.l1_miss;
        assert!((40..=45).contains(&pct), "got {pct}%");
        // Stash hit energy is comparable to scratchpad (within 1%).
        assert!(m.stash_hit.abs_diff(m.scratchpad_access) * 100 < m.scratchpad_access);
    }

    #[test]
    fn scaled_is_identity_at_100_and_linear() {
        let m = EnergyModel::default();
        assert_eq!(m.scaled(100), m);
        let half = m.scaled(50);
        assert_eq!(half.l1_hit, m.l1_hit / 2);
        assert_eq!(half.noc_flit_hop, m.noc_flit_hop / 2);
        let double = m.scaled(200);
        assert_eq!(double.core_instruction, m.core_instruction * 2);
    }

    #[test]
    fn format_pj_renders_decimals() {
        assert_eq!(format_pj(55_300), "55.3 pJ");
        assert_eq!(format_pj(177_000), "177.0 pJ");
        assert_eq!(format_pj(14_100), "14.1 pJ");
    }

    #[test]
    fn table3_rows_cover_all_units() {
        let rows = EnergyModel::default().table3_rows();
        assert_eq!(rows.len(), 4);
        assert!(rows
            .iter()
            .any(|(n, _, m)| *n == "Scratchpad" && m.is_none()));
    }
}
