//! The stash-map: a circular buffer of mapping entries (§4.1.3).
//!
//! Each entry stores the translation parameters of one `AddMap`/`ChgMap`
//! (precomputed so a miss needs only six arithmetic operations), a Valid
//! bit, and the `#DirtyData` counter that tracks how many dirty chunks in
//! stash storage still point at the entry. Entries are added and removed
//! in FIFO order via a tail pointer, which keeps management of the fixed
//! capacity trivial.

use crate::modes::UsageMode;
use mem::tile::TileMap;
use sim::SimError;

/// Index of a stash-map entry; travels with store-miss registration
/// requests and is recorded at the LLC registry (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MapIndex(pub u8);

impl std::fmt::Display for MapIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "map{}", self.0)
    }
}

/// One stash-map entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StashMapEntry {
    /// The stash-to-global tile mapping (precomputed translation state).
    pub tile: TileMap,
    /// First stash word of the allocation this entry maps.
    pub stash_base_word: usize,
    /// Usage mode (`isCoherent` distinguishes the two mapped modes).
    pub mode: UsageMode,
    /// Valid bit (§4.1.3).
    pub valid: bool,
    /// Whether the owning thread block is still running; inactive entries
    /// persist only to cover lazy writebacks.
    pub active: bool,
    /// `#DirtyData`: dirty chunks in stash storage pointing at this entry.
    pub dirty_chunks: u32,
    /// §4.5 `reuseBit` + pointer: the older entry this one replicates.
    pub reuse_of: Option<MapIndex>,
}

impl StashMapEntry {
    /// Last stash word (exclusive) of the mapped allocation.
    pub fn stash_end_word(&self) -> usize {
        self.stash_base_word + self.tile.local_words() as usize
    }

    /// Whether `word` (an absolute stash word index) falls in this entry's
    /// allocation.
    pub fn contains_word(&self, word: usize) -> bool {
        (self.stash_base_word..self.stash_end_word()).contains(&word)
    }
}

/// The circular stash-map.
///
/// # Example
///
/// ```
/// use mem::addr::VAddr;
/// use mem::tile::TileMap;
/// use stash::map::StashMap;
/// use stash::modes::UsageMode;
///
/// let mut sm = StashMap::new(64);
/// let tile = TileMap::new(VAddr(0x1000), 4, 16, 8, 0, 1).unwrap();
/// let (idx, displaced) = sm.push(tile, 0, UsageMode::MappedCoherent).unwrap();
/// assert!(displaced.is_none());
/// assert!(sm.entry(idx).unwrap().valid);
/// ```
#[derive(Debug, Clone)]
pub struct StashMap {
    slots: Vec<Option<StashMapEntry>>,
    tail: usize,
}

impl StashMap {
    /// Creates a stash-map with `capacity` entries (the paper sizes it at
    /// 64: 8 thread blocks × 4 maps, doubled to allow lazy writebacks).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 or exceeds 256 (indices are a byte).
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0 && capacity <= 256,
            "capacity must fit a u8 index"
        );
        Self {
            slots: vec![None; capacity],
            tail: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Adds an entry at the tail, advancing it.
    ///
    /// Returns the new entry's index and, if the reused slot still held a
    /// *valid* entry (it has dirty data that was never lazily written
    /// back), that displaced entry — the caller must write its dirty
    /// chunks back before proceeding, blocking the core (§4.2, AddMap).
    ///
    /// # Errors
    ///
    /// Never errors today; the `Result` reserves room for the VP-map
    /// spill path (§4.2) which surfaces through [`crate::Stash`].
    pub fn push(
        &mut self,
        tile: TileMap,
        stash_base_word: usize,
        mode: UsageMode,
    ) -> Result<(MapIndex, Option<StashMapEntry>), SimError> {
        let idx = self.tail;
        self.tail = (self.tail + 1) % self.slots.len();
        let displaced = self.slots[idx].take().filter(|e| e.valid);
        // §4.5: search for an identical existing mapping (infrequent
        // operation, done on AddMap only).
        let reuse_of = self.find_same_mapping(&tile);
        self.slots[idx] = Some(StashMapEntry {
            tile,
            stash_base_word,
            mode,
            valid: true,
            active: true,
            dirty_chunks: 0,
            reuse_of,
        });
        Ok((MapIndex(idx as u8), displaced))
    }

    /// §4.5 replication search: a valid entry with exactly the same tile
    /// parameters.
    pub fn find_same_mapping(&self, tile: &TileMap) -> Option<MapIndex> {
        self.slots.iter().enumerate().find_map(|(i, slot)| {
            slot.as_ref()
                .filter(|e| e.valid && e.tile.same_mapping(tile))
                .map(|_| MapIndex(i as u8))
        })
    }

    /// The entry at `idx`, if present.
    pub fn entry(&self, idx: MapIndex) -> Option<&StashMapEntry> {
        self.slots.get(idx.0 as usize)?.as_ref()
    }

    /// Mutable access to the entry at `idx`.
    pub fn entry_mut(&mut self, idx: MapIndex) -> Option<&mut StashMapEntry> {
        self.slots.get_mut(idx.0 as usize)?.as_mut()
    }

    /// Marks an entry invalid (its `#DirtyData` reached zero, §4.2).
    pub fn invalidate(&mut self, idx: MapIndex) {
        if let Some(e) = self.entry_mut(idx) {
            e.valid = false;
        }
    }

    /// The valid entry whose stash allocation contains `word` and which
    /// currently owns it, preferring active entries.
    pub fn valid_entry_containing_word(&self, word: usize) -> Option<(MapIndex, &StashMapEntry)> {
        let mut fallback = None;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(e) = slot.as_ref().filter(|e| e.valid && e.contains_word(word)) {
                if e.active {
                    return Some((MapIndex(i as u8), e));
                }
                fallback.get_or_insert((MapIndex(i as u8), e));
            }
        }
        fallback
    }

    /// Iterates over `(index, entry)` of all valid entries.
    pub fn iter_valid(&self) -> impl Iterator<Item = (MapIndex, &StashMapEntry)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref()
                .filter(|e| e.valid)
                .map(|e| (MapIndex(i as u8), e))
        })
    }

    /// Number of valid entries.
    pub fn valid_count(&self) -> usize {
        self.iter_valid().count()
    }

    /// Serializes capacity, the tail pointer, and every slot.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        w.put_usize(self.slots.len());
        w.put_usize(self.tail);
        for slot in &self.slots {
            match slot {
                None => w.put_u8(0),
                Some(e) => {
                    w.put_u8(1);
                    e.tile.save(w);
                    w.put_usize(e.stash_base_word);
                    w.put_u8(crate::modes::usage_mode_code(e.mode));
                    w.put_bool(e.valid);
                    w.put_bool(e.active);
                    w.put_u32(e.dirty_chunks);
                    match e.reuse_of {
                        None => w.put_u8(0),
                        Some(MapIndex(i)) => {
                            w.put_u8(1);
                            w.put_u8(i);
                        }
                    }
                }
            }
        }
    }

    /// Restores a stash-map written by [`StashMap::save`].
    pub fn load(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, SimError> {
        let corrupt = |detail: String| SimError::CheckpointCorrupt {
            what: "stash map",
            detail,
        };
        let capacity = r.take_usize()?;
        if capacity == 0 || capacity > 256 {
            return Err(corrupt(format!("capacity {capacity} does not fit a u8")));
        }
        let tail = r.take_usize()?;
        if tail >= capacity {
            return Err(corrupt(format!("tail {tail} outside {capacity} slots")));
        }
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(match r.take_u8()? {
                0 => None,
                1 => Some(StashMapEntry {
                    tile: TileMap::load(r)?,
                    stash_base_word: r.take_usize()?,
                    mode: crate::modes::usage_mode_from_code(r.take_u8()?)?,
                    valid: r.take_bool()?,
                    active: r.take_bool()?,
                    dirty_chunks: r.take_u32()?,
                    reuse_of: match r.take_u8()? {
                        0 => None,
                        1 => Some(MapIndex(r.take_u8()?)),
                        v => return Err(corrupt(format!("unknown reuse code {v}"))),
                    },
                }),
                v => return Err(corrupt(format!("unknown slot code {v}"))),
            });
        }
        Ok(Self { slots, tail })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem::addr::VAddr;

    fn tile(base: u64) -> TileMap {
        TileMap::new(VAddr(base), 4, 16, 8, 0, 1).unwrap()
    }

    #[test]
    fn push_assigns_fifo_indices() {
        let mut sm = StashMap::new(4);
        for i in 0..4 {
            let (idx, displaced) = sm
                .push(tile(0x1000 * (i + 1) as u64), 0, UsageMode::MappedCoherent)
                .unwrap();
            assert_eq!(idx, MapIndex(i as u8));
            assert!(displaced.is_none());
        }
        assert_eq!(sm.valid_count(), 4);
    }

    #[test]
    fn wrap_displaces_valid_entry() {
        let mut sm = StashMap::new(2);
        sm.push(tile(0x1000), 0, UsageMode::MappedCoherent).unwrap();
        sm.push(tile(0x2000), 64, UsageMode::MappedCoherent)
            .unwrap();
        let (idx, displaced) = sm.push(tile(0x3000), 0, UsageMode::MappedCoherent).unwrap();
        assert_eq!(idx, MapIndex(0));
        let d = displaced.expect("slot 0 held a valid entry");
        assert_eq!(d.tile.global_base(), VAddr(0x1000));
    }

    #[test]
    fn wrap_over_invalidated_entry_is_quiet() {
        let mut sm = StashMap::new(2);
        let (i0, _) = sm.push(tile(0x1000), 0, UsageMode::MappedCoherent).unwrap();
        sm.push(tile(0x2000), 64, UsageMode::MappedCoherent)
            .unwrap();
        sm.invalidate(i0);
        let (_, displaced) = sm.push(tile(0x3000), 0, UsageMode::MappedCoherent).unwrap();
        assert!(displaced.is_none());
    }

    #[test]
    fn replication_is_detected() {
        let mut sm = StashMap::new(8);
        let (i0, _) = sm.push(tile(0x1000), 0, UsageMode::MappedCoherent).unwrap();
        let (i1, _) = sm
            .push(tile(0x1000), 64, UsageMode::MappedCoherent)
            .unwrap();
        assert_eq!(sm.entry(i1).unwrap().reuse_of, Some(i0));
        // A different tile is not a replica.
        let (i2, _) = sm
            .push(tile(0x9000), 128, UsageMode::MappedCoherent)
            .unwrap();
        assert_eq!(sm.entry(i2).unwrap().reuse_of, None);
    }

    #[test]
    fn containing_word_prefers_active_entries() {
        let mut sm = StashMap::new(4);
        let (i0, _) = sm.push(tile(0x1000), 0, UsageMode::MappedCoherent).unwrap();
        sm.entry_mut(i0).unwrap().active = false;
        let (i1, _) = sm.push(tile(0x2000), 0, UsageMode::MappedCoherent).unwrap();
        // Both cover word 3; the active one wins.
        assert_eq!(sm.valid_entry_containing_word(3).unwrap().0, i1);
        sm.invalidate(i1);
        assert_eq!(sm.valid_entry_containing_word(3).unwrap().0, i0);
        assert!(sm.valid_entry_containing_word(8).is_none());
    }

    #[test]
    fn entry_word_ranges() {
        let e = StashMapEntry {
            tile: tile(0x1000),
            stash_base_word: 16,
            mode: UsageMode::MappedCoherent,
            valid: true,
            active: true,
            dirty_chunks: 0,
            reuse_of: None,
        };
        assert_eq!(e.stash_end_word(), 24); // 8 elements * 1 word
        assert!(e.contains_word(16));
        assert!(e.contains_word(23));
        assert!(!e.contains_word(24));
        assert!(!e.contains_word(15));
    }
}
