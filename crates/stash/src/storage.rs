//! Stash storage: the data array with per-word coherence state and
//! per-chunk writeback metadata (§4.1.1, §4.2, §4.4).
//!
//! Each 4-byte word carries 2 DeNovo state bits. Tracking the owning
//! stash-map entry per *word* would be wasteful, so the paper records it at
//! a chunked granularity (64 B): each chunk stores a stash-map index, a
//! dirty bit (set on the first store miss of a thread block, cleared when
//! the block completes) and a writeback bit (set for dirty chunks at
//! thread-block completion, checked on each access to trigger lazy
//! writebacks). DeNovo's spare fourth state encoding doubles as the
//! writeback bit in hardware; the model keeps it as an explicit flag and
//! counts its bits accordingly in [`crate::overhead`].

use crate::map::MapIndex;
use mem::addr::WORD_BYTES;
use mem::coherence::WordState;

/// Per-chunk metadata (§4.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkMeta {
    /// The stash-map entry whose mapping the chunk's words belong to.
    pub owner: Option<MapIndex>,
    /// Dirty bit: the running thread block has stored to this chunk.
    pub dirty: bool,
    /// Writeback bit: the chunk holds dirty data from a completed thread
    /// block awaiting a lazy writeback.
    pub writeback_pending: bool,
}

/// The stash data array plus its state and chunk metadata.
///
/// # Example
///
/// ```
/// use mem::coherence::WordState;
/// use stash::map::MapIndex;
/// use stash::storage::StashStorage;
///
/// let mut st = StashStorage::new(16 * 1024, 64);
/// assert_eq!(st.words(), 4096);
/// st.set_word_state(5, WordState::Registered);
/// let newly_dirty = st.mark_store(5, MapIndex(2));
/// assert!(newly_dirty);
/// assert_eq!(st.chunk_meta(st.chunk_of(5)).owner, Some(MapIndex(2)));
/// ```
#[derive(Debug, Clone)]
pub struct StashStorage {
    word_states: Vec<WordState>,
    chunks: Vec<ChunkMeta>,
    words_per_chunk: usize,
}

impl StashStorage {
    /// Creates storage of `capacity_bytes` with `chunk_bytes` chunks.
    ///
    /// # Panics
    ///
    /// Panics if the chunk size does not evenly divide the capacity or is
    /// not a whole number of words.
    pub fn new(capacity_bytes: usize, chunk_bytes: usize) -> Self {
        assert!(chunk_bytes > 0 && chunk_bytes.is_multiple_of(WORD_BYTES as usize));
        assert!(
            capacity_bytes.is_multiple_of(chunk_bytes),
            "ragged chunking"
        );
        let words = capacity_bytes / WORD_BYTES as usize;
        let words_per_chunk = chunk_bytes / WORD_BYTES as usize;
        Self {
            word_states: vec![WordState::Invalid; words],
            chunks: vec![ChunkMeta::default(); capacity_bytes / chunk_bytes],
            words_per_chunk,
        }
    }

    /// Total words of storage.
    pub fn words(&self) -> usize {
        self.word_states.len()
    }

    /// Total chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Words per chunk.
    pub fn words_per_chunk(&self) -> usize {
        self.words_per_chunk
    }

    /// The chunk containing a word.
    pub fn chunk_of(&self, word: usize) -> usize {
        word / self.words_per_chunk
    }

    /// The word-index range of a chunk.
    pub fn chunk_words(&self, chunk: usize) -> std::ops::Range<usize> {
        chunk * self.words_per_chunk..(chunk + 1) * self.words_per_chunk
    }

    /// Coherence state of a word.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn word_state(&self, word: usize) -> WordState {
        self.word_states[word]
    }

    /// Sets the coherence state of a word.
    pub fn set_word_state(&mut self, word: usize, state: WordState) {
        self.word_states[word] = state;
    }

    /// Metadata of a chunk.
    pub fn chunk_meta(&self, chunk: usize) -> ChunkMeta {
        self.chunks[chunk]
    }

    /// Mutable chunk metadata.
    pub fn chunk_meta_mut(&mut self, chunk: usize) -> &mut ChunkMeta {
        &mut self.chunks[chunk]
    }

    /// Store-side bookkeeping (§4.2): on a store, if the chunk's dirty bit
    /// is unset, set it and record the owning map index. Returns whether
    /// the chunk became *newly* dirty (the caller then bumps the map
    /// entry's `#DirtyData`).
    pub fn mark_store(&mut self, word: usize, owner: MapIndex) -> bool {
        let chunk = self.chunk_of(word);
        let meta = &mut self.chunks[chunk];
        if meta.dirty {
            return false;
        }
        meta.dirty = true;
        meta.owner = Some(owner);
        true
    }

    /// Assigns a chunk to a map entry without dirtying it (load-side
    /// ownership, so lazy-writeback checks know whose mapping the words
    /// belong to).
    pub fn assign_chunk(&mut self, chunk: usize, owner: MapIndex) {
        self.chunks[chunk].owner = Some(owner);
    }

    /// Thread-block completion (§4.2): for every dirty chunk owned by
    /// `map`, set the writeback bit and clear the dirty bit. Returns the
    /// affected chunk indices.
    pub fn seal_dirty_chunks(&mut self, map: MapIndex) -> Vec<usize> {
        let mut sealed = Vec::new();
        for (i, meta) in self.chunks.iter_mut().enumerate() {
            if meta.dirty && meta.owner == Some(map) {
                meta.dirty = false;
                meta.writeback_pending = true;
                sealed.push(i);
            }
        }
        sealed
    }

    /// The Registered words of a chunk (the words a writeback must send —
    /// "we leverage per word coherence state to determine the dirty
    /// words").
    pub fn registered_words_in_chunk(&self, chunk: usize) -> Vec<usize> {
        self.chunk_words(chunk)
            .filter(|&w| self.word_states[w] == WordState::Registered)
            .collect()
    }

    /// Completes a chunk writeback: clears the writeback bit and
    /// downgrades its Registered words to `after` (Shared when data is
    /// kept readable, Invalid when the chunk is being reassigned).
    pub fn complete_chunk_writeback(&mut self, chunk: usize, after: WordState) {
        self.chunks[chunk].writeback_pending = false;
        self.chunks[chunk].dirty = false;
        for w in self.chunk_words(chunk) {
            if self.word_states[w] == WordState::Registered {
                self.word_states[w] = after;
            }
        }
    }

    /// Invalidates every word of a chunk and detaches it from its map
    /// entry (reassignment to a new mapping).
    pub fn invalidate_chunk(&mut self, chunk: usize) {
        for w in self.chunk_words(chunk) {
            self.word_states[w] = WordState::Invalid;
        }
        self.chunks[chunk] = ChunkMeta::default();
    }

    /// Kernel-end self-invalidation (§4.3): Shared words drop to Invalid,
    /// Registered words are kept for reuse and lazy writeback.
    pub fn self_invalidate(&mut self) {
        for w in self.word_states.iter_mut() {
            *w = w.after_self_invalidate();
        }
    }

    /// Count of currently Registered words (diagnostics).
    pub fn registered_word_count(&self) -> usize {
        self.word_states
            .iter()
            .filter(|&&w| w == WordState::Registered)
            .count()
    }

    /// Serializes the word-state arena and per-chunk metadata.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        w.put_usize(self.words_per_chunk);
        w.put_usize(self.word_states.len());
        for &state in &self.word_states {
            w.put_u8(mem::coherence::word_state_code(state));
        }
        for meta in &self.chunks {
            match meta.owner {
                None => w.put_u8(0),
                Some(MapIndex(i)) => {
                    w.put_u8(1);
                    w.put_u8(i);
                }
            }
            w.put_bool(meta.dirty);
            w.put_bool(meta.writeback_pending);
        }
    }

    /// Restores storage written by [`StashStorage::save`].
    pub fn load(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, sim::SimError> {
        let corrupt = |detail: String| sim::SimError::CheckpointCorrupt {
            what: "stash storage",
            detail,
        };
        let words_per_chunk = r.take_usize()?;
        let words = r.take_usize()?;
        if words_per_chunk == 0 || !words.is_multiple_of(words_per_chunk) {
            return Err(corrupt(format!(
                "{words} words do not chunk evenly by {words_per_chunk}"
            )));
        }
        let mut word_states = Vec::with_capacity(words);
        for _ in 0..words {
            word_states.push(mem::coherence::word_state_from_code(r.take_u8()?)?);
        }
        let mut chunks = Vec::with_capacity(words / words_per_chunk);
        for _ in 0..words / words_per_chunk {
            let owner = match r.take_u8()? {
                0 => None,
                1 => Some(MapIndex(r.take_u8()?)),
                v => return Err(corrupt(format!("unknown chunk owner code {v}"))),
            };
            chunks.push(ChunkMeta {
                owner,
                dirty: r.take_bool()?,
                writeback_pending: r.take_bool()?,
            });
        }
        Ok(Self {
            word_states,
            chunks,
            words_per_chunk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage() -> StashStorage {
        StashStorage::new(1024, 64) // 256 words, 16 chunks
    }

    #[test]
    fn geometry() {
        let s = storage();
        assert_eq!(s.words(), 256);
        assert_eq!(s.chunk_count(), 16);
        assert_eq!(s.words_per_chunk(), 16);
        assert_eq!(s.chunk_of(17), 1);
        assert_eq!(s.chunk_words(1), 16..32);
    }

    #[test]
    fn first_store_dirties_chunk_once() {
        let mut s = storage();
        assert!(s.mark_store(3, MapIndex(1)));
        assert!(!s.mark_store(4, MapIndex(1))); // same chunk, already dirty
        let meta = s.chunk_meta(0);
        assert!(meta.dirty);
        assert_eq!(meta.owner, Some(MapIndex(1)));
    }

    #[test]
    fn seal_moves_dirty_to_pending() {
        let mut s = storage();
        s.mark_store(0, MapIndex(2));
        s.mark_store(16, MapIndex(2));
        s.mark_store(32, MapIndex(3)); // different owner, untouched
        let sealed = s.seal_dirty_chunks(MapIndex(2));
        assert_eq!(sealed, vec![0, 1]);
        assert!(s.chunk_meta(0).writeback_pending);
        assert!(!s.chunk_meta(0).dirty);
        assert!(s.chunk_meta(2).dirty);
        assert!(!s.chunk_meta(2).writeback_pending);
    }

    #[test]
    fn writeback_sends_only_registered_words() {
        let mut s = storage();
        s.set_word_state(0, WordState::Registered);
        s.set_word_state(1, WordState::Shared);
        s.set_word_state(5, WordState::Registered);
        assert_eq!(s.registered_words_in_chunk(0), vec![0, 5]);
        s.complete_chunk_writeback(0, WordState::Shared);
        assert_eq!(s.word_state(0), WordState::Shared);
        assert_eq!(s.word_state(5), WordState::Shared);
        assert!(!s.chunk_meta(0).writeback_pending);
    }

    #[test]
    fn invalidate_chunk_resets_everything() {
        let mut s = storage();
        s.set_word_state(2, WordState::Registered);
        s.mark_store(2, MapIndex(0));
        s.invalidate_chunk(0);
        assert_eq!(s.word_state(2), WordState::Invalid);
        assert_eq!(s.chunk_meta(0), ChunkMeta::default());
    }

    #[test]
    fn self_invalidate_keeps_registered() {
        let mut s = storage();
        s.set_word_state(0, WordState::Shared);
        s.set_word_state(1, WordState::Registered);
        s.self_invalidate();
        assert_eq!(s.word_state(0), WordState::Invalid);
        assert_eq!(s.word_state(1), WordState::Registered);
        assert_eq!(s.registered_word_count(), 1);
    }
}
