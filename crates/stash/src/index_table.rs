//! The per-thread-block map index table (§4.1.2).
//!
//! Every `AddMap` call a thread block makes allocates one slot here; the
//! compiler, knowing the fixed order of `AddMap` calls, embeds the slot
//! number in subsequent stash instructions. The paper allocates up to four
//! entries per thread block — if the compiler runs out of entries it
//! simply cannot map more data to the stash.

use crate::map::MapIndex;
use sim::SimError;

/// A thread block's map index table.
///
/// # Example
///
/// ```
/// use stash::index_table::MapIndexTable;
/// use stash::map::MapIndex;
///
/// let mut t = MapIndexTable::new(4);
/// let slot = t.allocate(MapIndex(9)).unwrap();
/// assert_eq!(slot, 0);
/// assert_eq!(t.resolve(0), Some(MapIndex(9)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapIndexTable {
    capacity: usize,
    slots: Vec<MapIndex>,
}

impl MapIndexTable {
    /// Creates a table with `capacity` slots (4 in the paper).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            slots: Vec::with_capacity(capacity),
        }
    }

    /// Records a new mapping, returning its slot number.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TableFull`] after `capacity` `AddMap`s.
    pub fn allocate(&mut self, index: MapIndex) -> Result<usize, SimError> {
        if self.slots.len() == self.capacity {
            return Err(SimError::TableFull {
                table: "map index table",
                capacity: self.capacity,
            });
        }
        self.slots.push(index);
        Ok(self.slots.len() - 1)
    }

    /// Resolves an instruction's slot number to a stash-map index.
    pub fn resolve(&self, slot: usize) -> Option<MapIndex> {
        self.slots.get(slot).copied()
    }

    /// Replaces the stash-map index a slot points to (`ChgMap`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidMapping`] if the slot was never
    /// allocated.
    pub fn update(&mut self, slot: usize, index: MapIndex) -> Result<(), SimError> {
        match self.slots.get_mut(slot) {
            Some(s) => {
                *s = index;
                Ok(())
            }
            None => Err(SimError::InvalidMapping(format!(
                "map index table slot {slot} not allocated"
            ))),
        }
    }

    /// The stash-map indices this thread block holds.
    pub fn indices(&self) -> &[MapIndex] {
        &self.slots
    }

    /// Number of allocated slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no `AddMap` has been made.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Serializes capacity and the allocated slots.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        w.put_usize(self.capacity);
        w.put_usize(self.slots.len());
        for &MapIndex(i) in &self.slots {
            w.put_u8(i);
        }
    }

    /// Restores a table written by [`MapIndexTable::save`].
    pub fn load(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, SimError> {
        let capacity = r.take_usize()?;
        let n = r.take_usize()?;
        if n > capacity {
            return Err(SimError::CheckpointCorrupt {
                what: "map index table",
                detail: format!("{n} slots exceed capacity {capacity}"),
            });
        }
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..n {
            slots.push(MapIndex(r.take_u8()?));
        }
        Ok(Self { capacity, slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_in_call_order() {
        let mut t = MapIndexTable::new(4);
        for i in 0..4u8 {
            assert_eq!(t.allocate(MapIndex(i + 10)).unwrap(), i as usize);
        }
        assert_eq!(t.resolve(2), Some(MapIndex(12)));
        assert_eq!(t.resolve(4), None);
    }

    #[test]
    fn overflows_at_capacity() {
        let mut t = MapIndexTable::new(4);
        for i in 0..4u8 {
            t.allocate(MapIndex(i)).unwrap();
        }
        assert!(matches!(
            t.allocate(MapIndex(4)),
            Err(SimError::TableFull { capacity: 4, .. })
        ));
    }

    #[test]
    fn update_rebinds_slot() {
        let mut t = MapIndexTable::new(4);
        t.allocate(MapIndex(1)).unwrap();
        t.update(0, MapIndex(7)).unwrap();
        assert_eq!(t.resolve(0), Some(MapIndex(7)));
        assert!(t.update(3, MapIndex(0)).is_err());
    }
}
