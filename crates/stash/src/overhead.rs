//! §4.4 — state-bit overhead of the stash storage component.
//!
//! With the DeNovo protocol each 4-byte word needs 2 state bits, and each
//! chunk needs a stash-map index (6 bits for a 64-entry map) plus one
//! writeback bit (folded into DeNovo's spare state encoding in hardware,
//! but still a bit of information). For 64-byte chunks this sums to
//! 16·2 + 6 + 1 = 39 bits per chunk — a ≈8% overhead on the 512 data
//! bits — of which only the two coherence bits are touched on hits.

use mem::addr::WORD_BYTES;
use mem::coherence::WordState;

/// Computed state-bit overhead for a stash configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadReport {
    /// Metadata bits per chunk.
    pub bits_per_chunk: u32,
    /// Data bits per chunk.
    pub data_bits_per_chunk: u32,
    /// Overhead in tenths of a percent (76 = 7.6%).
    pub overhead_tenths_percent: u32,
    /// Bits read on a hit (the common case): just the word's state bits.
    pub bits_read_on_hit: u32,
}

/// Computes the §4.4 overhead for a chunk size and stash-map capacity.
///
/// # Panics
///
/// Panics if `chunk_bytes` is not a whole number of words or
/// `stash_map_entries` is zero.
pub fn state_bits(chunk_bytes: usize, stash_map_entries: usize) -> OverheadReport {
    assert!(chunk_bytes > 0 && chunk_bytes.is_multiple_of(WORD_BYTES as usize));
    assert!(stash_map_entries > 0);
    let words = (chunk_bytes / WORD_BYTES as usize) as u32;
    let map_index_bits = usize::BITS - (stash_map_entries - 1).leading_zeros();
    let writeback_bit = 1;
    let bits_per_chunk = words * WordState::BITS + map_index_bits + writeback_bit;
    let data_bits_per_chunk = chunk_bytes as u32 * 8;
    OverheadReport {
        bits_per_chunk,
        data_bits_per_chunk,
        overhead_tenths_percent: bits_per_chunk * 1000 / data_bits_per_chunk,
        bits_read_on_hit: WordState::BITS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_is_39_bits_and_8_percent() {
        let r = state_bits(64, 64);
        assert_eq!(r.bits_per_chunk, 39);
        assert_eq!(r.data_bits_per_chunk, 512);
        // 39/512 = 7.6% — the paper's "∼8% overhead".
        assert_eq!(r.overhead_tenths_percent, 76);
        // Only the 2 coherence bits are accessed on hits.
        assert_eq!(r.bits_read_on_hit, 2);
    }

    #[test]
    fn map_index_bits_scale_with_capacity() {
        assert_eq!(state_bits(64, 32).bits_per_chunk, 38);
        assert_eq!(state_bits(64, 128).bits_per_chunk, 40);
    }

    #[test]
    fn larger_chunks_amortize_metadata() {
        let small = state_bits(64, 64);
        let large = state_bits(256, 64);
        assert!(large.overhead_tenths_percent < small.overhead_tenths_percent);
    }
}
