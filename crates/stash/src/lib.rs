//! The **stash**: a directly addressed, globally visible local memory —
//! the paper's contribution.
//!
//! A stash combines the best of a scratchpad and a cache (Table 1 of the
//! paper): like a scratchpad it is directly addressed (no tags, no TLB on
//! hits), compactly stores only the useful fields of a data structure, and
//! never suffers conflict misses; like a cache it is globally addressable
//! and visible, so data moves implicitly on demand, is written back
//! lazily, and can be reused across kernels and forwarded to other cores
//! through the coherence protocol.
//!
//! The hardware components of Figure 3 map to modules as follows:
//!
//! * **stash storage** → [`storage::StashStorage`] — data array with 2
//!   coherence-state bits per word and per-64 B-chunk metadata (map index,
//!   dirty bit, writeback bit);
//! * **map index table** → [`index_table::MapIndexTable`] — per thread
//!   block, up to 4 entries;
//! * **stash-map** → [`map::StashMap`] — a 64-entry circular buffer whose
//!   entries hold the precomputed tile-translation parameters, a Valid
//!   bit, and the `#DirtyData` counter;
//! * **VP-map** → [`vpmap::VpMap`] — TLB and reverse-TLB entries with
//!   back-pointers to the last stash-map entry needing each translation.
//!
//! [`Stash`] ties the components together and implements the operations of
//! §4.2: hits, misses (with the six-operation address translation), lazy
//! writebacks, `AddMap`/`ChgMap`, kernel-end self-invalidation, remote
//! requests, and the §4.5 data-replication optimization.
//!
//! # Example
//!
//! ```
//! use mem::addr::VAddr;
//! use mem::tile::TileMap;
//! use stash::{Stash, StashConfig, UsageMode};
//!
//! let mut stash = Stash::new(StashConfig::default());
//! // Map one 4-byte field of 64 16-byte objects (Figure 1b's AddMap).
//! let tile = TileMap::new(VAddr(0x1000), 4, 16, 64, 0, 1).unwrap();
//! let m = stash
//!     .add_map(0, tile, 0, UsageMode::MappedCoherent)
//!     .unwrap();
//!
//! // First load misses and yields the global address to fetch...
//! let out = stash.load(0, m.index).unwrap();
//! assert!(out.missed());
//! stash.complete_load_fill(0);
//! // ...subsequent loads hit with scratchpad-like energy.
//! assert!(!stash.load(0, m.index).unwrap().missed());
//! ```

#![forbid(unsafe_code)]

pub mod index_table;
pub mod map;
pub mod modes;
pub mod overhead;
pub mod stash;
pub mod storage;
pub mod vpmap;

pub use crate::stash::{
    AddMapOutcome, ChgMapOutcome, LoadOutcome, Stash, StashConfig, StoreOutcome, WritebackWord,
};
pub use map::{MapIndex, StashMapEntry};
pub use modes::UsageMode;
