//! The stash front-end: §4.2's operations over the Figure 3 components.
//!
//! The [`Stash`] is a *state* model: every operation applies its
//! architectural state changes synchronously and returns an outcome
//! describing the global actions (miss fetch, registration, writebacks)
//! the memory-system orchestrator must perform — the orchestrator charges
//! latency, traffic and energy for them. This split keeps the stash's
//! state machine independently testable while the timing lives with the
//! rest of the machine model.

use crate::index_table::MapIndexTable;
use crate::map::{MapIndex, StashMap, StashMapEntry};
use crate::modes::UsageMode;
use crate::storage::StashStorage;
use crate::vpmap::VpMap;
use mem::addr::{PAddr, VAddr, WORD_BYTES};
use mem::coherence::WordState;
use mem::tile::TileMap;
use sim::SimError;
use std::collections::{BTreeSet, HashMap};

/// Stash hardware parameters (defaults are the paper's Table 2 values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StashConfig {
    /// Storage capacity in bytes (16 KB).
    pub capacity_bytes: usize,
    /// Writeback chunk granularity in bytes (64 B).
    pub chunk_bytes: usize,
    /// Stash-map entries (64).
    pub map_entries: usize,
    /// VP-map entries (64).
    pub vp_map_entries: usize,
    /// Map-index-table entries per thread block (4).
    pub max_maps_per_thread_block: usize,
    /// Page size for the VP-map (4 KB).
    pub page_bytes: u64,
    /// §4.5 data-replication optimization switch (on in the paper's
    /// evaluation; the ablation bench turns it off).
    pub replication_enabled: bool,
    /// §8 extension: prefetch a mapping's words eagerly at `AddMap` time
    /// (off in the paper's evaluation — stash loads are on-demand).
    pub prefetch: bool,
    /// §8 extension: fetch granularity — widen each load miss to up to
    /// this many neighbouring mapped words of the same chunk (1 = the
    /// paper's word-granularity behaviour; capped at the chunk size).
    pub fetch_words: usize,
}

impl StashConfig {
    /// Storage capacity in words.
    #[must_use]
    pub fn capacity_words(&self) -> usize {
        self.capacity_bytes / WORD_BYTES as usize
    }

    /// Writeback-chunk granularity in words.
    #[must_use]
    pub fn chunk_words(&self) -> usize {
        (self.chunk_bytes / WORD_BYTES as usize).max(1)
    }

    /// Rounds an allocation up to whole chunks — the granularity at which
    /// the wave allocator hands out stash space.
    #[must_use]
    pub fn chunk_rounded(&self, words: usize) -> usize {
        words.next_multiple_of(self.chunk_words())
    }
}

impl Default for StashConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 16 * 1024,
            chunk_bytes: 64,
            map_entries: 64,
            vp_map_entries: 64,
            max_maps_per_thread_block: 4,
            page_bytes: 4096,
            replication_enabled: true,
            prefetch: false,
            fetch_words: 1,
        }
    }
}

/// One word that must be written back to its global address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritebackWord {
    /// The stash word being written back.
    pub stash_word: usize,
    /// Its global virtual address (the orchestrator translates and sends).
    pub vaddr: VAddr,
}

/// Outcome of a stash load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome {
    /// Direct-addressed hit: storage access only, scratchpad-class energy.
    Hit,
    /// §4.5 replication hit: the data was copied from an older mapping's
    /// stash location instead of going to the network.
    ReplicaHit {
        /// The stash word the data was copied from.
        from_word: usize,
        /// Lazy writebacks triggered by reclaiming this word's chunk;
        /// they must be performed even though no fetch follows.
        writebacks: Vec<WritebackWord>,
    },
    /// Miss: the orchestrator must fetch `vaddr` (word granularity) and
    /// then call [`Stash::complete_load_fill`]. Any `writebacks` (lazy
    /// writebacks triggered by reclaiming this word's chunk) must be
    /// performed first.
    Miss {
        /// Global virtual address of the missing word.
        vaddr: VAddr,
        /// Lazy writebacks triggered by this access.
        writebacks: Vec<WritebackWord>,
    },
}

impl LoadOutcome {
    /// Whether the access needs a global fetch.
    pub fn missed(&self) -> bool {
        matches!(self, LoadOutcome::Miss { .. })
    }
}

/// Outcome of a stash store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The word was already Registered: pure local write.
    Hit,
    /// The word needs registration (coherent mode) before the store
    /// completes; the orchestrator sends the request (carrying the
    /// stash-map index) and then calls [`Stash::complete_store_fill`].
    Miss {
        /// Global virtual address of the stored word.
        vaddr: VAddr,
        /// Lazy writebacks triggered by this access.
        writebacks: Vec<WritebackWord>,
        /// False for Mapped Non-coherent data, whose stores stay local.
        needs_registration: bool,
    },
}

impl StoreOutcome {
    /// Whether the access needs any global action.
    pub fn missed(&self) -> bool {
        matches!(self, StoreOutcome::Miss { .. })
    }
}

/// Outcome of an `AddMap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddMapOutcome {
    /// The new stash-map entry.
    pub index: MapIndex,
    /// The thread block's map-index-table slot.
    pub slot: usize,
    /// Writebacks of a displaced stash-map entry's dirty data; the paper
    /// blocks the core until these complete (rare).
    pub writebacks: Vec<WritebackWord>,
    /// Virtual pages newly covered by the VP-map (each is a TLB fill).
    pub new_pages: usize,
    /// Whether §4.5 found an identical older mapping.
    pub replicates: bool,
}

/// Outcome of a `ChgMap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChgMapOutcome {
    /// Writebacks the change requires (remapping away from dirty data, or
    /// a coherent → non-coherent transition).
    pub writebacks: Vec<WritebackWord>,
    /// Words needing registration requests (non-coherent → coherent
    /// transition): `(stash_word, vaddr)` pairs.
    pub registrations: Vec<(usize, VAddr)>,
    /// Virtual pages newly covered by the VP-map.
    pub new_pages: usize,
}

/// The stash: storage + stash-map + map index tables + VP-map.
#[derive(Debug, Clone)]
pub struct Stash {
    cfg: StashConfig,
    storage: StashStorage,
    map: StashMap,
    vp: VpMap,
    /// Per-thread-block map index tables, a dense arena indexed by the
    /// global thread-block id (`None` = no live table). Thread-block ids
    /// are small sequential integers, so this keeps every stash
    /// instruction's table lookup an indexed read with no hashing.
    tables: Vec<Option<MapIndexTable>>,
    /// Stash words whose data is corrupt (fault injection's ground
    /// truth); ordered for deterministic diagnostics.
    corrupt: BTreeSet<usize>,
}

impl Stash {
    /// Creates a stash.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (ragged
    /// chunking, zero sizes).
    pub fn new(cfg: StashConfig) -> Self {
        let storage = StashStorage::new(cfg.capacity_bytes, cfg.chunk_bytes);
        let map = StashMap::new(cfg.map_entries);
        let vp = VpMap::new(cfg.vp_map_entries, cfg.page_bytes);
        Self {
            cfg,
            storage,
            map,
            vp,
            tables: Vec::new(),
            corrupt: BTreeSet::new(),
        }
    }

    /// The configuration this stash was built with.
    pub fn config(&self) -> &StashConfig {
        &self.cfg
    }

    /// Storage capacity in words.
    pub fn words(&self) -> usize {
        self.storage.words()
    }

    /// Direct read-only view of a word's coherence state (diagnostics).
    pub fn word_state(&self, word: usize) -> WordState {
        self.storage.word_state(word)
    }

    /// The stash-map entry at `idx`, if present.
    pub fn map_entry(&self, idx: MapIndex) -> Option<&StashMapEntry> {
        self.map.entry(idx)
    }

    /// VP-map occupancy (for the sizing guarantee tests).
    pub fn vp_occupancy(&self) -> usize {
        self.vp.occupancy()
    }

    /// Resolves thread block `tb`'s map-index-table slot to its current
    /// stash-map index (what the hardware does for every stash
    /// instruction, §4.1.2).
    pub fn resolve_slot(&self, tb: usize, slot: usize) -> Option<MapIndex> {
        self.tables.get(tb)?.as_ref()?.resolve(slot)
    }

    // ------------------------------------------------------------------
    // Fault injection: corrupt-word ground truth
    // ------------------------------------------------------------------
    //
    // No data values are modelled, so a flipped word is membership in a
    // corrupt set: parity-checked loads detect (and correct), stores
    // silently overwrite, writebacks *move* the corruption to the LLC,
    // and the end-of-run scrub sweeps whatever remains.

    /// Marks a stash word's data corrupt (a fault injector flipped it).
    pub fn flip_word(&mut self, word: usize) {
        assert!(word < self.storage.words());
        self.corrupt.insert(word);
    }

    /// Removes and reports corruption on `word` — used both by silently
    /// overwriting stores and by writebacks that carry the corruption
    /// onward to the LLC. Returns `true` if the word was corrupt.
    pub fn take_corrupt(&mut self, word: usize) -> bool {
        self.corrupt.remove(&word)
    }

    /// A parity-checked read of the word: detects (and corrects) any
    /// corruption. Returns `true` if corruption was found.
    pub fn check_parity(&mut self, word: usize) -> bool {
        self.corrupt.remove(&word)
    }

    /// Number of words currently corrupt.
    pub fn corrupt_word_count(&self) -> usize {
        self.corrupt.len()
    }

    /// End-of-run scrub: detects and clears every remaining corrupt
    /// word, returning how many there were.
    pub fn scrub(&mut self) -> usize {
        let n = self.corrupt.len();
        self.corrupt.clear();
        n
    }

    // ------------------------------------------------------------------
    // AddMap / ChgMap (§4.2)
    // ------------------------------------------------------------------

    /// `AddMap`: maps `tile` at `stash_base_word` for thread block `tb`.
    ///
    /// # Errors
    ///
    /// * [`SimError::OutOfRange`] — allocation exceeds stash capacity or
    ///   is not chunk aligned;
    /// * [`SimError::TableFull`] — more than 4 `AddMap`s in this thread
    ///   block, or the VP-map cannot cover the tile's pages;
    /// * [`SimError::InvalidMapping`] — `mode` carries no global mapping.
    pub fn add_map(
        &mut self,
        tb: usize,
        tile: TileMap,
        stash_base_word: usize,
        mode: UsageMode,
    ) -> Result<AddMapOutcome, SimError> {
        if !mode.is_mapped() {
            return Err(SimError::InvalidMapping(format!(
                "mode {mode} does not use AddMap"
            )));
        }
        let words = tile.local_words() as usize;
        if stash_base_word + words > self.storage.words() {
            return Err(SimError::OutOfRange {
                what: "stash allocation",
                offset: stash_base_word + words,
                size: self.storage.words(),
            });
        }
        if !stash_base_word.is_multiple_of(self.storage.words_per_chunk()) {
            return Err(SimError::OutOfRange {
                what: "stash base (chunk alignment)",
                offset: stash_base_word,
                size: self.storage.words_per_chunk(),
            });
        }
        // Reserve the index-table slot first so a full table fails cleanly.
        if tb >= self.tables.len() {
            self.tables.resize_with(tb + 1, || None);
        }
        let table = self.tables[tb]
            .get_or_insert_with(|| MapIndexTable::new(self.cfg.max_maps_per_thread_block));
        if table.len() == self.cfg.max_maps_per_thread_block {
            return Err(SimError::TableFull {
                table: "map index table",
                capacity: self.cfg.max_maps_per_thread_block,
            });
        }

        let (index, displaced) = self.map.push(tile, stash_base_word, mode)?;
        // Write back and detach everything the displaced entry still owned
        // (the paper blocks the core on these writebacks).
        let mut writebacks = Vec::new();
        if let Some(old) = displaced {
            writebacks = self.reclaim_entry_chunks(index, &old);
        }
        // "[AddMap] invalidates any entries from the VP-map that have the
        // new stash-map tail as the back pointer."
        self.vp_release(index);

        let slot = self.tables[tb]
            .as_mut()
            .expect("table created above")
            .allocate(index)?;

        let replicates = self.cfg.replication_enabled
            && self
                .map
                .entry(index)
                .expect("just pushed")
                .reuse_of
                .is_some();
        if !self.cfg.replication_enabled {
            self.map.entry_mut(index).expect("just pushed").reuse_of = None;
        }

        let (new_pages, spill_writebacks) = self.cover_pages(index, &tile)?;
        writebacks.extend(spill_writebacks);
        Ok(AddMapOutcome {
            index,
            slot,
            writebacks,
            new_pages,
            replicates,
        })
    }

    /// `ChgMap`: changes the mapping or mode of the entry behind `slot` of
    /// thread block `tb`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidMapping`] for an unknown slot and the
    /// same range/table errors as [`Stash::add_map`].
    pub fn chg_map(
        &mut self,
        tb: usize,
        slot: usize,
        new_tile: TileMap,
        new_mode: UsageMode,
    ) -> Result<ChgMapOutcome, SimError> {
        if !new_mode.is_mapped() {
            return Err(SimError::InvalidMapping(format!(
                "mode {new_mode} does not use ChgMap"
            )));
        }
        let index = self
            .tables
            .get(tb)
            .and_then(|t| t.as_ref()?.resolve(slot))
            .ok_or_else(|| {
                SimError::InvalidMapping(format!("thread block {tb} has no map slot {slot}"))
            })?;
        let entry = self
            .map
            .entry(index)
            .filter(|e| e.valid)
            .ok_or_else(|| SimError::InvalidMapping(format!("{index} is not valid")))?
            .clone();

        let words = new_tile.local_words() as usize;
        if entry.stash_base_word + words > self.storage.words() {
            return Err(SimError::OutOfRange {
                what: "stash allocation",
                offset: entry.stash_base_word + words,
                size: self.storage.words(),
            });
        }

        let mut out = ChgMapOutcome {
            writebacks: Vec::new(),
            registrations: Vec::new(),
            new_pages: 0,
        };

        if !entry.tile.same_mapping(&new_tile) {
            // New set of global addresses: write back the old mapping's
            // dirty data (if coherent) and invalidate the remapped range.
            if entry.mode.is_coherent() {
                out.writebacks = self.reclaim_entry_chunks(index, &entry);
            } else {
                self.drop_entry_chunks(index, &entry);
            }
            self.vp_release(index);
            let e = self.map.entry_mut(index).expect("resolved above");
            e.tile = new_tile;
            e.mode = new_mode;
            e.dirty_chunks = 0;
            let (new_pages, spill) = self.cover_pages(index, &new_tile)?;
            out.new_pages = new_pages;
            out.writebacks.extend(spill);
            return Ok(out);
        }

        // Same addresses, mode change only.
        match (entry.mode.is_coherent(), new_mode.is_coherent()) {
            (true, false) => {
                // The old mapping's stores are globally visible: flush them.
                out.writebacks = self.flush_entry_dirty(index, &entry, WordState::Shared);
            }
            (false, true) => {
                // Locally dirty words must now be registered globally.
                for chunk in self.chunks_owned_by(index) {
                    for w in self.storage.registered_words_in_chunk(chunk) {
                        let local_off = (w - entry.stash_base_word) as u64 * WORD_BYTES;
                        out.registrations
                            .push((w, entry.tile.virt_of_local_offset(local_off)));
                    }
                    let meta = self.storage.chunk_meta_mut(chunk);
                    if !meta.dirty {
                        meta.dirty = true;
                        self.map.entry_mut(index).expect("valid").dirty_chunks += 1;
                    }
                }
            }
            _ => {}
        }
        self.map.entry_mut(index).expect("valid").mode = new_mode;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Loads and stores (§4.2)
    // ------------------------------------------------------------------

    /// A stash load of `word` under mapping `map`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidMapping`] if `map` is not a valid entry
    /// containing `word`.
    pub fn load(&mut self, word: usize, map: MapIndex) -> Result<LoadOutcome, SimError> {
        let entry = self.checked_entry(word, map)?.clone();
        let writebacks = self.prepare_chunk(word, map);
        if self.storage.word_state(word).load_hits() {
            debug_assert!(writebacks.is_empty(), "a hit cannot reclaim a chunk");
            return Ok(LoadOutcome::Hit);
        }
        // §4.5: on a load miss with the reuse bit set, check the old
        // mapping's stash location first.
        if let Some(old_idx) = entry.reuse_of.filter(|_| self.cfg.replication_enabled) {
            if let Some(old) = self.map.entry(old_idx) {
                let local_word = word - entry.stash_base_word;
                let from = old.stash_base_word + local_word;
                if from != word
                    && from < self.storage.words()
                    && self.storage.chunk_meta(self.storage.chunk_of(from)).owner == Some(old_idx)
                    && self.storage.word_state(from).load_hits()
                {
                    self.storage.set_word_state(word, WordState::Shared);
                    let chunk = self.storage.chunk_of(word);
                    self.storage.assign_chunk(chunk, map);
                    return Ok(LoadOutcome::ReplicaHit {
                        from_word: from,
                        writebacks,
                    });
                }
            }
        }
        let local_off = (word - entry.stash_base_word) as u64 * WORD_BYTES;
        Ok(LoadOutcome::Miss {
            vaddr: entry.tile.virt_of_local_offset(local_off),
            writebacks,
        })
    }

    /// Completes a load miss after the orchestrator fetched the word.
    pub fn complete_load_fill(&mut self, word: usize) {
        self.storage.set_word_state(word, WordState::Shared);
    }

    /// §8 "flexible communication granularity": the Invalid neighbours of
    /// `word` within the same chunk and mapping, with their global
    /// addresses — candidates for widening a miss fetch to up to
    /// `max_words` total. The chunk has already been prepared by the
    /// triggering access, so the candidates are safe to fill.
    pub fn prefetch_candidates(
        &self,
        word: usize,
        map: MapIndex,
        max_words: usize,
    ) -> Vec<(usize, VAddr)> {
        let Some(entry) = self.map.entry(map).filter(|e| e.valid) else {
            return Vec::new();
        };
        let chunk = self.storage.chunk_of(word);
        if self.storage.chunk_meta(chunk).owner != Some(map) {
            return Vec::new();
        }
        self.storage
            .chunk_words(chunk)
            .filter(|&w| w != word)
            .filter(|&w| entry.contains_word(w))
            .filter(|&w| self.storage.word_state(w) == WordState::Invalid)
            .take(max_words.saturating_sub(1))
            .map(|w| {
                let off = (w - entry.stash_base_word) as u64 * WORD_BYTES;
                (w, entry.tile.virt_of_local_offset(off))
            })
            .collect()
    }

    /// Every word of a valid mapping that is currently Invalid, with its
    /// global address — what an `AddMap`-time prefetch (§8) would fetch.
    pub fn unfetched_words(&self, map: MapIndex) -> Vec<(usize, VAddr)> {
        let Some(entry) = self.map.entry(map).filter(|e| e.valid) else {
            return Vec::new();
        };
        (entry.stash_base_word..entry.stash_end_word())
            .filter(|&w| self.storage.word_state(w) == WordState::Invalid)
            .map(|w| {
                let off = (w - entry.stash_base_word) as u64 * WORD_BYTES;
                (w, entry.tile.virt_of_local_offset(off))
            })
            .collect()
    }

    /// Assigns every chunk of a mapping to it (prefetch fills bypass the
    /// per-access `prepare_chunk` path, so ownership is claimed up
    /// front; triggers the same reclamation writebacks).
    pub fn claim_chunks(&mut self, map: MapIndex) -> Vec<WritebackWord> {
        let Some(entry) = self.map.entry(map).filter(|e| e.valid) else {
            return Vec::new();
        };
        let range = entry.stash_base_word..entry.stash_end_word();
        let mut writebacks = Vec::new();
        for w in range.step_by(self.storage.words_per_chunk()) {
            writebacks.extend(self.prepare_chunk(w, map));
        }
        writebacks
    }

    /// A stash store to `word` under mapping `map`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidMapping`] if `map` is not a valid entry
    /// containing `word`.
    pub fn store(&mut self, word: usize, map: MapIndex) -> Result<StoreOutcome, SimError> {
        let entry = self.checked_entry(word, map)?.clone();
        let writebacks = self.prepare_chunk(word, map);
        if self.storage.word_state(word).store_hits() {
            debug_assert!(writebacks.is_empty(), "a hit cannot reclaim a chunk");
            self.note_store(word, map);
            return Ok(StoreOutcome::Hit);
        }
        let local_off = (word - entry.stash_base_word) as u64 * WORD_BYTES;
        Ok(StoreOutcome::Miss {
            vaddr: entry.tile.virt_of_local_offset(local_off),
            writebacks,
            needs_registration: entry.mode.is_coherent(),
        })
    }

    /// Completes a store miss after any registration was obtained.
    pub fn complete_store_fill(&mut self, word: usize, map: MapIndex) {
        self.storage.set_word_state(word, WordState::Registered);
        self.note_store(word, map);
    }

    fn note_store(&mut self, word: usize, map: MapIndex) {
        self.storage.set_word_state(word, WordState::Registered);
        let coherent = self
            .map
            .entry(map)
            .map(|e| e.mode.is_coherent())
            .unwrap_or(false);
        if coherent {
            if self.storage.mark_store(word, map) {
                if let Some(e) = self.map.entry_mut(map) {
                    e.dirty_chunks += 1;
                }
            }
        } else {
            let chunk = self.storage.chunk_of(word);
            self.storage.assign_chunk(chunk, map);
        }
    }

    // ------------------------------------------------------------------
    // Kernel / thread-block lifecycle
    // ------------------------------------------------------------------

    /// Thread block `tb` completed: seal its dirty chunks for lazy
    /// writeback, deactivate its entries, and invalidate entries whose
    /// `#DirtyData` is zero. Frees the block's map index table.
    pub fn end_thread_block(&mut self, tb: usize) {
        let Some(table) = self.tables.get_mut(tb).and_then(Option::take) else {
            return;
        };
        for &idx in table.indices() {
            self.storage.seal_dirty_chunks(idx);
            if let Some(e) = self.map.entry_mut(idx) {
                e.active = false;
                if e.dirty_chunks == 0 {
                    e.valid = false;
                }
            }
            if self.map.entry(idx).map(|e| !e.valid).unwrap_or(false) {
                self.vp_release(idx);
            }
        }
    }

    /// Kernel boundary: self-invalidate Shared words (Registered data is
    /// kept — the source of cross-kernel reuse) and drop any remaining
    /// thread-block tables.
    pub fn end_kernel(&mut self) {
        // Ascending thread-block order (the arena index) keeps this
        // deterministic regardless of allocation history.
        for tb in 0..self.tables.len() {
            if self.tables[tb].is_some() {
                self.end_thread_block(tb);
            }
        }
        self.storage.self_invalidate();
    }

    // ------------------------------------------------------------------
    // Remote requests (§4.3)
    // ------------------------------------------------------------------

    /// A remote request arrives with a physical address: reverse-translate
    /// through the VP-map and locate the stash word. Returns the word if
    /// this stash holds a valid copy.
    pub fn remote_request(&self, pa: PAddr) -> Option<usize> {
        let va = self.vp.reverse(pa)?;
        self.find_word_for_vaddr(va)
            .filter(|&w| self.storage.word_state(w).load_hits())
    }

    /// Another core took registration of the word at `pa`: surrender our
    /// copy (Invalid). Returns the word if we held it.
    pub fn surrender_word(&mut self, pa: PAddr) -> Option<usize> {
        let va = self.vp.reverse(pa)?;
        let w = self.find_word_for_vaddr(va)?;
        self.storage.set_word_state(w, WordState::Invalid);
        Some(w)
    }

    /// Records a virtual→physical translation learned at a miss, so later
    /// remote requests can reverse it (§4.1.4).
    pub fn note_translation(&mut self, va: VAddr, pa: PAddr) {
        self.vp
            .fill_translation(va.page(self.cfg.page_bytes), pa.frame(self.cfg.page_bytes));
    }

    /// Forward-translates through the VP-map TLB (used by writebacks).
    pub fn translate(&self, va: VAddr) -> Option<PAddr> {
        self.vp.translate(va)
    }

    /// All dirty (Registered, pending-writeback) words with their virtual
    /// addresses — the data a teardown or drain would flush.
    pub fn pending_writebacks(&self) -> Vec<WritebackWord> {
        let mut out = Vec::new();
        for chunk in 0..self.storage.chunk_count() {
            let meta = self.storage.chunk_meta(chunk);
            if !(meta.writeback_pending || meta.dirty) {
                continue;
            }
            let Some(idx) = meta.owner else { continue };
            let Some(entry) = self.map.entry(idx) else {
                continue;
            };
            for w in self.storage.registered_words_in_chunk(chunk) {
                let local_off = (w - entry.stash_base_word) as u64 * WORD_BYTES;
                out.push(WritebackWord {
                    stash_word: w,
                    vaddr: entry.tile.virt_of_local_offset(local_off),
                });
            }
        }
        out
    }

    /// Drains every pending writeback (explicit flush; used by drains and
    /// the eager-writeback ablation). State changes are applied; the
    /// returned words must be sent by the caller.
    pub fn drain_writebacks(&mut self) -> Vec<WritebackWord> {
        let out = self.pending_writebacks();
        for chunk in 0..self.storage.chunk_count() {
            let meta = self.storage.chunk_meta(chunk);
            if meta.writeback_pending || meta.dirty {
                if let Some(idx) = meta.owner {
                    self.storage
                        .complete_chunk_writeback(chunk, WordState::Shared);
                    self.decrement_dirty(idx);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// Serializes the configuration and every component: storage, the
    /// stash-map, the VP-map, live map index tables, and the corrupt-word
    /// ground truth.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        w.put_usize(self.cfg.capacity_bytes);
        w.put_usize(self.cfg.chunk_bytes);
        w.put_usize(self.cfg.map_entries);
        w.put_usize(self.cfg.vp_map_entries);
        w.put_usize(self.cfg.max_maps_per_thread_block);
        w.put_u64(self.cfg.page_bytes);
        w.put_bool(self.cfg.replication_enabled);
        w.put_bool(self.cfg.prefetch);
        w.put_usize(self.cfg.fetch_words);
        self.storage.save(w);
        self.map.save(w);
        self.vp.save(w);
        w.put_usize(self.tables.len());
        for table in &self.tables {
            match table {
                None => w.put_u8(0),
                Some(t) => {
                    w.put_u8(1);
                    t.save(w);
                }
            }
        }
        w.put_usize(self.corrupt.len());
        for &word in &self.corrupt {
            w.put_usize(word);
        }
    }

    /// Restores a stash written by [`Stash::save`].
    pub fn restore(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, SimError> {
        let corrupt_err = |detail: String| SimError::CheckpointCorrupt {
            what: "stash",
            detail,
        };
        let cfg = StashConfig {
            capacity_bytes: r.take_usize()?,
            chunk_bytes: r.take_usize()?,
            map_entries: r.take_usize()?,
            vp_map_entries: r.take_usize()?,
            max_maps_per_thread_block: r.take_usize()?,
            page_bytes: r.take_u64()?,
            replication_enabled: r.take_bool()?,
            prefetch: r.take_bool()?,
            fetch_words: r.take_usize()?,
        };
        if cfg.chunk_bytes == 0
            || !cfg.chunk_bytes.is_multiple_of(WORD_BYTES as usize)
            || !cfg.capacity_bytes.is_multiple_of(cfg.chunk_bytes)
            || cfg.map_entries == 0
            || cfg.map_entries > 256
            || cfg.vp_map_entries == 0
            || !cfg.page_bytes.is_power_of_two()
        {
            return Err(corrupt_err(format!("inconsistent configuration {cfg:?}")));
        }
        let storage = StashStorage::load(r)?;
        if storage.words() != cfg.capacity_words() || storage.words_per_chunk() != cfg.chunk_words()
        {
            return Err(corrupt_err(format!(
                "storage geometry ({} words, {} per chunk) does not match \
                 configuration ({} words, {} per chunk)",
                storage.words(),
                storage.words_per_chunk(),
                cfg.capacity_words(),
                cfg.chunk_words()
            )));
        }
        let map = StashMap::load(r)?;
        if map.capacity() != cfg.map_entries {
            return Err(corrupt_err(format!(
                "stash-map capacity {} does not match configured {}",
                map.capacity(),
                cfg.map_entries
            )));
        }
        let vp = VpMap::load(r)?;
        let table_count = r.take_usize()?;
        let mut tables = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            tables.push(match r.take_u8()? {
                0 => None,
                1 => Some(MapIndexTable::load(r)?),
                v => return Err(corrupt_err(format!("unknown table slot code {v}"))),
            });
        }
        let n = r.take_usize()?;
        let mut corrupt = BTreeSet::new();
        for _ in 0..n {
            let word = r.take_usize()?;
            if word >= storage.words() {
                return Err(corrupt_err(format!(
                    "corrupt word {word} outside {} words of storage",
                    storage.words()
                )));
            }
            corrupt.insert(word);
        }
        Ok(Self {
            cfg,
            storage,
            map,
            vp,
            tables,
            corrupt,
        })
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn checked_entry(&self, word: usize, map: MapIndex) -> Result<&StashMapEntry, SimError> {
        self.map
            .entry(map)
            .filter(|e| e.valid && e.contains_word(word))
            .ok_or_else(|| {
                SimError::InvalidMapping(format!("{map} does not validly map stash word {word}"))
            })
    }

    /// Chunk-reclamation check run on every access (§4.2): if the chunk
    /// belongs to an older mapping, either *adopt* it (identical mapping at
    /// the same allocation — the cross-kernel reuse path) or write back its
    /// pending dirty words and reassign it.
    fn prepare_chunk(&mut self, word: usize, current: MapIndex) -> Vec<WritebackWord> {
        let chunk = self.storage.chunk_of(word);
        let meta = self.storage.chunk_meta(chunk);
        let owner = match meta.owner {
            None => {
                self.storage.assign_chunk(chunk, current);
                return Vec::new();
            }
            Some(o) if o == current => return Vec::new(),
            Some(o) => o,
        };

        let adoptable = self.cfg.replication_enabled
            && self
                .map
                .entry(current)
                .is_some_and(|cur| cur.reuse_of == Some(owner))
            && self.map.entry(owner).is_some_and(|old| {
                self.map
                    .entry(current)
                    .is_some_and(|cur| cur.stash_base_word == old.stash_base_word)
            });

        if adoptable {
            let was_counted = meta.dirty || meta.writeback_pending;
            let m = self.storage.chunk_meta_mut(chunk);
            m.owner = Some(current);
            if was_counted {
                // The dirty data now belongs to the new entry.
                m.dirty = true;
                m.writeback_pending = false;
                if let Some(e) = self.map.entry_mut(current) {
                    e.dirty_chunks += 1;
                }
                self.decrement_dirty(owner);
            }
            return Vec::new();
        }

        // Reclaim: write back the old mapping's dirty words, invalidate.
        let mut writebacks = Vec::new();
        let was_counted = meta.dirty || meta.writeback_pending;
        if was_counted {
            if let Some(old) = self.map.entry(owner) {
                for w in self.storage.registered_words_in_chunk(chunk) {
                    let local_off = (w - old.stash_base_word) as u64 * WORD_BYTES;
                    writebacks.push(WritebackWord {
                        stash_word: w,
                        vaddr: old.tile.virt_of_local_offset(local_off),
                    });
                }
            }
        }
        self.storage.invalidate_chunk(chunk);
        self.storage.assign_chunk(chunk, current);
        if was_counted {
            self.decrement_dirty(owner);
        }
        writebacks
    }

    /// Releases a retired entry's VP-map translations, re-homing pages
    /// that other valid mappings still need (see `VpMap::release`).
    fn vp_release(&mut self, removed: MapIndex) {
        let mut needs: HashMap<u64, MapIndex> = HashMap::new();
        for (i, e) in self.map.iter_valid() {
            if i == removed {
                continue;
            }
            for p in e.tile.pages_touched(self.cfg.page_bytes) {
                needs.insert(p, i);
            }
        }
        self.vp.release(removed, |page| needs.get(&page).copied());
    }

    fn decrement_dirty(&mut self, idx: MapIndex) {
        let mut became_invalid = false;
        if let Some(e) = self.map.entry_mut(idx) {
            e.dirty_chunks = e.dirty_chunks.saturating_sub(1);
            if e.dirty_chunks == 0 && !e.active {
                e.valid = false;
                became_invalid = true;
            }
        }
        if became_invalid {
            self.vp_release(idx);
        }
    }

    /// Writes back and detaches *every* chunk a (displaced) entry owns.
    fn reclaim_entry_chunks(&mut self, _new: MapIndex, old: &StashMapEntry) -> Vec<WritebackWord> {
        let mut writebacks = Vec::new();
        for chunk in 0..self.storage.chunk_count() {
            let meta = self.storage.chunk_meta(chunk);
            // The displaced entry's index equals the new one (same slot);
            // identify its chunks by range instead.
            let in_range = old.contains_word(self.storage.chunk_words(chunk).start);
            if !in_range || meta.owner.is_none() {
                continue;
            }
            if meta.dirty || meta.writeback_pending {
                for w in self.storage.registered_words_in_chunk(chunk) {
                    if !old.contains_word(w) {
                        continue;
                    }
                    let local_off = (w - old.stash_base_word) as u64 * WORD_BYTES;
                    writebacks.push(WritebackWord {
                        stash_word: w,
                        vaddr: old.tile.virt_of_local_offset(local_off),
                    });
                }
            }
            self.storage.invalidate_chunk(chunk);
        }
        writebacks
    }

    /// Invalidates an entry's chunks without writebacks (non-coherent
    /// remap).
    fn drop_entry_chunks(&mut self, idx: MapIndex, old: &StashMapEntry) {
        for chunk in 0..self.storage.chunk_count() {
            let in_range = old.contains_word(self.storage.chunk_words(chunk).start);
            if in_range && self.storage.chunk_meta(chunk).owner == Some(idx) {
                self.storage.invalidate_chunk(chunk);
            }
        }
    }

    /// Flushes an entry's dirty chunks (writebacks) but keeps the data
    /// readable (coherent → non-coherent `ChgMap`).
    fn flush_entry_dirty(
        &mut self,
        idx: MapIndex,
        entry: &StashMapEntry,
        after: WordState,
    ) -> Vec<WritebackWord> {
        let mut writebacks = Vec::new();
        for chunk in self.chunks_owned_by(idx) {
            let meta = self.storage.chunk_meta(chunk);
            if !(meta.dirty || meta.writeback_pending) {
                continue;
            }
            for w in self.storage.registered_words_in_chunk(chunk) {
                let local_off = (w - entry.stash_base_word) as u64 * WORD_BYTES;
                writebacks.push(WritebackWord {
                    stash_word: w,
                    vaddr: entry.tile.virt_of_local_offset(local_off),
                });
            }
            self.storage.complete_chunk_writeback(chunk, after);
            self.decrement_dirty(idx);
        }
        writebacks
    }

    fn chunks_owned_by(&self, idx: MapIndex) -> Vec<usize> {
        (0..self.storage.chunk_count())
            .filter(|&c| self.storage.chunk_meta(c).owner == Some(idx))
            .collect()
    }

    /// Covers a tile's pages in the VP-map. When the VP-map fills, §4.2's
    /// spill path runs: evict (flush + invalidate) the oldest inactive
    /// stash-map entries until their translations free enough space.
    fn cover_pages(
        &mut self,
        idx: MapIndex,
        tile: &TileMap,
    ) -> Result<(usize, Vec<WritebackWord>), SimError> {
        let mut new_pages = 0;
        let mut writebacks = Vec::new();
        for page in tile.pages_touched(self.cfg.page_bytes) {
            if !self.vp.covers_page(page) {
                new_pages += 1;
            }
            loop {
                match self.vp.add_page(idx, page, None) {
                    Ok(()) => break,
                    Err(full) => match self.evict_entry_for_vp(idx) {
                        Some(wbs) => writebacks.extend(wbs),
                        None => return Err(full),
                    },
                }
            }
        }
        Ok((new_pages, writebacks))
    }

    /// Evicts the oldest inactive valid stash-map entry (other than
    /// `protect`) to reclaim VP-map space: its dirty chunks are flushed,
    /// its chunks detached, and its translations removed. Returns `None`
    /// when every other valid entry is still active (a genuine overflow).
    fn evict_entry_for_vp(&mut self, protect: MapIndex) -> Option<Vec<WritebackWord>> {
        let before = self.vp.occupancy();
        // Oldest-first: FIFO order means lower distance from the tail.
        let victim = self
            .map
            .iter_valid()
            .filter(|(i, e)| *i != protect && !e.active)
            .map(|(i, _)| i)
            .next()?;
        let entry = self.map.entry(victim)?.clone();
        let writebacks = self.flush_entry_dirty(victim, &entry, WordState::Invalid);
        for chunk in self.chunks_owned_by(victim) {
            self.storage.invalidate_chunk(chunk);
        }
        self.map.invalidate(victim);
        self.vp_release(victim);
        if self.vp.occupancy() == before {
            // This victim pinned no pages; recurse onto the next one so
            // the caller's retry loop always makes progress.
            let mut more = self.evict_entry_for_vp(protect)?;
            let mut all = writebacks;
            all.append(&mut more);
            return Some(all);
        }
        Some(writebacks)
    }

    /// The stash word holding `va`, if any mapping covers it. When two
    /// mappings hold copies of the same address (an older entry's
    /// Registered copy awaiting lazy writeback plus a fresh replica), the
    /// Registered copy wins: remote requests and surrenders must act on
    /// the authoritative word, not a Shared replica.
    fn find_word_for_vaddr(&self, va: VAddr) -> Option<usize> {
        let mut fallback = None;
        for (idx, entry) in self.map.iter_valid() {
            if let Some(local_off) = entry.tile.local_offset_of_virt(va) {
                let word = entry.stash_base_word + (local_off / WORD_BYTES) as usize;
                if self.storage.chunk_meta(self.storage.chunk_of(word)).owner == Some(idx) {
                    if self.storage.word_state(word) == WordState::Registered {
                        return Some(word);
                    }
                    fallback.get_or_insert(word);
                }
            }
        }
        fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_geometry_helpers() {
        let cfg = StashConfig::default();
        assert_eq!(cfg.capacity_words(), 4096);
        assert_eq!(cfg.chunk_words(), 16);
        assert_eq!(cfg.chunk_rounded(0), 0);
        assert_eq!(cfg.chunk_rounded(1), 16);
        assert_eq!(cfg.chunk_rounded(16), 16);
        assert_eq!(cfg.chunk_rounded(17), 32);
    }

    fn tile(base: u64, elems: u64) -> TileMap {
        // One 4-byte field of a 16-byte object, linear array.
        TileMap::new(VAddr(base), 4, 16, elems, 0, 1).unwrap()
    }

    fn stash() -> Stash {
        Stash::new(StashConfig::default())
    }

    #[test]
    fn stash_round_trips_through_snapshot() {
        let mut s = stash();
        let m = s
            .add_map(0, tile(0x1000, 64), 0, UsageMode::MappedCoherent)
            .unwrap();
        s.complete_load_fill(0);
        assert!(s.store(1, m.index).unwrap().missed());
        s.complete_store_fill(1, m.index);
        s.flip_word(1);
        let m2 = s
            .add_map(1, tile(0x9000, 32), 64, UsageMode::MappedNonCoherent)
            .unwrap();
        let mut w = sim::snapshot::Writer::new();
        s.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = sim::snapshot::Reader::new(&bytes, "stash");
        let mut restored = Stash::restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.config(), s.config());
        assert_eq!(restored.words(), s.words());
        assert_eq!(restored.corrupt_word_count(), 1);
        assert_eq!(restored.word_state(0), s.word_state(0));
        assert_eq!(restored.word_state(1), WordState::Registered);
        assert_eq!(restored.map_entry(m.index), s.map_entry(m.index));
        assert_eq!(restored.map_entry(m2.index), s.map_entry(m2.index));
        assert_eq!(restored.resolve_slot(0, m.slot), Some(m.index));
        assert_eq!(restored.resolve_slot(1, m2.slot), Some(m2.index));
        assert_eq!(restored.vp_occupancy(), s.vp_occupancy());
        assert_eq!(restored.pending_writebacks(), s.pending_writebacks());
        // Behaviour resumes identically: the same load on both sides.
        assert_eq!(
            s.load(2, m.index).unwrap(),
            restored.load(2, m.index).unwrap()
        );
    }

    #[test]
    fn stash_load_rejects_out_of_range_corrupt_word() {
        let mut s = stash();
        s.flip_word(10);
        let mut w = sim::snapshot::Writer::new();
        s.save(&mut w);
        let mut bytes = w.into_bytes();
        // The corrupt-word list is the last thing serialized: count then
        // the word. Patch the word to an out-of-range value.
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut r = sim::snapshot::Reader::new(&bytes, "stash");
        assert!(matches!(
            Stash::restore(&mut r),
            Err(SimError::CheckpointCorrupt { .. })
        ));
    }

    #[test]
    fn first_load_misses_then_hits() {
        let mut s = stash();
        let m = s
            .add_map(0, tile(0x1000, 64), 0, UsageMode::MappedCoherent)
            .unwrap();
        match s.load(0, m.index).unwrap() {
            LoadOutcome::Miss { vaddr, writebacks } => {
                assert_eq!(vaddr, VAddr(0x1000));
                assert!(writebacks.is_empty());
            }
            other => panic!("expected miss, got {other:?}"),
        }
        s.complete_load_fill(0);
        assert_eq!(s.load(0, m.index).unwrap(), LoadOutcome::Hit);
        // Element 5 misses independently (word granularity).
        assert!(s.load(5, m.index).unwrap().missed());
    }

    #[test]
    fn miss_translation_follows_the_tile() {
        let mut s = stash();
        let m = s
            .add_map(0, tile(0x1000, 64), 0, UsageMode::MappedCoherent)
            .unwrap();
        match s.load(7, m.index).unwrap() {
            LoadOutcome::Miss { vaddr, .. } => assert_eq!(vaddr, VAddr(0x1000 + 7 * 16)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn store_registers_then_hits() {
        let mut s = stash();
        let m = s
            .add_map(0, tile(0x1000, 64), 0, UsageMode::MappedCoherent)
            .unwrap();
        match s.store(3, m.index).unwrap() {
            StoreOutcome::Miss {
                vaddr,
                needs_registration,
                ..
            } => {
                assert_eq!(vaddr, VAddr(0x1000 + 3 * 16));
                assert!(needs_registration);
            }
            other => panic!("{other:?}"),
        }
        s.complete_store_fill(3, m.index);
        assert_eq!(s.store(3, m.index).unwrap(), StoreOutcome::Hit);
        assert_eq!(s.word_state(3), WordState::Registered);
        assert_eq!(s.map_entry(m.index).unwrap().dirty_chunks, 1);
    }

    #[test]
    fn non_coherent_store_needs_no_registration() {
        let mut s = stash();
        let m = s
            .add_map(0, tile(0x1000, 64), 0, UsageMode::MappedNonCoherent)
            .unwrap();
        match s.store(0, m.index).unwrap() {
            StoreOutcome::Miss {
                needs_registration, ..
            } => assert!(!needs_registration),
            other => panic!("{other:?}"),
        }
        s.complete_store_fill(0, m.index);
        // Non-coherent dirty data never enters the writeback pipeline.
        s.end_thread_block(0);
        assert!(s.pending_writebacks().is_empty());
    }

    #[test]
    fn registered_data_survives_kernel_end_for_reuse() {
        let mut s = stash();
        let m = s
            .add_map(0, tile(0x1000, 64), 0, UsageMode::MappedCoherent)
            .unwrap();
        s.complete_load_fill(1); // Shared
        s.complete_store_fill(0, m.index); // Registered
        s.end_kernel();
        assert_eq!(s.word_state(0), WordState::Registered);
        assert_eq!(s.word_state(1), WordState::Invalid);
        // The entry stays valid: its dirty chunk has not been written back.
        assert!(s.map_entry(m.index).unwrap().valid);
        assert!(!s.map_entry(m.index).unwrap().active);
    }

    #[test]
    fn cross_kernel_adoption_hits_without_traffic() {
        let mut s = stash();
        let t = tile(0x1000, 64);
        let m1 = s.add_map(0, t, 0, UsageMode::MappedCoherent).unwrap();
        s.complete_store_fill(0, m1.index);
        s.end_kernel();

        // Kernel 2 maps the same tile at the same allocation.
        let m2 = s.add_map(0, t, 0, UsageMode::MappedCoherent).unwrap();
        assert!(m2.replicates);
        // The store hits: the chunk is adopted, no writeback, no miss.
        assert_eq!(s.store(0, m2.index).unwrap(), StoreOutcome::Hit);
        assert!(s.pending_writebacks().iter().all(|w| w.stash_word == 0));
        // Old entry's dirty accounting moved to the new entry.
        assert!(!s.map_entry(m1.index).unwrap().valid);
        assert_eq!(s.map_entry(m2.index).unwrap().dirty_chunks, 1);
    }

    #[test]
    fn replica_load_copies_between_allocations() {
        let mut s = stash();
        let t = tile(0x1000, 16);
        let m1 = s.add_map(0, t, 0, UsageMode::MappedCoherent).unwrap();
        assert!(s.load(2, m1.index).unwrap().missed());
        s.complete_load_fill(2);
        // A second thread block maps the same tile at a different base.
        let m2 = s.add_map(1, t, 64, UsageMode::MappedCoherent).unwrap();
        assert!(m2.replicates);
        match s.load(64 + 2, m2.index).unwrap() {
            LoadOutcome::ReplicaHit {
                from_word,
                writebacks,
            } => {
                assert_eq!(from_word, 2);
                assert!(writebacks.is_empty());
            }
            other => panic!("expected replica hit, got {other:?}"),
        }
        // A word the old mapping never loaded still misses.
        assert!(s.load(64 + 3, m2.index).unwrap().missed());
        drop(m1);
    }

    #[test]
    fn replica_hit_carries_displaced_writebacks() {
        let mut s = stash();
        // An older block's dirty, sealed data occupies the chunk the
        // replica will land in.
        let old = s
            .add_map(0, tile(0x8000, 16), 64, UsageMode::MappedCoherent)
            .unwrap();
        assert!(s.store(66, old.index).unwrap().missed());
        s.complete_store_fill(66, old.index);
        s.end_thread_block(0);
        // A live mapping holds the word the replica copies from.
        let src = s
            .add_map(1, tile(0x1000, 16), 0, UsageMode::MappedCoherent)
            .unwrap();
        assert!(s.load(2, src.index).unwrap().missed());
        s.complete_load_fill(2);
        // The same tile mapped again over the sealed chunk: the replica
        // hit must surface the displaced dirty word, not drop it — a
        // dropped writeback leaves its LLC registration stale forever.
        let m2 = s
            .add_map(2, tile(0x1000, 16), 64, UsageMode::MappedCoherent)
            .unwrap();
        assert!(m2.replicates);
        match s.load(66, m2.index).unwrap() {
            LoadOutcome::ReplicaHit {
                from_word,
                writebacks,
            } => {
                assert_eq!(from_word, 2);
                assert_eq!(
                    writebacks,
                    vec![WritebackWord {
                        stash_word: 66,
                        vaddr: VAddr(0x8020),
                    }]
                );
            }
            other => panic!("expected replica hit, got {other:?}"),
        }
    }

    #[test]
    fn replication_disabled_turns_replica_hits_into_misses() {
        let mut s = Stash::new(StashConfig {
            replication_enabled: false,
            ..StashConfig::default()
        });
        let t = tile(0x1000, 16);
        let m1 = s.add_map(0, t, 0, UsageMode::MappedCoherent).unwrap();
        assert!(s.load(2, m1.index).unwrap().missed());
        s.complete_load_fill(2);
        let m2 = s.add_map(1, t, 64, UsageMode::MappedCoherent).unwrap();
        assert!(!m2.replicates);
        assert!(s.load(64 + 2, m2.index).unwrap().missed());
    }

    #[test]
    fn lazy_writeback_triggers_on_space_reuse() {
        let mut s = stash();
        let m1 = s
            .add_map(0, tile(0x1000, 16), 0, UsageMode::MappedCoherent)
            .unwrap();
        s.complete_store_fill(0, m1.index);
        s.complete_store_fill(1, m1.index);
        s.end_thread_block(0);

        // A different mapping reclaims the same stash space.
        let m2 = s
            .add_map(1, tile(0x9000, 16), 0, UsageMode::MappedCoherent)
            .unwrap();
        match s.load(0, m2.index).unwrap() {
            LoadOutcome::Miss { vaddr, writebacks } => {
                assert_eq!(vaddr, VAddr(0x9000));
                let mut wbs: Vec<_> = writebacks.iter().map(|w| w.vaddr).collect();
                wbs.sort();
                assert_eq!(wbs, vec![VAddr(0x1000), VAddr(0x1010)]);
            }
            other => panic!("{other:?}"),
        }
        // The old entry is gone once its only dirty chunk was reclaimed.
        assert!(!s.map_entry(m1.index).unwrap().valid);
    }

    #[test]
    fn untouched_dirty_chunks_stay_pending() {
        // On-demand pattern: the new mapping never touches the old dirty
        // chunk, so its writeback stays pending (lazy, not eager).
        let mut s = stash();
        let m1 = s
            .add_map(0, tile(0x1000, 32), 0, UsageMode::MappedCoherent)
            .unwrap();
        s.complete_store_fill(20, m1.index); // chunk 1
        s.end_thread_block(0);
        let m2 = s
            .add_map(1, tile(0x9000, 16), 0, UsageMode::MappedCoherent)
            .unwrap();
        // Chunk 0 is reclaimed by an access, chunk 1 never touched.
        let _ = s.load(0, m2.index).unwrap();
        assert_eq!(s.pending_writebacks().len(), 1);
        assert_eq!(s.pending_writebacks()[0].stash_word, 20);
    }

    #[test]
    fn remote_request_finds_registered_word() {
        let mut s = stash();
        let m = s
            .add_map(0, tile(0x1000, 64), 0, UsageMode::MappedCoherent)
            .unwrap();
        s.complete_store_fill(4, m.index);
        // Teach the VP-map the translation (page 1 -> frame 17).
        s.note_translation(VAddr(0x1000), PAddr(17 * 4096));
        let pa = PAddr(17 * 4096 + (4 * 16)); // element 4's field
        assert_eq!(s.remote_request(pa), Some(4));
        // Surrender on a remote registration.
        assert_eq!(s.surrender_word(pa), Some(4));
        assert_eq!(s.word_state(4), WordState::Invalid);
        assert_eq!(s.remote_request(pa), None);
    }

    #[test]
    fn chg_map_to_new_addresses_flushes_dirty() {
        let mut s = stash();
        let m = s
            .add_map(0, tile(0x1000, 16), 0, UsageMode::MappedCoherent)
            .unwrap();
        s.complete_store_fill(0, m.index);
        let out = s
            .chg_map(0, m.slot, tile(0x9000, 16), UsageMode::MappedCoherent)
            .unwrap();
        assert_eq!(out.writebacks.len(), 1);
        assert_eq!(out.writebacks[0].vaddr, VAddr(0x1000));
        // The remapped range starts invalid.
        assert!(s.load(0, m.index).unwrap().missed());
    }

    #[test]
    fn chg_map_coherent_to_non_coherent_flushes() {
        let mut s = stash();
        let m = s
            .add_map(0, tile(0x1000, 16), 0, UsageMode::MappedCoherent)
            .unwrap();
        s.complete_store_fill(2, m.index);
        let out = s
            .chg_map(0, m.slot, tile(0x1000, 16), UsageMode::MappedNonCoherent)
            .unwrap();
        assert_eq!(out.writebacks.len(), 1);
        assert!(out.registrations.is_empty());
        // Data stays readable locally after the flush.
        assert_eq!(s.load(2, m.index).unwrap(), LoadOutcome::Hit);
    }

    #[test]
    fn chg_map_non_coherent_to_coherent_registers() {
        let mut s = stash();
        let m = s
            .add_map(0, tile(0x1000, 16), 0, UsageMode::MappedNonCoherent)
            .unwrap();
        s.complete_store_fill(1, m.index);
        let out = s
            .chg_map(0, m.slot, tile(0x1000, 16), UsageMode::MappedCoherent)
            .unwrap();
        assert!(out.writebacks.is_empty());
        assert_eq!(out.registrations, vec![(1, VAddr(0x1010))]);
        assert_eq!(s.map_entry(m.index).unwrap().dirty_chunks, 1);
    }

    #[test]
    fn add_map_limits_per_thread_block() {
        let mut s = stash();
        for i in 0..4 {
            s.add_map(
                0,
                tile(0x1000 * (i + 1), 16),
                i as usize * 16,
                UsageMode::MappedCoherent,
            )
            .unwrap();
        }
        let err = s
            .add_map(0, tile(0x9000, 16), 128, UsageMode::MappedCoherent)
            .unwrap_err();
        assert!(matches!(err, SimError::TableFull { capacity: 4, .. }));
        // Another thread block still has its own table.
        s.add_map(1, tile(0x9000, 16), 128, UsageMode::MappedCoherent)
            .unwrap();
    }

    #[test]
    fn add_map_validates_allocation() {
        let mut s = stash();
        // Too large for 16 KB.
        assert!(s
            .add_map(0, tile(0x1000, 5000), 0, UsageMode::MappedCoherent)
            .is_err());
        // Misaligned base.
        assert!(s
            .add_map(0, tile(0x1000, 16), 3, UsageMode::MappedCoherent)
            .is_err());
        // Unmapped modes reject AddMap.
        assert!(s
            .add_map(0, tile(0x1000, 16), 0, UsageMode::Temporary)
            .is_err());
    }

    #[test]
    fn drain_flushes_everything() {
        let mut s = stash();
        let m = s
            .add_map(0, tile(0x1000, 16), 0, UsageMode::MappedCoherent)
            .unwrap();
        s.complete_store_fill(0, m.index);
        s.complete_store_fill(15, m.index);
        s.end_thread_block(0);
        let wbs = s.drain_writebacks();
        assert_eq!(wbs.len(), 2);
        assert!(s.pending_writebacks().is_empty());
        // After the drain the entry has no dirty data and goes invalid.
        assert!(!s.map_entry(m.index).unwrap().valid);
    }
}
