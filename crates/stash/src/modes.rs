//! The four stash usage modes (§3.3).

/// How a stash allocation relates to the global address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UsageMode {
    /// Mapped to global addresses and globally visible: misses fetch
    /// implicitly, dirty data is lazily written back, and remote cores can
    /// obtain the data through the coherence protocol (Figure 1b).
    MappedCoherent,
    /// Mapped to global addresses (implicit loads) but *not* globally
    /// visible: local modifications are never reflected back. Selected by
    /// `isCoherent = false` in `AddMap`.
    MappedNonCoherent,
    /// No global mapping; software moves data explicitly, exactly like a
    /// scratchpad used for global data today (§1.2.1).
    GlobalUnmapped,
    /// No global mapping; private temporaries that are discarded after
    /// use.
    Temporary,
}

impl UsageMode {
    /// Whether this mode carries a stash-to-global mapping (needs an
    /// `AddMap`).
    pub fn is_mapped(self) -> bool {
        matches!(
            self,
            UsageMode::MappedCoherent | UsageMode::MappedNonCoherent
        )
    }

    /// Whether stores must be made globally visible (registration and
    /// eventual writeback).
    pub fn is_coherent(self) -> bool {
        matches!(self, UsageMode::MappedCoherent)
    }
}

/// Stable one-byte snapshot encoding of a usage mode.
pub fn usage_mode_code(mode: UsageMode) -> u8 {
    match mode {
        UsageMode::MappedCoherent => 0,
        UsageMode::MappedNonCoherent => 1,
        UsageMode::GlobalUnmapped => 2,
        UsageMode::Temporary => 3,
    }
}

/// Decodes a [`usage_mode_code`] byte, rejecting unknown values.
pub fn usage_mode_from_code(code: u8) -> Result<UsageMode, sim::SimError> {
    Ok(match code {
        0 => UsageMode::MappedCoherent,
        1 => UsageMode::MappedNonCoherent,
        2 => UsageMode::GlobalUnmapped,
        3 => UsageMode::Temporary,
        v => {
            return Err(sim::SimError::CheckpointCorrupt {
                what: "usage mode",
                detail: format!("unknown usage mode code {v}"),
            })
        }
    })
}

impl std::fmt::Display for UsageMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            UsageMode::MappedCoherent => "mapped-coherent",
            UsageMode::MappedNonCoherent => "mapped-non-coherent",
            UsageMode::GlobalUnmapped => "global-unmapped",
            UsageMode::Temporary => "temporary",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapped_and_coherent_classification() {
        assert!(UsageMode::MappedCoherent.is_mapped());
        assert!(UsageMode::MappedCoherent.is_coherent());
        assert!(UsageMode::MappedNonCoherent.is_mapped());
        assert!(!UsageMode::MappedNonCoherent.is_coherent());
        assert!(!UsageMode::GlobalUnmapped.is_mapped());
        assert!(!UsageMode::Temporary.is_mapped());
        assert!(!UsageMode::Temporary.is_coherent());
    }

    #[test]
    fn display_names() {
        assert_eq!(UsageMode::MappedCoherent.to_string(), "mapped-coherent");
        assert_eq!(UsageMode::Temporary.to_string(), "temporary");
    }
}
