//! The VP-map: virtual↔physical translations for mapped stash data
//! (§4.1.4).
//!
//! Stash misses and writebacks need forward (virtual → physical)
//! translations; remote requests arrive with a physical address and need
//! the *reverse* translation. The paper keeps a TLB and a CAM-organized
//! reverse TLB (RTLB), each entry carrying a back-pointer to the **latest**
//! stash-map entry that requires the translation: when that map entry is
//! replaced the translations are reclaimable, and by keeping each entry
//! until the last mapping using it is removed, *the RTLB never misses on a
//! remote request* — a guarantee the property tests in this crate drive.
//!
//! Footnote 3 of the paper notes the two structures can be merged to save
//! area; this model does exactly that — one table searched by either key,
//! which charges the same events as split structures.

use crate::map::MapIndex;
use mem::addr::{PAddr, VAddr};
use sim::SimError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct VpEntry {
    vpage: u64,
    /// Physical frame; `None` until the translation is acquired at the
    /// first stash miss ("if the translation does not exist in the TLB,
    /// the physical translation is acquired at the subsequent stash miss").
    frame: Option<u64>,
    /// Back-pointer: the latest stash-map entry needing this translation.
    last_user: MapIndex,
}

/// The merged TLB + RTLB of the stash (64 entries in the paper).
///
/// # Example
///
/// ```
/// use mem::addr::{PAddr, VAddr};
/// use stash::map::MapIndex;
/// use stash::vpmap::VpMap;
///
/// let mut vp = VpMap::new(64, 4096);
/// vp.add_page(MapIndex(0), 5, Some(9)).unwrap();
/// assert_eq!(vp.translate(VAddr(5 * 4096 + 12)), Some(PAddr(9 * 4096 + 12)));
/// assert_eq!(vp.reverse(PAddr(9 * 4096 + 12)), Some(VAddr(5 * 4096 + 12)));
/// ```
#[derive(Debug, Clone)]
pub struct VpMap {
    entries: Vec<VpEntry>,
    capacity: usize,
    page_bytes: u64,
}

impl VpMap {
    /// Creates a VP-map with `capacity` entries over `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `page_bytes` is not a power of two.
    pub fn new(capacity: usize, page_bytes: u64) -> Self {
        assert!(capacity > 0);
        assert!(page_bytes.is_power_of_two());
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            page_bytes,
        }
    }

    /// Registers that map entry `user` needs virtual page `vpage`, with
    /// physical frame `frame` if the system TLB already knows it.
    ///
    /// An existing entry for the page just has its back-pointer advanced
    /// to `user` (and its frame filled in if newly known).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TableFull`] when the VP-map has no free entry;
    /// the caller ([`crate::Stash`]) then evicts stash-map entries to
    /// reclaim translations, per §4.2.
    pub fn add_page(
        &mut self,
        user: MapIndex,
        vpage: u64,
        frame: Option<u64>,
    ) -> Result<(), SimError> {
        if let Some(e) = self.entries.iter_mut().find(|e| e.vpage == vpage) {
            e.last_user = user;
            if e.frame.is_none() {
                e.frame = frame;
            }
            return Ok(());
        }
        if self.entries.len() == self.capacity {
            return Err(SimError::TableFull {
                table: "VP-map",
                capacity: self.capacity,
            });
        }
        self.entries.push(VpEntry {
            vpage,
            frame,
            last_user: user,
        });
        Ok(())
    }

    /// Fills in the physical frame for `vpage` (acquired at a stash miss).
    pub fn fill_translation(&mut self, vpage: u64, frame: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.vpage == vpage) {
            e.frame = Some(frame);
        }
    }

    /// Forward translation (TLB): virtual → physical.
    pub fn translate(&self, va: VAddr) -> Option<PAddr> {
        let vpage = va.page(self.page_bytes);
        self.entries
            .iter()
            .find(|e| e.vpage == vpage)
            .and_then(|e| e.frame)
            .map(|f| PAddr(f * self.page_bytes + va.offset_in(self.page_bytes)))
    }

    /// Reverse translation (RTLB): physical → virtual. For remote requests
    /// this must never miss; see the crate's property tests.
    pub fn reverse(&self, pa: PAddr) -> Option<VAddr> {
        let frame = pa.frame(self.page_bytes);
        self.entries
            .iter()
            .find(|e| e.frame == Some(frame))
            .map(|e| VAddr(e.vpage * self.page_bytes + pa.offset_in(self.page_bytes)))
    }

    /// Reclaims every entry whose back-pointer names `removed` — called
    /// when that stash-map entry is replaced. Because map entries retire
    /// in FIFO order, an entry pointing at `removed` has no younger user.
    pub fn remove_for(&mut self, removed: MapIndex) {
        self.entries.retain(|e| e.last_user != removed);
    }

    /// Releases `removed`'s translations, *reassigning* any page that a
    /// still-valid mapping needs (per `still_needed_by`) instead of
    /// dropping it.
    ///
    /// Stash-map entries do not strictly retire in FIFO order — a clean
    /// entry goes invalid as soon as its thread block ends (§4.2), so a
    /// short-lived newer mapping can hold a page's back-pointer and die
    /// before an older, still-dirty mapping that shares the page. Plain
    /// removal would then break the "RTLB never misses on a remote
    /// request" guarantee; the walk re-homes such pages instead.
    pub fn release(
        &mut self,
        removed: MapIndex,
        mut still_needed_by: impl FnMut(u64) -> Option<MapIndex>,
    ) {
        self.entries.retain_mut(|e| {
            if e.last_user != removed {
                return true;
            }
            match still_needed_by(e.vpage) {
                Some(idx) => {
                    e.last_user = idx;
                    true
                }
                None => false,
            }
        });
    }

    /// Occupied entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Free entries.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Whether `vpage` is currently covered.
    pub fn covers_page(&self, vpage: u64) -> bool {
        self.entries.iter().any(|e| e.vpage == vpage)
    }

    /// Serializes capacity, page size, and live entries in table order.
    pub fn save(&self, w: &mut sim::snapshot::Writer) {
        w.put_usize(self.capacity);
        w.put_u64(self.page_bytes);
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.vpage);
            match e.frame {
                None => w.put_u8(0),
                Some(f) => {
                    w.put_u8(1);
                    w.put_u64(f);
                }
            }
            w.put_u8(e.last_user.0);
        }
    }

    /// Restores a VP-map written by [`VpMap::save`].
    pub fn load(r: &mut sim::snapshot::Reader<'_>) -> Result<Self, SimError> {
        let corrupt = |detail: String| SimError::CheckpointCorrupt {
            what: "vp map",
            detail,
        };
        let capacity = r.take_usize()?;
        let page_bytes = r.take_u64()?;
        if capacity == 0 || !page_bytes.is_power_of_two() {
            return Err(corrupt(format!(
                "capacity {capacity}, page size {page_bytes}"
            )));
        }
        let n = r.take_usize()?;
        if n > capacity {
            return Err(corrupt(format!("{n} entries exceed capacity {capacity}")));
        }
        let mut entries = Vec::with_capacity(capacity);
        for _ in 0..n {
            let vpage = r.take_u64()?;
            let frame = match r.take_u8()? {
                0 => None,
                1 => Some(r.take_u64()?),
                v => return Err(corrupt(format!("unknown frame code {v}"))),
            };
            entries.push(VpEntry {
                vpage,
                frame,
                last_user: MapIndex(r.take_u8()?),
            });
        }
        Ok(Self {
            entries,
            capacity,
            page_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp() -> VpMap {
        VpMap::new(4, 4096)
    }

    #[test]
    fn translate_both_ways() {
        let mut v = vp();
        v.add_page(MapIndex(0), 10, Some(3)).unwrap();
        let va = VAddr(10 * 4096 + 100);
        let pa = PAddr(3 * 4096 + 100);
        assert_eq!(v.translate(va), Some(pa));
        assert_eq!(v.reverse(pa), Some(va));
    }

    #[test]
    fn pending_translation_filled_later() {
        let mut v = vp();
        v.add_page(MapIndex(1), 7, None).unwrap();
        assert_eq!(v.translate(VAddr(7 * 4096)), None);
        v.fill_translation(7, 2);
        assert_eq!(v.translate(VAddr(7 * 4096)), Some(PAddr(2 * 4096)));
        assert_eq!(v.reverse(PAddr(2 * 4096)), Some(VAddr(7 * 4096)));
    }

    #[test]
    fn back_pointer_advances_to_latest_user() {
        let mut v = vp();
        v.add_page(MapIndex(0), 5, Some(1)).unwrap();
        v.add_page(MapIndex(1), 5, Some(1)).unwrap();
        // Removing the *older* user must keep the shared page alive.
        v.remove_for(MapIndex(0));
        assert!(v.covers_page(5));
        v.remove_for(MapIndex(1));
        assert!(!v.covers_page(5));
    }

    #[test]
    fn capacity_overflow_reports_table_full() {
        let mut v = vp();
        for p in 0..4 {
            v.add_page(MapIndex(0), p, Some(p)).unwrap();
        }
        assert!(matches!(
            v.add_page(MapIndex(0), 99, Some(99)),
            Err(SimError::TableFull {
                table: "VP-map",
                ..
            })
        ));
        // Re-adding a covered page is not an overflow.
        v.add_page(MapIndex(2), 3, Some(3)).unwrap();
        assert_eq!(v.occupancy(), 4);
        assert_eq!(v.free(), 0);
    }

    #[test]
    fn reverse_misses_only_for_unknown_frames() {
        let mut v = vp();
        v.add_page(MapIndex(0), 1, Some(8)).unwrap();
        assert_eq!(v.reverse(PAddr(9 * 4096)), None);
    }
}
