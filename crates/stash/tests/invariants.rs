//! Stash-level invariant tests: the §8 extension hooks, the VP-map spill
//! path, and property-style dirty-chunk accounting driven by the
//! simulator's deterministic PRNG.

use mem::addr::VAddr;
use mem::coherence::WordState;
use mem::tile::TileMap;
use sim::rng::SplitMix64;
use stash::{LoadOutcome, Stash, StashConfig, StoreOutcome, UsageMode};

fn tile(base: u64, elems: u64) -> TileMap {
    TileMap::new(VAddr(base), 4, 16, elems, 0, 1).unwrap()
}

fn coherent(s: &mut Stash, tb: usize, base: u64, elems: u64, at: usize) -> stash::MapIndex {
    s.add_map(tb, tile(base, elems), at, UsageMode::MappedCoherent)
        .unwrap()
        .index
}

#[test]
fn prefetch_candidates_stay_in_chunk_and_mapping() {
    let mut s = Stash::new(StashConfig::default());
    let m = coherent(&mut s, 0, 0x10_000, 24, 0); // 24 words: 1.5 chunks
    assert!(s.load(0, m).unwrap().missed());
    s.complete_load_fill(0);
    // Candidates around word 0: the other 15 words of chunk 0, minus the
    // filled word, capped by the requested width.
    let cands = s.prefetch_candidates(0, m, 8);
    assert_eq!(cands.len(), 7);
    assert!(cands.iter().all(|&(w, _)| w < 16 && w != 0));
    // Addresses follow the tile's stride.
    for &(w, va) in &cands {
        assert_eq!(va, VAddr(0x10_000 + w as u64 * 16));
    }
    // Words of the second chunk never appear (their chunk is unclaimed).
    let wide = s.prefetch_candidates(0, m, 64);
    assert!(wide.iter().all(|&(w, _)| w < 16));
}

#[test]
fn unfetched_words_shrink_as_fills_land() {
    let mut s = Stash::new(StashConfig::default());
    let m = coherent(&mut s, 0, 0x10_000, 16, 0);
    assert_eq!(s.unfetched_words(m).len(), 16);
    let _ = s.load(3, m).unwrap();
    s.complete_load_fill(3);
    let left = s.unfetched_words(m);
    assert_eq!(left.len(), 15);
    assert!(left.iter().all(|&(w, _)| w != 3));
}

#[test]
fn claim_chunks_reclaims_previous_owner_dirty_data() {
    let mut s = Stash::new(StashConfig::default());
    let m1 = coherent(&mut s, 0, 0x10_000, 16, 0);
    let _ = s.store(0, m1).unwrap();
    s.complete_store_fill(0, m1);
    s.end_thread_block(0);
    // A new mapping claims the same chunks up front (prefetch path).
    let m2 = coherent(&mut s, 1, 0x90_000, 16, 0);
    let wbs = s.claim_chunks(m2);
    assert_eq!(wbs.len(), 1);
    assert_eq!(wbs[0].vaddr, VAddr(0x10_000));
    assert_eq!(s.word_state(0), WordState::Invalid);
}

#[test]
fn vp_spill_path_flushes_oldest_inactive_entry() {
    // Tiny VP-map: 2 pages. Two dirty mappings on different pages, then a
    // third mapping forces the spill; the oldest inactive entry is
    // flushed and its translations released.
    let mut s = Stash::new(StashConfig {
        vp_map_entries: 2,
        ..StashConfig::default()
    });
    let m1 = coherent(&mut s, 0, 0x10_000, 16, 0);
    let _ = s.store(0, m1).unwrap();
    s.complete_store_fill(0, m1);
    s.end_thread_block(0);

    let m2 = coherent(&mut s, 1, 0x20_000, 16, 16);
    let _ = s.store(16, m2).unwrap();
    s.complete_store_fill(16, m2);
    s.end_thread_block(1);

    // Third mapping on a third page: the VP-map must spill.
    let out = s
        .add_map(2, tile(0x30_000, 16), 32, UsageMode::MappedCoherent)
        .unwrap();
    // The spill flushed some older entry's dirty word.
    assert_eq!(out.writebacks.len(), 1);
    assert!(s.vp_occupancy() <= 2);
}

#[test]
fn spill_with_only_active_entries_errors() {
    let mut s = Stash::new(StashConfig {
        vp_map_entries: 1,
        ..StashConfig::default()
    });
    // One active mapping holds the only VP entry...
    coherent(&mut s, 0, 0x10_000, 16, 0);
    // ...so a second active mapping on a different page cannot cover its
    // pages (nothing evictable): a genuine overflow.
    let err = s
        .add_map(0, tile(0x20_000, 16), 16, UsageMode::MappedCoherent)
        .unwrap_err();
    assert!(matches!(err, sim::SimError::TableFull { .. }));
}

/// Dirty-chunk conservation: at any point, the sum of valid entries'
/// `#DirtyData` counters equals the number of chunks whose metadata
/// is dirty or writeback-pending. Random map/access/finish sequences,
/// one seeded trial per iteration.
#[test]
fn dirty_chunk_accounting_is_conserved() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let cfg = StashConfig::default();
        let chunk_words = cfg.chunk_bytes / 4;
        let mut s = Stash::new(cfg);
        let rounds = 1 + rng.next_below(9);
        for tb in 0..rounds as usize {
            let base_sel = rng.next_below(4);
            let finish = rng.chance(1, 2);
            let elems = 64u64;
            let Ok(out) = s.add_map(
                tb,
                tile(0x100_0000 + base_sel * 0x10_0000, elems),
                0,
                UsageMode::MappedCoherent,
            ) else {
                break;
            };
            let accesses = rng.next_below(20);
            for _ in 0..accesses {
                let w = rng.next_below(elems) as usize;
                if rng.chance(1, 2) {
                    if let StoreOutcome::Miss { .. } = s.store(w, out.index).unwrap() {
                        s.complete_store_fill(w, out.index);
                    }
                } else if let LoadOutcome::Miss { .. } = s.load(w, out.index).unwrap() {
                    s.complete_load_fill(w);
                }
            }
            if finish {
                s.end_thread_block(tb);
                s.end_kernel();
            }

            // The conservation invariant.
            let counted: u32 = (0..cfg_map_entries())
                .filter_map(|i| s.map_entry(stash::MapIndex(i)))
                .filter(|e| e.valid)
                .map(|e| e.dirty_chunks)
                .sum();
            let actual = count_marked_chunks(&s, chunk_words);
            assert_eq!(counted as usize, actual, "seed {seed}");
        }
    }
}

fn cfg_map_entries() -> u8 {
    64
}

/// Counts chunks whose words include Registered data belonging to a
/// dirty/pending chunk — via the public pending-writeback view.
fn count_marked_chunks(s: &Stash, chunk_words: usize) -> usize {
    let mut chunks: Vec<usize> = s
        .pending_writebacks()
        .iter()
        .map(|wb| wb.stash_word / chunk_words)
        .collect();
    chunks.sort_unstable();
    chunks.dedup();
    chunks.len()
}
