//! The chaos harness: fuzz deterministic fault schedules across a
//! workload matrix and enforce the no-silent-corruption contract.
//!
//! For every `(workload, configuration)` cell the harness first runs a
//! fault-free **golden** replay and records its architectural-state
//! digest. It then re-runs the cell once per fault seed with the chaos
//! schedule installed and classifies each injected run:
//!
//! * **Recovered** — the run completed and its architectural state is
//!   bit-identical to the golden digest (retries, duplicate suppression,
//!   NACK/resend and parity correction absorbed every fault).
//! * **Detected** — a detector flagged the fault: the no-progress
//!   watchdog ([`sim::SimError::Deadlock`]), the runtime invariant
//!   oracle (a caught panic), or the parity/ECC model.
//! * **Silent escape** — the run completed, diverged from golden (or
//!   carried surviving corrupt words), and no detector fired. This is
//!   the contract violation the harness exists to catch; the `chaos`
//!   binary exits 1 if any occur.
//!
//! Everything is deterministic: the same targets, seeds, and switches
//! produce bit-identical [`CellRun::fingerprint`]s at any `--threads`
//! setting (enforced by `tests/chaos_determinism.rs`).

use crate::pool::JobPool;
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use gpu::program::Program;
use sim::config::SystemConfig;
use sim::fault::{FaultConfig, FaultEvent};
use sim::stats::Counters;
use sim::SimError;

/// A workload the campaign stresses: a named program factory plus the
/// machine configuration it runs on.
pub struct Target<'a> {
    /// Display name (suite name or trace path).
    pub name: String,
    /// Machine configuration for this workload.
    pub sys: SystemConfig,
    /// Builds the program for one memory configuration.
    pub build: &'a (dyn Fn(MemConfigKind) -> Program + Sync),
}

/// Which detector flagged a non-recovered run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// The no-progress watchdog tripped ([`SimError::Deadlock`]).
    Watchdog,
    /// A panic was caught — in practice the runtime invariant oracle.
    Oracle,
    /// The parity/ECC model flagged corruption during the run.
    Parity,
    /// The checkpoint store rejected a torn or corrupt snapshot
    /// (truncation / CRC / version check) during crash recovery and fell
    /// back to the previous good one.
    Snapshot,
}

impl Detector {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Detector::Watchdog => "watchdog",
            Detector::Oracle => "oracle",
            Detector::Parity => "parity",
            Detector::Snapshot => "snapshot",
        }
    }
}

/// How one injected run resolved against its golden replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Architectural state converged bit-identically to golden.
    Recovered,
    /// A detector flagged the fault.
    Detected(Detector),
    /// Diverged (or carried surviving corruption) with no flag — the
    /// contract violation. The string says what leaked.
    SilentEscape(String),
}

impl Outcome {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Recovered => "recovered",
            Outcome::Detected(_) => "detected",
            Outcome::SilentEscape(_) => "ESCAPE",
        }
    }
}

/// One injected run's classified result.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// Workload name.
    pub workload: String,
    /// Memory configuration.
    pub kind: MemConfigKind,
    /// Fault seed of this run.
    pub seed: u64,
    /// The classification.
    pub outcome: Outcome,
    /// Total injected faults (sum of the `fault.*` injection counters).
    pub injected: u64,
    /// Retries the resilience machinery performed.
    pub retries: u64,
    /// Deterministic fingerprint of the run: state digest, touched
    /// counters, and the full fault trace. Bit-identical across thread
    /// counts for identical seed + config.
    pub fingerprint: String,
}

/// A whole campaign's classified results, in deterministic
/// `(target, kind, seed)` order.
#[derive(Debug)]
pub struct Campaign {
    /// Every injected run.
    pub cells: Vec<CellRun>,
}

impl Campaign {
    /// Runs classified as recovered.
    pub fn recovered(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.outcome == Outcome::Recovered)
            .count()
    }

    /// Runs flagged by a detector.
    pub fn detected(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, Outcome::Detected(_)))
            .count()
    }

    /// The silent-corruption escapes (must be empty for the contract).
    pub fn escapes(&self) -> Vec<&CellRun> {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, Outcome::SilentEscape(_)))
            .collect()
    }

    /// Total faults injected across the campaign.
    pub fn total_injected(&self) -> u64 {
        self.cells.iter().map(|c| c.injected).sum()
    }

    /// Total retries performed across the campaign.
    pub fn total_retries(&self) -> u64 {
        self.cells.iter().map(|c| c.retries).sum()
    }
}

/// Campaign switches (the `chaos` binary's flags).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Fault seeds to run per cell.
    pub seeds: Vec<u64>,
    /// Worker threads for the job pool.
    pub threads: usize,
    /// Run the runtime invariant oracle inside every cell.
    pub verify: bool,
    /// Leave the retry/fallback machinery on (`false` demonstrates the
    /// escape classes the machinery exists to close).
    pub resilience: bool,
    /// Leave the parity/ECC detection model on.
    pub parity: bool,
}

impl CampaignConfig {
    /// The binary's defaults: resilience and parity on, oracle off.
    pub fn new(seeds: Vec<u64>, threads: usize) -> Self {
        CampaignConfig {
            seeds,
            threads,
            verify: false,
            resilience: true,
            parity: true,
        }
    }

    fn fault(&self, seed: u64) -> FaultConfig {
        let mut cfg = FaultConfig::chaos(seed);
        if !self.resilience {
            cfg = cfg.without_resilience();
        }
        if !self.parity {
            cfg = cfg.without_parity();
        }
        cfg
    }
}

/// What one simulation job observed (before classification).
enum RawRun {
    Done {
        digest: u64,
        remaining: usize,
        counters: Box<Counters>,
        trace_fp: String,
    },
    Deadlocked {
        site: &'static str,
        attempts: u32,
    },
    Failed(String),
}

fn render_trace(trace: &[FaultEvent]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for e in trace {
        write!(s, "{}:{:?}:{}:{};", e.site, e.kind, e.seq, e.attempt)
            .expect("writing to String cannot fail");
    }
    s
}

fn render_counters(counters: &Counters) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for (name, value) in counters.iter() {
        write!(s, "{name}={value};").expect("writing to String cannot fail");
    }
    s
}

fn run_one(
    target: &Target<'_>,
    kind: MemConfigKind,
    fault: Option<FaultConfig>,
    verify: bool,
) -> RawRun {
    let mut machine = Machine::new(target.sys.clone(), kind);
    machine.memory_mut().set_verify(verify);
    if let Some(cfg) = fault {
        machine.memory_mut().set_fault_injector(cfg);
    }
    match machine.run(&(target.build)(kind)) {
        Ok(_) => {
            let mem = machine.memory();
            RawRun::Done {
                digest: mem.state_digest(),
                remaining: mem.remaining_corruption(),
                counters: Box::new(mem.counters().clone()),
                trace_fp: mem
                    .fault_injector()
                    .map(|inj| render_trace(inj.trace()))
                    .unwrap_or_default(),
            }
        }
        Err(SimError::Deadlock { site, attempts, .. }) => RawRun::Deadlocked { site, attempts },
        Err(e) => RawRun::Failed(e.to_string()),
    }
}

fn classify(raw: Result<RawRun, String>, golden_digest: u64) -> (Outcome, u64, u64, String) {
    match raw {
        Err(panic_msg) => (
            Outcome::Detected(Detector::Oracle),
            0,
            0,
            format!("panic:{panic_msg}"),
        ),
        Ok(RawRun::Deadlocked { site, attempts }) => (
            Outcome::Detected(Detector::Watchdog),
            0,
            0,
            format!("deadlock:{site}:{attempts}"),
        ),
        Ok(RawRun::Failed(msg)) => (
            // An unexpected non-watchdog error under injection is not a
            // proven corruption, but it is not a proven recovery either —
            // count it against the contract so it gets investigated.
            Outcome::SilentEscape(format!("unexpected simulation error: {msg}")),
            0,
            0,
            format!("error:{msg}"),
        ),
        Ok(RawRun::Done {
            digest,
            remaining,
            counters,
            trace_fp,
        }) => {
            let injected = counters.get("fault.drop_injected")
                + counters.get("fault.dup_injected")
                + counters.get("fault.delay_injected")
                + counters.get("fault.flip_injected")
                + counters.get("fault.wb_lost")
                + counters.get("fault.dma_truncated");
            let retries = counters.get("resilience.retry");
            let flagged =
                counters.get("fault.parity_detected") + counters.get("fault.scrub_detected");
            let outcome = if remaining > 0 {
                Outcome::SilentEscape(format!(
                    "{remaining} corrupt word(s) survived to the end of the run undetected"
                ))
            } else if digest == golden_digest {
                Outcome::Recovered
            } else if flagged > 0 {
                Outcome::Detected(Detector::Parity)
            } else {
                Outcome::SilentEscape(
                    "architectural state diverged from the golden replay with no detector fired"
                        .to_string(),
                )
            };
            let fingerprint = format!(
                "digest:{digest:016x};{}trace:{trace_fp}",
                render_counters(&counters)
            );
            (outcome, injected, retries, fingerprint)
        }
    }
}

/// Runs the full campaign: golden replays first, then every
/// `(target, kind, seed)` cell with injection, classified against the
/// golden digests.
///
/// # Errors
///
/// Returns a message if any *golden* (fault-free) run fails or panics —
/// the matrix must be healthy before injection means anything.
pub fn run_campaign(
    targets: &[Target<'_>],
    kinds: &[MemConfigKind],
    cfg: &CampaignConfig,
) -> Result<Campaign, String> {
    let pool = JobPool::new(cfg.threads);

    // Phase 1: fault-free golden digests, one per (target, kind) — the
    // shared reference both chaos campaigns classify against
    // ([`crate::golden`]).
    let golden = crate::golden::golden_digests(&pool, targets, kinds, cfg.verify)?;

    // Phase 2: injected runs, every (target, kind, seed).
    let mut meta = Vec::new();
    let mut jobs = Vec::new();
    for (cell, (t, kind)) in targets
        .iter()
        .flat_map(|t| kinds.iter().map(move |&kind| (t, kind)))
        .enumerate()
    {
        for &seed in &cfg.seeds {
            meta.push((t.name.clone(), kind, seed, golden[cell]));
            let fault = cfg.fault(seed);
            jobs.push(move || run_one(t, kind, Some(fault), cfg.verify));
        }
    }
    let results = pool.run_catching(jobs);

    let cells = meta
        .into_iter()
        .zip(results)
        .map(|((workload, kind, seed, golden_digest), result)| {
            let raw = match result {
                Ok(r) => Ok(r.value),
                Err(p) => Err(p.message),
            };
            let (outcome, injected, retries, fingerprint) = classify(raw, golden_digest);
            CellRun {
                workload,
                kind,
                seed,
                outcome,
                injected,
                retries,
                fingerprint,
            }
        })
        .collect();
    Ok(Campaign { cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::suite;

    #[test]
    fn resilient_chaos_on_one_micro_has_no_escapes() {
        let w = suite::micros()[0];
        let target = Target {
            name: w.name.to_string(),
            sys: w.set.system_config(),
            build: &w.build,
        };
        let cfg = CampaignConfig::new(vec![1, 2], 2);
        let campaign =
            run_campaign(&[target], &[MemConfigKind::Stash], &cfg).expect("golden runs clean");
        assert_eq!(campaign.cells.len(), 2);
        assert!(
            campaign.escapes().is_empty(),
            "resilient runs must never escape: {:?}",
            campaign.escapes()
        );
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(Outcome::Recovered.label(), "recovered");
        assert_eq!(Outcome::Detected(Detector::Watchdog).label(), "detected");
        assert_eq!(Outcome::SilentEscape("x".into()).label(), "ESCAPE");
        assert_eq!(Detector::Parity.label(), "parity");
    }
}
