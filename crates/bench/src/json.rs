//! Minimal JSON reader for the daemon wire protocol.
//!
//! The environment is offline (no serde), and the protocol surface is
//! one object per line, so this is a small recursive-descent parser into
//! an owned [`Value`] tree plus the typed accessors the server needs.
//! It accepts exactly the JSON the repo's own emitters produce (strings
//! with `\uXXXX` escapes, integers, floats, nested arrays/objects) and
//! rejects everything else with a positioned error message — a malformed
//! request must turn into an `error` event, never a panic.

use std::collections::BTreeMap;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// A string with all escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; keys are sorted (BTreeMap), duplicates keep the last.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Member lookup, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// `get(key)` as a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }

    /// `get(key)` as a `u64`.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Value::as_u64)
    }
}

/// Parses one complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a message with the byte offset of the first violation.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // protocol; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("non-scalar \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+')) {
            self.pos += 1;
        }
        // A '-' inside an exponent ("1e-3") is also part of the number.
        if matches!(self.peek(), Some(b'-'))
            && matches!(self.bytes.get(self.pos - 1), Some(b'e' | b'E'))
        {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = parse(r#"{"id": 3, "cmd": "advise", "workload": "reuse"}"#).unwrap();
        assert_eq!(v.get_u64("id"), Some(3));
        assert_eq!(v.get_str("cmd"), Some("advise"));
        assert_eq!(v.get_str("workload"), Some("reuse"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_arrays_and_escapes() {
        let v = parse(r#"{"configs": ["Stash", "Cache"], "trace": "a\nb\t\"q\" A"}"#).unwrap();
        let configs: Vec<&str> = v
            .get("configs")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .filter_map(Value::as_str)
            .collect();
        assert_eq!(configs, ["Stash", "Cache"]);
        assert_eq!(v.get_str("trace"), Some("a\nb\t\"q\" A"));
    }

    #[test]
    fn numbers_parse_exactly() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1e2").unwrap().as_u64(), Some(100));
        assert_eq!(parse("2e-1").unwrap(), Value::Num(0.2));
    }

    #[test]
    fn keywords_and_null() {
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("null").unwrap(), Value::Null);
    }

    #[test]
    fn malformed_inputs_error_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\": }",
            "\"unterminated",
            "{\"a\"; 1}",
            "nulL",
            "01a",
            "{\"a\":1} extra",
            "\"bad \\u00ZZ escape\"",
            "\"bad \\x escape\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn round_trips_the_repo_escaper() {
        let raw = "line\n\ttab \"quote\" back\\slash \u{1}";
        let encoded = format!("\"{}\"", crate::cli::json_escape(raw));
        assert_eq!(parse(&encoded).unwrap().as_str(), Some(raw));
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get_u64("a"), Some(2));
    }
}
