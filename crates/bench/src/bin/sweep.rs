//! Parameter sweeps: sensitivity curves around the paper's operating
//! points, locating the crossovers the qualitative claims predict.
//!
//! * `--sweep compaction`  — object size 4…128 B on Implicit: how the
//!   stash's compact storage pulls away from the cache as more of each
//!   line is wasted;
//! * `--sweep selectivity` — selection density 1-in-1 … 1-in-64 on
//!   On-demand: where on-demand fetching overtakes bulk DMA transfer;
//! * `--sweep reuse`       — 1…16 kernels on Reuse: how the stash's
//!   one-time fetch amortizes against per-kernel recopying.
//!
//! Without `--sweep`, all three run. Every `(sweep-point, config)` cell
//! is an independent simulation, so each sweep fans its whole grid
//! through the job pool (`--threads N` / `STASH_THREADS`); the `host ms`
//! column is the summed per-cell wall-clock of that row's simulations.

use std::time::Duration;

use bench::cli;
use bench::pool::{JobPool, JobResult};
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use gpu::program::Program;
use gpu::report::RunReport;
use sim::config::SystemConfig;
use workloads::micro::{implicit, ondemand, reuse};

fn run(kind: MemConfigKind, program: &Program) -> Result<RunReport, sim::SimError> {
    let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), kind);
    machine.run(program)
}

/// Runs one sweep's full `(point × config)` grid through the pool and
/// regroups the results per point, with each row's summed host time.
///
/// A failed cell reports its configuration context and exits nonzero —
/// a deadlock additionally prints its diagnostic dump (exit 3) —
/// instead of panicking mid-batch.
fn run_grid(
    pool: &JobPool,
    cells: Vec<(MemConfigKind, Program)>,
    per_point: usize,
) -> Vec<(Vec<RunReport>, Duration)> {
    let jobs: Vec<_> = cells
        .into_iter()
        .map(|(kind, program)| move || (kind, run(kind, &program)))
        .collect();
    let mut results = Vec::with_capacity(jobs.len());
    for job in pool.run(jobs) {
        let (kind, outcome) = job.value;
        match outcome {
            Ok(report) => results.push(JobResult {
                value: report,
                host_time: job.host_time,
            }),
            Err(e) => {
                let context = format!("sweep: point on {}", kind.name());
                std::process::exit(cli::sim_failure_status(&context, &e));
            }
        }
    }
    let mut results = results.into_iter();
    let points = results.len() / per_point;
    (0..points)
        .map(|_| {
            let row: Vec<JobResult<RunReport>> = results.by_ref().take(per_point).collect();
            let host: Duration = row.iter().map(|r| r.host_time).sum();
            (row.into_iter().map(|r| r.value).collect(), host)
        })
        .collect()
}

fn pct(x: &RunReport, base: &RunReport) -> (u64, u64) {
    (x.time_percent_of(base), x.energy_percent_of(base))
}

fn host_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn sweep_compaction(pool: &JobPool) {
    println!("\n== compaction: Implicit vs object size (Scratch = 100) ==");
    println!(
        "{:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>9}",
        "object B", "cache t%", "cache e%", "stash t%", "stash e%", "host ms"
    );
    let sizes = [4u64, 8, 16, 32, 64, 128];
    let cells = sizes
        .iter()
        .flat_map(|&b| {
            [
                MemConfigKind::Scratch,
                MemConfigKind::Cache,
                MemConfigKind::Stash,
            ]
            .map(|k| (k, implicit::program_with_object_bytes(k, b)))
        })
        .collect();
    for (&object_bytes, (row, host)) in sizes.iter().zip(run_grid(pool, cells, 3)) {
        let [base, cache, stash] = &row[..] else {
            unreachable!("three configs per point")
        };
        let (ct, ce) = pct(cache, base);
        let (st, se) = pct(stash, base);
        println!(
            "{object_bytes:>10} | {ct:>9}% {ce:>9}% | {st:>9}% {se:>9}% | {:>9.1}",
            host_ms(host)
        );
    }
    println!("(the cache column degrades with object size — every line fill");
    println!(" carries more unused bytes; the stash's compact fetches do not)");
}

fn sweep_selectivity(pool: &JobPool) {
    println!("\n== selectivity: On-demand vs selection density (Scratch = 100) ==");
    println!(
        "{:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>9}",
        "1 in N", "dma t%", "dma e%", "stash t%", "stash e%", "host ms"
    );
    let densities = [1u64, 2, 4, 8, 16, 32, 64];
    let cells = densities
        .iter()
        .flat_map(|&n| {
            [
                MemConfigKind::Scratch,
                MemConfigKind::ScratchGD,
                MemConfigKind::Stash,
            ]
            .map(|k| (k, ondemand::program_with_selectivity(k, n)))
        })
        .collect();
    for (&one_of, (row, host)) in densities.iter().zip(run_grid(pool, cells, 3)) {
        let [base, dma, stash] = &row[..] else {
            unreachable!("three configs per point")
        };
        let (dt, de) = pct(dma, base);
        let (st, se) = pct(stash, base);
        println!(
            "{one_of:>10} | {dt:>9}% {de:>9}% | {st:>9}% {se:>9}% | {:>9.1}",
            host_ms(host)
        );
    }
    println!("(dense selections amortize DMA's bulk transfer; as accesses");
    println!(" sparsify, only the stash's on-demand fetches stay proportional)");
}

fn sweep_reuse(pool: &JobPool) {
    println!("\n== reuse: Reuse vs kernel count (per-point Scratch = 100) ==");
    println!(
        "{:>10} | {:>10} {:>10} | {:>14} | {:>9}",
        "kernels", "stash t%", "stash e%", "stash fetches", "host ms"
    );
    let kernel_counts = [1usize, 2, 4, 8, 16];
    let cells = kernel_counts
        .iter()
        .flat_map(|&n| {
            [MemConfigKind::Scratch, MemConfigKind::Stash]
                .map(|k| (k, reuse::program_with_kernels(k, n)))
        })
        .collect();
    for (&kernels, (row, host)) in kernel_counts.iter().zip(run_grid(pool, cells, 2)) {
        let [base, stash] = &row[..] else {
            unreachable!("two configs per point")
        };
        let (st, se) = pct(stash, base);
        println!(
            "{kernels:>10} | {st:>9}% {se:>9}% | {:>14} | {:>9.1}",
            stash.counters.get("stash.fetch_words"),
            host_ms(host)
        );
    }
    println!("(fetches stay constant at one kernel's worth — the amortization");
    println!(" curve of global visibility + lazy writebacks)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pool = JobPool::new(cli::thread_count(&args));
    let start = std::time::Instant::now();
    let which = args
        .iter()
        .position(|a| a == "--sweep")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    match which {
        Some("compaction") => sweep_compaction(&pool),
        Some("selectivity") => sweep_selectivity(&pool),
        Some("reuse") => sweep_reuse(&pool),
        Some(other) => {
            eprintln!("unknown sweep {other}; use compaction|selectivity|reuse");
            eprintln!("{}", cli::THREADS_USAGE);
            std::process::exit(2);
        }
        None => {
            sweep_compaction(&pool);
            sweep_selectivity(&pool);
            sweep_reuse(&pool);
        }
    }
    println!(
        "\n[harness] sweeps done on {} thread(s) in {:.2?}",
        pool.threads(),
        start.elapsed()
    );
}
