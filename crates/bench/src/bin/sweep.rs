//! Parameter sweeps: sensitivity curves around the paper's operating
//! points, locating the crossovers the qualitative claims predict.
//!
//! * `--sweep compaction`  — object size 4…128 B on Implicit: how the
//!   stash's compact storage pulls away from the cache as more of each
//!   line is wasted;
//! * `--sweep selectivity` — selection density 1-in-1 … 1-in-64 on
//!   On-demand: where on-demand fetching overtakes bulk DMA transfer;
//! * `--sweep reuse`       — 1…16 kernels on Reuse: how the stash's
//!   one-time fetch amortizes against per-kernel recopying.
//!
//! Without `--sweep`, all three run.

use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use gpu::report::RunReport;
use sim::config::SystemConfig;
use workloads::micro::{implicit, ondemand, reuse};

fn run(kind: MemConfigKind, program: &gpu::program::Program) -> RunReport {
    let mut machine = Machine::new(SystemConfig::for_microbenchmarks(), kind);
    machine.run(program).expect("sweep point runs")
}

fn pct(x: &RunReport, base: &RunReport) -> (u64, u64) {
    (x.time_percent_of(base), x.energy_percent_of(base))
}

fn sweep_compaction() {
    println!("\n== compaction: Implicit vs object size (Scratch = 100) ==");
    println!(
        "{:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "object B", "cache t%", "cache e%", "stash t%", "stash e%"
    );
    for object_bytes in [4u64, 8, 16, 32, 64, 128] {
        let base = run(
            MemConfigKind::Scratch,
            &implicit::program_with_object_bytes(MemConfigKind::Scratch, object_bytes),
        );
        let cache = run(
            MemConfigKind::Cache,
            &implicit::program_with_object_bytes(MemConfigKind::Cache, object_bytes),
        );
        let stash = run(
            MemConfigKind::Stash,
            &implicit::program_with_object_bytes(MemConfigKind::Stash, object_bytes),
        );
        let (ct, ce) = pct(&cache, &base);
        let (st, se) = pct(&stash, &base);
        println!("{object_bytes:>10} | {ct:>9}% {ce:>9}% | {st:>9}% {se:>9}%");
    }
    println!("(the cache column degrades with object size — every line fill");
    println!(" carries more unused bytes; the stash's compact fetches do not)");
}

fn sweep_selectivity() {
    println!("\n== selectivity: On-demand vs selection density (Scratch = 100) ==");
    println!(
        "{:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "1 in N", "dma t%", "dma e%", "stash t%", "stash e%"
    );
    for one_of in [1u64, 2, 4, 8, 16, 32, 64] {
        let base = run(
            MemConfigKind::Scratch,
            &ondemand::program_with_selectivity(MemConfigKind::Scratch, one_of),
        );
        let dma = run(
            MemConfigKind::ScratchGD,
            &ondemand::program_with_selectivity(MemConfigKind::ScratchGD, one_of),
        );
        let stash = run(
            MemConfigKind::Stash,
            &ondemand::program_with_selectivity(MemConfigKind::Stash, one_of),
        );
        let (dt, de) = pct(&dma, &base);
        let (st, se) = pct(&stash, &base);
        println!("{one_of:>10} | {dt:>9}% {de:>9}% | {st:>9}% {se:>9}%");
    }
    println!("(dense selections amortize DMA's bulk transfer; as accesses");
    println!(" sparsify, only the stash's on-demand fetches stay proportional)");
}

fn sweep_reuse() {
    println!("\n== reuse: Reuse vs kernel count (per-point Scratch = 100) ==");
    println!(
        "{:>10} | {:>10} {:>10} | {:>14}",
        "kernels", "stash t%", "stash e%", "stash fetches"
    );
    for kernels in [1usize, 2, 4, 8, 16] {
        let base = run(
            MemConfigKind::Scratch,
            &reuse::program_with_kernels(MemConfigKind::Scratch, kernels),
        );
        let stash = run(
            MemConfigKind::Stash,
            &reuse::program_with_kernels(MemConfigKind::Stash, kernels),
        );
        let (st, se) = pct(&stash, &base);
        println!(
            "{kernels:>10} | {st:>9}% {se:>9}% | {:>14}",
            stash.counters.get("stash.fetch_words")
        );
    }
    println!("(fetches stay constant at one kernel's worth — the amortization");
    println!(" curve of global visibility + lazy writebacks)");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args
        .iter()
        .position(|a| a == "--sweep")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    match which {
        Some("compaction") => sweep_compaction(),
        Some("selectivity") => sweep_selectivity(),
        Some("reuse") => sweep_reuse(),
        Some(other) => {
            eprintln!("unknown sweep {other}; use compaction|selectivity|reuse");
            std::process::exit(2);
        }
        None => {
            sweep_compaction();
            sweep_selectivity();
            sweep_reuse();
        }
    }
}
