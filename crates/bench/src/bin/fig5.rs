//! Figure 5: microbenchmark comparison (Scratch, Cache, ScratchGD,
//! Stash), normalized to Scratch.
//!
//! ```text
//! cargo run --release -p bench --bin fig5            # all four panels
//! cargo run --release -p bench --bin fig5 -- --panel time --threads 4
//! ```

use bench::{average_reduction, cli, print_panel, run_matrix_checked, write_csv, FigurePanel};
use gpu::config::MemConfigKind;
use workloads::suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli::thread_count(&args);
    let panels: Vec<FigurePanel> = match args.iter().position(|a| a == "--panel") {
        Some(i) => {
            let name = args.get(i + 1).map(String::as_str).unwrap_or("");
            vec![FigurePanel::parse(name).unwrap_or_else(|| {
                eprintln!("unknown panel {name}; use time|energy|instructions|traffic");
                std::process::exit(2);
            })]
        }
        None => FigurePanel::FIG5.to_vec(),
    };

    let verify = cli::verify_flag(&args);
    let kinds = MemConfigKind::FIGURE5;
    println!("Figure 5 — microbenchmarks on 1 GPU CU + 15 CPU cores");
    if verify {
        println!("(runtime invariant oracle on — checking after every transition)");
    }
    let (rows, stats) = run_matrix_checked(&suite::micros(), &kinds, threads, verify)
        .unwrap_or_else(|e| {
            let context = format!("fig5: {} on {}", e.workload, e.kind.name());
            std::process::exit(cli::sim_failure_status(&context, &e.error));
        });
    println!("{}", stats.summary());
    if args.iter().any(|a| a == "--debug") {
        println!("\n-- raw cycles (gpu/cpu) --");
        for row in &rows {
            for (k, r) in &row.reports {
                println!(
                    "{:<12}{:<10} gpu {:>10}  cpu {:>10}  picos {:>14}",
                    row.workload,
                    k.name(),
                    r.gpu_cycles,
                    r.cpu_cycles,
                    r.total_picos
                );
            }
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        let path =
            std::path::PathBuf::from(args.get(i + 1).map(String::as_str).unwrap_or("fig5.csv"));
        if let Err(e) = write_csv(&path, &rows, &kinds) {
            eprintln!("fig5: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
    for panel in panels {
        print_panel(panel, &rows, &kinds);
    }

    println!("\n=== §6.2 headline comparisons (stash reduction vs …) ===");
    for (panel, label) in [
        (FigurePanel::Time, "cycles"),
        (FigurePanel::Energy, "energy"),
    ] {
        let vs_scratch =
            average_reduction(&rows, panel, MemConfigKind::Stash, MemConfigKind::Scratch);
        let vs_cache = average_reduction(&rows, panel, MemConfigKind::Stash, MemConfigKind::Cache);
        let vs_dma =
            average_reduction(&rows, panel, MemConfigKind::Stash, MemConfigKind::ScratchGD);
        println!(
            "{label:<7} vs Scratch {vs_scratch:>3}%  vs Cache {vs_cache:>3}%  vs ScratchGD {vs_dma:>3}%   (paper: 27/13/14% cycles, 53/35/32% energy)"
        );
    }
}
