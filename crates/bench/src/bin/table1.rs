//! Table 1: the qualitative cache / scratchpad / stash feature matrix.
//!
//! Each row is also an executable test in `tests/feature_matrix.rs`.

fn main() {
    let rows: [(&str, &str, bool, bool, bool); 10] = [
        (
            "Directly addressed",
            "No address translation hardware access",
            false,
            true,
            true, // stash: on hits
        ),
        ("Directly addressed", "No tag access", false, true, true),
        (
            "Directly addressed",
            "No conflict misses",
            false,
            true,
            true,
        ),
        (
            "Compact storage",
            "Efficient use of SRAM storage",
            false,
            true,
            true,
        ),
        (
            "Global addressing",
            "Implicit data movement from/to structure",
            true,
            false,
            true,
        ),
        (
            "Global addressing",
            "No pollution of other memories",
            true,
            false,
            true,
        ),
        (
            "Global addressing",
            "On-demand loads into structures",
            true,
            false,
            true,
        ),
        (
            "Global visibility",
            "Lazy writebacks to global AS",
            true,
            false,
            true,
        ),
        (
            "Global visibility",
            "Reuse across kernels / phases",
            true,
            false,
            true,
        ),
        (
            "Global visibility",
            "Globally coherent and visible",
            true,
            false,
            true,
        ),
    ];
    let mark = |b: bool| if b { "yes" } else { "no" };
    println!("Table 1 — comparison of cache, scratchpad, and stash\n");
    println!(
        "{:<22}{:<44}{:>7}{:>12}{:>7}",
        "Feature", "Benefit", "Cache", "Scratchpad", "Stash"
    );
    for (feature, benefit, cache, scratch, stash) in rows {
        println!(
            "{:<22}{:<44}{:>7}{:>12}{:>7}",
            feature,
            benefit,
            mark(cache),
            mark(scratch),
            mark(stash)
        );
    }
    println!("\n(Stash 'no address translation' and 'no tag access' hold on hits —");
    println!(" the common case; every row is asserted by tests/feature_matrix.rs.)");
}
