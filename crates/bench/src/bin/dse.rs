//! Surrogate-driven design-space exploration with a misrank audit loop.
//!
//! ```text
//! cargo run --release -p bench --bin dse                      # full space
//! cargo run --release -p bench --bin dse -- --smoke           # CI-sized
//! cargo run --release -p bench --bin dse -- --workload surf --config denovo
//! cargo run --release -p bench --bin dse -- --json            # machine-readable
//! ```
//!
//! The binary scales the static analyzer into a design-space engine:
//!
//! 1. **Sensitivity pass** — classifies every [`verify::dse::Dim`]:
//!    provably-monotone latency knobs are labelled without evaluation,
//!    the geometric knobs get one surrogate prediction per axis value
//!    so their deltas (and any non-monotone interactions) are reported.
//!    `--prune` pins the provable dimensions to their fastest value
//!    before the sweep.
//! 2. **Surrogate sweep** — evaluates every remaining point of the
//!    [`verify::dse::Space`] with the static predictor (thousands of
//!    points, zero simulations) and ranks them fastest-first.
//! 3. **Audit loop** — simulator-validates the top `--top` points plus
//!    `--audit` seeded-random picks (`--seed`) from the rest, fanned
//!    over the deterministic [`bench::pool::JobPool`]. Exact counters
//!    must match at *every* validated point (exit 1 otherwise); the
//!    measured order is compared against the surrogate's with a
//!    Kendall-tau score, and every inversion beyond the documented tie
//!    threshold becomes a stable `SR030` diagnostic naming the suspect
//!    cost-model term. `--deny-misrank` turns those warnings fatal.
//!
//! Output is independent of `--threads`: the report is assembled from
//! pool results in job order, never arrival order.

use bench::cli;
use bench::pool::JobPool;
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use verify::analyze::TIE_THRESHOLD_PCT;
use verify::dse::{
    audit, evaluate_space, sensitivities, validation_sample, Audit, Dim, Sensitivity, Space,
    Validated,
};
use verify::validate_prediction;
use workloads::suite;

struct Report {
    workload: String,
    kind: MemConfigKind,
    space_points: usize,
    pruned_points: usize,
    sensitivity: Vec<(Dim, Sensitivity)>,
    top: Vec<(usize, String, u64)>,
    validated: Vec<Validated>,
    validation_errors: Vec<String>,
    audit: Audit,
}

/// Sweep shape: how much to prune, validate, and where to seed the
/// audit sample.
struct ExploreOpts {
    prune: bool,
    top_k: usize,
    audit_n: usize,
    seed: u64,
}

#[allow(clippy::too_many_lines)]
fn explore(
    pool: &JobPool,
    workload: &suite::Workload,
    kind: MemConfigKind,
    mut space: Space,
    opts: &ExploreOpts,
) -> Report {
    let sys = workload.set.system_config();
    let program = (workload.build)(kind);

    let sensitivity = sensitivities(&program, &sys, kind, &space);
    let before = space.len();
    let pruned_points = if opts.prune {
        space.prune_provably_monotone()
    } else {
        0
    };
    let space_points = space.len();
    assert_eq!(before - pruned_points, space_points);

    let ranked = evaluate_space(&program, &sys, kind, &space);
    let picks = validation_sample(ranked.len(), opts.top_k, opts.audit_n, opts.seed);

    let jobs: Vec<_> = picks
        .iter()
        .map(|&rank| {
            let sys = ranked[rank].point.apply(&sys);
            let program = program.clone();
            move || Machine::new(sys, kind).run(&program)
        })
        .collect();
    let results = pool.run(jobs);

    let mut validated = Vec::new();
    let mut validation_errors = Vec::new();
    for (&rank, result) in picks.iter().zip(results) {
        let e = &ranked[rank];
        match result.value {
            Ok(report) => {
                for err in validate_prediction(&e.prediction, &report) {
                    validation_errors.push(format!("rank #{rank} ({}): {err}", e.point.label()));
                }
                validated.push(Validated {
                    surrogate_rank: rank,
                    index: e.index,
                    point: e.point,
                    est_picos: e.est_picos,
                    measured_picos: report.total_picos,
                    terms: e.prediction.terms.clone(),
                });
            }
            Err(err) => {
                let context = format!("dse: {} at {}", workload.name, e.point.label());
                let _ = cli::sim_failure_status(&context, &err);
                validation_errors.push(format!(
                    "rank #{rank} ({}): simulation failed: {err}",
                    e.point.label()
                ));
            }
        }
    }

    let audit = audit(&validated, TIE_THRESHOLD_PCT);
    let top = ranked
        .iter()
        .enumerate()
        .take(10)
        .map(|(rank, e)| (rank, e.point.label(), e.est_picos))
        .collect();
    Report {
        workload: workload.name.to_string(),
        kind,
        space_points,
        pruned_points,
        sensitivity,
        top,
        validated,
        validation_errors,
        audit,
    }
}

fn sensitivity_text(s: &Sensitivity) -> String {
    match s {
        Sensitivity::ProvablyMonotone => "provably monotone (pruned without evaluation)".into(),
        Sensitivity::Flat => "flat (no runtime effect on this workload)".into(),
        Sensitivity::Monotone { worst_step } => {
            format!("monotone, worst step {worst_step} ps")
        }
        Sensitivity::NonMonotone { max_up, max_down } => {
            format!("NON-monotone (steps {max_down}..{max_up} ps) — must sweep")
        }
    }
}

fn print_text(r: &Report) {
    println!(
        "=== dse: {} ({} config, {} surrogate points, {} pruned) ===",
        r.workload,
        r.kind.name(),
        r.space_points,
        r.pruned_points
    );
    println!("  sensitivity:");
    for (dim, s) in &r.sensitivity {
        println!("    {:<18} {}", dim.name(), sensitivity_text(s));
    }
    println!("  surrogate top 10:");
    for (rank, label, est) in &r.top {
        println!("    #{rank:<3} {label:<34} {est:>14} ps");
    }
    println!(
        "  validated {} points (top {} + seeded audit):",
        r.validated.len(),
        r.validated
            .iter()
            .filter(|v| v.surrogate_rank < r.top.len())
            .count()
    );
    println!(
        "    {:<5} {:<34} {:>14} {:>14}",
        "rank", "point", "predicted (ps)", "measured (ps)"
    );
    for v in &r.validated {
        println!(
            "    #{:<4} {:<34} {:>14} {:>14}",
            v.surrogate_rank,
            v.point.label(),
            v.est_picos,
            v.measured_picos
        );
    }
    for e in &r.validation_errors {
        println!("    counter mismatch: {e}");
    }
    println!(
        "  kendall tau {}.{:03}; surrogate top-1 {} measured-best",
        r.audit.kendall_tau_x1000 / 1000,
        r.audit.kendall_tau_x1000.rem_euclid(1000),
        if r.audit.top1_ok {
            "agrees with"
        } else {
            "CONTRADICTS"
        }
    );
    if r.audit.misranks.is_empty() {
        println!("  no misranks beyond the {TIE_THRESHOLD_PCT}% tie threshold");
    } else {
        println!("  {} misrank(s), worst first:", r.audit.misranks.len());
        for m in &r.audit.misranks {
            let d = m.diagnostic();
            println!("    {} {}: {d}", d.rule.code(), d.severity().name());
        }
    }
}

fn print_json(r: &Report, failures: usize) {
    println!("{{");
    println!("  \"workload\": \"{}\",", cli::json_escape(&r.workload));
    println!("  \"config\": \"{}\",", r.kind.name());
    println!("  \"surrogate_points\": {},", r.space_points);
    println!("  \"pruned_points\": {},", r.pruned_points);
    println!("  \"sensitivity\": [");
    for (i, (dim, s)) in r.sensitivity.iter().enumerate() {
        let comma = if i + 1 < r.sensitivity.len() { "," } else { "" };
        println!(
            "    {{\"dim\": \"{}\", \"verdict\": \"{}\"}}{comma}",
            dim.name(),
            cli::json_escape(&sensitivity_text(s))
        );
    }
    println!("  ],");
    println!("  \"validated\": [");
    for (i, v) in r.validated.iter().enumerate() {
        let comma = if i + 1 < r.validated.len() { "," } else { "" };
        println!(
            "    {{\"surrogate_rank\": {}, \"point\": \"{}\", \"predicted_picos\": {}, \
             \"measured_picos\": {}}}{comma}",
            v.surrogate_rank,
            cli::json_escape(&v.point.label()),
            v.est_picos,
            v.measured_picos
        );
    }
    println!("  ],");
    println!("  \"kendall_tau_x1000\": {},", r.audit.kendall_tau_x1000);
    println!("  \"top1_ok\": {},", r.audit.top1_ok);
    println!("  \"misranks\": [");
    for (i, m) in r.audit.misranks.iter().enumerate() {
        let comma = if i + 1 < r.audit.misranks.len() {
            ","
        } else {
            ""
        };
        let d = m.diagnostic();
        println!(
            "    {{\"ruleId\": \"{}\", \"level\": \"{}\", \"term\": \"{}\", \
             \"message\": \"{}\"}}{comma}",
            d.rule.code(),
            d.severity().name(),
            m.term.name(),
            cli::json_escape(&d.message)
        );
    }
    println!("  ],");
    println!("  \"failures\": {failures}");
    println!("}}");
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("dse: {flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli::thread_count(&args);
    let json = cli::json_flag(&args);
    let mut args = args;
    cli::strip_common_flags(&mut args);

    let smoke = take_flag(&mut args, "--smoke");
    let prune = take_flag(&mut args, "--prune");
    let deny_misrank = take_flag(&mut args, "--deny-misrank");
    let name = take_value(&mut args, "--workload").unwrap_or_else(|| "implicit".to_string());
    let kind =
        take_value(&mut args, "--config").map_or(MemConfigKind::Stash, |s| cli::config_by_name(&s));
    let default_k = if smoke { 4 } else { 12 };
    let parse = |v: Option<String>, flag: &str, default: usize| {
        v.map_or(default, |s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("dse: bad {flag} value `{s}`");
                std::process::exit(2);
            })
        })
    };
    let top_k = parse(take_value(&mut args, "--top"), "--top", default_k);
    let audit_n = parse(take_value(&mut args, "--audit"), "--audit", default_k);
    let seed = take_value(&mut args, "--seed").map_or(8u64, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("dse: bad --seed value `{s}`");
            std::process::exit(2);
        })
    });
    if args.len() > 1 {
        eprintln!("dse: unknown argument `{}`", args[1]);
        std::process::exit(2);
    }

    let workload = suite::by_name(&name).unwrap_or_else(|| {
        eprintln!("dse: unknown workload `{name}`");
        std::process::exit(2);
    });
    let space = if smoke {
        Space::smoke_space()
    } else {
        Space::default_space()
    };

    let pool = JobPool::new(threads);
    let opts = ExploreOpts {
        prune,
        top_k,
        audit_n,
        seed,
    };
    let report = explore(&pool, &workload, kind, space, &opts);

    let failures = report.validation_errors.len()
        + if deny_misrank {
            report.audit.misranks.len() + usize::from(!report.audit.top1_ok)
        } else {
            0
        };
    if json {
        print_json(&report, failures);
    } else {
        print_text(&report);
        if failures == 0 {
            println!("  dse OK");
        }
    }
    if failures > 0 {
        eprintln!(
            "\n{failures} dse failure{} — dse FAILED",
            if failures == 1 { "" } else { "s" }
        );
        std::process::exit(1);
    }
}
