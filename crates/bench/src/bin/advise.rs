//! Static placement advisor, cross-validated against the simulator.
//!
//! ```text
//! cargo run --release -p bench --bin advise                 # built-in suite
//! cargo run --release -p bench --bin advise -- my.trace     # trace files only
//! cargo run --release -p bench --bin advise -- --json       # machine-readable
//! ```
//!
//! For every workload (the eleven built-in suite workloads by default, or
//! the trace files given as arguments) the binary:
//!
//! 1. runs the static analyzer (`verify::analyze`) over the figure's
//!    configuration set, producing access-pattern notes, one counter/cost
//!    [`verify::Prediction`] per configuration, and a recommended
//!    placement;
//! 2. runs the simulator on the same matrix cells (concurrently, on the
//!    job pool — `--threads N` / `STASH_THREADS`);
//! 3. cross-validates: exact counters and instruction counts must match
//!    the measurement exactly, modeled counters within the documented
//!    tolerances, and the recommendation must be the measured-best
//!    configuration or a documented tie (`verify::validate_prediction`,
//!    `verify::recommendation_ok`).
//!
//! The `verify::dataflow` bounds pass also runs over every analyzed
//! program: **proven out-of-bounds** accesses fail the run (exit 1)
//! like any other validation error, while *data-dependent* bounds
//! (neither provable nor refutable) are reported but exit 0 — unless
//! `--deny-unknown` makes them fatal too.
//!
//! Exits 1 on any validation or recommendation failure, so the binary is
//! its own CI gate. `--verify` additionally turns on the runtime protocol
//! oracle during the simulation runs.

use bench::cli;
use bench::pool::JobPool;
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use gpu::program::Program;
use gpu::report::RunReport;
use verify::dataflow::{check_bounds, BoundsSummary};
use verify::{
    analyze_workload, recommendation_ok, symbols_for_trace, validate_prediction, Analysis,
    Diagnostic, Symbols,
};
use workloads::suite::{self, WorkloadSet};

/// One matrix cell: the prediction's estimate vs the simulator.
struct Cell {
    kind: MemConfigKind,
    est_picos: u64,
    measured_picos: Option<u64>,
    errors: Vec<String>,
}

/// The advisor's full output for one workload.
struct Outcome {
    name: String,
    set: WorkloadSet,
    analysis: Analysis,
    cells: Vec<Cell>,
    measured_best: Option<MemConfigKind>,
    rec_ok: bool,
    bounds: BoundsSummary,
    bounds_diags: Vec<Diagnostic>,
}

impl Outcome {
    fn failures(&self) -> usize {
        let cell_errors: usize = self.cells.iter().map(|c| c.errors.len()).sum();
        cell_errors + usize::from(!self.rec_ok) + self.bounds.proven_oob
    }
}

fn set_name(set: WorkloadSet) -> &'static str {
    match set {
        WorkloadSet::Micro => "micro",
        WorkloadSet::Apps => "apps",
    }
}

/// Analyzes one workload, simulates its figure matrix row, and
/// cross-validates the two.
fn advise_one(
    pool: &JobPool,
    name: &str,
    set: WorkloadSet,
    build: &(dyn Fn(MemConfigKind) -> Program + Sync),
    symbols: &Symbols,
    verify: bool,
) -> Outcome {
    let sys = set.system_config();
    let kinds = set.figure_kinds();
    let analysis = analyze_workload(build, &sys, kinds, symbols);

    // Three-valued bounds verdicts across the figure's configurations
    // (diagnostics dedup: the same source line repeats per kind).
    let mut bounds = BoundsSummary::default();
    let mut bounds_diags: Vec<Diagnostic> = Vec::new();
    for &kind in kinds {
        let (diags, summary) = check_bounds(&build(kind), symbols);
        bounds.proven_safe += summary.proven_safe;
        bounds.proven_oob += summary.proven_oob;
        bounds.unknown += summary.unknown;
        for d in diags {
            if !bounds_diags.contains(&d) {
                bounds_diags.push(d);
            }
        }
    }

    let jobs: Vec<_> = kinds
        .iter()
        .map(|&kind| {
            let sys = sys.clone();
            move || {
                let mut machine = Machine::new(sys, kind);
                machine.memory_mut().set_verify(verify);
                machine.run(&build(kind))
            }
        })
        .collect();
    let results = pool.run(jobs);

    let mut cells = Vec::new();
    let mut measured: Vec<(MemConfigKind, u64)> = Vec::new();
    for (pred, result) in analysis.predictions.iter().zip(results) {
        match result.value {
            Ok(report) => {
                let report: RunReport = report;
                measured.push((pred.kind, report.total_picos));
                cells.push(Cell {
                    kind: pred.kind,
                    est_picos: pred.est_picos,
                    measured_picos: Some(report.total_picos),
                    errors: validate_prediction(pred, &report),
                });
            }
            Err(e) => {
                // A watchdog deadlock prints its in-flight diagnostic
                // dump on stderr right away; the failure still flows into
                // the cell's error list (and the nonzero exit).
                let context = format!("advise: {name} on {}", pred.kind.name());
                let _ = cli::sim_failure_status(&context, &e);
                cells.push(Cell {
                    kind: pred.kind,
                    est_picos: pred.est_picos,
                    measured_picos: None,
                    errors: vec![format!("simulation failed: {e}")],
                });
            }
        }
    }

    let complete = measured.len() == kinds.len();
    let measured_best = measured.iter().min_by_key(|&&(_, t)| t).map(|&(k, _)| k);
    let rec_ok = complete && recommendation_ok(analysis.recommended, &measured);
    Outcome {
        name: name.to_string(),
        set,
        analysis,
        cells,
        measured_best,
        rec_ok,
        bounds,
        bounds_diags,
    }
}

fn print_text(o: &Outcome) {
    println!(
        "\n=== {} ({} machine, {} configurations) ===",
        o.name,
        set_name(o.set),
        o.cells.len()
    );
    for n in &o.analysis.notes {
        println!("  {} {}: {n}", n.rule.code(), n.severity().name());
    }
    println!(
        "  bounds: {} proven safe, {} proven OOB, {} data-dependent",
        o.bounds.proven_safe, o.bounds.proven_oob, o.bounds.unknown
    );
    for d in &o.bounds_diags {
        println!("    {} {}: {d}", d.rule.code(), d.severity().name());
    }
    println!(
        "  {:<10}{:>16}{:>16}  validation",
        "config", "predicted (ps)", "measured (ps)"
    );
    for c in &o.cells {
        let measured = c
            .measured_picos
            .map_or_else(|| "-".to_string(), |t| t.to_string());
        let status = if c.errors.is_empty() {
            "ok".to_string()
        } else {
            format!("{} error(s)", c.errors.len())
        };
        println!(
            "  {:<10}{:>16}{:>16}  {status}",
            c.kind.name(),
            c.est_picos,
            measured
        );
        for e in &c.errors {
            println!("      {e}");
        }
    }
    let best = o
        .measured_best
        .map_or_else(|| "-".to_string(), |k| k.name().to_string());
    println!(
        "  recommended {}; measured best {best} — {}",
        o.analysis.recommended.name(),
        if o.rec_ok { "agreement OK" } else { "MISMATCH" }
    );
}

fn print_json(outcomes: &[Outcome], failures: usize) {
    println!("{{");
    println!("  \"workloads\": [");
    for (i, o) in outcomes.iter().enumerate() {
        println!("    {{");
        println!("      \"name\": \"{}\",", cli::json_escape(&o.name));
        println!("      \"set\": \"{}\",", set_name(o.set));
        println!("      \"notes\": [");
        for (j, n) in o.analysis.notes.iter().enumerate() {
            let comma = if j + 1 < o.analysis.notes.len() {
                ","
            } else {
                ""
            };
            println!(
                "        {{\"ruleId\": \"{}\", \"level\": \"{}\", \"kind\": \"{}\", \
                 \"message\": \"{}\"}}{comma}",
                n.rule.code(),
                n.severity().name(),
                n.rule.name(),
                cli::json_escape(&n.message)
            );
        }
        println!("      ],");
        println!("      \"configs\": [");
        for (j, c) in o.cells.iter().enumerate() {
            let comma = if j + 1 < o.cells.len() { "," } else { "" };
            let measured = c
                .measured_picos
                .map_or_else(|| "null".to_string(), |t| t.to_string());
            let errors: Vec<String> = c
                .errors
                .iter()
                .map(|e| format!("\"{}\"", cli::json_escape(e)))
                .collect();
            println!(
                "        {{\"config\": \"{}\", \"predicted_picos\": {}, \
                 \"measured_picos\": {measured}, \"errors\": [{}]}}{comma}",
                c.kind.name(),
                c.est_picos,
                errors.join(", ")
            );
        }
        println!("      ],");
        println!(
            "      \"bounds\": {{\"proven_safe\": {}, \"proven_oob\": {}, \"unknown\": {}}},",
            o.bounds.proven_safe, o.bounds.proven_oob, o.bounds.unknown
        );
        println!(
            "      \"recommended\": \"{}\",",
            o.analysis.recommended.name()
        );
        let best = o
            .measured_best
            .map_or_else(|| "null".to_string(), |k| format!("\"{}\"", k.name()));
        println!("      \"measured_best\": {best},");
        println!("      \"recommendation_ok\": {}", o.rec_ok);
        let comma = if i + 1 < outcomes.len() { "," } else { "" };
        println!("    }}{comma}");
    }
    println!("  ],");
    println!("  \"failures\": {failures}");
    println!("}}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli::thread_count(&args);
    let verify = cli::verify_flag(&args);
    let json = cli::json_flag(&args);
    let mut args = args;
    let deny_unknown = args.iter().any(|a| a == "--deny-unknown");
    args.retain(|a| a != "--deny-unknown");
    cli::strip_common_flags(&mut args);

    let pool = JobPool::new(threads);
    let mut outcomes = Vec::new();

    if args.len() > 1 {
        for path in &args[1..] {
            let trace = cli::load_trace(path);
            let symbols = symbols_for_trace(&trace);
            let build = |kind| trace.build(kind);
            outcomes.push(advise_one(
                &pool,
                path,
                trace.set(),
                &build,
                &symbols,
                verify,
            ));
        }
    } else {
        let empty = Symbols::new();
        for w in suite::all() {
            outcomes.push(advise_one(&pool, w.name, w.set, &w.build, &empty, verify));
        }
    }

    let failures: usize = outcomes.iter().map(Outcome::failures).sum();
    if json {
        print_json(&outcomes, failures);
    } else {
        for o in &outcomes {
            print_text(o);
        }
        if failures == 0 {
            println!("\nall predictions validated; all recommendations agree with measurement");
        }
    }

    if failures > 0 {
        eprintln!(
            "\n{failures} cross-validation failure{} — advise FAILED",
            if failures == 1 { "" } else { "s" }
        );
        std::process::exit(1);
    }
    let unknown: usize = outcomes.iter().map(|o| o.bounds.unknown).sum();
    if deny_unknown && unknown > 0 {
        eprintln!("\n{unknown} data-dependent bounds check(s) — advise FAILED (--deny-unknown)");
        std::process::exit(1);
    }
}
