//! Figure 6: application comparison (Scratch, ScratchG, Cache, Stash,
//! StashG), normalized to Scratch.
//!
//! ```text
//! cargo run --release -p bench --bin fig6            # both panels
//! cargo run --release -p bench --bin fig6 -- --panel energy --threads 4
//! ```

use bench::{average_reduction, cli, print_panel, run_matrix_checked, write_csv, FigurePanel};
use gpu::config::MemConfigKind;
use workloads::suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli::thread_count(&args);
    let panels: Vec<FigurePanel> = match args.iter().position(|a| a == "--panel") {
        Some(i) => {
            let name = args.get(i + 1).map(String::as_str).unwrap_or("");
            vec![FigurePanel::parse(name).unwrap_or_else(|| {
                eprintln!("unknown panel {name}; use time|energy");
                std::process::exit(2);
            })]
        }
        None => vec![FigurePanel::Time, FigurePanel::Energy],
    };

    let verify = cli::verify_flag(&args);
    let kinds = MemConfigKind::FIGURE6;
    println!("Figure 6 — applications on 15 GPU CUs + 1 CPU core");
    if verify {
        println!("(runtime invariant oracle on — checking after every transition)");
    }
    let (rows, stats) = run_matrix_checked(&suite::applications(), &kinds, threads, verify)
        .unwrap_or_else(|e| {
            let context = format!("fig6: {} on {}", e.workload, e.kind.name());
            std::process::exit(cli::sim_failure_status(&context, &e.error));
        });
    println!("{}", stats.summary());
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        let path =
            std::path::PathBuf::from(args.get(i + 1).map(String::as_str).unwrap_or("fig6.csv"));
        if let Err(e) = write_csv(&path, &rows, &kinds) {
            eprintln!("fig6: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
    for panel in panels {
        print_panel(panel, &rows, &kinds);
    }

    println!("\n=== §6.3 headline comparisons (StashG reduction vs …) ===");
    for (panel, label) in [
        (FigurePanel::Time, "cycles"),
        (FigurePanel::Energy, "energy"),
    ] {
        let vs_scratch =
            average_reduction(&rows, panel, MemConfigKind::StashG, MemConfigKind::Scratch);
        let vs_cache = average_reduction(&rows, panel, MemConfigKind::StashG, MemConfigKind::Cache);
        println!(
            "{label:<7} vs Scratch {vs_scratch:>3}%  vs Cache {vs_cache:>3}%   (paper: 10/12% cycles, 16/32% energy)"
        );
    }
}
