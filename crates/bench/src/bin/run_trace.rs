//! Run a trace file (see `workloads::trace` for the format) across the
//! memory configurations and print the comparison.
//!
//! ```text
//! cargo run --release -p bench --bin run-trace -- my_workload.trace
//! cargo run --release -p bench --bin run-trace -- my_workload.trace Stash StashG
//! ```
//!
//! The configurations run concurrently on the job pool (`--threads N` /
//! `STASH_THREADS`); rows print in the requested order regardless.

use bench::cli;
use bench::pool::JobPool;
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use sim::fault::FaultConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli::thread_count(&args);
    let verify = cli::verify_flag(&args);
    let fault_seed = cli::fault_seed(&args);
    let mut args = args;
    cli::strip_common_flags(&mut args);
    let Some(path) = args.get(1) else {
        eprintln!(
            "usage: run-trace <file.trace> [configs...] [--threads N] [--verify] [--fault-seed S]"
        );
        std::process::exit(2);
    };
    let workload = cli::load_trace(path);

    let kinds: Vec<MemConfigKind> = if args.len() > 2 {
        args[2..].iter().map(|s| cli::config_by_name(s)).collect()
    } else {
        MemConfigKind::ALL.to_vec()
    };

    let pool = JobPool::new(threads);
    let workload = &workload;
    let jobs: Vec<_> = kinds
        .iter()
        .map(|&kind| {
            move || {
                let mut machine = Machine::new(workload.set().system_config(), kind);
                machine.memory_mut().set_verify(verify);
                if let Some(seed) = fault_seed {
                    machine
                        .memory_mut()
                        .set_fault_injector(FaultConfig::chaos(seed));
                }
                machine.run(&workload.build(kind))
            }
        })
        .collect();
    let results = pool.run(jobs);

    println!(
        "{:<10}{:>14}{:>18}{:>12}{:>12}{:>14}{:>10}",
        "config", "time (ps)", "energy (fJ)", "instrs", "flits", "dram fetches", "host ms"
    );
    let mut status = 0;
    for (kind, result) in kinds.iter().zip(results) {
        match result.value {
            Ok(report) => println!(
                "{:<10}{:>14}{:>18}{:>12}{:>12}{:>14}{:>10.1}",
                kind.name(),
                report.total_picos,
                report.total_energy(),
                report.gpu_instructions,
                report.traffic.total_flits(),
                report.counters.get("dram.line_fetch"),
                result.host_time.as_secs_f64() * 1e3,
            ),
            Err(e) => {
                println!("{:<10}error: {e}", kind.name());
                let context = format!("run-trace: {path} on {}", kind.name());
                status = status.max(cli::sim_failure_status(&context, &e));
            }
        }
    }
    if status != 0 {
        std::process::exit(status);
    }
}
