//! Exhaustive protocol model checking (see `verify::model`).
//!
//! ```text
//! cargo run --release -p bench --bin verify
//! ```
//!
//! Two phases, mirroring the crate's acceptance criteria:
//!
//! 1. Check the unmutated protocol at 2 and 3 cores — every reachable
//!    state must satisfy the invariants (single Registered owner,
//!    registry/owner agreement, data-value freshness, no lost
//!    writebacks).
//! 2. Re-check under each protocol mutation — every mutation must
//!    produce a counterexample, proving the checker catches that class
//!    of bug. The shortest trace is printed for each.
//!
//! Exits 1 if the clean protocol has a violation or a mutation escapes
//! detection.

use verify::{check, Mutation};

fn main() {
    let mut failed = false;

    println!("=== exhaustive check, unmutated protocol ===");
    for cores in [2, 3] {
        match check(cores, None) {
            Ok(stats) => println!("{stats}"),
            Err(cx) => {
                println!("UNEXPECTED VIOLATION at {cores} cores:\n{cx}");
                failed = true;
            }
        }
    }

    println!("\n=== mutation coverage (each must yield a counterexample) ===");
    for mutation in Mutation::ALL {
        match check(2, Some(mutation)) {
            Err(cx) => {
                println!("{}: caught, shortest trace:", mutation.name());
                for line in cx.to_string().lines() {
                    println!("  {line}");
                }
            }
            Ok(stats) => {
                println!("{}: ESCAPED DETECTION ({stats})", mutation.name());
                failed = true;
            }
        }
    }

    if failed {
        eprintln!("\nmodel checking FAILED");
        std::process::exit(1);
    }
    println!("\nmodel checking passed");
}
