//! Intra-simulation parallelism baseline: wall-clock scaling of
//! [`Machine::run_parallel`] over worker-thread counts.
//!
//! Each cell runs one workload×configuration pair at 1/2/4/8 threads
//! and reports best-of-N wall-clock, simulated cycles per second, and
//! speedup versus the 1-thread run. Determinism is asserted inline:
//! every thread count must reproduce the 1-thread report and state
//! digest bit-for-bit, so the numbers measure the same computation.
//!
//! Cells:
//! * the seven Figure 6 applications on StashG (15 CUs — the paper's
//!   application machine, the "largest cells");
//! * the four microbenchmarks *weak-scaled* ×15: the Figure 5 programs
//!   target a 1-CU machine, so each block set is replicated fifteen
//!   times at disjoint, VA-shifted tiles and run on the 15-CU machine
//!   (CPU sweeps fold onto its single CPU core). Labels carry the
//!   `×15` suffix to keep them distinct from the Figure 5 numbers.
//!
//! With `--merge`, the binary instead measures the **certified merge
//! fast path** (BENCH_007): each cell runs sequentially (`Machine::run`),
//! through the 1-thread parallel runner (fork + full per-word merge
//! reconciliation — the overhead EXPERIMENTS.md §BENCH_006 quantifies),
//! and through the 1-thread parallel runner with an honest
//! `verify::dataflow` conflict certificate installed. The certified and
//! uncertified parallel runs must agree bit-for-bit; the recorded
//! `overhead_vs_seq` ratios show how much of the fork+merge tax the
//! certificate's reconciliation skip recovers.
//!
//! With `--dse`, the binary measures the **surrogate throughput**
//! (BENCH_008) the design-space engine depends on: each cell sweeps the
//! full `verify::dse` space with the static predictor, then simulates a
//! fixed handful of the same points, and records predicted-points/sec,
//! simulated-points/sec, and their ratio — the amortization factor that
//! makes exploring thousands of points tractable at all.
//!
//! With `--checkpoint`, the binary measures the **crash-consistency
//! tax** (BENCH_009): each cell runs straight through, then again with
//! a serialized + CRC'd + atomically-renamed snapshot at every phase
//! barrier (the chaos `--crash` campaign's auto-checkpoint cadence),
//! and finally times a restore from the mid-program snapshot. The
//! checkpointed run must reproduce the plain run bit-for-bit, and the
//! restored machine must finish to the same state digest — the
//! overhead column is only meaningful because the results are provably
//! the same computation (DESIGN.md §15).
//!
//! With `--serve`, the binary measures the **daemon serving win**
//! (BENCH_010): for every request template in the standard mix it first
//! times a cold one-shot — a fresh `stashd --once --no-cache` child per
//! request, paying process start-up, workload lowering, and the full
//! simulation — then replays the same templates against one resident
//! `stashd` over several rounds, where the content-addressed cache
//! answers every repeat. Warm payloads are byte-compared against the
//! cold ones before any latency is recorded, so the speedup column only
//! ever compares identical answers (DESIGN.md §16).
//!
//! ```text
//! cargo run --release -p bench --bin perf                 # text table
//! cargo run --release -p bench --bin perf -- --json --out BENCH_006.json
//! cargo run --release -p bench --bin perf -- --smoke --json   # CI-sized
//! cargo run --release -p bench --bin perf -- --check BENCH_006.json
//! cargo run --release -p bench --bin perf -- --merge --json --out BENCH_007.json
//! cargo run --release -p bench --bin perf -- --check BENCH_007.json
//! cargo run --release -p bench --bin perf -- --dse --json --out BENCH_008.json
//! cargo run --release -p bench --bin perf -- --check BENCH_008.json
//! cargo run --release -p bench --bin perf -- --checkpoint --json --out BENCH_009.json
//! cargo run --release -p bench --bin perf -- --check BENCH_009.json
//! cargo run --release -p bench --bin perf -- --serve --json --out BENCH_010.json
//! cargo run --release -p bench --bin perf -- --check BENCH_010.json
//! ```

use bench::cli;
use bench::server::{self, DaemonClient};
use gpu::config::MemConfigKind;
use gpu::machine::{Machine, ParallelConfig, RunCursor};
use gpu::program::{CpuOp, CpuPhase, Kernel, Phase, Program, ThreadBlock, WarpOp};
use mem::addr::VAddr;
use mem::tile::TileMap;
use sim::snapshot::CheckpointStore;
use std::time::Instant;
use verify::dataflow::{certify, MachineShape};
use workloads::suite;

/// Thread counts swept per cell.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// CPUs available to this process: the hard ceiling on wall-clock
/// speedup. Thread counts beyond it still run (and must still produce
/// identical results — the determinism contract is thread-blind), they
/// just cannot go faster.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// VA distance between weak-scaling replicas: far enough apart that
/// replicas share no page (the micro footprints are a few hundred KB at
/// most), close enough that the whole weak-scaled address space stays
/// compact — frame tables and LLC slot tables scale with the footprint.
const REPLICA_STRIDE: u64 = 0x0020_0000;

/// Weak-scaling factor: one replica per CU of the application machine.
const REPLICAS: u64 = 15;

struct Cell {
    name: String,
    suite: &'static str,
    kind: MemConfigKind,
    program: Program,
}

struct ThreadResult {
    threads: usize,
    wall_secs: f64,
    cycles_per_sec: f64,
    speedup_vs_1t: f64,
}

struct CellResult {
    name: String,
    suite: &'static str,
    kind: MemConfigKind,
    sim_cycles: u64,
    results: Vec<ThreadResult>,
}

fn shift_tile(t: &TileMap, delta: u64) -> TileMap {
    TileMap::new(
        VAddr(t.global_base().0 + delta),
        t.field_bytes(),
        t.object_bytes(),
        t.row_elems(),
        t.row_stride_bytes(),
        t.rows(),
    )
    .expect("shifting preserves tile validity")
}

fn shift_block(block: &ThreadBlock, delta: u64) -> ThreadBlock {
    let mut out = block.clone();
    for stage in &mut out.stages {
        for req in &mut stage.maps {
            req.tile = shift_tile(&req.tile, delta);
        }
        for req in &mut stage.dmas {
            req.tile = shift_tile(&req.tile, delta);
        }
        for warp in &mut stage.warps {
            for op in warp {
                if let WarpOp::GlobalMem { lanes, .. } = op {
                    for va in lanes {
                        *va = VAddr(va.0 + delta);
                    }
                }
            }
        }
    }
    out
}

fn shift_cpu_ops(ops: &[CpuOp], delta: u64) -> Vec<CpuOp> {
    ops.iter()
        .map(|op| match *op {
            CpuOp::Mem { write, vaddr } => CpuOp::Mem {
                write,
                vaddr: VAddr(vaddr.0 + delta),
            },
            other => other,
        })
        .collect()
}

/// Replicates a 1-CU microbenchmark program ×[`REPLICAS`] at disjoint
/// VA-shifted tiles: every GPU kernel gets each block once per replica
/// (so the 15-CU machine has per-CU work matching the original), and
/// CPU phases fold all cores' op streams — once per replica, shifted —
/// onto core 0 of the application machine.
fn weak_scale(program: &Program) -> Program {
    let phases = program
        .phases
        .iter()
        .map(|phase| match phase {
            Phase::Gpu(kernel) => {
                let blocks = (0..REPLICAS)
                    .flat_map(|r| {
                        kernel
                            .blocks
                            .iter()
                            .map(move |b| shift_block(b, r * REPLICA_STRIDE))
                    })
                    .collect();
                Phase::Gpu(Kernel { blocks })
            }
            Phase::Cpu(cpu) => {
                let mut ops = Vec::new();
                for r in 0..REPLICAS {
                    for core_ops in &cpu.per_core {
                        ops.extend(shift_cpu_ops(core_ops, r * REPLICA_STRIDE));
                    }
                }
                let stash_maps = if cpu.stash_maps.is_empty() {
                    Vec::new()
                } else {
                    vec![cpu.stash_maps.iter().flatten().copied().collect()]
                };
                Phase::Cpu(CpuPhase {
                    per_core: vec![ops],
                    stash_maps,
                })
            }
        })
        .collect();
    Program { phases }
}

fn cells(smoke: bool) -> Vec<Cell> {
    let mut out = Vec::new();
    for w in suite::micros() {
        out.push(Cell {
            name: format!("{}x15", w.name),
            suite: "micro_weak15",
            kind: MemConfigKind::Stash,
            program: weak_scale(&(w.build)(MemConfigKind::Stash)),
        });
        if smoke {
            return out;
        }
    }
    for w in suite::applications() {
        out.push(Cell {
            name: w.name.to_string(),
            suite: "apps",
            kind: MemConfigKind::StashG,
            program: (w.build)(MemConfigKind::StashG),
        });
    }
    out
}

fn run_cell(cell: &Cell, samples: usize, threads: &[usize]) -> CellResult {
    let mut results: Vec<ThreadResult> = Vec::new();
    let mut sim_cycles = 0u64;
    let mut baseline: Option<(String, u64)> = None;
    let mut wall_1t = 0.0f64;
    for &t in threads {
        let mut best = f64::INFINITY;
        let mut fingerprint = None;
        for _ in 0..samples {
            let mut machine = Machine::new(suite::WorkloadSet::Apps.system_config(), cell.kind);
            let par = ParallelConfig::with_threads(t);
            let start = Instant::now();
            let report = machine
                .run_parallel(&cell.program, &par)
                .unwrap_or_else(|e| {
                    eprintln!("perf: {} at {t} threads: {e}", cell.name);
                    std::process::exit(1);
                });
            let secs = start.elapsed().as_secs_f64();
            best = best.min(secs);
            sim_cycles = report.gpu_cycles + report.cpu_cycles;
            fingerprint = Some((format!("{report:?}"), machine.memory().state_digest()));
        }
        let fp = fingerprint.expect("samples >= 1");
        match &baseline {
            None => {
                baseline = Some(fp);
                wall_1t = best;
            }
            Some(b) => assert_eq!(
                *b, fp,
                "{}: thread count {t} changed the simulation result",
                cell.name
            ),
        }
        results.push(ThreadResult {
            threads: t,
            wall_secs: best,
            cycles_per_sec: sim_cycles as f64 / best,
            speedup_vs_1t: wall_1t / best,
        });
    }
    CellResult {
        name: cell.name.clone(),
        suite: cell.suite,
        kind: cell.kind,
        sim_cycles,
        results,
    }
}

/// One BENCH_007 cell: sequential vs 1-thread parallel (fork + full
/// merge) vs 1-thread parallel with the certificate's merge fast path.
struct MergeCellResult {
    name: String,
    suite: &'static str,
    kind: MemConfigKind,
    sim_cycles: u64,
    kernels: usize,
    certified_kernels: u64,
    wall_seq: f64,
    wall_par1: f64,
    wall_certified: f64,
}

impl MergeCellResult {
    fn overhead_vs_seq(&self) -> f64 {
        self.wall_par1 / self.wall_seq
    }

    fn overhead_vs_seq_certified(&self) -> f64 {
        self.wall_certified / self.wall_seq
    }
}

/// Runs one cell three ways, best-of-`samples` each, asserting the
/// certified parallel run reproduces the uncertified one bit-for-bit.
fn run_merge_cell(cell: &Cell, samples: usize) -> MergeCellResult {
    let sys = suite::WorkloadSet::Apps.system_config();
    let par = ParallelConfig::with_threads(1);
    let cert = certify(
        &cell.program,
        &MachineShape {
            cus: sys.gpu_cus,
            distribution: par.distribution,
            line_words: sys.words_per_line() as u64,
        },
    );
    let kernels = cert.kernels.len();

    let fail = |label: &str, e: sim::SimError| -> ! {
        eprintln!("perf --merge: {} ({label}): {e}", cell.name);
        std::process::exit(1);
    };
    let mut wall_seq = f64::INFINITY;
    let mut sim_cycles = 0u64;
    for _ in 0..samples {
        let mut machine = Machine::new(sys.clone(), cell.kind);
        let start = Instant::now();
        let report = machine
            .run(&cell.program)
            .unwrap_or_else(|e| fail("sequential", e));
        wall_seq = wall_seq.min(start.elapsed().as_secs_f64());
        sim_cycles = report.gpu_cycles + report.cpu_cycles;
    }

    let mut wall_par1 = f64::INFINITY;
    let mut baseline = None;
    for _ in 0..samples {
        let mut machine = Machine::new(sys.clone(), cell.kind);
        let start = Instant::now();
        let report = machine
            .run_parallel(&cell.program, &par)
            .unwrap_or_else(|e| fail("parallel", e));
        wall_par1 = wall_par1.min(start.elapsed().as_secs_f64());
        baseline = Some((format!("{report:?}"), machine.memory().state_digest()));
    }

    let mut wall_certified = f64::INFINITY;
    let mut certified_kernels = 0u64;
    for _ in 0..samples {
        let mut machine = Machine::new(sys.clone(), cell.kind);
        machine.set_certificate(cert.clone());
        let start = Instant::now();
        let report = machine
            .run_parallel(&cell.program, &par)
            .unwrap_or_else(|e| fail("certified", e));
        wall_certified = wall_certified.min(start.elapsed().as_secs_f64());
        certified_kernels = machine.certified_kernels();
        let fp = (format!("{report:?}"), machine.memory().state_digest());
        assert_eq!(
            baseline.as_ref(),
            Some(&fp),
            "{}: the certificate changed the simulation result",
            cell.name
        );
    }

    MergeCellResult {
        name: cell.name.clone(),
        suite: cell.suite,
        kind: cell.kind,
        sim_cycles,
        kernels,
        certified_kernels,
        wall_seq,
        wall_par1,
        wall_certified,
    }
}

/// One BENCH_008 cell: surrogate sweep throughput vs simulator cost on
/// the same design points.
struct DseCellResult {
    name: String,
    suite: &'static str,
    kind: MemConfigKind,
    surrogate_points: usize,
    wall_surrogate: f64,
    sim_points: usize,
    wall_sim: f64,
}

impl DseCellResult {
    fn points_per_sec(&self) -> f64 {
        self.surrogate_points as f64 / self.wall_surrogate
    }

    fn sims_per_sec(&self) -> f64 {
        self.sim_points as f64 / self.wall_sim
    }

    /// How many surrogate evaluations fit in one simulation's budget.
    fn amortization(&self) -> f64 {
        self.points_per_sec() / self.sims_per_sec()
    }
}

/// Sweeps the design space with the surrogate (best-of-`samples`), then
/// simulates `sim_points` of the ranked points for the cost comparison.
fn run_dse_cell(w: &suite::Workload, smoke: bool, samples: usize) -> DseCellResult {
    let space = if smoke {
        verify::dse::Space::smoke_space()
    } else {
        verify::dse::Space::default_space()
    };
    let sys = w.set.system_config();
    let kind = MemConfigKind::Stash;
    let program = (w.build)(kind);

    let mut wall_surrogate = f64::INFINITY;
    let mut ranked = Vec::new();
    for _ in 0..samples {
        let start = Instant::now();
        ranked = verify::dse::evaluate_space(&program, &sys, kind, &space);
        wall_surrogate = wall_surrogate.min(start.elapsed().as_secs_f64());
    }

    let sim_points = if smoke { 2 } else { 4 };
    let mut wall_sim = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for e in ranked.iter().take(sim_points) {
            Machine::new(e.point.apply(&sys), kind)
                .run(&program)
                .unwrap_or_else(|err| {
                    eprintln!("perf --dse: {} at {}: {err}", w.name, e.point.label());
                    std::process::exit(1);
                });
        }
        wall_sim = wall_sim.min(start.elapsed().as_secs_f64());
    }

    DseCellResult {
        name: w.name.to_string(),
        suite: if w.set == suite::WorkloadSet::Micro {
            "micro"
        } else {
            "apps"
        },
        kind,
        surrogate_points: ranked.len(),
        wall_surrogate,
        sim_points,
        wall_sim,
    }
}

/// One BENCH_009 cell: plain sequential run vs the same run with an
/// on-disk snapshot at every phase barrier, plus the cost of restoring
/// from the mid-program snapshot.
struct CkptCellResult {
    name: String,
    suite: &'static str,
    kind: MemConfigKind,
    sim_cycles: u64,
    barriers: usize,
    snapshot_bytes: usize,
    wall_plain: f64,
    wall_ckpt: f64,
    wall_restore: f64,
}

impl CkptCellResult {
    fn overhead_vs_plain(&self) -> f64 {
        self.wall_ckpt / self.wall_plain
    }

    fn ckpt_cost_ms(&self) -> f64 {
        (self.wall_ckpt - self.wall_plain).max(0.0) * 1e3 / self.barriers.max(1) as f64
    }
}

/// Runs one suite workload plain, checkpointed (snapshot written at
/// every barrier into a scratch store), and restored-from-midpoint,
/// best-of-`samples` each, asserting all three converge to the plain
/// run's report and state digest.
fn run_ckpt_cell(w: &suite::Workload, kind: MemConfigKind, samples: usize) -> CkptCellResult {
    let sys = w.set.system_config();
    let program = (w.build)(kind);
    let resume_at = (program.phases.len() / 2).max(1);
    let fail = |label: &str, e: sim::SimError| -> ! {
        eprintln!("perf --checkpoint: {} ({label}): {e}", w.name);
        std::process::exit(1);
    };

    let mut wall_plain = f64::INFINITY;
    let mut sim_cycles = 0u64;
    let mut baseline = None;
    for _ in 0..samples {
        let mut machine = Machine::new(sys.clone(), kind);
        let start = Instant::now();
        let report = machine.run(&program).unwrap_or_else(|e| fail("plain", e));
        wall_plain = wall_plain.min(start.elapsed().as_secs_f64());
        sim_cycles = report.gpu_cycles + report.cpu_cycles;
        baseline = Some((format!("{report:?}"), machine.memory().state_digest()));
    }
    let baseline = baseline.expect("samples >= 1");

    let scratch = std::env::temp_dir().join(format!(
        "stash-perf-ckpt-{}-{}-{}",
        std::process::id(),
        w.name,
        kind.name()
    ));
    let mut wall_ckpt = f64::INFINITY;
    let mut barriers = 0usize;
    let mut snapshot_bytes = 0usize;
    let mut mid = None;
    for _ in 0..samples {
        let _ = std::fs::remove_dir_all(&scratch);
        let store = CheckpointStore::open(&scratch).unwrap_or_else(|e| {
            eprintln!("perf --checkpoint: cannot open {}: {e}", scratch.display());
            std::process::exit(1);
        });
        let mut machine = Machine::new(sys.clone(), kind);
        let mut cursor = RunCursor::default();
        barriers = 0;
        let start = Instant::now();
        let report = machine
            .run_from(&program, None, &mut cursor, |m, c| {
                let snap = m.checkpoint(&program, *c);
                barriers += 1;
                snapshot_bytes = snapshot_bytes.max(snap.to_bytes().len());
                if c.next_phase == resume_at {
                    mid = Some(snap.clone());
                }
                store
                    .save(&snap)
                    .map(|_| ())
                    .map_err(|e| sim::SimError::Config(format!("checkpoint write failed: {e}")))
            })
            .unwrap_or_else(|e| fail("checkpointed", e));
        wall_ckpt = wall_ckpt.min(start.elapsed().as_secs_f64());
        let fp = (format!("{report:?}"), machine.memory().state_digest());
        assert_eq!(
            baseline, fp,
            "{}: checkpointing changed the simulation result",
            w.name
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
    let mid = mid.expect("program has a mid-point barrier");

    let mut wall_restore = f64::INFINITY;
    for i in 0..samples {
        let start = Instant::now();
        let (mut machine, mut cursor) =
            Machine::resume(&mid, &program).unwrap_or_else(|e| fail("restore", e));
        wall_restore = wall_restore.min(start.elapsed().as_secs_f64());
        if i == 0 {
            let report = machine
                .run_from(&program, None, &mut cursor, |_, _| Ok(()))
                .unwrap_or_else(|e| fail("resumed run", e));
            let fp = (format!("{report:?}"), machine.memory().state_digest());
            assert_eq!(
                baseline, fp,
                "{}: the restored run diverged from the plain run",
                w.name
            );
        }
    }

    CkptCellResult {
        name: w.name.to_string(),
        suite: if w.set == suite::WorkloadSet::Micro {
            "micro"
        } else {
            "apps"
        },
        kind,
        sim_cycles,
        barriers,
        snapshot_bytes,
        wall_plain,
        wall_ckpt,
        wall_restore,
    }
}

/// One BENCH_010 template: cold one-shot daemon cost vs the warm
/// resident-daemon answer for the same request.
struct ServeCellResult {
    template: String,
    cold_ms: f64,
    warm_ms: f64,
    payload_bytes: usize,
    digest: u64,
}

impl ServeCellResult {
    fn speedup(&self) -> f64 {
        self.cold_ms / self.warm_ms.max(1e-6)
    }
}

struct ServeResult {
    cells: Vec<ServeCellResult>,
    warm_rounds: usize,
    warm_requests: usize,
    warm_wall_secs: f64,
    cache_hits: u64,
    cache_lookups: u64,
    warm_latencies: Vec<std::time::Duration>,
}

impl ServeResult {
    fn requests_per_sec(&self) -> f64 {
        self.warm_requests as f64 / self.warm_wall_secs.max(1e-9)
    }

    fn cache_hit_rate(&self) -> f64 {
        self.cache_hits as f64 / self.cache_lookups.max(1) as f64
    }

    fn p50_ms_cold(&self) -> f64 {
        let colds: Vec<std::time::Duration> = self
            .cells
            .iter()
            .map(|c| std::time::Duration::from_secs_f64(c.cold_ms / 1e3))
            .collect();
        server::percentile(&colds, 50).as_secs_f64() * 1e3
    }

    fn median_speedup(&self) -> f64 {
        let mut speedups: Vec<f64> = self.cells.iter().map(ServeCellResult::speedup).collect();
        speedups.sort_unstable_by(f64::total_cmp);
        speedups[(speedups.len() - 1) / 2]
    }
}

fn serve_fail(context: &str, e: &std::io::Error) -> ! {
    eprintln!("perf --serve: {context}: {e}");
    std::process::exit(1);
}

/// Runs the BENCH_010 protocol: cold one-shot per template, then
/// `rounds` warm passes against one resident daemon. Every warm payload
/// is byte-checked against the cold answer before its latency counts.
fn run_serve(smoke: bool, rounds: usize, threads: usize) -> ServeResult {
    let exe = server::sibling_binary("stashd")
        .unwrap_or_else(|e| serve_fail("locating stashd next to perf", &e));
    if !exe.exists() {
        eprintln!(
            "perf --serve: {} not built — build the whole bench crate first",
            exe.display()
        );
        std::process::exit(1);
    }
    let threads_s = threads.to_string();
    let mut templates = server::mix_templates();
    if smoke {
        templates.truncate(2);
    }

    // Cold: each request pays a fresh process + lowering + simulation.
    // The clock starts at spawn, exactly what a one-shot bin costs.
    let mut cells = Vec::new();
    for template in &templates {
        let start = Instant::now();
        let mut client =
            DaemonClient::spawn(&exe, &["--once", "--no-cache", "--threads", &threads_s])
                .unwrap_or_else(|e| serve_fail("spawning cold stashd", &e));
        let resp = client
            .request(template)
            .unwrap_or_else(|e| serve_fail("cold request", &e));
        let cold_ms = start.elapsed().as_secs_f64() * 1e3;
        if let Some(err) = resp.error {
            eprintln!("perf --serve: cold {template} failed: {err}");
            std::process::exit(1);
        }
        cells.push(ServeCellResult {
            template: template.clone(),
            cold_ms,
            warm_ms: f64::INFINITY,
            payload_bytes: resp.payload.len(),
            digest: sim::snapshot::fnv1a(resp.payload.as_bytes()),
        });
    }

    // Warm: one resident daemon, `rounds` passes over the templates.
    // Round 0 populates the cache; later rounds are the measurement.
    let mut daemon = DaemonClient::spawn(&exe, &["--threads", &threads_s])
        .unwrap_or_else(|e| serve_fail("spawning resident stashd", &e));
    let mut warm_latencies = Vec::new();
    let mut per_template: Vec<Vec<std::time::Duration>> = vec![Vec::new(); cells.len()];
    let mut cache_hits = 0u64;
    let mut cache_lookups = 0u64;
    let mut warm_requests = 0usize;
    let warm_start = Instant::now();
    for round in 0..rounds {
        for (i, cell) in cells.iter().enumerate() {
            let resp = daemon
                .request(&cell.template)
                .unwrap_or_else(|e| serve_fail("warm request", &e));
            if let Some(err) = resp.error {
                eprintln!("perf --serve: warm {} failed: {err}", cell.template);
                std::process::exit(1);
            }
            let digest = sim::snapshot::fnv1a(resp.payload.as_bytes());
            assert_eq!(
                cell.digest, digest,
                "{}: warm payload diverged from the cold run",
                cell.template
            );
            cache_lookups += 1;
            cache_hits += u64::from(resp.cached);
            warm_requests += 1;
            if round > 0 {
                assert!(
                    resp.cached,
                    "{}: repeat request missed the cache",
                    cell.template
                );
                warm_latencies.push(resp.latency);
                per_template[i].push(resp.latency);
            }
        }
    }
    let warm_wall_secs = warm_start.elapsed().as_secs_f64();
    daemon
        .shutdown()
        .unwrap_or_else(|e| serve_fail("shutting down resident stashd", &e));
    for (cell, lats) in cells.iter_mut().zip(&per_template) {
        cell.warm_ms = server::percentile(lats, 50).as_secs_f64() * 1e3;
    }

    ServeResult {
        cells,
        warm_rounds: rounds,
        warm_requests,
        warm_wall_secs,
        cache_hits,
        cache_lookups,
        warm_latencies,
    }
}

fn print_serve_text(r: &ServeResult) {
    println!(
        "{:<58} {:>11} {:>11} {:>11} {:>9}",
        "template", "bytes", "cold (ms)", "warm (ms)", "speedup"
    );
    for c in &r.cells {
        println!(
            "{:<58} {:>11} {:>11.2} {:>11.3} {:>8.0}x",
            c.template,
            c.payload_bytes,
            c.cold_ms,
            c.warm_ms,
            c.speedup()
        );
    }
    println!(
        "\nwarm: {} requests over {} rounds in {:.2}s ({:.1} req/s), \
         cache hit rate {:.2}",
        r.warm_requests,
        r.warm_rounds,
        r.warm_wall_secs,
        r.requests_per_sec(),
        r.cache_hit_rate()
    );
    println!(
        "latency p50 warm {:.3} ms  p95 warm {:.3} ms  p50 cold {:.2} ms  \
         median speedup {:.0}x",
        server::percentile(&r.warm_latencies, 50).as_secs_f64() * 1e3,
        server::percentile(&r.warm_latencies, 95).as_secs_f64() * 1e3,
        r.p50_ms_cold(),
        r.median_speedup()
    );
}

fn serve_to_json(r: &ServeResult) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"BENCH_010\",\n");
    s.push_str("  \"runner\": \"daemon_serve\",\n");
    s.push_str(&format!(
        "  \"code_version\": \"{}\",\n",
        cli::json_escape(server::CODE_VERSION)
    ));
    s.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
    s.push_str(&format!("  \"warm_rounds\": {},\n", r.warm_rounds));
    s.push_str(&format!("  \"warm_requests\": {},\n", r.warm_requests));
    s.push_str(&format!(
        "  \"requests_per_sec\": {:.2},\n",
        r.requests_per_sec()
    ));
    s.push_str(&format!(
        "  \"cache_hit_rate\": {:.3},\n",
        r.cache_hit_rate()
    ));
    s.push_str(&format!(
        "  \"p50_ms_warm\": {:.4},\n",
        server::percentile(&r.warm_latencies, 50).as_secs_f64() * 1e3
    ));
    s.push_str(&format!(
        "  \"p95_ms_warm\": {:.4},\n",
        server::percentile(&r.warm_latencies, 95).as_secs_f64() * 1e3
    ));
    s.push_str(&format!("  \"p50_ms_cold\": {:.3},\n", r.p50_ms_cold()));
    s.push_str(&format!(
        "  \"median_speedup\": {:.1},\n",
        r.median_speedup()
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in r.cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"template\": \"{}\",\n",
            cli::json_escape(&c.template)
        ));
        s.push_str(&format!("      \"payload_bytes\": {},\n", c.payload_bytes));
        s.push_str(&format!(
            "      \"payload_digest\": \"{:016x}\",\n",
            c.digest
        ));
        s.push_str(&format!("      \"cold_ms\": {:.3},\n", c.cold_ms));
        s.push_str(&format!("      \"warm_ms\": {:.4},\n", c.warm_ms));
        s.push_str(&format!("      \"speedup\": {:.1}\n", c.speedup()));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < r.cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn print_ckpt_text(cells: &[CkptCellResult]) {
    println!(
        "{:<16} {:<9} {:<9} {:>12} {:>9} {:>11} {:>11} {:>11} {:>9} {:>12} {:>13}",
        "cell",
        "suite",
        "config",
        "sim cycles",
        "barriers",
        "snap (KB)",
        "plain (ms)",
        "ckpt (ms)",
        "overhead",
        "per-ckpt ms",
        "restore (ms)"
    );
    for c in cells {
        println!(
            "{:<16} {:<9} {:<9} {:>12} {:>9} {:>11.1} {:>11.2} {:>11.2} {:>8.2}x {:>12.3} {:>13.3}",
            c.name,
            c.suite,
            c.kind.name(),
            c.sim_cycles,
            c.barriers,
            c.snapshot_bytes as f64 / 1024.0,
            c.wall_plain * 1e3,
            c.wall_ckpt * 1e3,
            c.overhead_vs_plain(),
            c.ckpt_cost_ms(),
            c.wall_restore * 1e3,
        );
    }
}

fn ckpt_to_json(cells: &[CkptCellResult], samples: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"BENCH_009\",\n");
    s.push_str("  \"runner\": \"checkpoint_overhead\",\n");
    s.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"name\": \"{}\",\n",
            cli::json_escape(&c.name)
        ));
        s.push_str(&format!("      \"suite\": \"{}\",\n", c.suite));
        s.push_str(&format!("      \"config\": \"{}\",\n", c.kind.name()));
        s.push_str(&format!("      \"sim_cycles\": {},\n", c.sim_cycles));
        s.push_str(&format!("      \"barriers\": {},\n", c.barriers));
        s.push_str(&format!(
            "      \"snapshot_bytes\": {},\n",
            c.snapshot_bytes
        ));
        s.push_str(&format!(
            "      \"wall_ms_plain\": {:.3},\n",
            c.wall_plain * 1e3
        ));
        s.push_str(&format!(
            "      \"wall_ms_checkpointed\": {:.3},\n",
            c.wall_ckpt * 1e3
        ));
        s.push_str(&format!(
            "      \"overhead_vs_plain\": {:.3},\n",
            c.overhead_vs_plain()
        ));
        s.push_str(&format!(
            "      \"per_checkpoint_ms\": {:.4},\n",
            c.ckpt_cost_ms()
        ));
        s.push_str(&format!(
            "      \"wall_ms_restore\": {:.4}\n",
            c.wall_restore * 1e3
        ));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn print_dse_text(cells: &[DseCellResult]) {
    println!(
        "{:<16} {:<9} {:<9} {:>10} {:>12} {:>14} {:>10} {:>12} {:>14}",
        "cell",
        "suite",
        "config",
        "points",
        "sweep (ms)",
        "points/sec",
        "sims",
        "sim (ms)",
        "amortization"
    );
    for c in cells {
        println!(
            "{:<16} {:<9} {:<9} {:>10} {:>12.2} {:>14.0} {:>10} {:>12.2} {:>13.0}x",
            c.name,
            c.suite,
            c.kind.name(),
            c.surrogate_points,
            c.wall_surrogate * 1e3,
            c.points_per_sec(),
            c.sim_points,
            c.wall_sim * 1e3,
            c.amortization(),
        );
    }
}

fn dse_to_json(cells: &[DseCellResult], samples: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"BENCH_008\",\n");
    s.push_str("  \"runner\": \"surrogate_dse\",\n");
    s.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"name\": \"{}\",\n",
            cli::json_escape(&c.name)
        ));
        s.push_str(&format!("      \"suite\": \"{}\",\n", c.suite));
        s.push_str(&format!("      \"config\": \"{}\",\n", c.kind.name()));
        s.push_str(&format!(
            "      \"surrogate_points\": {},\n",
            c.surrogate_points
        ));
        s.push_str(&format!(
            "      \"wall_ms_surrogate\": {:.3},\n",
            c.wall_surrogate * 1e3
        ));
        s.push_str(&format!(
            "      \"points_per_sec\": {:.0},\n",
            c.points_per_sec()
        ));
        s.push_str(&format!("      \"sim_points\": {},\n", c.sim_points));
        s.push_str(&format!(
            "      \"wall_ms_sim\": {:.3},\n",
            c.wall_sim * 1e3
        ));
        s.push_str(&format!(
            "      \"sims_per_sec\": {:.1},\n",
            c.sims_per_sec()
        ));
        s.push_str(&format!(
            "      \"surrogate_amortization\": {:.0}\n",
            c.amortization()
        ));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn print_merge_text(cells: &[MergeCellResult]) {
    println!(
        "{:<16} {:<13} {:<9} {:>12} {:>9} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "cell",
        "suite",
        "config",
        "sim cycles",
        "certified",
        "seq (ms)",
        "par1 (ms)",
        "cert (ms)",
        "overhead",
        "w/ cert"
    );
    for c in cells {
        println!(
            "{:<16} {:<13} {:<9} {:>12} {:>5}/{:<3} {:>12.2} {:>12.2} {:>12.2} {:>8.2}x {:>8.2}x",
            c.name,
            c.suite,
            c.kind.name(),
            c.sim_cycles,
            c.certified_kernels,
            c.kernels,
            c.wall_seq * 1e3,
            c.wall_par1 * 1e3,
            c.wall_certified * 1e3,
            c.overhead_vs_seq(),
            c.overhead_vs_seq_certified(),
        );
    }
}

fn merge_to_json(cells: &[MergeCellResult], samples: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"BENCH_007\",\n");
    s.push_str("  \"runner\": \"merge_fast_path\",\n");
    s.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"name\": \"{}\",\n",
            cli::json_escape(&c.name)
        ));
        s.push_str(&format!("      \"suite\": \"{}\",\n", c.suite));
        s.push_str(&format!("      \"config\": \"{}\",\n", c.kind.name()));
        s.push_str(&format!("      \"sim_cycles\": {},\n", c.sim_cycles));
        s.push_str(&format!("      \"kernels\": {},\n", c.kernels));
        s.push_str(&format!(
            "      \"certified_kernels\": {},\n",
            c.certified_kernels
        ));
        s.push_str(&format!(
            "      \"wall_ms_seq\": {:.3},\n",
            c.wall_seq * 1e3
        ));
        s.push_str(&format!(
            "      \"wall_ms_par1\": {:.3},\n",
            c.wall_par1 * 1e3
        ));
        s.push_str(&format!(
            "      \"wall_ms_par1_certified\": {:.3},\n",
            c.wall_certified * 1e3
        ));
        s.push_str(&format!(
            "      \"overhead_vs_seq\": {:.3},\n",
            c.overhead_vs_seq()
        ));
        s.push_str(&format!(
            "      \"overhead_vs_seq_certified\": {:.3}\n",
            c.overhead_vs_seq_certified()
        ));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn print_text(cells: &[CellResult]) {
    println!(
        "{:<16} {:<13} {:<9} {:>12} {:>8} {:>12} {:>14} {:>8}",
        "cell", "suite", "config", "sim cycles", "threads", "wall (ms)", "cycles/sec", "speedup"
    );
    for c in cells {
        for r in &c.results {
            println!(
                "{:<16} {:<13} {:<9} {:>12} {:>8} {:>12.2} {:>14.0} {:>7.2}x",
                c.name,
                c.suite,
                c.kind.name(),
                c.sim_cycles,
                r.threads,
                r.wall_secs * 1e3,
                r.cycles_per_sec,
                r.speedup_vs_1t
            );
        }
    }
    let best = cells
        .iter()
        .filter_map(|c| c.results.last())
        .map(|r| r.speedup_vs_1t)
        .fold(0.0f64, f64::max);
    println!(
        "\nbest speedup at {} threads: {best:.2}x (host has {} CPU{})",
        THREADS[3],
        host_cpus(),
        if host_cpus() == 1 { "" } else { "s" }
    );
}

fn to_json(cells: &[CellResult], samples: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"BENCH_006\",\n");
    s.push_str("  \"runner\": \"run_parallel\",\n");
    s.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
    s.push_str(&format!("  \"samples\": {samples},\n"));
    s.push_str(&format!(
        "  \"threads\": [{}],\n",
        THREADS.map(|t| t.to_string()).join(", ")
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"name\": \"{}\",\n",
            cli::json_escape(&c.name)
        ));
        s.push_str(&format!("      \"suite\": \"{}\",\n", c.suite));
        s.push_str(&format!("      \"config\": \"{}\",\n", c.kind.name()));
        s.push_str(&format!("      \"sim_cycles\": {},\n", c.sim_cycles));
        s.push_str("      \"results\": [\n");
        for (j, r) in c.results.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"threads\": {}, \"wall_ms\": {:.3}, \
                 \"cycles_per_sec\": {:.0}, \"speedup_vs_1t\": {:.3}}}{}\n",
                r.threads,
                r.wall_secs * 1e3,
                r.cycles_per_sec,
                r.speedup_vs_1t,
                if j + 1 < c.results.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Structural validation for `--check`: the file must parse as JSON
/// (objects/arrays/strings/numbers/keywords balance correctly) and
/// contain the schema markers of whichever bench it declares
/// (BENCH_006 thread scaling, or BENCH_007 merge fast path).
fn check_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json_balanced(&text)?;
    let markers: &[&str] = if text.contains("\"bench\": \"BENCH_010\"") {
        &[
            "\"runner\": \"daemon_serve\"",
            "\"code_version\"",
            "\"host_cpus\"",
            "\"cells\"",
            "\"requests_per_sec\"",
            "\"cache_hit_rate\"",
            "\"p50_ms_warm\"",
            "\"p95_ms_warm\"",
            "\"p50_ms_cold\"",
            "\"median_speedup\"",
            "\"payload_digest\"",
        ]
    } else if text.contains("\"bench\": \"BENCH_009\"") {
        &[
            "\"runner\": \"checkpoint_overhead\"",
            "\"host_cpus\"",
            "\"cells\"",
            "\"barriers\"",
            "\"snapshot_bytes\"",
            "\"wall_ms_plain\"",
            "\"wall_ms_checkpointed\"",
            "\"overhead_vs_plain\"",
            "\"per_checkpoint_ms\"",
            "\"wall_ms_restore\"",
        ]
    } else if text.contains("\"bench\": \"BENCH_008\"") {
        &[
            "\"runner\": \"surrogate_dse\"",
            "\"host_cpus\"",
            "\"cells\"",
            "\"surrogate_points\"",
            "\"points_per_sec\"",
            "\"sim_points\"",
            "\"sims_per_sec\"",
            "\"surrogate_amortization\"",
        ]
    } else if text.contains("\"bench\": \"BENCH_007\"") {
        &[
            "\"runner\": \"merge_fast_path\"",
            "\"host_cpus\"",
            "\"cells\"",
            "\"certified_kernels\"",
            "\"wall_ms_seq\"",
            "\"wall_ms_par1\"",
            "\"wall_ms_par1_certified\"",
            "\"overhead_vs_seq\"",
            "\"overhead_vs_seq_certified\"",
        ]
    } else {
        &[
            "\"bench\": \"BENCH_006\"",
            "\"host_cpus\"",
            "\"cells\"",
            "\"speedup_vs_1t\"",
            "\"cycles_per_sec\"",
            "\"wall_ms\"",
            "\"threads\"",
        ]
    };
    for marker in markers {
        if !text.contains(marker) {
            return Err(format!("{path}: missing {marker}"));
        }
    }
    Ok(())
}

/// Checks JSON delimiter balance, string-aware: every `{`/`[` closes in
/// order, quotes terminate, escapes are consumed. Not a full parser —
/// enough to reject truncated or hand-mangled files.
fn json_balanced(text: &str) -> Result<(), String> {
    let mut stack = Vec::new();
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => loop {
                match chars.next() {
                    Some('\\') => {
                        chars.next();
                    }
                    Some('"') => break,
                    Some(_) => {}
                    None => return Err("unterminated string".into()),
                }
            },
            '{' | '[' => stack.push(c),
            '}' | ']' => {
                let want = if c == '}' { '{' } else { '[' };
                if stack.pop() != Some(want) {
                    return Err(format!("unbalanced '{c}'"));
                }
            }
            _ => {}
        }
    }
    if stack.is_empty() {
        Ok(())
    } else {
        Err(format!("{} unclosed delimiters", stack.len()))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--check requires a path");
            std::process::exit(2);
        });
        match check_file(path) {
            Ok(()) => {
                println!("{path}: ok");
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = cli::json_flag(&args);
    let samples = match args.iter().position(|a| a == "--samples") {
        Some(i) => args
            .get(i + 1)
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                eprintln!("--samples must be a positive integer");
                std::process::exit(2);
            }),
        None => {
            if smoke {
                1
            } else {
                3
            }
        }
    };
    let emit = |text: String| {
        if let Some(i) = args.iter().position(|a| a == "--out") {
            let path = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("--out requires a path");
                std::process::exit(2);
            });
            std::fs::write(path, &text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        print!("{text}");
    };
    if args.iter().any(|a| a == "--serve") {
        let rounds = if smoke { 2 } else { 1 + samples };
        let result = run_serve(smoke, rounds, cli::thread_count(&args));
        if json {
            emit(serve_to_json(&result));
        } else {
            print_serve_text(&result);
        }
        return;
    }
    if args.iter().any(|a| a == "--checkpoint") {
        let mut workloads: Vec<(suite::Workload, MemConfigKind)> = suite::micros()
            .into_iter()
            .map(|w| (w, MemConfigKind::Stash))
            .chain(
                suite::applications()
                    .into_iter()
                    .map(|w| (w, MemConfigKind::StashG)),
            )
            .collect();
        if smoke {
            workloads.truncate(1);
        }
        let results: Vec<CkptCellResult> = workloads
            .iter()
            .map(|(w, kind)| run_ckpt_cell(w, *kind, samples))
            .collect();
        if json {
            emit(ckpt_to_json(&results, samples));
        } else {
            print_ckpt_text(&results);
        }
        return;
    }
    if args.iter().any(|a| a == "--dse") {
        let mut workloads = vec![
            suite::by_name("implicit").expect("suite has implicit"),
            suite::by_name("surf").expect("suite has surf"),
        ];
        if smoke {
            workloads.truncate(1);
        }
        let results: Vec<DseCellResult> = workloads
            .iter()
            .map(|w| run_dse_cell(w, smoke, samples))
            .collect();
        if json {
            emit(dse_to_json(&results, samples));
        } else {
            print_dse_text(&results);
        }
        return;
    }
    if args.iter().any(|a| a == "--merge") {
        let results: Vec<MergeCellResult> = cells(smoke)
            .iter()
            .map(|c| run_merge_cell(c, samples))
            .collect();
        if json {
            emit(merge_to_json(&results, samples));
        } else {
            print_merge_text(&results);
        }
        return;
    }
    let threads: &[usize] = if smoke { &THREADS[..2] } else { &THREADS };
    let results: Vec<CellResult> = cells(smoke)
        .iter()
        .map(|c| run_cell(c, samples, threads))
        .collect();
    if json {
        emit(to_json(&results, samples));
    } else {
        print_text(&results);
    }
}
