//! Save, resume, and inspect machine checkpoints.
//!
//! ```text
//! cargo run --release -p bench --bin checkpoint -- save lud Stash --dir /tmp/ckpt
//! cargo run --release -p bench --bin checkpoint -- save lud Stash --dir /tmp/ckpt --until 3
//! cargo run --release -p bench --bin checkpoint -- resume lud Stash --dir /tmp/ckpt
//! cargo run --release -p bench --bin checkpoint -- inspect --dir /tmp/ckpt
//! ```
//!
//! `save` runs a suite workload (or a trace file) with a snapshot at
//! every phase barrier; `--until K` stops the run after phase `K`'s
//! barrier, leaving a mid-program checkpoint behind. `resume` restores
//! the newest valid snapshot (reporting any torn files it skipped) and
//! finishes the run — the report and state digest are bit-identical to
//! an uninterrupted run. `inspect` decodes what a checkpoint directory
//! holds without running anything.

use bench::cli;
use gpu::config::MemConfigKind;
use gpu::machine::{Machine, RunCursor, SECTION_META, SECTION_MSYS};
use gpu::program::Program;
use gpu::report::RunReport;
use sim::config::SystemConfig;
use sim::snapshot::{read_snapshot, CheckpointStore, Reader};
use sim::SimError;
use workloads::suite;

fn usage() -> ! {
    eprintln!(
        "usage: checkpoint save <workload|file.trace> <config> --dir DIR [--until K] [flags]\n\
         checkpoint resume <workload|file.trace> <config> --dir DIR [flags]\n\
         checkpoint inspect --dir DIR\n\
         <workload>    a suite name ({}) or a .trace file\n\
         <config>      one of {}\n\
         --dir DIR     the checkpoint directory\n\
         --until K     (save) stop after phase K's barrier instead of finishing\n\
         {}\n{}",
        suite::all()
            .iter()
            .map(|w| w.name)
            .collect::<Vec<_>>()
            .join(", "),
        MemConfigKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", "),
        cli::VERIFY_USAGE,
        cli::JSON_USAGE,
    );
    std::process::exit(2);
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            usage();
        }
        let v = args.remove(i + 1);
        args.remove(i);
        return Some(v);
    }
    let prefix = format!("{flag}=");
    if let Some(i) = args.iter().position(|a| a.starts_with(&prefix)) {
        let v = args.remove(i)[prefix.len()..].to_string();
        return Some(v);
    }
    None
}

/// Resolves a workload operand: a suite name or a trace file path.
fn resolve(spec: &str, kind: MemConfigKind) -> (SystemConfig, Program) {
    if spec.ends_with(".trace") || std::path::Path::new(spec).exists() {
        let trace = cli::load_trace(spec);
        (trace.set().system_config(), trace.build(kind))
    } else if let Some(w) = suite::by_name(spec) {
        (w.set.system_config(), (w.build)(kind))
    } else {
        eprintln!("unknown workload {spec} (not a suite name, and no such file)");
        std::process::exit(2);
    }
}

fn print_report(label: &str, report: &RunReport, digest: u64) {
    println!(
        "{label}: {} GPU + {} CPU cycles, {} ps, {} instrs, {} fJ, digest {digest:016x}",
        report.gpu_cycles,
        report.cpu_cycles,
        report.total_picos,
        report.gpu_instructions,
        report.total_energy(),
    );
}

fn cmd_save(spec: &str, kind: MemConfigKind, dir: &str, until: Option<usize>, verify: bool) -> i32 {
    const STOP: &str = "checkpoint save --until stop";
    let (sys, program) = resolve(spec, kind);
    let store = CheckpointStore::open(std::path::Path::new(dir)).unwrap_or_else(|e| {
        eprintln!("cannot open checkpoint directory {dir}: {e}");
        std::process::exit(2);
    });
    let mut machine = Machine::new(sys, kind);
    machine.memory_mut().set_verify(verify);
    let mut cursor = RunCursor::default();
    let result = machine.run_from(&program, None, &mut cursor, |m, c| {
        let snap = m.checkpoint(&program, *c);
        let seq = store
            .save(&snap)
            .map_err(|e| SimError::Config(format!("checkpoint write failed: {e}")))?;
        println!(
            "barrier after phase {}/{}: wrote {}",
            c.next_phase,
            program.phases.len(),
            store.path_for(seq).display()
        );
        if until.is_some_and(|k| c.next_phase >= k) {
            return Err(SimError::Config(STOP.to_string()));
        }
        Ok(())
    });
    match result {
        Ok(report) => {
            print_report("completed", &report, machine.memory().state_digest());
            0
        }
        Err(SimError::Config(msg)) if msg == STOP => {
            println!(
                "stopped after phase {}/{} — resume with: checkpoint resume {spec} {} --dir {dir}",
                cursor.next_phase,
                program.phases.len(),
                kind.name(),
            );
            0
        }
        Err(e) => {
            cli::sim_failure_status(&format!("checkpoint save: {spec} on {}", kind.name()), &e)
        }
    }
}

fn cmd_resume(spec: &str, kind: MemConfigKind, dir: &str, verify: bool) -> i32 {
    let (_, program) = resolve(spec, kind);
    let store = CheckpointStore::open(std::path::Path::new(dir)).unwrap_or_else(|e| {
        eprintln!("cannot open checkpoint directory {dir}: {e}");
        std::process::exit(2);
    });
    let Some((seq, snap, rejected)) = store.latest_valid() else {
        eprintln!("no valid snapshot in {dir}");
        return 1;
    };
    for (bad, err) in &rejected {
        eprintln!(
            "skipped torn/corrupt {}: {err}",
            store.path_for(*bad).display()
        );
    }
    let (mut machine, mut cursor) = match Machine::resume(&snap, &program) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cannot resume from {}: {e}", store.path_for(seq).display());
            return 1;
        }
    };
    machine.memory_mut().set_verify(verify);
    println!(
        "resuming {} on {} from {} at phase {}/{}",
        spec,
        kind.name(),
        store.path_for(seq).display(),
        cursor.next_phase,
        program.phases.len(),
    );
    match machine.run_from(&program, None, &mut cursor, |_, _| Ok(())) {
        Ok(report) => {
            print_report("completed", &report, machine.memory().state_digest());
            0
        }
        Err(e) => {
            cli::sim_failure_status(&format!("checkpoint resume: {spec} on {}", kind.name()), &e)
        }
    }
}

fn cmd_inspect(dir: &str) -> i32 {
    let store = CheckpointStore::open(std::path::Path::new(dir)).unwrap_or_else(|e| {
        eprintln!("cannot open checkpoint directory {dir}: {e}");
        std::process::exit(2);
    });
    let seqs = store.list();
    if seqs.is_empty() {
        println!("{dir}: no snapshots");
        return 0;
    }
    let mut status = 0;
    for seq in seqs {
        let path = store.path_for(seq);
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        match read_snapshot(&path) {
            Ok(snap) => {
                let sections: Vec<String> = snap
                    .sections()
                    .iter()
                    .map(|(tag, payload)| {
                        let name = match *tag {
                            t if t == SECTION_META => "META".to_string(),
                            t if t == SECTION_MSYS => "MSYS".to_string(),
                            t => format!("{t:#010x}"),
                        };
                        format!("{name} ({} bytes)", payload.len())
                    })
                    .collect();
                println!("{}: {bytes} bytes, {}", path.display(), sections.join(", "));
                match snap.section(SECTION_META, "checkpoint META section") {
                    Ok(meta) => {
                        let mut r = Reader::new(meta, "checkpoint META section");
                        let decoded = (|| -> Result<_, SimError> {
                            let fp = r.take_u64()?;
                            let next_phase = r.take_usize()?;
                            let ordinal = r.take_u64()?;
                            let gpu_cycles = r.take_u64()?;
                            let cpu_cycles = r.take_u64()?;
                            Ok((fp, next_phase, ordinal, gpu_cycles, cpu_cycles))
                        })();
                        match decoded {
                            Ok((fp, next_phase, ordinal, gpu_cycles, cpu_cycles)) => println!(
                                "  program {fp:016x}, next phase {next_phase}, \
                                 {ordinal} kernel(s) done, {gpu_cycles} GPU + \
                                 {cpu_cycles} CPU cycles"
                            ),
                            Err(e) => {
                                println!("  META undecodable: {e}");
                                status = 1;
                            }
                        }
                    }
                    Err(e) => {
                        println!("  {e}");
                        status = 1;
                    }
                }
            }
            Err(e) => {
                println!("{}: {bytes} bytes, INVALID — {e}", path.display());
                status = 1;
            }
        }
    }
    status
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let verify = cli::verify_flag(&args);
    let mut args = args;
    cli::strip_common_flags(&mut args);
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let dir = flag_value(&mut args, "--dir").unwrap_or_else(|| usage());
    let until =
        flag_value(&mut args, "--until").map(|v| v.parse::<usize>().unwrap_or_else(|_| usage()));
    if args.iter().any(|a| a.starts_with("--")) {
        usage();
    }

    let status = match args.get(1).map(String::as_str) {
        Some("inspect") if args.len() == 2 => cmd_inspect(&dir),
        Some("save") if args.len() == 4 => {
            cmd_save(&args[2], cli::config_by_name(&args[3]), &dir, until, verify)
        }
        Some("resume") if args.len() == 4 => {
            if until.is_some() {
                usage();
            }
            cmd_resume(&args[2], cli::config_by_name(&args[3]), &dir, verify)
        }
        _ => usage(),
    };
    if status != 0 {
        std::process::exit(status);
    }
}
