//! Ablations of the stash's design choices (DESIGN.md §4) and the
//! paper's §8 future-work extensions.
//!
//! 1. §4.5 data replication on/off (Reuse);
//! 2. word- vs line-granularity transfer (Implicit, stash vs cache);
//! 3. lazy vs eager writebacks (Implicit, stash);
//! 4. word- vs line-granularity *registration* — DeNovo vs a MESI-style
//!    single-writer registry (Pathfinder's adjacent row slices);
//! 5. §8 extensions: AddMap-time prefetch and widened fetch granularity
//!    (On-demand vs Implicit show the trade-off).

use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use gpu::report::RunReport;
use workloads::suite;

fn run_with(
    name: &str,
    kind: MemConfigKind,
    tweak: impl FnOnce(&mut Machine),
) -> RunReport {
    let w = suite::by_name(name).expect("registered workload");
    let program = (w.build)(kind);
    let mut machine = Machine::new(w.set.system_config(), kind);
    tweak(&mut machine);
    machine.run(&program).expect("workload runs")
}

fn main() {
    println!("Ablation 1 — §4.5 data replication (Reuse, Stash config)");
    let on = run_with("reuse", MemConfigKind::Stash, |_| {});
    let off = run_with("reuse", MemConfigKind::Stash, |m| {
        m.memory_mut().disable_stash_replication()
    });
    println!(
        "  replication ON : cycles {:>9}  energy {:>14} fJ  fetches {:>6}",
        on.gpu_cycles,
        on.total_energy(),
        on.counters.get("stash.fetch_words")
    );
    println!(
        "  replication OFF: cycles {:>9}  energy {:>14} fJ  fetches {:>6}",
        off.gpu_cycles,
        off.total_energy(),
        off.counters.get("stash.fetch_words")
    );

    println!("\nAblation 2 — word- vs line-granularity transfer (Implicit)");
    for kind in [MemConfigKind::Stash, MemConfigKind::Cache] {
        let r = run_with("implicit", kind, |_| {});
        println!(
            "  {:<10} read-crossings {:>8}  total energy {:>14} fJ",
            kind.name(),
            r.traffic.crossings(noc::MsgClass::Read),
            r.total_energy()
        );
    }

    println!("\nAblation 3 — lazy vs eager stash writebacks");
    for wl in ["reuse", "implicit"] {
        let lazy = run_with(wl, MemConfigKind::Stash, |_| {});
        let eager = run_with(wl, MemConfigKind::Stash, |m| {
            m.memory_mut().set_eager_stash_writebacks(true)
        });
        println!("  {wl}:");
        println!(
            "    lazy : wb words {:>6}  forwards {:>6}  gpu cycles {:>9}  energy {:>14} fJ",
            lazy.counters.get("wb.stash_words"),
            lazy.counters.get("remote.forward"),
            lazy.gpu_cycles,
            lazy.total_energy()
        );
        println!(
            "    eager: wb words {:>6}  forwards {:>6}  gpu cycles {:>9}  energy {:>14} fJ",
            eager.counters.get("wb.stash_words"),
            eager.counters.get("remote.forward"),
            eager.gpu_cycles,
            eager.total_energy()
        );
    }
    println!("  (on Reuse, eager drains also destroy the cross-kernel reuse: the");
    println!("   data must be refetched every kernel — §2's core claim. On Implicit");
    println!("   everything is consumed once, so eager's bulk drain merely trades");
    println!("   against lazy's per-word CPU forwards.)");

    println!("\nAblation 4 — word- vs line-granularity registration (Pathfinder, Cache)");
    let word = run_with("pathfinder", MemConfigKind::Cache, |_| {});
    let line = run_with("pathfinder", MemConfigKind::Cache, |m| {
        m.memory_mut().set_line_grain_registration(true)
    });
    println!(
        "  word (DeNovo): false-sharing revocations {:>7}  write-crossings {:>9}",
        word.counters.get("coherence.false_sharing_revocation"),
        word.traffic.crossings(noc::MsgClass::Write)
    );
    println!(
        "  line (MESI-ish): false-sharing revocations {:>5}  write-crossings {:>9}",
        line.counters.get("coherence.false_sharing_revocation"),
        line.traffic.crossings(noc::MsgClass::Write)
    );

    println!("\nExtension (§8) — AddMap prefetch + widened fetches");
    for (wl, label) in [("implicit", "dense (Implicit)"), ("ondemand", "sparse (On-demand)")] {
        let base = run_with(wl, MemConfigKind::Stash, |_| {});
        let pf = run_with(wl, MemConfigKind::Stash, |m| {
            m.memory_mut().set_stash_prefetch(true)
        });
        let wide = run_with(wl, MemConfigKind::Stash, |m| {
            m.memory_mut().set_stash_fetch_words(8)
        });
        println!("  {label}:");
        println!(
            "    on-demand : gpu cycles {:>9}  fetched words {:>7}",
            base.gpu_cycles,
            base.counters.get("stash.fetch_words")
        );
        println!(
            "    prefetch  : gpu cycles {:>9}  fetched words {:>7}",
            pf.gpu_cycles,
            pf.counters.get("stash.fetch_words")
        );
        println!(
            "    8-word fetch: gpu cycles {:>7}  fetched words {:>7}",
            wide.gpu_cycles,
            wide.counters.get("stash.fetch_words")
        );
    }
    println!("  (prefetch helps dense mappings, wastes transfers on sparse ones —");
    println!("   the same trade-off that separates DMA from the stash in Figure 5)");
}
