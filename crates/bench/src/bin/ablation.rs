//! Ablations of the stash's design choices (DESIGN.md §4) and the
//! paper's §8 future-work extensions.
//!
//! 1. §4.5 data replication on/off (Reuse);
//! 2. word- vs line-granularity transfer (Implicit, stash vs cache);
//! 3. lazy vs eager writebacks (Implicit, stash);
//! 4. word- vs line-granularity *registration* — DeNovo vs a MESI-style
//!    single-writer registry (Pathfinder's adjacent row slices);
//! 5. §8 extensions: AddMap-time prefetch and widened fetch granularity
//!    (On-demand vs Implicit show the trade-off).
//!
//! Every ablation cell is an independent simulation; the whole grid is
//! one pool batch (`--threads N` / `STASH_THREADS`), and each printed
//! block reports the host wall-clock its simulations took.

use std::time::Duration;

use bench::cli;
use bench::pool::{JobPool, JobResult};
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use gpu::report::RunReport;
use workloads::suite;

type Tweak = Box<dyn FnOnce(&mut Machine) + Send>;
type CellError = (String, sim::SimError);
type Job = Box<dyn FnOnce() -> Result<RunReport, CellError> + Send>;

fn cell(name: &'static str, kind: MemConfigKind, tweak: Tweak) -> Job {
    Box::new(move || {
        let context = format!("ablation: {name} on {}", kind.name());
        let Some(w) = suite::by_name(name) else {
            let e = sim::SimError::Config(format!("workload {name:?} is not registered"));
            return Err((context, e));
        };
        let program = (w.build)(kind);
        let mut machine = Machine::new(w.set.system_config(), kind);
        tweak(&mut machine);
        machine.run(&program).map_err(|e| (context, e))
    })
}

fn plain(name: &'static str, kind: MemConfigKind) -> Job {
    cell(name, kind, Box::new(|_| {}))
}

fn host_ms(results: &[&JobResult<RunReport>]) -> f64 {
    results
        .iter()
        .map(|r| r.host_time)
        .sum::<Duration>()
        .as_secs_f64()
        * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pool = JobPool::new(cli::thread_count(&args));
    let start = std::time::Instant::now();

    // The full ablation grid as one batch; indices name the cells below.
    let jobs: Vec<Job> = vec![
        /*  0 */ plain("reuse", MemConfigKind::Stash),
        /*  1 */
        cell(
            "reuse",
            MemConfigKind::Stash,
            Box::new(|m| m.memory_mut().disable_stash_replication()),
        ),
        /*  2 */ plain("implicit", MemConfigKind::Stash),
        /*  3 */ plain("implicit", MemConfigKind::Cache),
        /*  4 */
        cell(
            "reuse",
            MemConfigKind::Stash,
            Box::new(|m| m.memory_mut().set_eager_stash_writebacks(true)),
        ),
        /*  5 */
        cell(
            "implicit",
            MemConfigKind::Stash,
            Box::new(|m| m.memory_mut().set_eager_stash_writebacks(true)),
        ),
        /*  6 */ plain("pathfinder", MemConfigKind::Cache),
        /*  7 */
        cell(
            "pathfinder",
            MemConfigKind::Cache,
            Box::new(|m| m.memory_mut().set_line_grain_registration(true)),
        ),
        /*  8 */
        cell(
            "implicit",
            MemConfigKind::Stash,
            Box::new(|m| m.memory_mut().set_stash_prefetch(true)),
        ),
        /*  9 */
        cell(
            "implicit",
            MemConfigKind::Stash,
            Box::new(|m| m.memory_mut().set_stash_fetch_words(8)),
        ),
        /* 10 */ plain("ondemand", MemConfigKind::Stash),
        /* 11 */
        cell(
            "ondemand",
            MemConfigKind::Stash,
            Box::new(|m| m.memory_mut().set_stash_prefetch(true)),
        ),
        /* 12 */
        cell(
            "ondemand",
            MemConfigKind::Stash,
            Box::new(|m| m.memory_mut().set_stash_fetch_words(8)),
        ),
    ];
    let jobs_len = jobs.len();
    // A failed cell reports its (workload, configuration) context and
    // exits nonzero — a deadlock additionally prints its diagnostic
    // dump (exit 3) — instead of panicking mid-batch.
    let mut results: Vec<JobResult<RunReport>> = Vec::with_capacity(jobs_len);
    for job in pool.run(jobs) {
        match job.value {
            Ok(report) => results.push(JobResult {
                value: report,
                host_time: job.host_time,
            }),
            Err((context, e)) => std::process::exit(cli::sim_failure_status(&context, &e)),
        }
    }
    let r = |i: usize| -> &JobResult<RunReport> { &results[i] };

    println!("Ablation 1 — §4.5 data replication (Reuse, Stash config)");
    let (on, off) = (r(0), r(1));
    println!(
        "  replication ON : cycles {:>9}  energy {:>14} fJ  fetches {:>6}",
        on.value.gpu_cycles,
        on.value.total_energy(),
        on.value.counters.get("stash.fetch_words")
    );
    println!(
        "  replication OFF: cycles {:>9}  energy {:>14} fJ  fetches {:>6}",
        off.value.gpu_cycles,
        off.value.total_energy(),
        off.value.counters.get("stash.fetch_words")
    );
    println!("  (host: {:.1} ms)", host_ms(&[on, off]));

    println!("\nAblation 2 — word- vs line-granularity transfer (Implicit)");
    for (kind, res) in [(MemConfigKind::Stash, r(2)), (MemConfigKind::Cache, r(3))] {
        println!(
            "  {:<10} read-crossings {:>8}  total energy {:>14} fJ",
            kind.name(),
            res.value.traffic.crossings(noc::MsgClass::Read),
            res.value.total_energy()
        );
    }
    println!("  (host: {:.1} ms)", host_ms(&[r(2), r(3)]));

    println!("\nAblation 3 — lazy vs eager stash writebacks");
    for (wl, lazy, eager) in [("reuse", r(0), r(4)), ("implicit", r(2), r(5))] {
        println!("  {wl}:");
        for (label, res) in [("lazy ", lazy), ("eager", eager)] {
            println!(
                "    {label}: wb words {:>6}  forwards {:>6}  gpu cycles {:>9}  energy {:>14} fJ",
                res.value.counters.get("wb.stash_words"),
                res.value.counters.get("remote.forward"),
                res.value.gpu_cycles,
                res.value.total_energy()
            );
        }
    }
    println!("  (host: {:.1} ms)", host_ms(&[r(4), r(5)]));
    println!("  (on Reuse, eager drains also destroy the cross-kernel reuse: the");
    println!("   data must be refetched every kernel — §2's core claim. On Implicit");
    println!("   everything is consumed once, so eager's bulk drain merely trades");
    println!("   against lazy's per-word CPU forwards.)");

    println!("\nAblation 4 — word- vs line-granularity registration (Pathfinder, Cache)");
    let (word, line) = (r(6), r(7));
    println!(
        "  word (DeNovo): false-sharing revocations {:>7}  write-crossings {:>9}",
        word.value
            .counters
            .get("coherence.false_sharing_revocation"),
        word.value.traffic.crossings(noc::MsgClass::Write)
    );
    println!(
        "  line (MESI-ish): false-sharing revocations {:>5}  write-crossings {:>9}",
        line.value
            .counters
            .get("coherence.false_sharing_revocation"),
        line.value.traffic.crossings(noc::MsgClass::Write)
    );
    println!("  (host: {:.1} ms)", host_ms(&[word, line]));

    println!("\nExtension (§8) — AddMap prefetch + widened fetches");
    for (label, base, pf, wide) in [
        ("dense (Implicit)", r(2), r(8), r(9)),
        ("sparse (On-demand)", r(10), r(11), r(12)),
    ] {
        println!("  {label}:");
        println!(
            "    on-demand : gpu cycles {:>9}  fetched words {:>7}",
            base.value.gpu_cycles,
            base.value.counters.get("stash.fetch_words")
        );
        println!(
            "    prefetch  : gpu cycles {:>9}  fetched words {:>7}",
            pf.value.gpu_cycles,
            pf.value.counters.get("stash.fetch_words")
        );
        println!(
            "    8-word fetch: gpu cycles {:>7}  fetched words {:>7}",
            wide.value.gpu_cycles,
            wide.value.counters.get("stash.fetch_words")
        );
    }
    println!(
        "  (host: {:.1} ms)",
        host_ms(&[r(8), r(9), r(10), r(11), r(12)])
    );
    println!("  (prefetch helps dense mappings, wastes transfers on sparse ones —");
    println!("   the same trade-off that separates DMA from the stash in Figure 5)");

    println!(
        "\n[harness] {} ablation cells on {} thread(s) in {:.2?} ({:.1} ms simulating)",
        jobs_len,
        pool.threads(),
        start.elapsed(),
        host_ms(&results.iter().collect::<Vec<_>>())
    );
}
