//! Table 3: per-access energy for the hardware units, plus the §6.1
//! headline ratios.

use energy::model::EnergyModel;
use energy::table3;

fn main() {
    let model = EnergyModel::default();
    println!("Table 3 — per-access energy for various hardware units\n");
    println!(
        "{:<16}{:>14}{:>14}",
        "Hardware Unit", "Hit Energy", "Miss Energy"
    );
    for row in table3::rows(&model) {
        println!("{:<16}{:>14}{:>14}", row.unit, row.hit, row.miss);
    }
    let (scratch_vs_l1, stash_vs_l1_miss) = table3::headline_ratios(&model);
    println!("\n§6.1 ratios:");
    println!("  scratchpad access energy = {scratch_vs_l1}% of L1 hit energy (paper: 29%)");
    println!("  stash miss energy        = {stash_vs_l1_miss}% of L1 miss energy (paper: ~41-44%)");
}
