//! `loadgen` — replay a seeded request mix against a `stashd` daemon
//! and report throughput, latency percentiles, and cache hit rate.
//!
//! ```text
//! cargo run --release -p bench --bin loadgen
//! cargo run --release -p bench --bin loadgen -- --requests 40 --seed 7 --json
//! cargo run --release -p bench --bin loadgen -- --stashd target/release/stashd
//! ```
//!
//! By default the generator spawns a sibling `stashd` child on the
//! stdio transport, sends `--requests` draws from the deterministic
//! template mix (`bench::server::seeded_mix`), and shuts the daemon
//! down. While replaying it checks the caching contract end to end:
//! every repeated request must come back **byte-identical** to the
//! first answer for the same template, and — when the mix repeats at
//! all — at least one response must be served from the cache. Either
//! violation exits 1, so the binary doubles as the daemon's smoke gate.
//!
//! Flags:
//!
//! ```text
//! --requests N    number of requests to replay (default 24)
//! --seed S        mix seed (default 1)
//! --stashd PATH   daemon binary (default: sibling of this binary)
//! --no-cache      pass --no-cache to the daemon (cold baseline)
//! --json          machine-readable summary
//! --threads N     forwarded to the daemon's simulation pool
//! ```

use std::collections::HashMap;
use std::time::Duration;

use bench::cli;
use bench::server::{percentile, seeded_mix, sibling_binary, DaemonClient};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--requests N] [--seed S] [--stashd PATH] [--no-cache] [--json] \
         [--threads N]"
    );
    std::process::exit(2);
}

fn value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            usage();
        }
        let v = args.remove(i + 1);
        args.remove(i);
        return Some(v);
    }
    let prefix = format!("{flag}=");
    if let Some(i) = args.iter().position(|a| a.starts_with(&prefix)) {
        let v = args.remove(i)[prefix.len()..].to_string();
        return Some(v);
    }
    None
}

fn parsed_flag<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str, default: T) -> T {
    match value_flag(args, flag) {
        None => default,
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("{flag} got a malformed value {s:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli::thread_count(&args);
    let json = cli::json_flag(&args);
    let mut args = args;
    cli::strip_common_flags(&mut args);
    let requests: usize = parsed_flag(&mut args, "--requests", 24);
    let seed: u64 = parsed_flag(&mut args, "--seed", 1);
    let stashd = value_flag(&mut args, "--stashd");
    let no_cache = {
        let before = args.len();
        args.retain(|a| a != "--no-cache");
        args.len() != before
    };
    if args.len() > 1 {
        usage();
    }

    let exe = stashd.map_or_else(
        || {
            sibling_binary("stashd").unwrap_or_else(|e| {
                eprintln!("loadgen: cannot locate stashd: {e}");
                std::process::exit(1);
            })
        },
        std::path::PathBuf::from,
    );
    let threads_arg = threads.to_string();
    let mut daemon_args = vec!["--threads", threads_arg.as_str()];
    if no_cache {
        daemon_args.push("--no-cache");
    }
    let mut client = DaemonClient::spawn(&exe, &daemon_args).unwrap_or_else(|e| {
        eprintln!("loadgen: cannot start {}: {e}", exe.display());
        std::process::exit(1);
    });

    let mix = seeded_mix(seed, requests);
    let mut latencies: Vec<Duration> = Vec::new();
    let mut hits = 0usize;
    let mut errors = 0usize;
    let mut mismatches = 0usize;
    let mut first_payload: HashMap<String, String> = HashMap::new();
    let mut repeats = 0usize;
    let started = std::time::Instant::now();
    for template in &mix {
        let resp = client.request(template).unwrap_or_else(|e| {
            eprintln!("loadgen: transport failed on {template}: {e}");
            std::process::exit(1);
        });
        latencies.push(resp.latency);
        if let Some(e) = resp.error {
            eprintln!("loadgen: daemon error on {template}: {e}");
            errors += 1;
            continue;
        }
        if resp.cached {
            hits += 1;
        }
        // The caching contract: a repeated template answers with the
        // exact bytes of its first answer.
        match first_payload.get(template) {
            None => {
                first_payload.insert(template.clone(), resp.payload);
            }
            Some(first) => {
                repeats += 1;
                if *first != resp.payload {
                    eprintln!("loadgen: payload diverged on repeat of {template}");
                    mismatches += 1;
                }
            }
        }
    }
    let wall = started.elapsed();
    client.shutdown().unwrap_or_else(|e| {
        eprintln!("loadgen: daemon shutdown failed: {e}");
        std::process::exit(1);
    });

    #[allow(clippy::cast_precision_loss)]
    let rps = requests as f64 / wall.as_secs_f64().max(1e-9);
    let p50 = percentile(&latencies, 50);
    let p95 = percentile(&latencies, 95);
    #[allow(clippy::cast_precision_loss)]
    let hit_rate = if requests == 0 {
        0.0
    } else {
        hits as f64 / requests as f64
    };

    if json {
        println!(
            "{{\"requests\": {requests}, \"seed\": {seed}, \"wall_ms\": {:.1}, \
             \"requests_per_sec\": {rps:.2}, \"p50_ms\": {:.2}, \"p95_ms\": {:.2}, \
             \"cache_hits\": {hits}, \"cache_hit_rate\": {hit_rate:.3}, \
             \"repeats\": {repeats}, \"payload_mismatches\": {mismatches}, \
             \"errors\": {errors}}}",
            wall.as_secs_f64() * 1e3,
            p50.as_secs_f64() * 1e3,
            p95.as_secs_f64() * 1e3,
        );
    } else {
        println!(
            "loadgen: {requests} requests in {:.1} ms — {rps:.1} req/s, \
             p50 {:.2} ms, p95 {:.2} ms",
            wall.as_secs_f64() * 1e3,
            p50.as_secs_f64() * 1e3,
            p95.as_secs_f64() * 1e3,
        );
        println!(
            "loadgen: {hits}/{requests} served from cache ({:.0}%), {repeats} repeats \
             byte-checked, {mismatches} mismatches, {errors} errors",
            hit_rate * 100.0,
        );
    }

    if errors > 0 || mismatches > 0 {
        std::process::exit(1);
    }
    // With repeats in the mix and caching on, a zero hit rate means the
    // daemon's memoization is broken — fail loudly.
    if !no_cache && repeats > 0 && hits == 0 {
        eprintln!("loadgen: mix repeated {repeats} request(s) but nothing hit the cache");
        std::process::exit(1);
    }
}
