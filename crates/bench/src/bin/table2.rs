//! Table 2: parameters of the simulated heterogeneous system.

use sim::config::SystemConfig;

fn main() {
    let c = SystemConfig::default();
    let micro = SystemConfig::for_microbenchmarks();
    let apps = SystemConfig::for_applications();
    println!("Table 2 — parameters of the simulated heterogeneous system\n");
    println!("CPU Parameters");
    println!("  {:<44}{} GHz", "Frequency", c.cpu_clock.mhz() / 1000);
    println!(
        "  {:<44}{}, {}",
        "Cores (microbenchmarks, apps)", micro.cpu_cores, apps.cpu_cores
    );
    println!("GPU Parameters");
    println!("  {:<44}{} MHz", "Frequency", c.gpu_clock.mhz());
    println!(
        "  {:<44}{}, {}",
        "CUs (microbenchmarks, apps)", micro.gpu_cus, apps.gpu_cus
    );
    println!(
        "  {:<44}{} KB",
        "Scratchpad/Stash Size",
        c.scratchpad_bytes / 1024
    );
    println!(
        "  {:<44}{}",
        "Number of Banks in Stash/Scratchpad", c.local_banks
    );
    println!("Memory Hierarchy Parameters");
    println!(
        "  {:<44}{} entries each",
        "TLB & RTLB (VP-map)", c.vp_map_entries
    );
    println!("  {:<44}{} entries", "Stash-map", c.stash_map_entries);
    println!(
        "  {:<44}{} cycles",
        "Stash address translation", c.stash_translation_cycles
    );
    println!(
        "  {:<44}{} cycle",
        "L1 and Stash hit latency", c.l1_hit_cycles
    );
    let max_hops = 2 * (c.mesh_side as u64 - 1);
    println!(
        "  {:<44}{}-{} cycles",
        "Remote L1 and Stash hit latency",
        c.remote_base_cycles,
        c.remote_base_cycles + 3 * max_hops * c.hop_round_trip_cycles / 2 + max_hops
    );
    println!(
        "  {:<44}{} KB ({} banks, {}-way assoc.)",
        "L1 Size",
        c.l1_bytes / 1024,
        c.l1_banks,
        c.l1_ways
    );
    println!(
        "  {:<44}{} MB ({} banks, NUCA)",
        "L2 Size",
        c.l2_bytes / 1024 / 1024,
        c.l2_banks
    );
    println!(
        "  {:<44}{}-{} cycles",
        "L2 hit latency",
        c.l2_base_cycles,
        c.l2_base_cycles + max_hops * c.hop_round_trip_cycles
    );
    println!(
        "  {:<44}{}-{} cycles",
        "Memory latency",
        c.l2_base_cycles + c.dram_extra_cycles,
        c.l2_base_cycles + c.dram_extra_cycles + max_hops * c.hop_round_trip_cycles
    );
    println!("\n(paper values: L2 29-61, remote 35-83, memory 197-261 cycles)");
}
