//! Chaos harness: fuzz deterministic fault schedules across the Figure 5
//! matrix (or trace files) and enforce the no-silent-corruption contract.
//!
//! ```text
//! cargo run --release -p bench --bin chaos -- --seeds 64
//! cargo run --release -p bench --bin chaos -- examples/histogram.trace --seeds 8
//! cargo run --release -p bench --bin chaos -- --seeds 16 --no-resilience
//! ```
//!
//! Every `(workload, configuration, seed)` run is classified against a
//! fault-free golden replay as **recovered** (bit-identical architectural
//! state), **detected** (watchdog / oracle / parity flag), or a **silent
//! escape**. Escapes are contract violations: the binary prints them and
//! exits 1. `--no-resilience` / `--no-parity` disable the machinery to
//! demonstrate the escape classes it closes; pair them with
//! `--expect-escapes`, which inverts the gate (exit 0 iff at least one
//! escape occurred), so demonstration runs can assert the machinery is
//! load-bearing instead of reporting failure.

use bench::chaos::{run_campaign, CampaignConfig, CellRun, Outcome, Target};
use bench::cli;
use bench::crash::{run_crash_campaign, CrashCampaignConfig, CrashRun};
use gpu::config::MemConfigKind;
use workloads::suite;

fn usage() -> ! {
    eprintln!(
        "usage: chaos [trace files...] [--seeds N] [--no-resilience] [--no-parity]\n             \
         [--expect-escapes] [--crash [--crash-dir DIR]] [flags]\n\
         --seeds N     fault seeds per matrix cell (default 16; seeds are S..S+N\n              \
         with S from --fault-seed, default 1)\n\
         --no-resilience  disable retry/timeout/fallback machinery (demonstrates escapes)\n\
         --no-parity   disable the parity/ECC detection model (demonstrates escapes)\n\
         --expect-escapes  invert the gate: exit 0 iff escapes occurred (for\n              \
         demonstration runs with the machinery disabled)\n\
         --crash       run the kill-and-recover campaign instead of fault injection:\n              \
         each seed kills the run at a seeded barrier (a third of them\n              \
         tearing the snapshot mid-write), restores from the newest valid\n              \
         checkpoint, and classifies against the golden digest\n\
         --crash-dir DIR  scratch directory for the crash campaign's checkpoint\n              \
         stores (default: a per-process directory under the system tmpdir)\n\
         {}\n{}\n{}\n{}",
        cli::FAULT_SEED_USAGE,
        cli::THREADS_USAGE,
        cli::VERIFY_USAGE,
        cli::JSON_USAGE
    );
    std::process::exit(2);
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            usage();
        }
        let v = args.remove(i + 1);
        args.remove(i);
        return Some(v);
    }
    let prefix = format!("{flag}=");
    if let Some(i) = args.iter().position(|a| a.starts_with(&prefix)) {
        let v = args.remove(i)[prefix.len()..].to_string();
        return Some(v);
    }
    None
}

fn print_json(cells: &[CellRun], escapes: usize) {
    println!("{{");
    println!("  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let detail = match &c.outcome {
            Outcome::Detected(d) => format!(", \"detector\": \"{}\"", d.label()),
            Outcome::SilentEscape(why) => {
                format!(", \"leak\": \"{}\"", cli::json_escape(why))
            }
            Outcome::Recovered => String::new(),
        };
        println!(
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"seed\": {}, \
             \"outcome\": \"{}\"{detail}, \"injected\": {}, \"retries\": {}}}{comma}",
            cli::json_escape(&c.workload),
            c.kind.name(),
            c.seed,
            c.outcome.label(),
            c.injected,
            c.retries,
        );
    }
    println!("  ],");
    println!("  \"escapes\": {escapes}");
    println!("}}");
}

fn print_crash_json(cells: &[CrashRun], escapes: usize) {
    println!("{{");
    println!("  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let detail = match &c.outcome {
            Outcome::Detected(d) => format!(", \"detector\": \"{}\"", d.label()),
            Outcome::SilentEscape(why) => {
                format!(", \"leak\": \"{}\"", cli::json_escape(why))
            }
            Outcome::Recovered => String::new(),
        };
        let resumed = c.resumed_from.map_or("null".to_string(), |s| s.to_string());
        println!(
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"seed\": {}, \
             \"barrier\": {}, \"mode\": \"{:?}\", \"outcome\": \"{}\"{detail}, \
             \"checkpoints\": {}, \"resumed_from\": {resumed}, \"rejected\": {}}}{comma}",
            cli::json_escape(&c.workload),
            c.kind.name(),
            c.seed,
            c.barrier,
            c.mode,
            c.outcome.label(),
            c.checkpoints,
            c.rejected,
        );
    }
    println!("  ],");
    println!("  \"escapes\": {escapes}");
    println!("}}");
}

fn run_crash_mode(
    targets: &[Target<'_>],
    kinds: &[MemConfigKind],
    cfg: &CrashCampaignConfig,
    scratch: &std::path::Path,
    json: bool,
) -> ! {
    if !json {
        println!(
            "chaos --crash — {} workload(s) × {} config(s) × {} seed(s), scratch {}",
            targets.len(),
            kinds.len(),
            cfg.seeds.len(),
            scratch.display(),
        );
    }
    let campaign = run_crash_campaign(targets, kinds, cfg, scratch).unwrap_or_else(|e| {
        eprintln!("chaos --crash: {e}");
        std::process::exit(2);
    });
    let _ = std::fs::remove_dir_all(scratch);
    let escapes = campaign.escapes();
    if json {
        print_crash_json(&campaign.cells, escapes.len());
    } else {
        let name_width = targets
            .iter()
            .map(|t| t.name.len())
            .max()
            .unwrap_or(0)
            .max("workload".len())
            + 2;
        println!(
            "{:<name_width$}{:<10}{:>10}{:>11}{:>10}{:>8}{:>10}",
            "workload", "config", "recovered", "detected", "escapes", "ckpts", "rejected"
        );
        for t in targets {
            for &kind in kinds {
                let runs: Vec<&CrashRun> = campaign
                    .cells
                    .iter()
                    .filter(|c| c.workload == t.name && c.kind == kind)
                    .collect();
                let recovered = runs
                    .iter()
                    .filter(|c| c.outcome == Outcome::Recovered)
                    .count();
                let detected = runs
                    .iter()
                    .filter(|c| matches!(c.outcome, Outcome::Detected(_)))
                    .count();
                let ckpts: u64 = runs.iter().map(|c| c.checkpoints).sum();
                let rejected: u64 = runs.iter().map(|c| c.rejected).sum();
                println!(
                    "{:<name_width$}{:<10}{:>10}{:>11}{:>10}{:>8}{:>10}",
                    t.name,
                    kind.name(),
                    recovered,
                    detected,
                    runs.len() - recovered - detected,
                    ckpts,
                    rejected
                );
            }
        }
        println!(
            "\ntotal: {} kill-and-recover runs — {} recovered, {} torn-snapshot detections, \
             {} escape(s); {} torn/corrupt file(s) rejected",
            campaign.cells.len(),
            campaign.recovered(),
            campaign.detected(),
            escapes.len(),
            campaign.total_rejected(),
        );
    }
    for c in &escapes {
        let why = match &c.outcome {
            Outcome::SilentEscape(why) => why.as_str(),
            _ => unreachable!("escapes() only returns silent escapes"),
        };
        eprintln!(
            "ESCAPE: {} on {} seed {} (barrier {}, {:?}): {why}",
            c.workload,
            c.kind.name(),
            c.seed,
            c.barrier,
            c.mode,
        );
    }
    if !escapes.is_empty() {
        eprintln!(
            "\n{} crash-recovery escape(s) — the crash-consistency contract is violated",
            escapes.len()
        );
        std::process::exit(1);
    }
    if !json {
        println!("no crash-recovery escapes — contract holds");
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli::thread_count(&args);
    let verify = cli::verify_flag(&args);
    let json = cli::json_flag(&args);
    let seed_base = cli::fault_seed(&args).unwrap_or(1);
    let mut args = args;
    cli::strip_common_flags(&mut args);
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }

    let seed_count: u64 = match flag_value(&mut args, "--seeds") {
        Some(v) => v.parse().unwrap_or_else(|_| usage()),
        None => 16,
    };
    let resilience = !args.iter().any(|a| a == "--no-resilience");
    let parity = !args.iter().any(|a| a == "--no-parity");
    let expect_escapes = args.iter().any(|a| a == "--expect-escapes");
    let crash = args.iter().any(|a| a == "--crash");
    let crash_dir = flag_value(&mut args, "--crash-dir");
    args.retain(|a| {
        a != "--no-resilience" && a != "--no-parity" && a != "--expect-escapes" && a != "--crash"
    });
    if args.iter().any(|a| a.starts_with("--")) {
        usage();
    }
    if crash && (!resilience || !parity || expect_escapes) {
        eprintln!("--crash is incompatible with --no-resilience/--no-parity/--expect-escapes");
        std::process::exit(2);
    }

    // Targets: the trace files given, or the Figure 5 microbenchmarks.
    let traces: Vec<(String, workloads::trace::TraceWorkload)> = args[1..]
        .iter()
        .map(|p| (p.clone(), cli::load_trace(p)))
        .collect();
    let micros = suite::micros();
    let mut targets: Vec<Target<'_>> = Vec::new();
    let mut kinds: Vec<MemConfigKind> = MemConfigKind::FIGURE5.to_vec();
    let builders: Vec<_> = traces
        .iter()
        .map(|(_, t)| move |kind| t.build(kind))
        .collect();
    if traces.is_empty() {
        for w in &micros {
            targets.push(Target {
                name: w.name.to_string(),
                sys: w.set.system_config(),
                build: &w.build,
            });
        }
    } else {
        kinds = traces[0].1.set().figure_kinds().to_vec();
        for ((path, trace), build) in traces.iter().zip(&builders) {
            targets.push(Target {
                name: path.clone(),
                sys: trace.set().system_config(),
                build,
            });
        }
    }

    if crash {
        let mut cfg =
            CrashCampaignConfig::new((seed_base..seed_base + seed_count).collect(), threads);
        cfg.verify = verify;
        let scratch = crash_dir.map_or_else(
            || std::env::temp_dir().join(format!("stash-chaos-crash-{}", std::process::id())),
            std::path::PathBuf::from,
        );
        run_crash_mode(&targets, &kinds, &cfg, &scratch, json);
    }

    let mut cfg = CampaignConfig::new((seed_base..seed_base + seed_count).collect(), threads);
    cfg.verify = verify;
    cfg.resilience = resilience;
    cfg.parity = parity;

    if !json {
        println!(
            "chaos — {} workload(s) × {} config(s) × {} seed(s), resilience {}, parity {}",
            targets.len(),
            kinds.len(),
            seed_count,
            if resilience { "on" } else { "OFF" },
            if parity { "on" } else { "OFF" },
        );
    }

    let campaign = run_campaign(&targets, &kinds, &cfg).unwrap_or_else(|e| {
        eprintln!("chaos: {e}");
        std::process::exit(2);
    });

    let escapes = campaign.escapes();
    if json {
        print_json(&campaign.cells, escapes.len());
    } else {
        let name_width = targets
            .iter()
            .map(|t| t.name.len())
            .max()
            .unwrap_or(0)
            .max("workload".len())
            + 2;
        println!(
            "{:<name_width$}{:<10}{:>10}{:>11}{:>10}{:>8}",
            "workload", "config", "recovered", "detected", "escapes", "faults"
        );
        for t in &targets {
            for &kind in &kinds {
                let cell_of = |c: &&CellRun| c.workload == t.name && c.kind == kind;
                let runs: Vec<&CellRun> = campaign.cells.iter().filter(|c| cell_of(c)).collect();
                let recovered = runs
                    .iter()
                    .filter(|c| c.outcome == Outcome::Recovered)
                    .count();
                let detected = runs
                    .iter()
                    .filter(|c| matches!(c.outcome, Outcome::Detected(_)))
                    .count();
                let escaped = runs.len() - recovered - detected;
                let injected: u64 = runs.iter().map(|c| c.injected).sum();
                println!(
                    "{:<name_width$}{:<10}{:>10}{:>11}{:>10}{:>8}",
                    t.name,
                    kind.name(),
                    recovered,
                    detected,
                    escaped,
                    injected
                );
            }
        }
        println!(
            "\ntotal: {} runs — {} recovered, {} detected, {} escape(s); \
             {} fault(s) injected, {} retry(ies)",
            campaign.cells.len(),
            campaign.recovered(),
            campaign.detected(),
            escapes.len(),
            campaign.total_injected(),
            campaign.total_retries(),
        );
    }

    for c in &escapes {
        let why = match &c.outcome {
            Outcome::SilentEscape(why) => why.as_str(),
            _ => unreachable!("escapes() only returns silent escapes"),
        };
        eprintln!(
            "ESCAPE: {} on {} seed {}: {why}",
            c.workload,
            c.kind.name(),
            c.seed
        );
    }
    if expect_escapes {
        // Demonstration mode: the run is supposed to show that disabling
        // the machinery leaks corruption, so escapes are the pass state.
        if escapes.is_empty() {
            eprintln!("--expect-escapes: no escapes occurred — nothing was demonstrated");
            std::process::exit(1);
        }
        if !json {
            println!(
                "{} expected escape(s) occurred — the disabled machinery is load-bearing",
                escapes.len()
            );
        }
    } else if !escapes.is_empty() {
        eprintln!(
            "\n{} silent-corruption escape(s) — the no-silent-corruption contract is violated",
            escapes.len()
        );
        std::process::exit(1);
    } else if !json {
        println!("no silent-corruption escapes — contract holds");
    }
}
