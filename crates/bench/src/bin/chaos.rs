//! Chaos harness: fuzz deterministic fault schedules across the Figure 5
//! matrix (or trace files) and enforce the no-silent-corruption contract.
//!
//! ```text
//! cargo run --release -p bench --bin chaos -- --seeds 64
//! cargo run --release -p bench --bin chaos -- examples/histogram.trace --seeds 8
//! cargo run --release -p bench --bin chaos -- --seeds 16 --no-resilience
//! ```
//!
//! Every `(workload, configuration, seed)` run is classified against a
//! fault-free golden replay as **recovered** (bit-identical architectural
//! state), **detected** (watchdog / oracle / parity flag), or a **silent
//! escape**. Escapes are contract violations: the binary prints them and
//! exits 1. `--no-resilience` / `--no-parity` disable the machinery to
//! demonstrate the escape classes it closes; pair them with
//! `--expect-escapes`, which inverts the gate (exit 0 iff at least one
//! escape occurred), so demonstration runs can assert the machinery is
//! load-bearing instead of reporting failure.

use bench::chaos::{run_campaign, CampaignConfig, CellRun, Outcome, Target};
use bench::cli;
use gpu::config::MemConfigKind;
use workloads::suite;

fn usage() -> ! {
    eprintln!(
        "usage: chaos [trace files...] [--seeds N] [--no-resilience] [--no-parity]\n             \
         [--expect-escapes] [flags]\n\
         --seeds N     fault seeds per matrix cell (default 16; seeds are S..S+N\n              \
         with S from --fault-seed, default 1)\n\
         --no-resilience  disable retry/timeout/fallback machinery (demonstrates escapes)\n\
         --no-parity   disable the parity/ECC detection model (demonstrates escapes)\n\
         --expect-escapes  invert the gate: exit 0 iff escapes occurred (for\n              \
         demonstration runs with the machinery disabled)\n\
         {}\n{}\n{}\n{}",
        cli::FAULT_SEED_USAGE,
        cli::THREADS_USAGE,
        cli::VERIFY_USAGE,
        cli::JSON_USAGE
    );
    std::process::exit(2);
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            usage();
        }
        let v = args.remove(i + 1);
        args.remove(i);
        return Some(v);
    }
    let prefix = format!("{flag}=");
    if let Some(i) = args.iter().position(|a| a.starts_with(&prefix)) {
        let v = args.remove(i)[prefix.len()..].to_string();
        return Some(v);
    }
    None
}

fn print_json(cells: &[CellRun], escapes: usize) {
    println!("{{");
    println!("  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let detail = match &c.outcome {
            Outcome::Detected(d) => format!(", \"detector\": \"{}\"", d.label()),
            Outcome::SilentEscape(why) => {
                format!(", \"leak\": \"{}\"", cli::json_escape(why))
            }
            Outcome::Recovered => String::new(),
        };
        println!(
            "    {{\"workload\": \"{}\", \"config\": \"{}\", \"seed\": {}, \
             \"outcome\": \"{}\"{detail}, \"injected\": {}, \"retries\": {}}}{comma}",
            cli::json_escape(&c.workload),
            c.kind.name(),
            c.seed,
            c.outcome.label(),
            c.injected,
            c.retries,
        );
    }
    println!("  ],");
    println!("  \"escapes\": {escapes}");
    println!("}}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli::thread_count(&args);
    let verify = cli::verify_flag(&args);
    let json = cli::json_flag(&args);
    let seed_base = cli::fault_seed(&args).unwrap_or(1);
    let mut args = args;
    cli::strip_common_flags(&mut args);
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }

    let seed_count: u64 = match flag_value(&mut args, "--seeds") {
        Some(v) => v.parse().unwrap_or_else(|_| usage()),
        None => 16,
    };
    let resilience = !args.iter().any(|a| a == "--no-resilience");
    let parity = !args.iter().any(|a| a == "--no-parity");
    let expect_escapes = args.iter().any(|a| a == "--expect-escapes");
    args.retain(|a| a != "--no-resilience" && a != "--no-parity" && a != "--expect-escapes");
    if args.iter().any(|a| a.starts_with("--")) {
        usage();
    }

    // Targets: the trace files given, or the Figure 5 microbenchmarks.
    let traces: Vec<(String, workloads::trace::TraceWorkload)> = args[1..]
        .iter()
        .map(|p| (p.clone(), cli::load_trace(p)))
        .collect();
    let micros = suite::micros();
    let mut targets: Vec<Target<'_>> = Vec::new();
    let mut kinds: Vec<MemConfigKind> = MemConfigKind::FIGURE5.to_vec();
    let builders: Vec<_> = traces
        .iter()
        .map(|(_, t)| move |kind| t.build(kind))
        .collect();
    if traces.is_empty() {
        for w in &micros {
            targets.push(Target {
                name: w.name.to_string(),
                sys: w.set.system_config(),
                build: &w.build,
            });
        }
    } else {
        kinds = traces[0].1.set().figure_kinds().to_vec();
        for ((path, trace), build) in traces.iter().zip(&builders) {
            targets.push(Target {
                name: path.clone(),
                sys: trace.set().system_config(),
                build,
            });
        }
    }

    let mut cfg = CampaignConfig::new((seed_base..seed_base + seed_count).collect(), threads);
    cfg.verify = verify;
    cfg.resilience = resilience;
    cfg.parity = parity;

    if !json {
        println!(
            "chaos — {} workload(s) × {} config(s) × {} seed(s), resilience {}, parity {}",
            targets.len(),
            kinds.len(),
            seed_count,
            if resilience { "on" } else { "OFF" },
            if parity { "on" } else { "OFF" },
        );
    }

    let campaign = run_campaign(&targets, &kinds, &cfg).unwrap_or_else(|e| {
        eprintln!("chaos: {e}");
        std::process::exit(2);
    });

    let escapes = campaign.escapes();
    if json {
        print_json(&campaign.cells, escapes.len());
    } else {
        let name_width = targets
            .iter()
            .map(|t| t.name.len())
            .max()
            .unwrap_or(0)
            .max("workload".len())
            + 2;
        println!(
            "{:<name_width$}{:<10}{:>10}{:>11}{:>10}{:>8}",
            "workload", "config", "recovered", "detected", "escapes", "faults"
        );
        for t in &targets {
            for &kind in &kinds {
                let cell_of = |c: &&CellRun| c.workload == t.name && c.kind == kind;
                let runs: Vec<&CellRun> = campaign.cells.iter().filter(|c| cell_of(c)).collect();
                let recovered = runs
                    .iter()
                    .filter(|c| c.outcome == Outcome::Recovered)
                    .count();
                let detected = runs
                    .iter()
                    .filter(|c| matches!(c.outcome, Outcome::Detected(_)))
                    .count();
                let escaped = runs.len() - recovered - detected;
                let injected: u64 = runs.iter().map(|c| c.injected).sum();
                println!(
                    "{:<name_width$}{:<10}{:>10}{:>11}{:>10}{:>8}",
                    t.name,
                    kind.name(),
                    recovered,
                    detected,
                    escaped,
                    injected
                );
            }
        }
        println!(
            "\ntotal: {} runs — {} recovered, {} detected, {} escape(s); \
             {} fault(s) injected, {} retry(ies)",
            campaign.cells.len(),
            campaign.recovered(),
            campaign.detected(),
            escapes.len(),
            campaign.total_injected(),
            campaign.total_retries(),
        );
    }

    for c in &escapes {
        let why = match &c.outcome {
            Outcome::SilentEscape(why) => why.as_str(),
            _ => unreachable!("escapes() only returns silent escapes"),
        };
        eprintln!(
            "ESCAPE: {} on {} seed {}: {why}",
            c.workload,
            c.kind.name(),
            c.seed
        );
    }
    if expect_escapes {
        // Demonstration mode: the run is supposed to show that disabling
        // the machinery leaks corruption, so escapes are the pass state.
        if escapes.is_empty() {
            eprintln!("--expect-escapes: no escapes occurred — nothing was demonstrated");
            std::process::exit(1);
        }
        if !json {
            println!(
                "{} expected escape(s) occurred — the disabled machinery is load-bearing",
                escapes.len()
            );
        }
    } else if !escapes.is_empty() {
        eprintln!(
            "\n{} silent-corruption escape(s) — the no-silent-corruption contract is violated",
            escapes.len()
        );
        std::process::exit(1);
    } else if !json {
        println!("no silent-corruption escapes — contract holds");
    }
}
