//! Inspect one workload on one configuration: full counter dump, energy
//! component split, traffic classes, and phase timing — the debugging
//! companion to the figure binaries.
//!
//! ```text
//! cargo run --release -p bench --bin inspect -- reuse Stash
//! cargo run --release -p bench --bin inspect -- lud StashG
//! ```

use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use noc::MsgClass;
use workloads::suite;

fn parse_kind(s: &str) -> Option<MemConfigKind> {
    MemConfigKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(s))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (Some(name), Some(kind_s)) = (args.get(1), args.get(2)) else {
        eprintln!("usage: inspect <workload> <config>");
        eprintln!(
            "  workloads: {}",
            suite::all()
                .iter()
                .map(|w| w.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        eprintln!(
            "  configs:   {}",
            MemConfigKind::ALL.map(|k| k.name()).join(", ")
        );
        std::process::exit(2);
    };
    let Some(workload) = suite::by_name(name) else {
        eprintln!("unknown workload {name}");
        std::process::exit(2);
    };
    let Some(kind) = parse_kind(kind_s) else {
        eprintln!("unknown configuration {kind_s}");
        std::process::exit(2);
    };

    // A single simulation is one job; it runs inline (the pool's serial
    // path) but still reports its host cost like the matrix binaries.
    let program = (workload.build)(kind);
    let mut machine = Machine::new(workload.set.system_config(), kind);
    let host = std::time::Instant::now();
    let report = match machine.run(&program) {
        Ok(report) => report,
        Err(e) => {
            // A deadlock prints its in-flight diagnostic dump (exit 3);
            // anything else reports the cell and exits 1.
            let context = format!("inspect: {name} on {}", kind.name());
            std::process::exit(bench::cli::sim_failure_status(&context, &e));
        }
    };
    let host = host.elapsed();

    println!(
        "{} on {} ({:?} machine)\n",
        workload.name, kind, workload.set
    );
    println!("[harness] 1 job in {host:.2?}\n");
    println!("-- timing --");
    println!("  GPU cycles       {:>14}", report.gpu_cycles);
    println!("  CPU cycles       {:>14}", report.cpu_cycles);
    println!("  total time       {:>14} ps", report.total_picos);
    println!("  GPU instructions {:>14}", report.gpu_instructions);

    println!("\n-- energy (fJ) --");
    let total = report.total_energy().max(1);
    for (c, e) in report.energy.iter() {
        println!("  {:<14}{:>16}  ({:>3}%)", c.label(), e, e * 100 / total);
    }
    println!("  {:<14}{:>16}", "total", report.total_energy());

    println!("\n-- network traffic --");
    for class in MsgClass::ALL {
        println!(
            "  {:<11} messages {:>10}  flits {:>10}  crossings {:>11}",
            class.name(),
            report.traffic.messages(class),
            report.traffic.flits(class),
            report.traffic.crossings(class)
        );
    }

    println!("\n-- router hotspots (flits through each mesh node) --");
    let profile = machine.memory().router_flit_profile();
    let max = profile.iter().copied().max().unwrap_or(0).max(1);
    for row in 0..4 {
        print!(" ");
        for col in 0..4 {
            let v = profile[row * 4 + col];
            print!(" {:>10}", v);
        }
        print!("   ");
        for col in 0..4 {
            let bars = (profile[row * 4 + col] * 8 / max) as usize;
            print!(
                " {:<8}",
                "#".repeat(bars.max(usize::from(profile[row * 4 + col] > 0)))
            );
        }
        println!();
    }

    println!("\n-- event counters --");
    print!("{}", report.counters);
}
