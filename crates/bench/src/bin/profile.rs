//! Capture a cycle-attributed trace of one workload and export it.
//!
//! ```text
//! cargo run --release -p bench --bin profile -- \
//!     --workload histogram --config stash --out trace.json --report stalls
//! ```
//!
//! `--workload` takes a suite workload name (`implicit`, `lud`, ...), a
//! `.trace` file path, or a bare name resolved as `examples/<name>.trace`.
//! `--config` accepts a comma-separated list; multiple configurations run
//! concurrently on the job pool (`--threads N` / `STASH_THREADS`) and each
//! job keeps its own trace, so output is deterministic at any thread
//! count. With several configurations, `--out trace.json` writes
//! `trace-<config>.json` per cell.
//!
//! The binary self-validates before exiting: the emitted JSON must pass
//! the Perfetto format checker (parses; timestamps monotone per track)
//! and every CU's stall decomposition must sum exactly to the run's
//! `gpu_cycles`. Any violation exits nonzero, which is what CI's smoke
//! step relies on.

use bench::cli;
use bench::pool::JobPool;
use bench::profile::{self, TracedRun};
use gpu::config::MemConfigKind;
use gpu::program::Program;
use sim::config::SystemConfig;
use sim::trace::DEFAULT_CAPACITY;
use sim::SimError;
use workloads::suite;
use workloads::trace::TraceWorkload;

enum Source {
    Suite(suite::Workload),
    Trace(TraceWorkload),
}

impl Source {
    fn system(&self) -> SystemConfig {
        match self {
            Source::Suite(w) => w.set.system_config(),
            Source::Trace(t) => t.set().system_config(),
        }
    }

    fn program(&self, kind: MemConfigKind) -> Program {
        match self {
            Source::Suite(w) => (w.build)(kind),
            Source::Trace(t) => t.build(kind),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: profile --workload <name|file.trace> [--config C[,C...]] \
         [--out trace.json] [--report stalls|latency|both|none] [--capacity N] [--threads N]\n\
         \n\
         --workload W  suite workload name, .trace file path, or bare name\n              \
         resolved as examples/<W>.trace\n\
         --config C    configurations to trace (default: Stash); comma-separated\n\
         --out PATH    write Chrome/Perfetto trace JSON here (validated on write);\n              \
         with several configs, PATH gains a -<config> suffix per cell\n\
         --report R    text report(s) on stdout: stalls (default), latency, both, none\n\
         --capacity N  event ring capacity (default: {DEFAULT_CAPACITY})\n\
         {}",
        cli::THREADS_USAGE
    );
    std::process::exit(2);
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            eprintln!("{flag} needs a value");
            usage();
        }
        let v = args.remove(i + 1);
        args.remove(i);
        return Some(v);
    }
    let prefix = format!("{flag}=");
    if let Some(i) = args.iter().position(|a| a.starts_with(&prefix)) {
        let v = args.remove(i)[prefix.len()..].to_string();
        return Some(v);
    }
    None
}

fn resolve_workload(name: &str) -> (String, Source) {
    if let Some(w) = suite::by_name(name) {
        return (name.to_string(), Source::Suite(w));
    }
    let path = if std::path::Path::new(name).exists() {
        name.to_string()
    } else {
        format!("examples/{name}.trace")
    };
    let trace = cli::load_trace(&path);
    (path, Source::Trace(trace))
}

fn out_path(base: &str, kind: MemConfigKind, multi: bool) -> String {
    if !multi {
        return base.to_string();
    }
    let suffix = kind.name().to_ascii_lowercase();
    match base.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}-{suffix}.{ext}"),
        None => format!("{base}-{suffix}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli::thread_count(&args);
    let mut args = args;
    cli::strip_common_flags(&mut args);

    let Some(workload_arg) = flag_value(&mut args, "--workload") else {
        usage();
    };
    let configs = flag_value(&mut args, "--config").unwrap_or_else(|| "Stash".to_string());
    let out = flag_value(&mut args, "--out");
    let report = flag_value(&mut args, "--report").unwrap_or_else(|| "stalls".to_string());
    if !matches!(report.as_str(), "stalls" | "latency" | "both" | "none") {
        eprintln!("--report must be stalls, latency, both or none, got {report:?}");
        usage();
    }
    let capacity = match flag_value(&mut args, "--capacity") {
        None => DEFAULT_CAPACITY,
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--capacity must be a positive integer, got {s:?}");
                usage();
            }
        },
    };
    if args.len() > 1 {
        eprintln!("unexpected argument {:?}", args[1]);
        usage();
    }

    let kinds: Vec<MemConfigKind> = configs.split(',').map(cli::config_by_name).collect();
    let (name, source) = resolve_workload(&workload_arg);

    // One job per configuration; each job owns its sink, so traces never
    // interleave and the pool's input-order collection keeps the output
    // deterministic at any thread count.
    let pool = JobPool::new(threads);
    let source = &source;
    let name = &name;
    let jobs: Vec<_> = kinds
        .iter()
        .map(|&kind| {
            move || -> Result<TracedRun, SimError> {
                profile::run_traced(name, source.system(), &source.program(kind), kind, capacity)
            }
        })
        .collect();
    let results = pool.run(jobs);

    let multi = kinds.len() > 1;
    let mut status = 0;
    for (kind, result) in kinds.iter().zip(results) {
        let run = match result.value {
            Ok(run) => run,
            Err(e) => {
                let context = format!("profile: {name} on {}", kind.name());
                status = status.max(cli::sim_failure_status(&context, &e));
                continue;
            }
        };
        if let Err(e) = profile::decomposition_exact(&run) {
            eprintln!("profile: stall decomposition is not exact: {e}");
            status = status.max(1);
        }
        if matches!(report.as_str(), "stalls" | "both") {
            print!("{}", profile::stall_report(&run));
        }
        if matches!(report.as_str(), "latency" | "both") {
            print!("{}", profile::latency_report(&run));
        }
        let json = profile::perfetto_json(&run);
        match profile::validate_perfetto(&json) {
            Ok(stats) => {
                println!(
                    "profile: {name} / {} — {} events on {} tracks, gpu_cycles {}{}",
                    kind.name(),
                    stats.events,
                    stats.tracks,
                    run.report.gpu_cycles,
                    if run.dropped > 0 {
                        format!(" ({} dropped by the ring)", run.dropped)
                    } else {
                        String::new()
                    },
                );
            }
            Err(e) => {
                eprintln!("profile: emitted trace failed validation: {e}");
                status = status.max(1);
            }
        }
        if let Some(base) = &out {
            let path = out_path(base, *kind, multi);
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("profile: cannot write {path}: {e}");
                status = status.max(1);
            } else {
                println!("profile: wrote {path}");
            }
        }
    }
    if status != 0 {
        std::process::exit(status);
    }
}
