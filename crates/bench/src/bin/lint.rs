//! Static DRF linting of workload programs (see `verify::lint`).
//!
//! ```text
//! cargo run --release -p bench --bin lint                  # built-in suite
//! cargo run --release -p bench --bin lint -- my.trace      # plus a trace file
//! ```
//!
//! DeNovo guarantees sequential consistency only for data-race-free
//! programs, so every shipped workload must lint clean: the binary walks
//! all eleven suite workloads under every memory configuration and flags
//! cross-thread-block races, cross-core CPU races, CPU stale reads
//! across GPU kernels, and out-of-bounds stash-map / index expressions.
//! Trace files given as arguments are linted the same way, with
//! diagnostics naming their arrays.
//!
//! Exits 1 if any diagnostic is produced (including on a trace file —
//! the linter is a gate, not a report).

use gpu::config::MemConfigKind;
use verify::{lint_program, symbols_for_trace, Symbols};
use workloads::suite;
use workloads::trace::parse_trace;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut total = 0usize;

    println!(
        "=== linting built-in suite ({} workloads) ===",
        suite::all().len()
    );
    let empty = Symbols::new();
    for workload in suite::all() {
        for kind in MemConfigKind::ALL {
            let program = (workload.build)(kind);
            let diags = lint_program(&program, &empty);
            for d in &diags {
                println!("{}/{}: {d}", workload.name, kind.name());
            }
            total += diags.len();
        }
    }
    if total == 0 {
        println!("suite is clean");
    }

    for path in &args[1..] {
        println!("\n=== linting {path} ===");
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let trace = parse_trace(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        });
        let symbols = symbols_for_trace(&trace);
        let mut file_diags = 0usize;
        for kind in MemConfigKind::ALL {
            let program = trace.try_build(kind).unwrap_or_else(|e| {
                eprintln!("{path} on {kind}: {e}");
                std::process::exit(2);
            });
            let diags = lint_program(&program, &symbols);
            for d in &diags {
                println!("{}: {d}", kind.name());
            }
            file_diags += diags.len();
        }
        if file_diags == 0 {
            println!("{path} is clean");
        }
        total += file_diags;
    }

    if total > 0 {
        eprintln!(
            "\n{total} diagnostic{} — lint FAILED",
            if total == 1 { "" } else { "s" }
        );
        std::process::exit(1);
    }
}
