//! Static analysis gate: DRF linting plus the `verify::dataflow`
//! bounds and race passes over workload programs.
//!
//! ```text
//! cargo run --release -p bench --bin lint                    # built-in suite
//! cargo run --release -p bench --bin lint -- my.trace        # plus a trace file
//! cargo run --release -p bench --bin lint -- --json          # SARIF-style JSON
//! cargo run --release -p bench --bin lint -- --extras        # + diagnostic workloads
//! cargo run --release -p bench --bin lint -- --deny-unknown  # warnings are fatal
//! cargo run --release -p bench --bin lint -- --json --baseline ci/lint-baseline.json
//! ```
//!
//! Every program is walked by three passes reporting through the
//! unified `verify::Diagnostic` type with stable `SR0xx` rule codes:
//! the syntactic DRF linter (`verify::lint`), the three-valued bounds
//! pass (`verify::dataflow::oob`), and the footprint race pass
//! (`verify::dataflow::drf`).
//!
//! **Exit policy** (severity-driven): any *error*-level finding —
//! proven races, proven out-of-bounds, the syntactic lint rules —
//! exits 1. *Warning*-level findings (data-dependent unknowns:
//! neither provable nor refutable) exit 0 unless `--deny-unknown`.
//! Build failures exit 2.
//!
//! With `--json` the findings print as a SARIF-style document
//! (`version`/`runs`/`tool.driver.rules`/`results`), one result per
//! line, deterministically ordered. `--baseline PATH` suppresses (for
//! gating, not printing) any result whose line already appears in the
//! given SARIF file — CI commits a baseline of the suite's accepted
//! data-dependent warnings and fails on anything new.
//! `--update-baseline` regenerates that file in place (at `--baseline`'s
//! path, `ci/lint-baseline.json` by default) from the current findings,
//! so accepting an intentional analysis change is one command instead
//! of a hand-edit.

use bench::cli;
use gpu::config::MemConfigKind;
use verify::dataflow::{self, BoundsSummary};
use verify::{lint_program, symbols_for_trace, Diagnostic, Rule, Severity, Symbols};
use workloads::suite;

struct Finding {
    source: String,
    config: MemConfigKind,
    diagnostic: Diagnostic,
}

impl Finding {
    /// The SARIF result line; also the unit of baseline comparison.
    fn sarif_line(&self) -> String {
        format!(
            "    {{\"ruleId\": \"{}\", \"level\": \"{}\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"logicalLocations\": [{{\"name\": \"{}/{}\"}}]}}]}}",
            self.diagnostic.rule.code(),
            self.diagnostic.severity().name(),
            cli::json_escape(&self.diagnostic.message),
            cli::json_escape(&self.source),
            self.config.name(),
        )
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let found = args.iter().any(|a| a == flag);
    args.retain(|a| a != flag);
    found
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        }
        let v = args[i + 1].clone();
        args.drain(i..=i + 1);
        return Some(v);
    }
    let prefix = format!("{flag}=");
    let v = args
        .iter()
        .find(|a| a.starts_with(&prefix))
        .map(|a| a[prefix.len()..].to_string());
    args.retain(|a| !a.starts_with(&prefix));
    v
}

fn analyze_program(
    program: &gpu::program::Program,
    symbols: &Symbols,
    source: &str,
    kind: MemConfigKind,
    findings: &mut Vec<Finding>,
    bounds: &mut BoundsSummary,
) {
    let mut diags = lint_program(program, symbols);
    let (flow, summary) = dataflow::dataflow_diagnostics(program, symbols);
    diags.extend(flow);
    bounds.proven_safe += summary.proven_safe;
    bounds.proven_oob += summary.proven_oob;
    bounds.unknown += summary.unknown;
    findings.extend(diags.into_iter().map(|diagnostic| Finding {
        source: source.to_string(),
        config: kind,
        diagnostic,
    }));
}

/// The full SARIF-style document: what `--json` prints and what
/// `--update-baseline` writes.
fn sarif_document(findings: &[Finding]) -> String {
    use std::fmt::Write;
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("\"version\": \"2.1.0\",\n");
    doc.push_str("\"runs\": [ {\n");
    doc.push_str("  \"tool\": {\"driver\": {\"name\": \"stash-lint\", \"rules\": [\n");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        let comma = if i + 1 < Rule::ALL.len() { "," } else { "" };
        writeln!(
            doc,
            "    {{\"id\": \"{}\", \"name\": \"{}\", \"defaultConfiguration\": \
             {{\"level\": \"{}\"}}}}{comma}",
            rule.code(),
            rule.name(),
            rule.severity().name(),
        )
        .expect("write to String");
    }
    doc.push_str("  ]}},\n");
    doc.push_str("  \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        writeln!(doc, "{}{comma}", f.sarif_line()).expect("write to String");
    }
    doc.push_str("  ]\n");
    doc.push_str("} ]\n");
    doc.push_str("}\n");
    doc
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let json = cli::json_flag(&args);
    let extras = take_flag(&mut args, "--extras");
    let deny_unknown = take_flag(&mut args, "--deny-unknown");
    let update_baseline = take_flag(&mut args, "--update-baseline");
    let baseline_path = take_value(&mut args, "--baseline");
    cli::strip_common_flags(&mut args);

    let baseline: std::collections::HashSet<String> = baseline_path
        .as_deref()
        .filter(|_| !update_baseline)
        .map(|path| {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read baseline {path}: {e}");
                std::process::exit(2);
            });
            text.lines()
                .filter(|l| l.trim_start().starts_with("{\"ruleId\""))
                .map(|l| l.trim().trim_end_matches(',').to_string())
                .collect()
        })
        .unwrap_or_default();

    let mut findings: Vec<Finding> = Vec::new();
    let mut bounds = BoundsSummary::default();

    let mut workloads = suite::all();
    if extras {
        workloads.extend(suite::extras());
    }
    if !json {
        println!(
            "=== linting built-in suite ({} workloads) ===",
            workloads.len()
        );
    }
    let empty = Symbols::new();
    for workload in &workloads {
        for kind in MemConfigKind::ALL {
            let program = (workload.build)(kind);
            analyze_program(
                &program,
                &empty,
                workload.name,
                kind,
                &mut findings,
                &mut bounds,
            );
        }
    }

    for path in &args[1..] {
        let trace = cli::load_trace(path);
        let symbols = symbols_for_trace(&trace);
        for kind in MemConfigKind::ALL {
            let program = trace.try_build(kind).unwrap_or_else(|e| {
                eprintln!("{path} on {kind}: {e}");
                std::process::exit(2);
            });
            analyze_program(&program, &symbols, path, kind, &mut findings, &mut bounds);
        }
    }

    // Gate on findings not excused by the baseline.
    let fresh: Vec<&Finding> = findings
        .iter()
        .filter(|f| !baseline.contains(f.sarif_line().trim_start()))
        .collect();
    let errors = fresh
        .iter()
        .filter(|f| f.diagnostic.severity() == Severity::Error)
        .count();
    let warnings = fresh
        .iter()
        .filter(|f| f.diagnostic.severity() == Severity::Warning)
        .count();

    if update_baseline {
        let path = baseline_path.as_deref().unwrap_or("ci/lint-baseline.json");
        std::fs::write(path, sarif_document(&findings)).unwrap_or_else(|e| {
            eprintln!("cannot write baseline {path}: {e}");
            std::process::exit(2);
        });
        println!(
            "baseline {path} updated: {} finding{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
        return;
    }

    if json {
        print!("{}", sarif_document(&findings));
    } else {
        for f in &findings {
            let excused = baseline.contains(f.sarif_line().trim_start());
            println!(
                "{}/{}: {} {}{}: {f}",
                f.source,
                f.config.name(),
                f.diagnostic.rule.code(),
                f.diagnostic.severity().name(),
                if excused { " (baseline)" } else { "" },
                f = f.diagnostic,
            );
        }
        println!(
            "bounds checks: {} proven safe, {} proven OOB, {} data-dependent",
            bounds.proven_safe, bounds.proven_oob, bounds.unknown
        );
        if findings.is_empty() {
            println!("all programs are clean");
        }
    }

    if errors > 0 || (deny_unknown && warnings > 0) {
        eprintln!(
            "\n{errors} error{} and {warnings} warning{} above baseline — lint FAILED{}",
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
            if deny_unknown && errors == 0 {
                " (--deny-unknown)"
            } else {
                ""
            },
        );
        std::process::exit(1);
    }
}
