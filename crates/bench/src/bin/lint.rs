//! Static DRF linting of workload programs (see `verify::lint`).
//!
//! ```text
//! cargo run --release -p bench --bin lint                  # built-in suite
//! cargo run --release -p bench --bin lint -- my.trace      # plus a trace file
//! cargo run --release -p bench --bin lint -- --json        # machine-readable
//! ```
//!
//! DeNovo guarantees sequential consistency only for data-race-free
//! programs, so every shipped workload must lint clean: the binary walks
//! all eleven suite workloads under every memory configuration and flags
//! cross-thread-block races, cross-core CPU races, CPU stale reads
//! across GPU kernels, and out-of-bounds stash-map / index expressions.
//! Trace files given as arguments are linted the same way, with
//! diagnostics naming their arrays.
//!
//! With `--json` the same diagnostics print as one JSON object
//! (`{"diagnostics": [{source, config, rule, message}...], "total": N}`).
//!
//! Exits 1 if any diagnostic is produced (including on a trace file —
//! the linter is a gate, not a report).

use bench::cli;
use gpu::config::MemConfigKind;
use verify::{lint_program, symbols_for_trace, Diagnostic, Symbols};
use workloads::suite;

struct Finding {
    source: String,
    config: MemConfigKind,
    diagnostic: Diagnostic,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = cli::json_flag(&args);
    let mut args = args;
    cli::strip_common_flags(&mut args);

    let mut findings: Vec<Finding> = Vec::new();

    if !json {
        println!(
            "=== linting built-in suite ({} workloads) ===",
            suite::all().len()
        );
    }
    let empty = Symbols::new();
    let mut suite_diags = 0usize;
    for workload in suite::all() {
        for kind in MemConfigKind::ALL {
            let program = (workload.build)(kind);
            for d in lint_program(&program, &empty) {
                if !json {
                    println!("{}/{}: {d}", workload.name, kind.name());
                }
                suite_diags += 1;
                findings.push(Finding {
                    source: workload.name.to_string(),
                    config: kind,
                    diagnostic: d,
                });
            }
        }
    }
    if !json && suite_diags == 0 {
        println!("suite is clean");
    }

    for path in &args[1..] {
        if !json {
            println!("\n=== linting {path} ===");
        }
        let trace = cli::load_trace(path);
        let symbols = symbols_for_trace(&trace);
        let mut file_diags = 0usize;
        for kind in MemConfigKind::ALL {
            let program = trace.try_build(kind).unwrap_or_else(|e| {
                eprintln!("{path} on {kind}: {e}");
                std::process::exit(2);
            });
            for d in lint_program(&program, &symbols) {
                if !json {
                    println!("{}: {d}", kind.name());
                }
                file_diags += 1;
                findings.push(Finding {
                    source: path.clone(),
                    config: kind,
                    diagnostic: d,
                });
            }
        }
        if !json && file_diags == 0 {
            println!("{path} is clean");
        }
    }

    let total = findings.len();
    if json {
        println!("{{");
        println!("  \"diagnostics\": [");
        for (i, f) in findings.iter().enumerate() {
            let comma = if i + 1 < total { "," } else { "" };
            println!(
                "    {{\"source\": \"{}\", \"config\": \"{}\", \"rule\": \"{}\", \"message\": \"{}\"}}{comma}",
                cli::json_escape(&f.source),
                f.config.name(),
                f.diagnostic.rule.name(),
                cli::json_escape(&f.diagnostic.message),
            );
        }
        println!("  ],");
        println!("  \"total\": {total}");
        println!("}}");
    }

    if total > 0 {
        eprintln!(
            "\n{total} diagnostic{} — lint FAILED",
            if total == 1 { "" } else { "s" }
        );
        std::process::exit(1);
    }
}
