//! `stashd` — the resident simulation daemon.
//!
//! ```text
//! cargo run --release -p bench --bin stashd                      # stdio transport
//! cargo run --release -p bench --bin stashd -- --socket /tmp/s   # unix socket
//! cargo run --release -p bench --bin stashd -- --cache-dir .stash-cache
//! ```
//!
//! Speaks the line-delimited JSON protocol of `bench::server` (grammar
//! in `DESIGN.md` §16): one request object per line in, `hello` /
//! `progress` / `result` / `error` / `stats` / `bye` events out. The
//! daemon keeps lowered program IRs resident and memoizes results in a
//! content-addressed cache, so repeated requests are answered without
//! re-simulating. Requests queued while a batch runs are picked up
//! together and share the simulation job pool.
//!
//! A malformed or failing request produces an `error` event; the
//! process only exits on `shutdown`, end-of-input, or `--once`.
//!
//! Flags:
//!
//! ```text
//! --socket PATH   serve a Unix-domain socket instead of stdio
//! --cache-dir D   persist the result cache under D (default: memory only)
//! --cache-max N   bound the disk cache to N entries (default 512)
//! --no-cache      disable the result cache entirely
//! --once          answer a single request, then exit (cold-run baseline)
//! --threads N     simulation pool width (also STASH_THREADS)
//! ```

use std::io::{BufRead, BufReader, Write};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use bench::cli;
use bench::json;
use bench::server::{parse_request, Request, ResultCache, Server, CODE_VERSION};

fn usage() -> ! {
    eprintln!(
        "usage: stashd [--socket PATH] [--cache-dir DIR] [--cache-max N] [--no-cache] \
         [--once] [--threads N]"
    );
    std::process::exit(2);
}

/// A flag taking a value, in `--flag V` or `--flag=V` spelling.
fn value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            usage();
        }
        let v = args.remove(i + 1);
        args.remove(i);
        return Some(v);
    }
    let prefix = format!("{flag}=");
    if let Some(i) = args.iter().position(|a| a.starts_with(&prefix)) {
        let v = args.remove(i)[prefix.len()..].to_string();
        return Some(v);
    }
    None
}

fn bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

fn hello_line() -> String {
    format!(
        "{{\"event\":\"hello\",\"code_version\":\"{}\",\"protocol\":1}}",
        cli::json_escape(CODE_VERSION),
    )
}

/// What one input line asks for, beyond compute requests.
enum Parsed {
    Compute(u64, Request),
    Stats,
    Shutdown,
    Bad(u64, String),
}

fn parse_line(line: &str) -> Parsed {
    let v = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return Parsed::Bad(0, format!("request is not valid JSON: {e}")),
    };
    let id = v.get_u64("id").unwrap_or(0);
    match v.get_str("cmd") {
        Some("stats") => Parsed::Stats,
        Some("shutdown") => Parsed::Shutdown,
        _ => match parse_request(&v) {
            Ok(req) => Parsed::Compute(id, req),
            Err(e) => Parsed::Bad(id, e),
        },
    }
}

/// Serves one connection's line stream until EOF or `shutdown`.
/// Returns true when a `shutdown` command was seen.
fn serve_lines(
    server: &Mutex<Server>,
    lines: &mpsc::Receiver<String>,
    out: &mut dyn Write,
    once: bool,
) -> bool {
    let mut emit = |line: &str| {
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    };
    loop {
        // Block on the first request, then drain whatever queued up
        // behind it: the whole group becomes one pooled batch.
        let Ok(first) = lines.recv() else {
            return false;
        };
        let mut raw = vec![first];
        if !once {
            while let Ok(next) = lines.try_recv() {
                raw.push(next);
            }
        }
        let mut batch: Vec<(u64, Request)> = Vec::new();
        for line in &raw {
            if line.trim().is_empty() {
                continue;
            }
            match parse_line(line) {
                Parsed::Compute(id, req) => batch.push((id, req)),
                Parsed::Stats => {
                    let line = server.lock().expect("server lock").stats_event();
                    emit(&line);
                }
                Parsed::Shutdown => {
                    if !batch.is_empty() {
                        server
                            .lock()
                            .expect("server lock")
                            .handle_batch(&batch, &mut emit);
                    }
                    emit("{\"event\":\"bye\"}");
                    return true;
                }
                Parsed::Bad(id, e) => emit(&format!(
                    "{{\"event\":\"error\",\"id\":{id},\"cmd\":\"?\",\"error\":\"{}\"}}",
                    cli::json_escape(&e),
                )),
            }
        }
        if !batch.is_empty() {
            server
                .lock()
                .expect("server lock")
                .handle_batch(&batch, &mut emit);
        }
        if once {
            return false;
        }
    }
}

/// Pumps a reader's lines into a channel from a dedicated thread, so
/// the serving loop can batch what queues up between turns.
fn line_pump<R: std::io::Read + Send + 'static>(reader: R) -> mpsc::Receiver<String> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(reader).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    rx
}

fn serve_stdio(server: &Mutex<Server>, once: bool) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{}", hello_line());
    let _ = out.flush();
    let lines = line_pump(std::io::stdin());
    serve_lines(server, &lines, &mut out, once);
}

fn serve_socket(server: &Arc<Mutex<Server>>, path: &str, once: bool) {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path).unwrap_or_else(|e| {
        eprintln!("stashd: cannot bind {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("stashd: listening on {path}");
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        let server = Arc::clone(server);
        let socket_path = path.to_string();
        std::thread::spawn(move || {
            let Ok(reader) = stream.try_clone() else {
                return;
            };
            let mut writer = stream;
            let _ = writeln!(writer, "{}", hello_line());
            let lines = line_pump(reader);
            if serve_lines(&server, &lines, &mut writer, once) {
                // A shutdown command stops the whole daemon, not just
                // this connection; the accept loop above is blocked, so
                // exit from here after removing the socket file.
                let _ = std::fs::remove_file(&socket_path);
                std::process::exit(0);
            }
        });
    }
    let _ = std::fs::remove_file(path);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = cli::thread_count(&args);
    let mut args = args;
    cli::strip_common_flags(&mut args);
    let socket = value_flag(&mut args, "--socket");
    let cache_dir = value_flag(&mut args, "--cache-dir");
    let cache_max = value_flag(&mut args, "--cache-max")
        .map(|s| {
            s.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("--cache-max must be an unsigned integer, got {s:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(bench::server::DEFAULT_CACHE_MAX);
    let no_cache = bool_flag(&mut args, "--no-cache");
    let once = bool_flag(&mut args, "--once");
    if args.len() > 1 {
        usage();
    }

    let cache = if no_cache {
        ResultCache::disabled()
    } else if let Some(dir) = cache_dir {
        ResultCache::on_disk(std::path::Path::new(&dir), cache_max).unwrap_or_else(|e| {
            eprintln!("stashd: cannot open cache dir {dir}: {e}");
            std::process::exit(1);
        })
    } else {
        ResultCache::in_memory()
    };

    let server = Arc::new(Mutex::new(Server::new(threads, cache)));
    match socket {
        Some(path) => serve_socket(&server, &path, once),
        None => serve_stdio(&server, once),
    }
}
