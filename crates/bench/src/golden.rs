//! Shared golden-replay plumbing.
//!
//! Both chaos campaigns — fault injection ([`crate::chaos`]) and
//! kill-and-recover ([`crate::crash`]) — classify runs against the same
//! reference: the architectural-state digest of a fault-free,
//! uninterrupted run of the cell. This module is the single place that
//! digest is computed, so the two campaigns can never drift apart on
//! what "golden" means.

use crate::chaos::Target;
use crate::pool::JobPool;
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use sim::SimError;

/// Runs one fault-free golden replay and returns its
/// architectural-state digest.
///
/// # Errors
///
/// Returns a message if the run fails — a watchdog trip or simulation
/// error without injection means the matrix itself is unhealthy and no
/// classification against it is meaningful.
pub fn golden_digest(
    target: &Target<'_>,
    kind: MemConfigKind,
    verify: bool,
) -> Result<u64, String> {
    let mut machine = Machine::new(target.sys.clone(), kind);
    machine.memory_mut().set_verify(verify);
    match machine.run(&(target.build)(kind)) {
        Ok(_) => Ok(machine.memory().state_digest()),
        Err(SimError::Deadlock { site, attempts, .. }) => Err(format!(
            "watchdog tripped at {site} after {attempts} attempts without injection"
        )),
        Err(e) => Err(e.to_string()),
    }
}

/// Golden digests for a whole `(target, kind)` matrix, fanned out on
/// `pool`, returned in row-major `(target, kind)` order.
///
/// # Errors
///
/// Returns a contextualized message if any golden run fails or panics.
pub fn golden_digests(
    pool: &JobPool,
    targets: &[Target<'_>],
    kinds: &[MemConfigKind],
    verify: bool,
) -> Result<Vec<u64>, String> {
    let jobs: Vec<_> = targets
        .iter()
        .flat_map(|t| kinds.iter().map(move |&kind| (t, kind)))
        .map(|(t, kind)| move || golden_digest(t, kind, verify))
        .collect();
    let mut golden = Vec::with_capacity(jobs.len());
    for (i, result) in pool.run_catching(jobs).into_iter().enumerate() {
        let t = &targets[i / kinds.len()];
        let kind = kinds[i % kinds.len()];
        let context = format!("golden run of {} on {}", t.name, kind.name());
        match result {
            Ok(r) => match r.value {
                Ok(digest) => golden.push(digest),
                Err(msg) => return Err(format!("{context}: {msg}")),
            },
            Err(p) => return Err(format!("{context}: {p}")),
        }
    }
    Ok(golden)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::suite;

    #[test]
    fn golden_digest_is_deterministic() {
        let w = suite::micros()[0];
        let t = Target {
            name: w.name.to_string(),
            sys: w.set.system_config(),
            build: &w.build,
        };
        let a = golden_digest(&t, MemConfigKind::Stash, false).unwrap();
        let b = golden_digest(&t, MemConfigKind::Stash, false).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matrix_digests_match_single_runs() {
        let w = suite::micros()[1];
        let t = Target {
            name: w.name.to_string(),
            sys: w.set.system_config(),
            build: &w.build,
        };
        let kinds = [MemConfigKind::Scratch, MemConfigKind::Stash];
        let pool = JobPool::new(2);
        let matrix = golden_digests(&pool, std::slice::from_ref(&t), &kinds, false).unwrap();
        assert_eq!(matrix.len(), 2);
        for (i, &kind) in kinds.iter().enumerate() {
            assert_eq!(matrix[i], golden_digest(&t, kind, false).unwrap());
        }
    }
}
