//! Trace capture and export: Chrome/Perfetto JSON, stall-attribution
//! summaries, and per-event latency histograms.
//!
//! [`run_traced`] runs one matrix cell with a [`sim::trace::TraceSink`]
//! installed and
//! returns the retained events plus the per-CU [`StallBreakdown`];
//! [`perfetto_json`] renders the events as a `trace.json` the Chrome
//! tracing UI / Perfetto accept (one track per CU, warp slot, LLC bank,
//! and NoC link); [`validate_perfetto`] is the hand-rolled format checker
//! CI runs against emitted traces (parses, and timestamps are monotone
//! per track). All of it is deterministic: the same `(workload, config)`
//! cell exports byte-identical JSON on any thread count.

use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use gpu::program::Program;
use gpu::report::RunReport;
use sim::config::SystemConfig;
use sim::trace::{StallBreakdown, StallReason, TraceEvent, DEFAULT_CAPACITY};
use sim::SimError;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use workloads::suite::Workload;

/// One traced matrix cell: the ordinary report plus the trace artifacts.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// Workload name (suite name or trace-file path).
    pub name: String,
    /// Configuration the cell ran on.
    pub kind: MemConfigKind,
    /// The ordinary run report (identical to an untraced run's).
    pub report: RunReport,
    /// Architectural state digest at end of run.
    pub digest: u64,
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow.
    pub dropped: u64,
    /// Per-CU stall attribution; each CU's total equals `gpu_cycles`.
    pub breakdowns: Vec<StallBreakdown>,
    /// GPU CU count (track naming).
    pub gpu_cus: usize,
    /// Mesh node count (NoC link track ids).
    pub nodes: usize,
}

/// Runs `program` on a fresh machine with tracing enabled.
///
/// # Errors
///
/// Propagates the simulation's error, exactly as an untraced run would.
pub fn run_traced(
    name: &str,
    sys: SystemConfig,
    program: &Program,
    kind: MemConfigKind,
    capacity: usize,
) -> Result<TracedRun, SimError> {
    let gpu_cus = sys.gpu_cus;
    let nodes = sys.mesh_nodes();
    let mut machine = Machine::new(sys, kind);
    machine.memory_mut().enable_trace(capacity);
    let report = machine.run(program)?;
    let digest = machine.memory().state_digest();
    let sink = machine
        .memory_mut()
        .take_trace()
        .expect("trace was enabled");
    Ok(TracedRun {
        name: name.to_string(),
        kind,
        report,
        digest,
        events: sink.events(),
        dropped: sink.dropped(),
        breakdowns: sink.breakdowns().to_vec(),
        gpu_cus,
        nodes,
    })
}

/// [`run_traced`] for a suite workload with the default ring capacity.
///
/// # Errors
///
/// Propagates the simulation's error.
pub fn run_traced_workload(
    workload: &Workload,
    kind: MemConfigKind,
) -> Result<TracedRun, SimError> {
    let program = (workload.build)(kind);
    run_traced(
        workload.name,
        workload.set.system_config(),
        &program,
        kind,
        DEFAULT_CAPACITY,
    )
}

/// Checks the exact-decomposition invariant: every CU's stall breakdown
/// sums to the report's `gpu_cycles`.
///
/// # Errors
///
/// Describes the first CU whose breakdown total diverges.
pub fn decomposition_exact(run: &TracedRun) -> Result<(), String> {
    for (cu, b) in run.breakdowns.iter().enumerate() {
        if b.total() != run.report.gpu_cycles {
            return Err(format!(
                "cu{cu}: stall breakdown sums to {} but gpu_cycles is {} ({} / {})",
                b.total(),
                run.report.gpu_cycles,
                run.name,
                run.kind.name(),
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Perfetto export
// ---------------------------------------------------------------------

const GPU_PID: u64 = 1;
const LLC_PID: u64 = 2;
const NOC_PID: u64 = 3;
const RUN_PID: u64 = 4;
/// Warp-slot tracks sit after their CU track in a fixed-size id window.
const TRACK_STRIDE: u64 = 4096;

struct XEvent {
    pid: u64,
    tid: u64,
    ts: u64,
    dur: u64,
    name: String,
    args: Vec<(&'static str, u64)>,
}

fn cu_tid(cu: u32) -> u64 {
    u64::from(cu) * TRACK_STRIDE + 1
}

fn warp_tid(cu: u32, warp: u32) -> u64 {
    u64::from(cu) * TRACK_STRIDE + 2 + u64::from(warp).min(TRACK_STRIDE - 3)
}

/// Converts the run's events into Chrome/Perfetto JSON (the
/// `{"traceEvents": [...]}` flavour): `"M"` metadata rows name one track
/// per CU, warp slot, LLC bank, and NoC link, and every payload event is
/// a `"X"` complete event. Events are sorted per track, so timestamps
/// are monotone per `(pid, tid)` by construction.
pub fn perfetto_json(run: &TracedRun) -> String {
    let mut xs: Vec<XEvent> = Vec::with_capacity(run.events.len());
    let mut i = 0usize;
    while i < run.events.len() {
        let e = run.events[i];
        match e {
            TraceEvent::WarpIssue {
                cu,
                tb,
                warp,
                at,
                issue,
                latency,
            } => xs.push(XEvent {
                pid: GPU_PID,
                tid: warp_tid(cu, warp),
                ts: at,
                dur: issue.max(1),
                name: "issue".to_string(),
                args: vec![("tb", u64::from(tb)), ("latency", latency)],
            }),
            TraceEvent::StallBegin {
                cu,
                tb,
                warp,
                at,
                reason,
            } => {
                // The matching end is pushed immediately after the begin,
                // so it is adjacent whenever both survived the ring.
                if let Some(TraceEvent::StallEnd { at: end, .. }) = run.events.get(i + 1) {
                    xs.push(XEvent {
                        pid: GPU_PID,
                        tid: warp_tid(cu, warp),
                        ts: at,
                        dur: end.saturating_sub(at).max(1),
                        name: format!("stall:{reason}"),
                        args: vec![("tb", u64::from(tb))],
                    });
                    i += 1;
                }
            }
            // An end whose begin was dropped by the ring: no interval.
            TraceEvent::StallEnd { .. } => {}
            TraceEvent::L1Access {
                core,
                at,
                store,
                hit,
            } => xs.push(XEvent {
                pid: GPU_PID,
                tid: cu_tid(core),
                ts: at,
                dur: 1,
                name: format!(
                    "l1_{}_{}",
                    if store { "store" } else { "load" },
                    if hit { "hit" } else { "miss" }
                ),
                args: Vec::new(),
            }),
            TraceEvent::StashChunkMiss { cu, at, words } => xs.push(XEvent {
                pid: GPU_PID,
                tid: cu_tid(cu),
                ts: at,
                dur: 1,
                name: "stash_chunk_miss".to_string(),
                args: vec![("words", u64::from(words))],
            }),
            TraceEvent::LlcBank { bank, at } => xs.push(XEvent {
                pid: LLC_PID,
                tid: u64::from(bank) + 1,
                ts: at,
                dur: 1,
                name: "llc_access".to_string(),
                args: Vec::new(),
            }),
            TraceEvent::NocHop {
                from,
                to,
                at,
                flits,
                class,
            } => xs.push(XEvent {
                pid: NOC_PID,
                tid: u64::from(from) * run.nodes as u64 + u64::from(to) + 1,
                ts: at,
                dur: 1,
                name: "hop".to_string(),
                args: vec![("flits", flits), ("class", u64::from(class))],
            }),
            TraceEvent::DmaBurst {
                cu,
                at,
                words,
                store,
                cycles,
            } => xs.push(XEvent {
                pid: GPU_PID,
                tid: cu_tid(cu),
                ts: at,
                dur: cycles.max(1),
                name: if store { "dma_store" } else { "dma_load" }.to_string(),
                args: vec![("words", u64::from(words))],
            }),
            TraceEvent::RetryFired { at, attempt } => xs.push(XEvent {
                pid: RUN_PID,
                tid: 1,
                ts: at,
                dur: 1,
                name: "retry".to_string(),
                args: vec![("attempt", u64::from(attempt))],
            }),
            TraceEvent::EnergyEpoch { at, kernel } => xs.push(XEvent {
                pid: RUN_PID,
                tid: 2,
                ts: at,
                dur: 1,
                name: "energy_epoch".to_string(),
                args: vec![("kernel", u64::from(kernel))],
            }),
        }
        i += 1;
    }

    // Per-track chronological order. Events from different CUs carry
    // overlapping kernel-local timelines on shared LLC/NoC tracks; the
    // stable sort restores monotonicity per track and keeps emission
    // order within equal timestamps (deterministic output).
    xs.sort_by_key(|x| (x.pid, x.tid, x.ts));

    // Track names for every (pid, tid) that appears.
    let mut tracks: BTreeMap<(u64, u64), String> = BTreeMap::new();
    for x in &xs {
        tracks.entry((x.pid, x.tid)).or_insert_with(|| match x.pid {
            GPU_PID => {
                let unit = (x.tid - 1) / TRACK_STRIDE;
                let slot = (x.tid - 1) % TRACK_STRIDE;
                let core = if (unit as usize) < run.gpu_cus {
                    format!("cu{unit}")
                } else {
                    format!("cpu{}", unit as usize - run.gpu_cus)
                };
                if slot == 0 {
                    core
                } else {
                    format!("{core} w{}", slot - 1)
                }
            }
            LLC_PID => format!("bank{}", x.tid - 1),
            NOC_PID => {
                let link = x.tid - 1;
                format!("n{}->n{}", link / run.nodes as u64, link % run.nodes as u64)
            }
            _ => if x.tid == 1 { "retries" } else { "energy" }.to_string(),
        });
    }

    let mut out = String::with_capacity(64 + xs.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push_row = |out: &mut String, row: &str| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(row);
    };
    for &(pid, name) in &[
        (GPU_PID, "gpu"),
        (LLC_PID, "llc"),
        (NOC_PID, "noc"),
        (RUN_PID, "run"),
    ] {
        push_row(
            &mut out,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
    }
    for (&(pid, tid), name) in &tracks {
        push_row(
            &mut out,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
    }
    for x in &xs {
        let mut row = format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
            x.name, x.ts, x.dur, x.pid, x.tid
        );
        if !x.args.is_empty() {
            row.push_str(",\"args\":{");
            for (j, (k, v)) in x.args.iter().enumerate() {
                if j > 0 {
                    row.push(',');
                }
                let _ = write!(row, "\"{k}\":{v}");
            }
            row.push('}');
        }
        row.push('}');
        push_row(&mut out, &row);
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------
// Perfetto validation (hand-rolled; CI's format gate)
// ---------------------------------------------------------------------

/// What [`validate_perfetto`] measured while checking a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfettoStats {
    /// `"X"` payload events.
    pub events: usize,
    /// Distinct `(pid, tid)` tracks carrying payload events.
    pub tracks: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum JVal {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    fn get<'a>(&'a self, key: &str) -> Option<&'a JVal> {
        match self {
            JVal::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            JVal::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.i)
    }

    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn value(&mut self) -> Result<JVal, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b't') => self.literal("true", JVal::Bool(true)),
            Some(b'f') => self.literal("false", JVal::Bool(false)),
            Some(b'n') => self.literal("null", JVal::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: JVal) -> Result<JVal, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<JVal, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JVal::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    let escaped = *self
                        .b
                        .get(self.i + 1)
                        .ok_or_else(|| self.err("dangling escape"))?;
                    s.push(match escaped {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        _ => return Err(self.err("unsupported escape")),
                    });
                    self.i += 2;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through byte by byte; the
                    // final String is rebuilt from valid input bytes.
                    s.push(c as char);
                    self.i += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<JVal, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JVal::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JVal, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JVal::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JVal::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Validates a Chrome/Perfetto `trace.json`: it must parse, carry a
/// `traceEvents` array whose `"X"` events have numeric `ts`/`dur` and
/// integer `pid`/`tid`, and timestamps must be non-decreasing per
/// `(pid, tid)` track.
///
/// # Errors
///
/// Describes the first structural or monotonicity violation found.
pub fn validate_perfetto(json: &str) -> Result<PerfettoStats, String> {
    let mut p = Parser {
        b: json.as_bytes(),
        i: 0,
    };
    let root = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing data after the top-level object"));
    }
    let Some(JVal::Arr(events)) = root.get("traceEvents") else {
        return Err("missing traceEvents array".to_string());
    };
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    let mut count = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = match e.get("ph") {
            Some(JVal::Str(ph)) => ph.as_str(),
            _ => return Err(format!("event {i}: missing ph")),
        };
        if ph != "X" {
            continue;
        }
        let field = |k: &str| {
            e.get(k)
                .and_then(JVal::num)
                .ok_or_else(|| format!("event {i}: missing numeric {k}"))
        };
        let (ts, _dur) = (field("ts")?, field("dur")?);
        let (pid, tid) = (field("pid")? as u64, field("tid")? as u64);
        if !matches!(e.get("name"), Some(JVal::Str(_))) {
            return Err(format!("event {i}: missing name"));
        }
        let last = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
        if ts < *last {
            return Err(format!(
                "event {i}: ts {ts} goes backwards on track ({pid},{tid})"
            ));
        }
        *last = ts;
        count += 1;
    }
    Ok(PerfettoStats {
        events: count,
        tracks: last_ts.len(),
    })
}

// ---------------------------------------------------------------------
// Text reports
// ---------------------------------------------------------------------

/// Renders the stall-attribution summary: aggregate cycles per reason
/// across CUs, with the exactness line the integration tests pin.
pub fn stall_report(run: &TracedRun) -> String {
    let mut out = String::new();
    let cus = run.breakdowns.len();
    let _ = writeln!(
        out,
        "stall attribution — {} / {} (gpu_cycles {}, {} CU{})",
        run.name,
        run.kind.name(),
        run.report.gpu_cycles,
        cus,
        if cus == 1 { "" } else { "s" },
    );
    let total: u64 = run.breakdowns.iter().map(StallBreakdown::total).sum();
    let _ = writeln!(out, "{:<18}{:>14}{:>9}", "reason", "cycles", "%");
    for reason in StallReason::ALL {
        let cycles: u64 = run.breakdowns.iter().map(|b| b.get(reason)).sum();
        if cycles == 0 {
            continue;
        }
        let pct = 100.0 * cycles as f64 / (total.max(1)) as f64;
        let _ = writeln!(out, "{:<18}{cycles:>14}{pct:>8.1}%", reason.name());
    }
    let _ = writeln!(out, "{:<18}{total:>14}{:>8.1}%", "total", 100.0);
    match decomposition_exact(run) {
        Ok(()) => {
            let _ = writeln!(
                out,
                "decomposition exact: every CU sums to gpu_cycles ({})",
                run.report.gpu_cycles
            );
        }
        Err(e) => {
            let _ = writeln!(out, "DECOMPOSITION BROKEN: {e}");
        }
    }
    if run.dropped > 0 {
        let _ = writeln!(
            out,
            "note: {} event(s) dropped by the ring (breakdown is exact regardless)",
            run.dropped
        );
    }
    out
}

/// Renders the per-event-type latency histogram (p50 / p95 / max over
/// each event's duration: completion latency for warp issues, burst
/// cycles for DMA, unit occupancy for the rest).
pub fn latency_report(run: &TracedRun) -> String {
    let mut by_kind: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    for e in &run.events {
        let dur = match *e {
            TraceEvent::WarpIssue { latency, .. } => latency,
            TraceEvent::DmaBurst { cycles, .. } => cycles,
            _ => 1,
        };
        by_kind.entry(e.kind_name()).or_default().push(dur);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "event latency histogram — {} / {}",
        run.name,
        run.kind.name()
    );
    let _ = writeln!(
        out,
        "{:<18}{:>10}{:>10}{:>10}{:>10}",
        "event", "count", "p50", "p95", "max"
    );
    for (kind, mut durs) in by_kind {
        durs.sort_unstable();
        let p50 = crate::timing::percentile_u64(&durs, 50).expect("non-empty");
        let p95 = crate::timing::percentile_u64(&durs, 95).expect("non-empty");
        let max = *durs.last().expect("non-empty");
        let _ = writeln!(
            out,
            "{kind:<18}{:>10}{p50:>10}{p95:>10}{max:>10}",
            durs.len()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::suite;

    fn histogram_cell() -> TracedRun {
        let w = suite::micros().remove(0);
        run_traced_workload(&w, MemConfigKind::Stash).unwrap()
    }

    #[test]
    fn traced_run_produces_events_and_exact_breakdown() {
        let run = histogram_cell();
        assert!(!run.events.is_empty());
        decomposition_exact(&run).unwrap();
        assert!(run.breakdowns[0].get(StallReason::Issue) > 0);
    }

    #[test]
    fn exported_trace_validates() {
        let run = histogram_cell();
        let json = perfetto_json(&run);
        let stats = validate_perfetto(&json).unwrap();
        assert!(stats.events > 0);
        assert!(stats.tracks >= 2);
    }

    #[test]
    fn validator_rejects_garbage_and_regressions() {
        assert!(validate_perfetto("not json").is_err());
        assert!(validate_perfetto("{}").is_err());
        assert!(validate_perfetto("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        // Backwards timestamps on one track are the regression CI guards.
        let bad = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"ts\":5,\"dur\":1,\"pid\":1,\"tid\":1},\
            {\"name\":\"b\",\"ph\":\"X\",\"ts\":4,\"dur\":1,\"pid\":1,\"tid\":1}]}";
        assert!(validate_perfetto(bad).unwrap_err().contains("backwards"));
        // The same timestamps on different tracks are fine.
        let ok = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"ts\":5,\"dur\":1,\"pid\":1,\"tid\":1},\
            {\"name\":\"b\",\"ph\":\"X\",\"ts\":4,\"dur\":1,\"pid\":1,\"tid\":2}]}";
        assert_eq!(
            validate_perfetto(ok).unwrap(),
            PerfettoStats {
                events: 2,
                tracks: 2
            }
        );
    }

    #[test]
    fn reports_render_and_mention_the_cell() {
        let run = histogram_cell();
        let stalls = stall_report(&run);
        assert!(stalls.contains("decomposition exact"));
        assert!(stalls.contains("issue"));
        let lats = latency_report(&run);
        assert!(lats.contains("warp_issue"));
        assert!(lats.contains("p95"));
    }
}
