//! The resident simulation daemon core (`stashd`) and its client side
//! (`loadgen`, `perf --serve`).
//!
//! A daemon process keeps lowered [`Program`] IRs **resident** across
//! requests and memoizes finished results in a **content-addressed
//! cache**, so a repeated request costs a key lookup instead of a
//! process start, a lowering, and a simulation. The protocol is
//! line-delimited JSON over stdin/stdout or a Unix-domain socket — no
//! network dependencies (see `DESIGN.md` §16 for the full grammar).
//!
//! # Cache key
//!
//! A result is addressed by the canonical byte string built in
//! [`Server::request_key`]: the compiled-in [`CODE_VERSION`], the
//! request kind, the FNV fingerprint of every lowered program the
//! request touches, the [`sim::config::SystemConfig::stable_hash`] of
//! every machine it runs, and the request's own parameters (seeds,
//! configuration names, inline trace text). Anything that could change
//! the answer is in the key, so a hit is — by construction and by test
//! (`tests/server_cache.rs`) — byte-identical to recomputation.
//!
//! # Entry format
//!
//! Disk entries reuse the checkpoint container ([`Snapshot`]): a `RQKY`
//! section holding the full key bytes (verified on every hit, so an FNV
//! collision reads as a miss, never a wrong answer) and a `RSLT`
//! section holding the payload. Each section carries the container's
//! CRC-32, so a corrupted entry is *detected*, dropped, and recomputed
//! — the same damage discipline as `sim::snapshot` checkpoints.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use gpu::program::Program;
use gpu::report::RunReport;
use sim::snapshot::{fnv1a, write_atomic, Snapshot, Writer};
use workloads::suite::{self, Workload};

use crate::chaos;
use crate::cli::json_escape;
use crate::json::{self, Value};
use crate::pool::JobPool;
use crate::{csv_bytes, MatrixRow};

/// The code-version string baked into every cache key. Bumping the
/// crate version (or this protocol suffix) invalidates every cached
/// result, because a different build may compute different bytes.
pub const CODE_VERSION: &str = concat!("stash-repro/", env!("CARGO_PKG_VERSION"), "/proto1");

/// Tag of the cache-entry section holding the full request key bytes.
pub const TAG_KEY: u32 = u32::from_le_bytes(*b"RQKY");

/// Tag of the cache-entry section holding the result payload.
pub const TAG_RESULT: u32 = u32::from_le_bytes(*b"RSLT");

/// Default bound on disk cache entries before oldest-first eviction.
pub const DEFAULT_CACHE_MAX: usize = 512;

/// The 16-hex-digit content address of a key byte string.
pub fn key_hex(key: &[u8]) -> String {
    format!("{:016x}", fnv1a(key))
}

/// One parsed daemon request (the `cmd` line minus its `id`).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The Figure 5 microbenchmark matrix as CSV.
    Fig5,
    /// The Figure 6 application matrix as CSV.
    Fig6,
    /// Static analysis cross-validated against measurement for one
    /// suite workload.
    Advise {
        /// Registry name of the workload.
        workload: String,
    },
    /// A chaos campaign over one suite workload's figure matrix.
    Chaos {
        /// Registry name of the workload.
        workload: String,
        /// First fault seed.
        seed: u64,
        /// Number of consecutive seeds to run.
        seeds: u64,
    },
    /// An inline trace run across a configuration list.
    RunTrace {
        /// The trace file text, inline.
        trace: String,
        /// Configurations to run (empty was rejected at parse).
        kinds: Vec<MemConfigKind>,
    },
}

impl Request {
    /// The wire name of this request kind.
    pub fn cmd_name(&self) -> &'static str {
        match self {
            Request::Fig5 => "fig5",
            Request::Fig6 => "fig6",
            Request::Advise { .. } => "advise",
            Request::Chaos { .. } => "chaos",
            Request::RunTrace { .. } => "run-trace",
        }
    }
}

/// Resolves a configuration name case-insensitively, without exiting
/// the process (unlike `cli::config_by_name` — a daemon answers bad
/// requests with an error event and keeps serving).
pub fn config_named(name: &str) -> Option<MemConfigKind> {
    MemConfigKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Parses one request object (already JSON-decoded). The `id` member is
/// the transport's concern; this validates the command and its
/// parameters against the workload/configuration registries.
///
/// # Errors
///
/// Returns a human-readable message for the `error` event: unknown
/// command, missing parameter, or unknown workload/configuration name.
pub fn parse_request(v: &Value) -> Result<Request, String> {
    let cmd = v
        .get_str("cmd")
        .ok_or_else(|| "request object needs a string \"cmd\" member".to_string())?;
    match cmd {
        "fig5" => Ok(Request::Fig5),
        "fig6" => Ok(Request::Fig6),
        "advise" => {
            let workload = named_workload(v)?;
            Ok(Request::Advise { workload })
        }
        "chaos" => {
            let workload = named_workload(v)?;
            let seed = v.get_u64("seed").unwrap_or(1);
            let seeds = v.get_u64("seeds").unwrap_or(2).clamp(1, 64);
            Ok(Request::Chaos {
                workload,
                seed,
                seeds,
            })
        }
        "run-trace" => {
            let trace = v
                .get_str("trace")
                .ok_or_else(|| "run-trace needs an inline \"trace\" string".to_string())?
                .to_string();
            let kinds = match v.get("configs") {
                None => MemConfigKind::ALL.to_vec(),
                Some(list) => {
                    let names = list
                        .as_arr()
                        .ok_or_else(|| "\"configs\" must be an array of names".to_string())?;
                    let mut kinds = Vec::new();
                    for n in names {
                        let name = n
                            .as_str()
                            .ok_or_else(|| "\"configs\" must be an array of names".to_string())?;
                        kinds.push(config_named(name).ok_or_else(|| {
                            format!("unknown configuration {name:?} in \"configs\"")
                        })?);
                    }
                    if kinds.is_empty() {
                        return Err("\"configs\" must not be empty".to_string());
                    }
                    kinds
                }
            };
            Ok(Request::RunTrace { trace, kinds })
        }
        other => Err(format!(
            "unknown command {other:?} (expected fig5, fig6, advise, chaos, run-trace, \
             stats, or shutdown)"
        )),
    }
}

fn named_workload(v: &Value) -> Result<String, String> {
    let name = v
        .get_str("workload")
        .ok_or_else(|| "request needs a \"workload\" name".to_string())?;
    if suite::by_name(name).is_none() {
        return Err(format!("unknown workload {name:?}"));
    }
    Ok(name.to_string())
}

/// Cache traffic counters, reported by the `stats` command.
#[derive(Debug, Default, Clone, Copy)]
pub struct CacheStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that fell through to computation.
    pub misses: u64,
    /// Disk entries dropped because validation failed (CRC damage,
    /// framing damage, or a key mismatch under an FNV collision).
    pub corrupt_dropped: u64,
}

/// A two-layer content-addressed result cache: an in-memory map in
/// front of an optional on-disk directory of [`Snapshot`]-framed
/// entries named by the key's FNV-64 address.
#[derive(Debug)]
pub struct ResultCache {
    enabled: bool,
    dir: Option<PathBuf>,
    max_entries: usize,
    mem: HashMap<Vec<u8>, String>,
    /// Traffic counters.
    pub stats: CacheStats,
}

impl ResultCache {
    /// A memory-only cache (no persistence across daemon restarts).
    pub fn in_memory() -> Self {
        ResultCache {
            enabled: true,
            dir: None,
            max_entries: DEFAULT_CACHE_MAX,
            mem: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// A disk-backed cache rooted at `dir` (created if missing),
    /// bounded to `max_entries` files with oldest-mtime-first eviction.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation failure.
    pub fn on_disk(dir: &Path, max_entries: usize) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(ResultCache {
            enabled: true,
            dir: Some(dir.to_path_buf()),
            max_entries: max_entries.max(1),
            mem: HashMap::new(),
            stats: CacheStats::default(),
        })
    }

    /// A cache that never hits and never stores (`--no-cache`).
    pub fn disabled() -> Self {
        ResultCache {
            enabled: false,
            ..ResultCache::in_memory()
        }
    }

    fn entry_path(dir: &Path, key: &[u8]) -> PathBuf {
        dir.join(format!("{}.rc", key_hex(key)))
    }

    /// Looks the key up (memory first, then disk). A disk entry that
    /// fails validation — torn frame, CRC mismatch, or stored key bytes
    /// differing from `key` — is dropped and reads as a miss: damage is
    /// recomputed, never served.
    pub fn lookup(&mut self, key: &[u8]) -> Option<String> {
        if !self.enabled {
            return None;
        }
        if let Some(payload) = self.mem.get(key) {
            self.stats.hits += 1;
            return Some(payload.clone());
        }
        if let Some(dir) = self.dir.clone() {
            let path = Self::entry_path(&dir, key);
            if path.exists() {
                match Self::read_entry(&path, key) {
                    Ok(payload) => {
                        self.stats.hits += 1;
                        self.mem.insert(key.to_vec(), payload.clone());
                        return Some(payload);
                    }
                    Err(_) => {
                        self.stats.corrupt_dropped += 1;
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    fn read_entry(path: &Path, key: &[u8]) -> Result<String, String> {
        let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
        let snap = Snapshot::from_bytes(&bytes).map_err(|e| e.to_string())?;
        let stored = snap
            .section(TAG_KEY, "cache entry key")
            .map_err(|e| e.to_string())?;
        if stored != key {
            return Err("stored key differs (FNV address collision)".to_string());
        }
        let payload = snap
            .section(TAG_RESULT, "cache entry payload")
            .map_err(|e| e.to_string())?;
        String::from_utf8(payload.to_vec()).map_err(|e| e.to_string())
    }

    /// Stores a computed payload under `key` (memory + disk, both
    /// best-effort: a full disk never fails a request).
    pub fn store(&mut self, key: &[u8], payload: &str) {
        if !self.enabled {
            return;
        }
        if self.mem.len() >= self.max_entries.max(1) * 2 {
            // The in-memory layer flushes wholesale when it doubles the
            // disk bound; the disk layer below is the durable tier.
            self.mem.clear();
        }
        self.mem.insert(key.to_vec(), payload.to_string());
        if let Some(dir) = self.dir.clone() {
            let mut snap = Snapshot::new();
            snap.push_section(TAG_KEY, key.to_vec());
            snap.push_section(TAG_RESULT, payload.as_bytes().to_vec());
            let _ = write_atomic(&Self::entry_path(&dir, key), &snap.to_bytes());
            self.evict(&dir);
        }
    }

    /// Oldest-mtime-first eviction down to `max_entries` files.
    fn evict(&self, dir: &Path) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf)> = entries
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "rc"))
            .filter_map(|e| {
                let t = e.metadata().ok()?.modified().ok()?;
                Some((t, e.path()))
            })
            .collect();
        if files.len() <= self.max_entries {
            return;
        }
        files.sort();
        let excess = files.len() - self.max_entries;
        for (_, path) in files.into_iter().take(excess) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Number of entries currently resident in the memory layer.
    pub fn resident_entries(&self) -> usize {
        self.mem.len()
    }
}

/// One computed work unit inside a request's plan.
enum Unit {
    /// A simulated matrix cell.
    Report(Box<RunReport>),
    /// A self-contained rendered fragment.
    Text(String),
    /// The static analyzer's output for an advise request.
    Analysis(Box<verify::Analysis>),
}

type Job = Box<dyn FnOnce() -> Result<Unit, String> + Send>;
type Assemble = Box<dyn FnOnce(Vec<Unit>) -> Result<String, String>>;

/// A planned computation: independent pool jobs plus the closure that
/// assembles their outputs into the request's payload text.
struct Plan {
    jobs: Vec<Job>,
    assemble: Assemble,
}

/// How one request in a batch resolved before/after computation.
enum Pending {
    Done {
        key: Vec<u8>,
        payload: String,
    },
    Failed(String),
    Computing {
        key: Vec<u8>,
        assemble: Assemble,
        jobs: usize,
    },
}

/// The daemon core: resident programs, the result cache, and the batch
/// executor. Transports (stdin/stdout, Unix socket) live in the
/// `stashd` binary; this type is transport-agnostic and fully testable
/// in-process.
pub struct Server {
    pool: JobPool,
    cache: ResultCache,
    programs: HashMap<(String, MemConfigKind), (Arc<Program>, u64)>,
}

impl Server {
    /// Creates a server with `threads` pool workers and `cache`.
    pub fn new(threads: usize, cache: ResultCache) -> Self {
        Server {
            pool: JobPool::new(threads),
            cache,
            programs: HashMap::new(),
        }
    }

    /// The cache (for stats reporting).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Number of lowered programs held resident.
    pub fn resident_programs(&self) -> usize {
        self.programs.len()
    }

    /// The resident lowered program for `(workload, kind)`, lowering on
    /// first use and holding the IR for every later request.
    fn resident(&mut self, w: &Workload, kind: MemConfigKind) -> Arc<Program> {
        self.resident_entry(w, kind).0
    }

    /// Resident program plus its FNV fingerprint. The fingerprint is
    /// computed once at lowering time so cache-key derivation on the
    /// hit path costs a map probe, not a rehash of the whole IR.
    fn resident_entry(&mut self, w: &Workload, kind: MemConfigKind) -> (Arc<Program>, u64) {
        self.programs
            .entry((w.name.to_string(), kind))
            .or_insert_with(|| {
                let program = Arc::new((w.build)(kind));
                let fingerprint = gpu::machine::program_fingerprint(&program);
                (program, fingerprint)
            })
            .clone()
    }

    /// The canonical cache-key bytes for `req` under the compiled-in
    /// [`CODE_VERSION`].
    ///
    /// # Errors
    ///
    /// Fails when the request's inputs cannot be resolved (an inline
    /// trace that does not parse, a workload no longer registered).
    pub fn request_key(&mut self, req: &Request) -> Result<Vec<u8>, String> {
        self.request_key_versioned(CODE_VERSION, req)
    }

    /// [`Server::request_key`] with an explicit version string — the
    /// test seam proving a code-version bump misses the cache.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Server::request_key`].
    pub fn request_key_versioned(
        &mut self,
        version: &str,
        req: &Request,
    ) -> Result<Vec<u8>, String> {
        let mut w = Writer::new();
        w.put_str(version);
        w.put_str(req.cmd_name());
        match req {
            Request::Fig5 => {
                self.key_matrix(&mut w, &suite::micros(), &MemConfigKind::FIGURE5);
            }
            Request::Fig6 => {
                self.key_matrix(&mut w, &suite::applications(), &MemConfigKind::FIGURE6);
            }
            Request::Advise { workload } => {
                let wl = lookup_workload(workload)?;
                self.key_matrix(&mut w, &[wl], wl.set.figure_kinds());
            }
            Request::Chaos {
                workload,
                seed,
                seeds,
            } => {
                let wl = lookup_workload(workload)?;
                self.key_matrix(&mut w, &[wl], wl.set.figure_kinds());
                w.put_u64(*seed);
                w.put_u64(*seeds);
            }
            Request::RunTrace { trace, kinds } => {
                let tw = workloads::trace::parse_trace(trace)
                    .map_err(|e| format!("trace does not parse: {e}"))?;
                w.put_u64(tw.set().system_config().stable_hash());
                w.put_str(trace);
                for k in kinds {
                    w.put_str(k.name());
                }
            }
        }
        Ok(w.into_bytes())
    }

    /// Writes the program fingerprints and machine-configuration hashes
    /// of a `(workloads × kinds)` matrix into the key.
    fn key_matrix(&mut self, w: &mut Writer, workloads: &[Workload], kinds: &[MemConfigKind]) {
        for wl in workloads {
            w.put_str(wl.name);
            w.put_u64(wl.set.system_config().stable_hash());
            for &kind in kinds {
                w.put_str(kind.name());
                w.put_u64(self.resident_entry(wl, kind).1);
            }
        }
    }

    fn plan(&mut self, req: &Request) -> Result<Plan, String> {
        match req {
            Request::Fig5 => Ok(self.plan_matrix(suite::micros(), &MemConfigKind::FIGURE5)),
            Request::Fig6 => Ok(self.plan_matrix(suite::applications(), &MemConfigKind::FIGURE6)),
            Request::Advise { workload } => {
                let wl = lookup_workload(workload)?;
                Ok(self.plan_advise(wl))
            }
            Request::Chaos {
                workload,
                seed,
                seeds,
            } => {
                let wl = lookup_workload(workload)?;
                Ok(plan_chaos(wl, *seed, *seeds))
            }
            Request::RunTrace { trace, kinds } => plan_trace(trace, kinds),
        }
    }

    /// A figure matrix: one pool job per `(workload, configuration)`
    /// cell over resident programs; the payload is the figure's CSV
    /// (identical bytes to the `fig5`/`fig6` binaries' `--csv` output).
    fn plan_matrix(&mut self, workloads: Vec<Workload>, kinds: &'static [MemConfigKind]) -> Plan {
        let mut jobs: Vec<Job> = Vec::new();
        for wl in &workloads {
            let sys = wl.set.system_config();
            for &kind in kinds {
                let program = self.resident(wl, kind);
                let sys = sys.clone();
                jobs.push(Box::new(move || {
                    let mut machine = Machine::new(sys, kind);
                    machine
                        .run(&program)
                        .map(|r| Unit::Report(Box::new(r)))
                        .map_err(|e| e.to_string())
                }));
            }
        }
        let names: Vec<&'static str> = workloads.iter().map(|w| w.name).collect();
        Plan {
            jobs,
            assemble: Box::new(move |units| {
                let mut it = units.into_iter();
                let mut rows = Vec::new();
                for &name in &names {
                    let mut reports = Vec::new();
                    for &k in kinds {
                        let Some(Unit::Report(r)) = it.next() else {
                            return Err("internal: unit shape mismatch".to_string());
                        };
                        reports.push((k, *r));
                    }
                    rows.push(MatrixRow {
                        workload: name,
                        reports,
                    });
                }
                Ok(csv_bytes(&rows, kinds))
            }),
        }
    }

    /// Advise: the static analysis as one job, the measured figure row
    /// as one job per configuration; assembly cross-validates the two.
    fn plan_advise(&mut self, wl: Workload) -> Plan {
        let sys = wl.set.system_config();
        let kinds = wl.set.figure_kinds();
        let build = wl.build;
        let mut jobs: Vec<Job> = Vec::new();
        jobs.push(Box::new({
            let sys = sys.clone();
            move || {
                let symbols = verify::Symbols::new();
                Ok(Unit::Analysis(Box::new(verify::analyze_workload(
                    build, &sys, kinds, &symbols,
                ))))
            }
        }));
        for &kind in kinds {
            let program = self.resident(&wl, kind);
            let sys = sys.clone();
            jobs.push(Box::new(move || {
                let mut machine = Machine::new(sys, kind);
                machine
                    .run(&program)
                    .map(|r| Unit::Report(Box::new(r)))
                    .map_err(|e| e.to_string())
            }));
        }
        let name = wl.name;
        Plan {
            jobs,
            assemble: Box::new(move |units| {
                let mut it = units.into_iter();
                let Some(Unit::Analysis(analysis)) = it.next() else {
                    return Err("internal: unit shape mismatch".to_string());
                };
                let mut measured = Vec::new();
                for &kind in kinds {
                    let Some(Unit::Report(r)) = it.next() else {
                        return Err("internal: unit shape mismatch".to_string());
                    };
                    measured.push((kind, r.total_picos));
                }
                Ok(render_advise(name, &analysis, &measured))
            }),
        }
    }

    /// Runs a whole batch: cache lookups first, then every miss's jobs
    /// as one pooled batch (so concurrent requests share the workers),
    /// streaming `progress` events while simulating and emitting one
    /// `result`/`error` event per request in input order.
    ///
    /// Every failure mode — bad request, failed simulation, panicking
    /// job — becomes an `error` event; the daemon never aborts.
    pub fn handle_batch(&mut self, batch: &[(u64, Request)], emit: &mut dyn FnMut(&str)) {
        let mut all_jobs: Vec<(usize, Job)> = Vec::new();
        let mut pending: Vec<Pending> = Vec::new();
        for (i, (_, req)) in batch.iter().enumerate() {
            match self.request_key(req) {
                Err(e) => pending.push(Pending::Failed(e)),
                Ok(key) => {
                    if let Some(payload) = self.cache.lookup(&key) {
                        pending.push(Pending::Done { key, payload });
                        // Cached results still announce themselves once
                        // below; no progress events for a pure lookup.
                        continue;
                    }
                    match self.plan(req) {
                        Err(e) => pending.push(Pending::Failed(e)),
                        Ok(plan) => {
                            let jobs = plan.jobs.len();
                            for job in plan.jobs {
                                all_jobs.push((i, job));
                            }
                            pending.push(Pending::Computing {
                                key,
                                assemble: plan.assemble,
                                jobs,
                            });
                        }
                    }
                }
            }
        }

        let units = self.run_jobs(batch, &pending, all_jobs, emit);

        let mut unit_iter = units.into_iter();
        for ((id, req), state) in batch.iter().zip(pending) {
            let cmd = req.cmd_name();
            match state {
                Pending::Done { key, payload } => {
                    emit(&result_event(*id, cmd, true, &key, &payload));
                }
                Pending::Failed(e) => emit(&error_event(*id, cmd, &e)),
                Pending::Computing {
                    key,
                    assemble,
                    jobs,
                } => {
                    let collected: Result<Vec<Unit>, String> =
                        unit_iter.by_ref().take(jobs).collect();
                    match collected.and_then(assemble) {
                        Ok(payload) => {
                            self.cache.store(&key, &payload);
                            emit(&result_event(*id, cmd, false, &key, &payload));
                        }
                        Err(e) => emit(&error_event(*id, cmd, &e)),
                    }
                }
            }
        }
    }

    /// Runs the concatenated miss jobs on the pool while the calling
    /// thread streams per-request `progress` events from a channel the
    /// jobs tick on completion.
    fn run_jobs(
        &self,
        batch: &[(u64, Request)],
        pending: &[Pending],
        all_jobs: Vec<(usize, Job)>,
        emit: &mut dyn FnMut(&str),
    ) -> Vec<Result<Unit, String>> {
        if all_jobs.is_empty() {
            return Vec::new();
        }
        let totals: HashMap<usize, usize> = pending
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                Pending::Computing { jobs, .. } => Some((i, *jobs)),
                _ => None,
            })
            .collect();
        let pool = self.pool;
        let (tx, rx) = mpsc::channel::<usize>();
        let raw = std::thread::scope(|scope| {
            let jobs: Vec<_> = all_jobs
                .into_iter()
                .map(|(ri, job)| {
                    let tx = tx.clone();
                    move || {
                        let out = job();
                        let _ = tx.send(ri);
                        out
                    }
                })
                .collect();
            drop(tx);
            let handle = scope.spawn(move || pool.run_catching(jobs));
            let mut done: HashMap<usize, usize> = HashMap::new();
            for ri in rx {
                let d = done.entry(ri).or_insert(0);
                *d += 1;
                emit(&format!(
                    "{{\"event\":\"progress\",\"id\":{},\"done\":{},\"total\":{}}}",
                    batch[ri].0,
                    d,
                    totals.get(&ri).copied().unwrap_or(0),
                ));
            }
            handle.join()
        });
        match raw {
            Ok(results) => results
                .into_iter()
                .map(|r| match r {
                    Ok(job) => job.value,
                    Err(p) => Err(format!("job panicked: {}", p.message)),
                })
                .collect(),
            // The pool thread itself died (not a job — those are
            // caught). Shape-mismatch errors surface per request.
            Err(_) => Vec::new(),
        }
    }

    /// The `stats` event line.
    pub fn stats_event(&self) -> String {
        let s = self.cache.stats;
        format!(
            "{{\"event\":\"stats\",\"code_version\":\"{}\",\"threads\":{},\
             \"resident_programs\":{},\"cache_entries\":{},\"hits\":{},\"misses\":{},\
             \"corrupt_dropped\":{}}}",
            json_escape(CODE_VERSION),
            self.pool.threads(),
            self.programs.len(),
            self.cache.resident_entries(),
            s.hits,
            s.misses,
            s.corrupt_dropped,
        )
    }
}

fn lookup_workload(name: &str) -> Result<Workload, String> {
    suite::by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))
}

/// Chaos runs as one unit job: `run_campaign` already fans golden and
/// injected runs out internally, but inside a daemon batch it runs
/// serially within its slot so it composes with the shared pool.
fn plan_chaos(wl: Workload, seed: u64, seeds: u64) -> Plan {
    let kinds = wl.set.figure_kinds();
    let build = wl.build;
    let sys = wl.set.system_config();
    let name = wl.name.to_string();
    let seed_list: Vec<u64> = (0..seeds).map(|i| seed.wrapping_add(i)).collect();
    let job: Job = Box::new(move || {
        let target = chaos::Target {
            name,
            sys,
            build: &build,
        };
        let cfg = chaos::CampaignConfig::new(seed_list, 1);
        let campaign = chaos::run_campaign(&[target], kinds, &cfg)?;
        Ok(Unit::Text(render_campaign(&campaign)))
    });
    Plan {
        jobs: vec![job],
        assemble: Box::new(|units| match units.into_iter().next() {
            Some(Unit::Text(t)) => Ok(t),
            _ => Err("internal: unit shape mismatch".to_string()),
        }),
    }
}

/// An inline trace across a configuration list: one job per
/// configuration, each rendering its own self-contained line.
fn plan_trace(trace: &str, kinds: &[MemConfigKind]) -> Result<Plan, String> {
    let tw = Arc::new(
        workloads::trace::parse_trace(trace).map_err(|e| format!("trace does not parse: {e}"))?,
    );
    let mut jobs: Vec<Job> = Vec::new();
    for &kind in kinds {
        let tw = Arc::clone(&tw);
        jobs.push(Box::new(move || {
            let mut machine = Machine::new(tw.set().system_config(), kind);
            let report = machine.run(&tw.build(kind)).map_err(|e| e.to_string())?;
            Ok(Unit::Text(format!(
                "config {} time_ps {} energy_fj {} instrs {} flits {} state_digest {:016x}\n",
                kind.name(),
                report.total_picos,
                report.total_energy(),
                report.gpu_instructions,
                report.traffic.total_flits(),
                machine.memory().state_digest(),
            )))
        }));
    }
    let n = kinds.len();
    Ok(Plan {
        jobs,
        assemble: Box::new(move |units| {
            let mut out = format!("trace configs {n}\n");
            for u in units {
                let Unit::Text(line) = u else {
                    return Err("internal: unit shape mismatch".to_string());
                };
                out.push_str(&line);
            }
            Ok(out)
        }),
    })
}

fn render_advise(
    name: &str,
    analysis: &verify::Analysis,
    measured: &[(MemConfigKind, u64)],
) -> String {
    use std::fmt::Write as _;
    let mut out = format!("workload {name}\n");
    for note in &analysis.notes {
        writeln!(out, "note {} {}", note.rule.code(), note.message)
            .expect("writing to String cannot fail");
    }
    for (pred, &(kind, picos)) in analysis.predictions.iter().zip(measured) {
        writeln!(
            out,
            "config {} est_ps {} measured_ps {picos}",
            kind.name(),
            pred.est_picos,
        )
        .expect("writing to String cannot fail");
    }
    let best = measured
        .iter()
        .min_by_key(|&&(_, t)| t)
        .map_or("-", |&(k, _)| k.name());
    writeln!(
        out,
        "recommended {} measured_best {best} agreement {}",
        analysis.recommended.name(),
        if verify::recommendation_ok(analysis.recommended, measured) {
            "ok"
        } else {
            "MISMATCH"
        }
    )
    .expect("writing to String cannot fail");
    out
}

fn render_campaign(campaign: &chaos::Campaign) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "cells {} recovered {} detected {} escapes {} injected {} retries {}\n",
        campaign.cells.len(),
        campaign.recovered(),
        campaign.detected(),
        campaign.escapes().len(),
        campaign.total_injected(),
        campaign.total_retries(),
    );
    for c in &campaign.cells {
        writeln!(
            out,
            "cell {} {} seed {} {} fp {}",
            c.workload,
            c.kind.name(),
            c.seed,
            c.outcome.label(),
            fnv1a(c.fingerprint.as_bytes()),
        )
        .expect("writing to String cannot fail");
    }
    out
}

fn result_event(id: u64, cmd: &str, cached: bool, key: &[u8], payload: &str) -> String {
    format!(
        "{{\"event\":\"result\",\"id\":{id},\"cmd\":\"{cmd}\",\"cached\":{cached},\
         \"key\":\"{}\",\"payload\":\"{}\"}}",
        key_hex(key),
        json_escape(payload),
    )
}

fn error_event(id: u64, cmd: &str, message: &str) -> String {
    format!(
        "{{\"event\":\"error\",\"id\":{id},\"cmd\":\"{cmd}\",\"error\":\"{}\"}}",
        json_escape(message),
    )
}

// ---------------------------------------------------------------------
// Client side: drive a daemon child process over its stdio transport.
// Shared by the `loadgen` binary and the `perf --serve` runner.
// ---------------------------------------------------------------------

/// One answered request as the client saw it.
#[derive(Debug, Clone)]
pub struct Response {
    /// Whether the daemon answered from its cache.
    pub cached: bool,
    /// The 16-hex content address of the request key.
    pub key: String,
    /// The result payload (empty on error).
    pub payload: String,
    /// The daemon's error message, if the request failed.
    pub error: Option<String>,
    /// Wall-clock from writing the request to reading its answer.
    pub latency: Duration,
}

/// A client around a spawned `stashd` child speaking the stdio
/// transport.
pub struct DaemonClient {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    next_id: u64,
}

impl DaemonClient {
    /// Spawns `exe` with `args` and waits for its `hello` line.
    ///
    /// # Errors
    ///
    /// Propagates spawn/pipe failures; a missing or malformed `hello`
    /// is reported as [`std::io::ErrorKind::InvalidData`].
    pub fn spawn(exe: &Path, args: &[&str]) -> std::io::Result<DaemonClient> {
        let mut child = Command::new(exe)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut client = DaemonClient {
            child,
            stdin,
            stdout,
            next_id: 1,
        };
        let hello = client.read_line()?;
        let ok = json::parse(&hello).is_ok_and(|v| v.get_str("event") == Some("hello"));
        if !ok {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected hello line, got {hello:?}"),
            ));
        }
        Ok(client)
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.stdout.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed its stdout",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Sends one request template — a JSON object *without* an `id`
    /// member, e.g. `{"cmd":"fig5"}` — and blocks until its `result` or
    /// `error` event, skipping `progress` lines.
    ///
    /// # Errors
    ///
    /// Propagates transport failures (broken pipe, EOF, a line that is
    /// not valid protocol JSON).
    pub fn request(&mut self, template: &str) -> std::io::Result<Response> {
        let id = self.next_id;
        self.next_id += 1;
        let body = template.strip_prefix('{').unwrap_or(template);
        let line = format!("{{\"id\":{id},{body}");
        let start = Instant::now();
        self.stdin.write_all(line.as_bytes())?;
        self.stdin.write_all(b"\n")?;
        self.stdin.flush()?;
        loop {
            let reply = self.read_line()?;
            let v = json::parse(&reply).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad protocol line {reply:?}: {e}"),
                )
            })?;
            if v.get_u64("id") != Some(id) {
                continue;
            }
            match v.get_str("event") {
                Some("progress") => {}
                Some("result") => {
                    return Ok(Response {
                        cached: v.get("cached") == Some(&Value::Bool(true)),
                        key: v.get_str("key").unwrap_or("").to_string(),
                        payload: v.get_str("payload").unwrap_or("").to_string(),
                        error: None,
                        latency: start.elapsed(),
                    });
                }
                Some("error") => {
                    return Ok(Response {
                        cached: false,
                        key: String::new(),
                        payload: String::new(),
                        error: Some(v.get_str("error").unwrap_or("unknown error").to_string()),
                        latency: start.elapsed(),
                    });
                }
                _ => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unexpected event in {reply:?}"),
                    ));
                }
            }
        }
    }

    /// Sends `shutdown` and reaps the child.
    ///
    /// # Errors
    ///
    /// Propagates pipe/wait failures (the child is killed on drop
    /// regardless).
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.stdin.write_all(b"{\"cmd\":\"shutdown\"}\n")?;
        self.stdin.flush()?;
        self.child.wait()?;
        Ok(())
    }
}

impl Drop for DaemonClient {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The path of a sibling binary of the currently running one (the way
/// `loadgen` and `perf --serve` find `stashd` without any configuration).
///
/// # Errors
///
/// Propagates `std::env::current_exe` failure.
pub fn sibling_binary(name: &str) -> std::io::Result<PathBuf> {
    let mut path = std::env::current_exe()?;
    path.set_file_name(name);
    Ok(path)
}

/// The request templates the load generator and the perf runner mix:
/// every microbenchmark's advise, both figure matrices, and a small
/// chaos campaign. Each template is a JSON object without an `id`.
pub fn mix_templates() -> Vec<String> {
    let mut t: Vec<String> = suite::micros()
        .iter()
        .map(|w| format!("{{\"cmd\":\"advise\",\"workload\":\"{}\"}}", w.name))
        .collect();
    t.push("{\"cmd\":\"fig5\"}".to_string());
    t.push("{\"cmd\":\"chaos\",\"workload\":\"implicit\",\"seed\":1,\"seeds\":2}".to_string());
    t
}

/// A seeded request mix: `n` draws over [`mix_templates`] via the
/// repo's deterministic [`sim::rng::SplitMix64`].
pub fn seeded_mix(seed: u64, n: usize) -> Vec<String> {
    let templates = mix_templates();
    let mut rng = sim::rng::SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            templates[usize::try_from(rng.next_below(templates.len() as u64)).unwrap_or(0)].clone()
        })
        .collect()
}

/// The `p`-th percentile (0–100) of an unsorted latency sample.
/// Returns zero for an empty sample.
pub fn percentile(samples: &[Duration], p: usize) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (sorted.len() - 1) * p.min(100) / 100;
    sorted[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_request_validates_names() {
        let v = json::parse(r#"{"id":1,"cmd":"advise","workload":"reuse"}"#).unwrap();
        assert_eq!(
            parse_request(&v).unwrap(),
            Request::Advise {
                workload: "reuse".to_string()
            }
        );
        let bad = json::parse(r#"{"cmd":"advise","workload":"nope"}"#).unwrap();
        assert!(parse_request(&bad)
            .unwrap_err()
            .contains("unknown workload"));
        let unknown = json::parse(r#"{"cmd":"frobnicate"}"#).unwrap();
        assert!(parse_request(&unknown)
            .unwrap_err()
            .contains("unknown command"));
    }

    #[test]
    fn run_trace_configs_resolve_case_insensitively() {
        let v =
            json::parse(r#"{"cmd":"run-trace","trace":"x","configs":["stash","CACHE"]}"#).unwrap();
        let Request::RunTrace { kinds, .. } = parse_request(&v).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(kinds, vec![MemConfigKind::Stash, MemConfigKind::Cache]);
        let bad = json::parse(r#"{"cmd":"run-trace","trace":"x","configs":["nope"]}"#).unwrap();
        assert!(parse_request(&bad)
            .unwrap_err()
            .contains("unknown configuration"));
    }

    #[test]
    fn keys_are_content_addressed() {
        let mut server = Server::new(1, ResultCache::disabled());
        let a = server.request_key(&Request::Fig5).unwrap();
        let b = server.request_key(&Request::Fig5).unwrap();
        assert_eq!(a, b, "same request, same key");
        let c = server.request_key(&Request::Fig6).unwrap();
        assert_ne!(a, c, "different command, different key");
        let v1 = server.request_key_versioned("v1", &Request::Fig5).unwrap();
        let v2 = server.request_key_versioned("v2", &Request::Fig5).unwrap();
        assert_ne!(v1, v2, "code version is part of the key");
        assert_eq!(key_hex(&a).len(), 16);
    }

    #[test]
    fn chaos_seed_components_change_the_key() {
        let mut server = Server::new(1, ResultCache::disabled());
        let req = |seed, seeds| Request::Chaos {
            workload: "implicit".to_string(),
            seed,
            seeds,
        };
        let a = server.request_key(&req(1, 2)).unwrap();
        assert_ne!(a, server.request_key(&req(2, 2)).unwrap());
        assert_ne!(a, server.request_key(&req(1, 3)).unwrap());
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut cache = ResultCache::disabled();
        cache.store(b"k", "payload");
        assert_eq!(cache.lookup(b"k"), None);
        assert_eq!(cache.stats.hits, 0);
    }

    #[test]
    fn memory_cache_round_trips() {
        let mut cache = ResultCache::in_memory();
        assert_eq!(cache.lookup(b"k"), None);
        cache.store(b"k", "payload");
        assert_eq!(cache.lookup(b"k").as_deref(), Some("payload"));
        assert_eq!(cache.stats.hits, 1);
        assert_eq!(cache.stats.misses, 1);
    }

    #[test]
    fn percentile_picks_expected_ranks() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 50), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 95), Duration::from_millis(95));
        assert_eq!(percentile(&ms, 100), Duration::from_millis(100));
        assert_eq!(percentile(&[], 50), Duration::ZERO);
    }

    #[test]
    fn seeded_mix_is_deterministic() {
        assert_eq!(seeded_mix(7, 12), seeded_mix(7, 12));
        assert_eq!(seeded_mix(7, 12).len(), 12);
        for line in seeded_mix(3, 8) {
            assert!(json::parse(&line).is_ok(), "{line}");
        }
    }
}
