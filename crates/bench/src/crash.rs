//! The kill-and-recover crash campaign: prove the checkpoint/restore
//! layer's crash-consistency contract by killing runs and restoring them.
//!
//! For every `(workload, configuration, seed)` cell the campaign:
//!
//! 1. Runs the cell with auto-checkpointing at every phase barrier into a
//!    private [`CheckpointStore`], then **kills** it at a seeded barrier.
//!    A third of the seeds additionally damage the snapshot written at
//!    the kill point — truncating it or flipping a payload byte — the
//!    on-disk states a crash mid-checkpoint-write can leave behind on
//!    filesystems without durable atomic rename.
//! 2. **Recovers**: restores the newest snapshot that validates (torn and
//!    corrupt files must be *rejected*, falling back to the previous good
//!    one, or to a cold restart when nothing survives) and runs the
//!    program to completion.
//! 3. Classifies against the fault-free golden digest from
//!    [`crate::golden`] — the same reference the fault campaign uses:
//!
//! * **Recovered** — a clean kill, and the resumed run's architectural
//!   state is bit-identical to golden.
//! * **Detected** — the kill tore the newest snapshot, the store flagged
//!   it ([`Detector::Snapshot`]), and recovery from an older snapshot
//!   still converged to golden.
//! * **Silent escape** — the resumed state diverged from golden, or a
//!   damaged snapshot loaded without complaint. Contract violations; the
//!   `chaos --crash` binary exits 1 if any occur.

use crate::chaos::{Detector, Outcome, Target};
use crate::pool::JobPool;
use gpu::config::MemConfigKind;
use gpu::machine::{Machine, ParallelConfig, RunCursor};
use gpu::program::Program;
use gpu::report::RunReport;
use sim::rng::SplitMix64;
use sim::snapshot::CheckpointStore;
use sim::SimError;
use std::path::Path;

/// The sentinel `at_barrier` error that simulates the process kill.
const KILL_SIGNAL: &str = "crash-campaign kill";

/// How the seeded kill damages the snapshot being written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillMode {
    /// Kill between checkpoint writes: every file on disk is complete.
    Clean,
    /// Kill mid-write: the newest snapshot is truncated to half its bytes.
    Truncate,
    /// Kill mid-write: one payload byte of the newest snapshot is flipped.
    CorruptByte,
}

impl KillMode {
    /// Whether this mode leaves a damaged file the store must reject.
    pub fn tears_file(self) -> bool {
        self != KillMode::Clean
    }
}

/// The deterministic kill a seed maps to.
#[derive(Debug, Clone, Copy)]
pub struct KillPlan {
    /// Zero-based barrier index the run dies at (after that phase's
    /// checkpoint is written).
    pub barrier: usize,
    /// What state the kill leaves the newest snapshot file in.
    pub mode: KillMode,
}

impl KillPlan {
    /// Derives the kill point for `seed` on a program with `phases`
    /// phases: a uniformly seeded barrier, with the three damage modes
    /// cycling so every third seed exercises the torn-file fallback.
    pub fn for_seed(seed: u64, phases: usize) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x6b69_6c6c_2d70_6c61); // "kill-pla"
        let barrier = usize::try_from(rng.next_below(phases.max(1) as u64)).unwrap_or(0);
        let mode = match rng.next_below(3) {
            0 => KillMode::Clean,
            1 => KillMode::Truncate,
            _ => KillMode::CorruptByte,
        };
        Self { barrier, mode }
    }
}

/// One kill-and-recover run's classified result.
#[derive(Debug, Clone)]
pub struct CrashRun {
    /// Workload name.
    pub workload: String,
    /// Memory configuration.
    pub kind: MemConfigKind,
    /// Campaign seed of this run.
    pub seed: u64,
    /// The kill this seed mapped to.
    pub barrier: usize,
    /// Damage mode of the kill.
    pub mode: KillMode,
    /// The classification.
    pub outcome: Outcome,
    /// Snapshots written before the kill (including any damaged one).
    pub checkpoints: u64,
    /// Sequence number recovery resumed from; `None` = cold restart.
    pub resumed_from: Option<u64>,
    /// Torn/corrupt snapshots the store detected and skipped.
    pub rejected: u64,
}

/// A whole crash campaign's results, in `(target, kind, seed)` order.
#[derive(Debug)]
pub struct CrashCampaign {
    /// Every kill-and-recover run.
    pub cells: Vec<CrashRun>,
}

impl CrashCampaign {
    /// Runs classified as recovered.
    pub fn recovered(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.outcome == Outcome::Recovered)
            .count()
    }

    /// Runs where the store detected (and recovered past) a torn file.
    pub fn detected(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, Outcome::Detected(_)))
            .count()
    }

    /// The silent escapes (must be empty for the contract).
    pub fn escapes(&self) -> Vec<&CrashRun> {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, Outcome::SilentEscape(_)))
            .collect()
    }

    /// Total torn/corrupt snapshot files detected across the campaign.
    pub fn total_rejected(&self) -> u64 {
        self.cells.iter().map(|c| c.rejected).sum()
    }
}

/// Crash-campaign switches (the `chaos --crash` flags).
#[derive(Debug, Clone)]
pub struct CrashCampaignConfig {
    /// Kill seeds to run per cell.
    pub seeds: Vec<u64>,
    /// Worker threads for the job pool.
    pub threads: usize,
    /// Run the runtime invariant oracle inside every cell.
    pub verify: bool,
}

impl CrashCampaignConfig {
    /// Defaults: oracle off.
    pub fn new(seeds: Vec<u64>, threads: usize) -> Self {
        Self {
            seeds,
            threads,
            verify: false,
        }
    }
}

/// Damages the newest snapshot file according to `mode`, simulating the
/// on-disk aftermath of a kill mid-checkpoint-write.
fn tear_file(path: &Path, mode: KillMode, seed: u64) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading snapshot to tear: {e}"))?;
    let damaged = match mode {
        KillMode::Clean => return Ok(()),
        KillMode::Truncate => bytes[..bytes.len() / 2].to_vec(),
        KillMode::CorruptByte => {
            let mut b = bytes;
            // Flip a byte past the 16-byte container header so the
            // damage lands in a section (CRC territory), seeded for
            // variety across the campaign.
            let mut rng = SplitMix64::new(seed);
            let span = b.len().saturating_sub(16).max(1) as u64;
            let i = 16 + usize::try_from(rng.next_below(span)).unwrap_or(0);
            let i = i.min(b.len() - 1);
            b[i] ^= 0x40;
            b
        }
    };
    std::fs::write(path, damaged).map_err(|e| format!("tearing snapshot: {e}"))
}

/// Phase 1 of one cell: run with auto-checkpointing and kill per `plan`.
/// Returns the number of checkpoints written.
fn crashed_attempt(
    target: &Target<'_>,
    kind: MemConfigKind,
    program: &Program,
    store: &CheckpointStore,
    plan: KillPlan,
    seed: u64,
    verify: bool,
) -> Result<u64, String> {
    let mut machine = Machine::new(target.sys.clone(), kind);
    machine.memory_mut().set_verify(verify);
    let mut cursor = RunCursor::default();
    let mut written = 0u64;
    let result = machine.run_from(program, None, &mut cursor, |m, c| {
        let snap = m.checkpoint(program, *c);
        let seq = store
            .save(&snap)
            .map_err(|e| SimError::Config(format!("checkpoint write failed: {e}")))?;
        written += 1;
        if c.next_phase == plan.barrier + 1 {
            tear_file(&store.path_for(seq), plan.mode, seed).map_err(SimError::Config)?;
            return Err(SimError::Config(KILL_SIGNAL.to_string()));
        }
        Ok(())
    });
    match result {
        // A kill barrier at (or past) the last phase lets the run finish;
        // recovery then resumes a complete cursor — a valid edge case.
        Ok(_) => Ok(written),
        Err(SimError::Config(msg)) if msg == KILL_SIGNAL => Ok(written),
        Err(e) => Err(format!("crashing attempt failed before the kill: {e}")),
    }
}

/// Phase 2 of one cell: restore the newest valid snapshot (cold restart
/// if none survives) and run to completion. Returns the final digest,
/// the resumed sequence number, and how many files were rejected.
fn recover(
    target: &Target<'_>,
    kind: MemConfigKind,
    program: &Program,
    store: &CheckpointStore,
    verify: bool,
) -> Result<(u64, Option<u64>, u64), String> {
    match store.latest_valid() {
        Some((seq, snap, rejections)) => {
            let (mut machine, mut cursor) = Machine::resume(&snap, program)
                .map_err(|e| format!("resume from ckpt-{seq:04} failed: {e}"))?;
            machine.memory_mut().set_verify(verify);
            machine
                .run_from(program, None, &mut cursor, |_, _| Ok(()))
                .map_err(|e| format!("resumed run failed: {e}"))?;
            Ok((
                machine.memory().state_digest(),
                Some(seq),
                rejections.len() as u64,
            ))
        }
        None => {
            // Nothing on disk validates: count the rejects, restart cold.
            let rejected = store
                .list()
                .into_iter()
                .filter(|&s| sim::snapshot::read_snapshot(&store.path_for(s)).is_err())
                .count() as u64;
            let mut machine = Machine::new(target.sys.clone(), kind);
            machine.memory_mut().set_verify(verify);
            machine
                .run(program)
                .map_err(|e| format!("cold restart failed: {e}"))?;
            Ok((machine.memory().state_digest(), None, rejected))
        }
    }
}

fn classify(
    plan: KillPlan,
    digest: u64,
    golden: u64,
    resumed_from: Option<u64>,
    rejected: u64,
    last_seq: Option<u64>,
) -> Outcome {
    if digest != golden {
        return Outcome::SilentEscape(format!(
            "recovered state digest {digest:016x} diverged from golden {golden:016x}"
        ));
    }
    if plan.mode.tears_file() {
        // The newest file was damaged; loading it anyway is a detection
        // failure even when the state happens to converge.
        if resumed_from.is_some() && resumed_from == last_seq {
            return Outcome::SilentEscape(format!(
                "torn snapshot ckpt-{:04} loaded without complaint",
                last_seq.unwrap_or(0)
            ));
        }
        if rejected == 0 {
            return Outcome::SilentEscape(
                "torn snapshot was neither loaded nor rejected — recovery never saw it".to_string(),
            );
        }
        return Outcome::Detected(Detector::Snapshot);
    }
    Outcome::Recovered
}

/// Runs the full kill-and-recover campaign under `scratch` (one private
/// subdirectory per cell, removed afterwards).
///
/// # Errors
///
/// Returns a message if any golden run fails, or scratch directories
/// cannot be managed.
pub fn run_crash_campaign(
    targets: &[Target<'_>],
    kinds: &[MemConfigKind],
    cfg: &CrashCampaignConfig,
    scratch: &Path,
) -> Result<CrashCampaign, String> {
    let pool = JobPool::new(cfg.threads);
    let golden = crate::golden::golden_digests(&pool, targets, kinds, cfg.verify)?;

    let mut meta = Vec::new();
    let mut jobs = Vec::new();
    for (cell, (t, kind)) in targets
        .iter()
        .flat_map(|t| kinds.iter().map(move |&kind| (t, kind)))
        .enumerate()
    {
        for &seed in &cfg.seeds {
            let golden_digest = golden[cell];
            let dir = scratch.join(format!("cell{cell}-seed{seed}"));
            meta.push((t.name.clone(), kind, seed));
            let verify = cfg.verify;
            jobs.push(
                move || -> Result<(KillPlan, Outcome, u64, Option<u64>, u64), String> {
                    let program = (t.build)(kind);
                    let plan = KillPlan::for_seed(seed, program.phases.len());
                    let store = CheckpointStore::open(&dir)
                        .map_err(|e| format!("opening scratch store {}: {e}", dir.display()))?;
                    let checkpoints =
                        crashed_attempt(t, kind, &program, &store, plan, seed, verify)?;
                    let last_seq = store.list().last().copied();
                    let (digest, resumed_from, rejected) =
                        recover(t, kind, &program, &store, verify)?;
                    let _ = std::fs::remove_dir_all(&dir);
                    let outcome = classify(
                        plan,
                        digest,
                        golden_digest,
                        resumed_from,
                        rejected,
                        last_seq,
                    );
                    Ok((plan, outcome, checkpoints, resumed_from, rejected))
                },
            );
        }
    }

    let cells = meta
        .into_iter()
        .zip(pool.run_catching(jobs))
        .map(|((workload, kind, seed), result)| {
            let (plan, outcome, checkpoints, resumed_from, rejected) = match result {
                Ok(r) => match r.value {
                    Ok(v) => v,
                    Err(msg) => (
                        KillPlan::for_seed(seed, 1),
                        Outcome::SilentEscape(format!("campaign cell failed: {msg}")),
                        0,
                        None,
                        0,
                    ),
                },
                Err(p) => (
                    KillPlan::for_seed(seed, 1),
                    Outcome::SilentEscape(format!("campaign cell panicked: {}", p.message)),
                    0,
                    None,
                    0,
                ),
            };
            CrashRun {
                workload,
                kind,
                seed,
                barrier: plan.barrier,
                mode: plan.mode,
                outcome,
                checkpoints,
                resumed_from,
                rejected,
            }
        })
        .collect();
    Ok(CrashCampaign { cells })
}

/// Runs `program` with watchdog-backed auto-checkpointing: a snapshot at
/// every phase barrier into `store`, so a run the no-progress watchdog
/// kills still leaves a resumable trail. On [`SimError::Deadlock`] the
/// diagnostic dump (which carries the ring-buffered trace tail and the
/// fault-injector seed) is written to `deadlock-dump.txt` beside the
/// snapshots before the error propagates.
///
/// # Errors
///
/// Propagates simulation errors and failed checkpoint writes.
pub fn run_with_auto_checkpoint(
    machine: &mut Machine,
    program: &Program,
    par: Option<&ParallelConfig>,
    store: &CheckpointStore,
) -> Result<RunReport, SimError> {
    let mut cursor = RunCursor::default();
    let result = machine.run_from(program, par, &mut cursor, |m, c| {
        let snap = m.checkpoint(program, *c);
        store
            .save(&snap)
            .map(|_| ())
            .map_err(|e| SimError::Config(format!("auto-checkpoint write failed: {e}")))
    });
    if let Err(SimError::Deadlock {
        site,
        attempts,
        dump,
    }) = &result
    {
        let resumable = store.list().last().map_or_else(
            || "none — the watchdog tripped before the first barrier".to_string(),
            |s| store.path_for(*s).display().to_string(),
        );
        let text = format!(
            "no-progress watchdog tripped at {site} after {attempts} attempts\n\
             resumable from: {resumable}\n\
             --- diagnostic dump ---\n{dump}\n"
        );
        let _ = std::fs::write(store.dir().join("deadlock-dump.txt"), text);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::fault::FaultConfig;
    use workloads::suite;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stash-crash-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn kill_plans_are_deterministic_and_cover_modes() {
        let a = KillPlan::for_seed(7, 9);
        let b = KillPlan::for_seed(7, 9);
        assert_eq!(a.barrier, b.barrier);
        assert_eq!(a.mode, b.mode);
        assert!(a.barrier < 9);
        let modes: std::collections::HashSet<_> = (1..=12u64)
            .map(|s| format!("{:?}", KillPlan::for_seed(s, 9).mode))
            .collect();
        assert_eq!(modes.len(), 3, "12 seeds must hit all three kill modes");
    }

    #[test]
    fn crash_campaign_on_one_micro_has_no_escapes() {
        let w = suite::micros()[3]; // reuse: 9 phases, plenty of barriers
        let target = Target {
            name: w.name.to_string(),
            sys: w.set.system_config(),
            build: &w.build,
        };
        let cfg = CrashCampaignConfig::new((1..=6).collect(), 2);
        let dir = scratch("campaign");
        let campaign = run_crash_campaign(&[target], &[MemConfigKind::Stash], &cfg, &dir)
            .expect("golden runs clean");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(campaign.cells.len(), 6);
        assert!(
            campaign.escapes().is_empty(),
            "kill-and-recover must never escape: {:?}",
            campaign.escapes()
        );
        // Every torn kill must have been detected, never silently loaded.
        for c in &campaign.cells {
            if c.mode.tears_file() {
                assert_eq!(
                    c.outcome,
                    Outcome::Detected(Detector::Snapshot),
                    "seed {} mode {:?}",
                    c.seed,
                    c.mode
                );
                assert!(c.rejected >= 1);
            } else {
                assert_eq!(c.outcome, Outcome::Recovered, "seed {}", c.seed);
            }
        }
    }

    #[test]
    fn deadlocked_run_leaves_a_resumable_snapshot_and_dump() {
        let w = suite::micros()[3];
        let program = (w.build)(MemConfigKind::Stash);
        let dir = scratch("watchdog");
        // Resilience off makes the first dropped message trip the
        // watchdog; scan seeds until one faults mid-program.
        let mut tripped = false;
        for seed in 1..=32 {
            let store = CheckpointStore::open(&dir).unwrap();
            let mut machine = Machine::new(w.set.system_config(), MemConfigKind::Stash);
            machine
                .memory_mut()
                .set_fault_injector(FaultConfig::chaos(seed).without_resilience());
            let result = run_with_auto_checkpoint(&mut machine, &program, None, &store);
            if let Err(SimError::Deadlock { .. }) = result {
                let dump = std::fs::read_to_string(store.dir().join("deadlock-dump.txt"))
                    .expect("deadlock dump written");
                assert!(dump.contains("no-progress watchdog tripped"));
                assert!(dump.contains("resumable from:"));
                // Whatever snapshots exist must be resumable.
                if let Some((_, snap, _)) = store.latest_valid() {
                    let (m, cursor) = Machine::resume(&snap, &program).expect("snapshot resumes");
                    assert!(cursor.next_phase <= program.phases.len());
                    drop(m);
                }
                tripped = true;
                break;
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
        let _ = std::fs::remove_dir_all(&dir);
        assert!(tripped, "no seed in 1..=32 tripped the watchdog");
    }
}
