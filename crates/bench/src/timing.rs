//! A minimal measurement harness for the `benches/` targets.
//!
//! The benches are plain `main()` binaries (`harness = false`): each
//! calls [`bench()`] per case, which runs the closure a fixed number of
//! times and prints min / mean / max wall-clock. No statistics engine —
//! the simulations are deterministic, so run-to-run noise is purely
//! host-side and min is the robust figure.
//!
//! The summary math is total on sample count: [`Measurement::from_times`]
//! returns `None` for an empty slice instead of panicking on the
//! `Duration` division, and [`percentile_index`] saturates (nearest-rank,
//! floor) so `p95` of one or two samples selects a real sample rather
//! than indexing out of bounds.

use std::time::{Duration, Instant};

/// Samples per benchmark case.
pub const SAMPLES: usize = 10;

/// One measured case: timing summary over a set of runs.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Fastest observed run.
    pub min: Duration,
    /// Mean over all runs.
    pub mean: Duration,
    /// Median (50th percentile, nearest-rank).
    pub p50: Duration,
    /// 95th percentile (nearest-rank; equals `max` for tiny samples).
    pub p95: Duration,
    /// Slowest observed run.
    pub max: Duration,
}

impl Measurement {
    /// Summarizes a batch of wall-clock samples; `None` when empty.
    pub fn from_times(times: &[Duration]) -> Option<Measurement> {
        if times.is_empty() {
            return None;
        }
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        Some(Measurement {
            min: sorted[0],
            mean,
            p50: percentile(&sorted, 50).expect("non-empty"),
            p95: percentile(&sorted, 95).expect("non-empty"),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// Nearest-rank (floor) index of the `pct`-th percentile in a sorted
/// sequence of `len` samples: `(len - 1) * pct / 100`, always in bounds.
/// `None` for an empty sequence.
pub fn percentile_index(len: usize, pct: u64) -> Option<usize> {
    if len == 0 {
        return None;
    }
    let pct = pct.min(100);
    Some(((len as u64 - 1) * pct / 100) as usize)
}

/// The `pct`-th percentile of an ascending-sorted slice; `None` if empty.
pub fn percentile(sorted: &[Duration], pct: u64) -> Option<Duration> {
    percentile_index(sorted.len(), pct).map(|i| sorted[i])
}

/// The `pct`-th percentile of an ascending-sorted `u64` slice (used by
/// the profiler's cycle-latency reports); `None` if empty.
pub fn percentile_u64(sorted: &[u64], pct: u64) -> Option<u64> {
    percentile_index(sorted.len(), pct).map(|i| sorted[i])
}

/// Runs `f` [`SAMPLES`] times, prints a `name: min/mean/max` line, and
/// returns the measurement. A result-consuming closure keeps the work
/// from being optimized away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    let mut times = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let value = f();
        times.push(start.elapsed());
        std::hint::black_box(value);
    }
    let m = Measurement::from_times(&times).expect("SAMPLES > 0");
    println!(
        "{name:<40} min {:>10.2?}  mean {:>10.2?}  max {:>10.2?}",
        m.min, m.mean, m.max
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_measures() {
        let mut calls = 0u32;
        let m = bench("test-case", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, SAMPLES as u32);
        assert!(m.min <= m.mean && m.mean <= m.max);
        assert!(m.min <= m.p50 && m.p50 <= m.p95 && m.p95 <= m.max);
    }

    #[test]
    fn empty_sample_set_is_none_not_panic() {
        assert!(Measurement::from_times(&[]).is_none());
        assert!(percentile(&[], 95).is_none());
        assert!(percentile_u64(&[], 95).is_none());
        assert!(percentile_index(0, 95).is_none());
    }

    #[test]
    fn single_sample_summary_is_degenerate_not_wrong() {
        let one = [Duration::from_millis(7)];
        let m = Measurement::from_times(&one).unwrap();
        assert_eq!(m.min, one[0]);
        assert_eq!(m.mean, one[0]);
        assert_eq!(m.p50, one[0]);
        assert_eq!(m.p95, one[0]);
        assert_eq!(m.max, one[0]);
    }

    #[test]
    fn p95_index_saturates_for_tiny_samples() {
        // Nearest-rank floor: two samples → p95 picks index 0, never 2.
        assert_eq!(percentile_index(1, 95), Some(0));
        assert_eq!(percentile_index(2, 95), Some(0));
        assert_eq!(percentile_index(2, 100), Some(1));
        assert_eq!(percentile_index(21, 95), Some(19));
        // Out-of-range percentiles clamp instead of overflowing the index.
        assert_eq!(percentile_index(4, 400), Some(3));
    }

    #[test]
    fn percentiles_pick_real_samples() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_u64(&sorted, 50), Some(50));
        assert_eq!(percentile_u64(&sorted, 95), Some(95));
        assert_eq!(percentile_u64(&sorted, 0), Some(1));
        assert_eq!(percentile_u64(&sorted, 100), Some(100));
    }
}
