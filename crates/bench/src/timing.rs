//! A minimal measurement harness for the `benches/` targets.
//!
//! The benches are plain `main()` binaries (`harness = false`): each
//! calls [`bench()`] per case, which runs the closure a fixed number of
//! times and prints min / mean / max wall-clock. No statistics engine —
//! the simulations are deterministic, so run-to-run noise is purely
//! host-side and min is the robust figure.

use std::time::{Duration, Instant};

/// Samples per benchmark case.
pub const SAMPLES: usize = 10;

/// One measured case: timing summary over [`SAMPLES`] runs.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Fastest observed run.
    pub min: Duration,
    /// Mean over all runs.
    pub mean: Duration,
    /// Slowest observed run.
    pub max: Duration,
}

/// Runs `f` [`SAMPLES`] times, prints a `name: min/mean/max` line, and
/// returns the measurement. A result-consuming closure keeps the work
/// from being optimized away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    let mut times = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let value = f();
        times.push(start.elapsed());
        std::hint::black_box(value);
    }
    let min = *times.iter().min().expect("SAMPLES > 0");
    let max = *times.iter().max().expect("SAMPLES > 0");
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!("{name:<40} min {min:>10.2?}  mean {mean:>10.2?}  max {max:>10.2?}");
    Measurement { min, mean, max }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_measures() {
        let mut calls = 0u32;
        let m = bench("test-case", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, SAMPLES as u32);
        assert!(m.min <= m.mean && m.mean <= m.max);
    }
}
