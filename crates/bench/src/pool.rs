//! A coarse-grain job pool for simulation runs.
//!
//! Every `(workload, configuration, sweep-point)` cell of the evaluation
//! matrix is an independent simulation — each [`gpu::machine::Machine`]
//! is fully self-contained state — so the harness fans cells out across
//! OS threads and collects results back **in input order**. Determinism
//! is the contract: a pooled run returns exactly what a serial loop over
//! the same jobs would, byte for byte, regardless of thread count or
//! scheduling (enforced by `tests/determinism.rs`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed job: its payload plus the host wall-clock it took.
#[derive(Debug, Clone)]
pub struct JobResult<T> {
    /// The job's return value.
    pub value: T,
    /// Host wall-clock spent inside the job closure.
    pub host_time: Duration,
}

/// A pooled job panicked: its result slot is poisoned and carries the
/// panic payload instead of a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanicked {
    /// Index of the job in the input batch.
    pub job: usize,
    /// The panic message (or a placeholder for non-string payloads).
    pub message: String,
}

impl std::fmt::Display for JobPanicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.job, self.message)
    }
}

impl std::error::Error for JobPanicked {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A fixed-width pool of worker threads for a batch of jobs.
///
/// # Example
///
/// ```
/// use bench::pool::JobPool;
///
/// let pool = JobPool::new(4);
/// let jobs: Vec<_> = (0..10).map(|i| move || i * i).collect();
/// let results = pool.run(jobs);
/// let values: Vec<i32> = results.into_iter().map(|r| r.value).collect();
/// assert_eq!(values, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct JobPool {
    threads: usize,
}

impl JobPool {
    /// Creates a pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job, returning results in the jobs' input order.
    ///
    /// With one worker the jobs run inline on the calling thread — the
    /// serial reference path. With more, scoped threads pull jobs off a
    /// shared index; result slots are keyed by job index, so completion
    /// order never leaks into the output.
    ///
    /// # Panics
    ///
    /// A panicking job propagates after the batch (scoped-thread join),
    /// matching a serial loop's abort-on-first-failure semantics.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<JobResult<T>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        if self.threads == 1 || n == 1 {
            return jobs
                .into_iter()
                .map(|job| {
                    let start = Instant::now();
                    let value = job();
                    JobResult {
                        value,
                        host_time: start.elapsed(),
                    }
                })
                .collect();
        }

        // Each job sits in its own slot; workers claim indices through an
        // atomic cursor and deposit results into the matching result slot.
        let job_slots: Vec<Mutex<Option<F>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let result_slots: Vec<Mutex<Option<JobResult<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = job_slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    let start = Instant::now();
                    let value = job();
                    *result_slots[i].lock().expect("result slot poisoned") = Some(JobResult {
                        value,
                        host_time: start.elapsed(),
                    });
                });
            }
        });

        result_slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("job never completed")
            })
            .collect()
    }

    /// Like [`JobPool::run`], but a panicking job yields a poisoned-slot
    /// [`JobPanicked`] error instead of tearing down the whole batch — the
    /// remaining jobs still run and return. Result order is still the
    /// jobs' input order.
    ///
    /// This is the right entry point for fault-injection campaigns, where
    /// a job *deliberately* drives the simulator into invariant panics:
    /// one tripped oracle must not discard the rest of the campaign.
    pub fn run_catching<T, F>(&self, jobs: Vec<F>) -> Vec<Result<JobResult<T>, JobPanicked>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let wrapped: Vec<_> = jobs
            .into_iter()
            .map(|job| {
                move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                        .map_err(panic_message)
                }
            })
            .collect();
        self.run(wrapped)
            .into_iter()
            .enumerate()
            .map(|(job, r)| match r.value {
                Ok(value) => Ok(JobResult {
                    value,
                    host_time: r.host_time,
                }),
                Err(message) => Err(JobPanicked { job, message }),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Jobs finish out of order (later jobs are cheaper), results
        // must not.
        let pool = JobPool::new(4);
        let jobs: Vec<_> = (0..32u64)
            .map(|i| {
                move || {
                    let mut acc = 0u64;
                    for k in 0..(32 - i) * 1000 {
                        acc = acc.wrapping_add(k).rotate_left(1);
                    }
                    (i, acc)
                }
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out.len(), 32);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.value.0, i as u64);
        }
    }

    #[test]
    fn one_thread_matches_many_threads() {
        let job_list = || (0..16u32).map(|i| move || i * 3 + 1).collect::<Vec<_>>();
        let serial: Vec<u32> = JobPool::new(1)
            .run(job_list())
            .into_iter()
            .map(|r| r.value)
            .collect();
        let parallel: Vec<u32> = JobPool::new(8)
            .run(job_list())
            .into_iter()
            .map(|r| r.value)
            .collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_batch_is_fine() {
        let out = JobPool::new(4).run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(JobPool::new(0).threads(), 1);
    }

    #[test]
    fn panicking_job_poisons_only_its_own_slot() {
        // Silence the default panic hook for the deliberate panics below.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let pool = JobPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..8u32)
            .map(|i| {
                Box::new(move || {
                    assert!(i != 3, "deliberate failure in job 3");
                    i * 10
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        let out = pool.run_catching(jobs);
        std::panic::set_hook(prev);
        assert_eq!(out.len(), 8);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.job, 3);
                assert!(err.message.contains("deliberate failure"), "{err}");
            } else {
                assert_eq!(r.as_ref().unwrap().value, i as u32 * 10);
            }
        }
    }

    #[test]
    fn host_time_is_recorded() {
        let out = JobPool::new(2).run(vec![
            || std::thread::sleep(Duration::from_millis(2)),
            || std::thread::sleep(Duration::from_millis(2)),
        ]);
        assert!(out.iter().all(|r| r.host_time >= Duration::from_millis(1)));
    }
}
