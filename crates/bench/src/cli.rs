//! Shared command-line conventions for the experiment binaries.
//!
//! Every binary accepts `--threads N` (or the `STASH_THREADS` environment
//! variable) to size the simulation job pool; unset, the pool uses every
//! available core. Parallelism never changes results — see the
//! determinism contract in [`crate::pool`].

/// The usage line binaries print for the shared flags.
pub const THREADS_USAGE: &str =
    "--threads N   worker threads for the simulation pool (default: all cores;\n              \
     also settable via STASH_THREADS)";

/// The usage line for the runtime invariant oracle flag.
pub const VERIFY_USAGE: &str =
    "--verify      cross-check protocol invariants (single registered owner,\n              \
     registry/owner agreement) after every memory-system transition; slow";

/// True when `--verify` appears in the arguments (or `STASH_VERIFY=1`).
pub fn verify_flag(args: &[String]) -> bool {
    args.iter().any(|a| a == "--verify") || std::env::var("STASH_VERIFY").is_ok_and(|v| v == "1")
}

/// Resolves the worker-thread count from `--threads N` / `--threads=N`,
/// then `STASH_THREADS`, then the host's available parallelism.
///
/// Malformed values exit with usage (status 2), like the binaries' other
/// argument errors.
pub fn thread_count(args: &[String]) -> usize {
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        return parse_threads(args.get(i + 1).map(String::as_str).unwrap_or(""));
    }
    if let Some(eq) = args.iter().find_map(|a| a.strip_prefix("--threads=")) {
        return parse_threads(eq);
    }
    if let Ok(env) = std::env::var("STASH_THREADS") {
        return parse_threads(&env);
    }
    default_threads()
}

/// The host's available parallelism (1 if unknown).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn parse_threads(s: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("--threads/STASH_THREADS must be a positive integer, got {s:?}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn explicit_flag_wins() {
        assert_eq!(thread_count(&args(&["fig5", "--threads", "3"])), 3);
        assert_eq!(thread_count(&args(&["fig5", "--threads=7"])), 7);
    }

    #[test]
    fn default_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn verify_flag_only_set_when_asked() {
        assert!(verify_flag(&args(&["fig5", "--verify"])));
        assert!(!verify_flag(&args(&["fig5", "--threads", "3"])));
    }
}
