//! Shared command-line conventions for the experiment binaries.
//!
//! Every binary accepts `--threads N` (or the `STASH_THREADS` environment
//! variable) to size the simulation job pool; unset, the pool uses every
//! available core. Parallelism never changes results — see the
//! determinism contract in [`crate::pool`].

/// The usage line binaries print for the shared flags.
pub const THREADS_USAGE: &str =
    "--threads N   worker threads for the simulation pool (default: all cores;\n              \
     also settable via STASH_THREADS)";

/// The usage line for the runtime invariant oracle flag.
pub const VERIFY_USAGE: &str =
    "--verify      cross-check protocol invariants (single registered owner,\n              \
     registry/owner agreement) after every memory-system transition; slow";

/// The usage line for machine-readable output.
pub const JSON_USAGE: &str = "--json        emit machine-readable JSON instead of the text report";

/// The usage line for deterministic fault injection.
pub const FAULT_SEED_USAGE: &str =
    "--fault-seed S  inject the deterministic chaos fault schedule seeded by S\n              \
     (also settable via STASH_FAULT_SEED); omitted = no injection";

/// True when `--verify` appears in the arguments (or `STASH_VERIFY=1`).
pub fn verify_flag(args: &[String]) -> bool {
    args.iter().any(|a| a == "--verify") || std::env::var("STASH_VERIFY").is_ok_and(|v| v == "1")
}

/// True when `--json` appears in the arguments.
pub fn json_flag(args: &[String]) -> bool {
    args.iter().any(|a| a == "--json")
}

/// Removes the shared flags (`--threads N`, `--threads=N`, `--verify`,
/// `--json`, `--fault-seed S`, `--fault-seed=S`) from `args`, leaving only
/// the binary name and positional operands. Read the flags first with
/// [`thread_count`] / [`verify_flag`] / [`json_flag`] / [`fault_seed`];
/// this only cleans up for positional parsing.
pub fn strip_common_flags(args: &mut Vec<String>) {
    for flag in ["--threads", "--fault-seed"] {
        if let Some(i) = args.iter().position(|a| a == flag) {
            args.drain(i..(i + 2).min(args.len()));
        }
    }
    args.retain(|a| {
        !a.starts_with("--threads=")
            && !a.starts_with("--fault-seed=")
            && a != "--verify"
            && a != "--json"
    });
}

/// The fault-injection seed from `--fault-seed S` / `--fault-seed=S`,
/// then `STASH_FAULT_SEED`; `None` means injection stays off.
///
/// Malformed values exit with usage (status 2), like the binaries' other
/// argument errors.
pub fn fault_seed(args: &[String]) -> Option<u64> {
    if let Some(i) = args.iter().position(|a| a == "--fault-seed") {
        return Some(parse_fault_seed(
            args.get(i + 1).map(String::as_str).unwrap_or(""),
        ));
    }
    if let Some(eq) = args.iter().find_map(|a| a.strip_prefix("--fault-seed=")) {
        return Some(parse_fault_seed(eq));
    }
    if let Ok(env) = std::env::var("STASH_FAULT_SEED") {
        return Some(parse_fault_seed(&env));
    }
    None
}

fn parse_fault_seed(s: &str) -> u64 {
    s.parse::<u64>().unwrap_or_else(|_| {
        eprintln!("--fault-seed/STASH_FAULT_SEED must be an unsigned integer, got {s:?}");
        std::process::exit(2);
    })
}

/// Reports a simulation failure on stderr and picks the process exit
/// status: a no-progress watchdog trip ([`sim::SimError::Deadlock`])
/// prints its in-flight diagnostic dump and exits 3; any other simulation
/// error exits 1.
pub fn sim_failure_status(context: &str, error: &sim::SimError) -> i32 {
    if let sim::SimError::Deadlock {
        site,
        attempts,
        dump,
    } = error
    {
        eprintln!("{context}: no-progress watchdog tripped at {site} after {attempts} attempts");
        eprintln!("--- in-flight diagnostic dump ---");
        eprintln!("{dump}");
        3
    } else {
        eprintln!("{context}: {error}");
        1
    }
}

/// Reads and parses a trace file, exiting with status 2 (like the
/// binaries' other argument errors) if it cannot be read or parsed.
pub fn load_trace(path: &str) -> workloads::trace::TraceWorkload {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    workloads::trace::parse_trace(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(2);
    })
}

/// Resolves a configuration name (case-insensitive), exiting with status 2
/// and the list of valid names if it is unknown.
pub fn config_by_name(s: &str) -> gpu::config::MemConfigKind {
    gpu::config::MemConfigKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(s))
        .unwrap_or_else(|| {
            let names: Vec<_> = gpu::config::MemConfigKind::ALL
                .into_iter()
                .map(|k| k.name())
                .collect();
            eprintln!(
                "unknown configuration {s} (expected one of {})",
                names.join(", ")
            );
            std::process::exit(2);
        })
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Resolves the worker-thread count from `--threads N` / `--threads=N`,
/// then `STASH_THREADS`, then the host's available parallelism.
///
/// Malformed values exit with usage (status 2), like the binaries' other
/// argument errors.
pub fn thread_count(args: &[String]) -> usize {
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        return parse_threads(args.get(i + 1).map(String::as_str).unwrap_or(""));
    }
    if let Some(eq) = args.iter().find_map(|a| a.strip_prefix("--threads=")) {
        return parse_threads(eq);
    }
    if let Ok(env) = std::env::var("STASH_THREADS") {
        return parse_threads(&env);
    }
    default_threads()
}

/// The host's available parallelism (1 if unknown).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn parse_threads(s: &str) -> usize {
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("--threads/STASH_THREADS must be a positive integer, got {s:?}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn explicit_flag_wins() {
        assert_eq!(thread_count(&args(&["fig5", "--threads", "3"])), 3);
        assert_eq!(thread_count(&args(&["fig5", "--threads=7"])), 7);
    }

    #[test]
    fn default_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn verify_flag_only_set_when_asked() {
        assert!(verify_flag(&args(&["fig5", "--verify"])));
        assert!(!verify_flag(&args(&["fig5", "--threads", "3"])));
    }

    #[test]
    fn json_flag_only_set_when_asked() {
        assert!(json_flag(&args(&["advise", "--json"])));
        assert!(!json_flag(&args(&["advise", "a.trace"])));
    }

    #[test]
    fn strip_common_flags_leaves_positionals() {
        let mut a = args(&[
            "run-trace",
            "--threads",
            "3",
            "x.trace",
            "--verify",
            "Stash",
        ]);
        strip_common_flags(&mut a);
        assert_eq!(a, args(&["run-trace", "x.trace", "Stash"]));

        let mut b = args(&["advise", "--threads=2", "--json", "y.trace"]);
        strip_common_flags(&mut b);
        assert_eq!(b, args(&["advise", "y.trace"]));

        let mut c = args(&["chaos", "--fault-seed", "9", "--fault-seed=11", "z.trace"]);
        strip_common_flags(&mut c);
        assert_eq!(c, args(&["chaos", "z.trace"]));
    }

    #[test]
    fn fault_seed_parses_both_spellings() {
        assert_eq!(fault_seed(&args(&["fig5", "--fault-seed", "42"])), Some(42));
        assert_eq!(fault_seed(&args(&["fig5", "--fault-seed=7"])), Some(7));
        assert_eq!(fault_seed(&args(&["fig5"])), None);
    }

    #[test]
    fn deadlock_failure_reports_status_3() {
        let e = sim::SimError::Deadlock {
            site: "cache.load",
            attempts: 9,
            dump: "in-flight: none".to_string(),
        };
        assert_eq!(sim_failure_status("test", &e), 3);
        let other = sim::SimError::Config("bad".to_string());
        assert_eq!(sim_failure_status("test", &other), 1);
    }

    #[test]
    fn config_names_resolve_case_insensitively() {
        use gpu::config::MemConfigKind;
        assert_eq!(config_by_name("stash"), MemConfigKind::Stash);
        assert_eq!(config_by_name("ScratchGD"), MemConfigKind::ScratchGD);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
