//! Experiment harness: runs the configuration matrix and formats every
//! table and figure of the paper.
//!
//! The binaries (`fig5`, `fig6`, `table1`–`table3`, `sweep`, `ablation`,
//! `run-trace`, `inspect`) and the benches build on
//! [`run_matrix_parallel`] / [`FigurePanel`]: fan the `(workload ×
//! configuration)` cells out across a [`pool::JobPool`], normalize to
//! the Scratch baseline (exactly as the paper's figures do), and print
//! the rows. Parallelism never changes output: results are collected in
//! input order and every simulation is deterministic, so an `N`-thread
//! run is byte-identical to a serial one (see `tests/determinism.rs`).

#![forbid(unsafe_code)]

pub mod chaos;
pub mod cli;
pub mod crash;
pub mod golden;
pub mod json;
pub mod pool;
pub mod profile;
pub mod server;
pub mod timing;

use std::time::{Duration, Instant};

use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use gpu::report::RunReport;
use noc::MsgClass;
use pool::JobPool;
use sim::SimError;
use workloads::suite::Workload;

/// One workload's reports across configurations.
#[derive(Debug)]
pub struct MatrixRow {
    /// The workload name.
    pub workload: &'static str,
    /// `(configuration, report)` pairs, in the requested order.
    pub reports: Vec<(MemConfigKind, RunReport)>,
}

impl MatrixRow {
    /// The report for one configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration was not part of the run.
    pub fn report(&self, kind: MemConfigKind) -> &RunReport {
        &self
            .reports
            .iter()
            .find(|(k, _)| *k == kind)
            .unwrap_or_else(|| panic!("{kind} was not simulated"))
            .1
    }

    /// The Scratch baseline report.
    pub fn baseline(&self) -> &RunReport {
        self.report(MemConfigKind::Scratch)
    }
}

/// Simulator-throughput measurements of one matrix run.
#[derive(Debug, Clone, Copy)]
pub struct MatrixStats {
    /// Number of `(workload, configuration)` simulation jobs.
    pub jobs: usize,
    /// Worker threads the pool ran with.
    pub threads: usize,
    /// Wall-clock of the whole batch.
    pub wall: Duration,
    /// Summed per-job host time (the serial-equivalent cost).
    pub busy: Duration,
    /// Total simulated cycles (GPU + CPU) across all jobs.
    pub sim_cycles: u64,
}

impl MatrixStats {
    /// Jobs completed per host second.
    pub fn jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Simulated cycles per host second (simulator throughput).
    pub fn sim_cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Ratio of serial-equivalent time to wall-clock (the realized
    /// parallel speedup).
    pub fn speedup(&self) -> f64 {
        self.busy.as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }

    /// The throughput line the binaries print.
    pub fn summary(&self) -> String {
        format!(
            "[harness] {} jobs on {} thread{} in {:.2?} — {:.1} jobs/s, \
             {:.2} Msimcycles/s, speedup {:.2}x",
            self.jobs,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.wall,
            self.jobs_per_sec(),
            self.sim_cycles_per_sec() / 1e6,
            self.speedup(),
        )
    }
}

/// Runs `workload` on every configuration in `kinds`, serially.
///
/// # Panics
///
/// Panics if a simulation rejects the program (a workload/config bug).
pub fn run_workload(workload: &Workload, kinds: &[MemConfigKind]) -> MatrixRow {
    let reports = kinds
        .iter()
        .map(|&kind| (kind, run_cell(workload, kind)))
        .collect();
    MatrixRow {
        workload: workload.name,
        reports,
    }
}

/// One cell of the matrix: `workload` on `kind`, a self-contained job.
///
/// # Panics
///
/// Panics if the simulation rejects the program (a workload/config bug).
pub fn run_cell(workload: &Workload, kind: MemConfigKind) -> RunReport {
    run_cell_verified(workload, kind, false)
}

/// [`run_cell`] with the runtime invariant oracle optionally enabled
/// (`--verify` on the binaries): the memory system then cross-checks the
/// protocol invariants after every transition.
///
/// # Panics
///
/// Panics if the simulation rejects the program, or — with `verify` on —
/// if the oracle finds an invariant violation.
pub fn run_cell_verified(workload: &Workload, kind: MemConfigKind, verify: bool) -> RunReport {
    try_run_cell(workload, kind, verify)
        .unwrap_or_else(|e| panic!("{} on {kind}: {e}", workload.name))
}

/// [`run_cell_verified`] with simulation failures returned as values —
/// in particular a no-progress watchdog trip ([`SimError::Deadlock`]),
/// which carries its in-flight diagnostic dump for the caller to print.
///
/// # Errors
///
/// Returns the simulation's error (configuration, mapping, or watchdog
/// deadlock) instead of panicking.
pub fn try_run_cell(
    workload: &Workload,
    kind: MemConfigKind,
    verify: bool,
) -> Result<RunReport, SimError> {
    let program = (workload.build)(kind);
    let mut machine = Machine::new(workload.set.system_config(), kind);
    machine.memory_mut().set_verify(verify);
    machine.run(&program)
}

/// A failed matrix cell: which `(workload, configuration)` pair died and
/// why. The binaries print a watchdog deadlock's diagnostic dump and exit
/// nonzero via [`cli::sim_failure_status`].
#[derive(Debug)]
pub struct MatrixCellError {
    /// The failing cell's workload name.
    pub workload: &'static str,
    /// The failing cell's configuration.
    pub kind: MemConfigKind,
    /// The simulation error.
    pub error: SimError,
}

impl std::fmt::Display for MatrixCellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on {}: {}", self.workload, self.kind, self.error)
    }
}

impl std::error::Error for MatrixCellError {}

/// Runs several workloads over the configuration list, serially.
///
/// The serial reference path: identical output to
/// [`run_matrix_parallel`] at any thread count.
pub fn run_matrix(workloads: &[Workload], kinds: &[MemConfigKind]) -> Vec<MatrixRow> {
    run_matrix_parallel(workloads, kinds, 1).0
}

/// Fans the full `(workload × configuration)` matrix out across
/// `threads` pool workers and reassembles the rows in input order.
///
/// Every cell is an independent [`Machine`], so scheduling cannot affect
/// results; the returned rows are byte-identical to a serial run.
///
/// # Panics
///
/// Panics if any simulation rejects its program (a workload/config bug).
pub fn run_matrix_parallel(
    workloads: &[Workload],
    kinds: &[MemConfigKind],
    threads: usize,
) -> (Vec<MatrixRow>, MatrixStats) {
    run_matrix_verified(workloads, kinds, threads, false)
}

/// [`run_matrix_parallel`] with the runtime invariant oracle optionally
/// enabled on every cell (the binaries' `--verify` flag).
///
/// # Panics
///
/// Panics if any simulation rejects its program, or — with `verify` on —
/// if the oracle finds an invariant violation in any cell.
pub fn run_matrix_verified(
    workloads: &[Workload],
    kinds: &[MemConfigKind],
    threads: usize,
    verify: bool,
) -> (Vec<MatrixRow>, MatrixStats) {
    run_matrix_checked(workloads, kinds, threads, verify).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_matrix_verified`] with simulation failures returned as values:
/// the first failing cell (in matrix order) comes back as a
/// [`MatrixCellError`] instead of a panic, so the binaries can print a
/// watchdog deadlock's diagnostic dump and exit nonzero.
///
/// # Errors
///
/// Returns the first cell (in `workloads × kinds` order) whose simulation
/// failed.
pub fn run_matrix_checked(
    workloads: &[Workload],
    kinds: &[MemConfigKind],
    threads: usize,
    verify: bool,
) -> Result<(Vec<MatrixRow>, MatrixStats), MatrixCellError> {
    let pool = JobPool::new(threads);
    let start = Instant::now();
    let jobs: Vec<_> = workloads
        .iter()
        .flat_map(|w| kinds.iter().map(move |&kind| (w, kind)))
        .map(|(w, kind)| move || (w.name, kind, try_run_cell(w, kind, verify)))
        .collect();
    let jobs_len = jobs.len();
    let results = pool.run(jobs);
    let wall = start.elapsed();

    let busy = results.iter().map(|r| r.host_time).sum();
    let mut reports = Vec::with_capacity(results.len());
    for r in results {
        let (workload, kind, outcome) = r.value;
        match outcome {
            Ok(report) => reports.push(report),
            Err(error) => {
                return Err(MatrixCellError {
                    workload,
                    kind,
                    error,
                })
            }
        }
    }
    let sim_cycles = reports.iter().map(|r| r.gpu_cycles + r.cpu_cycles).sum();
    let mut reports = reports.into_iter();
    let rows = workloads
        .iter()
        .map(|w| MatrixRow {
            workload: w.name,
            reports: kinds
                .iter()
                .map(|&kind| (kind, reports.next().expect("one report per cell")))
                .collect(),
        })
        .collect();
    Ok((
        rows,
        MatrixStats {
            jobs: jobs_len,
            threads: pool.threads(),
            wall,
            busy,
            sim_cycles,
        },
    ))
}

/// Which quantity a figure panel plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigurePanel {
    /// Execution time (Figures 5a, 6a).
    Time,
    /// Dynamic energy (Figures 5b, 6b), with the component split.
    Energy,
    /// GPU instruction count (Figure 5c).
    Instructions,
    /// Network traffic in flit crossings (Figure 5d), split by class.
    Traffic,
}

impl FigurePanel {
    /// Parses a `--panel` argument.
    pub fn parse(s: &str) -> Option<FigurePanel> {
        match s {
            "time" => Some(FigurePanel::Time),
            "energy" => Some(FigurePanel::Energy),
            "instructions" => Some(FigurePanel::Instructions),
            "traffic" => Some(FigurePanel::Traffic),
            _ => None,
        }
    }

    /// All panels of Figure 5.
    pub const FIG5: [FigurePanel; 4] = [
        FigurePanel::Time,
        FigurePanel::Energy,
        FigurePanel::Instructions,
        FigurePanel::Traffic,
    ];

    /// The panel's figure title.
    pub fn title(self) -> &'static str {
        match self {
            FigurePanel::Time => "Execution time",
            FigurePanel::Energy => "Dynamic energy",
            FigurePanel::Instructions => "GPU instruction count",
            FigurePanel::Traffic => "Network traffic (flit-crossings)",
        }
    }

    /// The panel's raw quantity for one report.
    pub fn raw(self, report: &RunReport) -> u64 {
        match self {
            FigurePanel::Time => report.total_picos,
            FigurePanel::Energy => report.total_energy(),
            FigurePanel::Instructions => report.gpu_instructions,
            FigurePanel::Traffic => report.traffic.total_crossings(),
        }
    }

    /// The normalized percentage for one report (baseline = 100).
    ///
    /// # Panics
    ///
    /// Panics if the baseline quantity is zero; degenerate inputs should
    /// go through [`FigurePanel::percent_or_baseline`].
    pub fn percent(self, report: &RunReport, baseline: &RunReport) -> u64 {
        match self {
            FigurePanel::Time => report.time_percent_of(baseline),
            FigurePanel::Energy => report.energy_percent_of(baseline),
            FigurePanel::Instructions => report.instructions_percent_of(baseline),
            FigurePanel::Traffic => report.traffic_percent_of(baseline),
        }
    }

    /// Like [`FigurePanel::percent`], but a zero-quantity baseline
    /// (possible for any panel in degenerate workloads — e.g. an empty
    /// trace, or traffic-free microbenchmarks) normalizes to 100 instead
    /// of panicking.
    pub fn percent_or_baseline(self, report: &RunReport, baseline: &RunReport) -> u64 {
        if self.raw(baseline) == 0 {
            return 100;
        }
        self.percent(report, baseline)
    }
}

/// Prints one panel as the paper's normalized bars (Scratch = 100%).
pub fn print_panel(panel: FigurePanel, rows: &[MatrixRow], kinds: &[MemConfigKind]) {
    println!("\n=== {} (normalized to Scratch = 100) ===", panel.title());
    if rows.is_empty() {
        println!("(no workloads)");
        return;
    }
    print!("{:<12}", "workload");
    for k in kinds {
        print!("{:>10}", k.name());
    }
    println!();
    let mut sums = vec![0u64; kinds.len()];
    for row in rows {
        print!("{:<12}", row.workload);
        let base = row.baseline();
        for (i, &k) in kinds.iter().enumerate() {
            let pct = panel.percent_or_baseline(row.report(k), base);
            sums[i] += pct;
            print!("{pct:>9}%");
        }
        println!();
    }
    print!("{:<12}", "average");
    for s in &sums {
        print!("{:>9}%", s / rows.len() as u64);
    }
    println!();

    // Component / class splits for the energy and traffic panels.
    match panel {
        FigurePanel::Energy => {
            println!("\n-- energy split by component (% of own total) --");
            for row in rows {
                for &k in kinds {
                    let r = row.report(k);
                    let total = r.total_energy().max(1);
                    print!("{:<12}{:<10}", row.workload, k.name());
                    for (c, e) in r.energy.iter() {
                        print!(" {}={:>3}%", c.label(), e * 100 / total);
                    }
                    println!();
                }
            }
        }
        FigurePanel::Traffic => {
            println!("\n-- traffic split by message class (% of own total) --");
            for row in rows {
                for &k in kinds {
                    let r = row.report(k);
                    let total = r.traffic.total_crossings().max(1);
                    print!("{:<12}{:<10}", row.workload, k.name());
                    for class in MsgClass::ALL {
                        print!(
                            " {}={:>3}%",
                            class.name(),
                            r.traffic.crossings(class) * 100 / total
                        );
                    }
                    println!();
                }
            }
        }
        _ => {}
    }
}

/// Geometric-mean style summary the paper quotes in §6.2/§6.3: the
/// average percentage-point reduction of `subject` vs `versus`. Zero for
/// an empty matrix.
pub fn average_reduction(
    rows: &[MatrixRow],
    panel: FigurePanel,
    subject: MemConfigKind,
    versus: MemConfigKind,
) -> i64 {
    if rows.is_empty() {
        return 0;
    }
    let mut total = 0i64;
    for row in rows {
        let s = panel.percent_or_baseline(row.report(subject), row.baseline()) as i64;
        let v = panel.percent_or_baseline(row.report(versus), row.baseline()) as i64;
        // Reduction relative to the comparison configuration.
        total += 100 - s * 100 / v.max(1);
    }
    total / rows.len() as i64
}

/// Writes one figure's full panel set as CSV (one row per
/// workload×configuration, all four quantities normalized to Scratch plus
/// the raw values) — for downstream plotting.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_csv(
    path: &std::path::Path,
    rows: &[MatrixRow],
    kinds: &[MemConfigKind],
) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)?;
    f.write_all(csv_bytes(rows, kinds).as_bytes())
}

/// The CSV text [`write_csv`] produces (determinism tests compare these
/// bytes across thread counts).
pub fn csv_bytes(rows: &[MatrixRow], kinds: &[MemConfigKind]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str(
        "workload,config,time_pct,energy_pct,instructions_pct,traffic_pct,\
         time_ps,energy_fj,gpu_instructions,flit_crossings,read_crossings,\
         write_crossings,writeback_crossings\n",
    );
    for row in rows {
        let base = row.baseline();
        for &k in kinds {
            let r = row.report(k);
            // A zero-quantity baseline (possible for every panel in
            // degenerate workloads) normalizes to 100 rather than
            // panicking.
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                row.workload,
                k.name(),
                FigurePanel::Time.percent_or_baseline(r, base),
                FigurePanel::Energy.percent_or_baseline(r, base),
                FigurePanel::Instructions.percent_or_baseline(r, base),
                FigurePanel::Traffic.percent_or_baseline(r, base),
                r.total_picos,
                r.total_energy(),
                r.gpu_instructions,
                r.traffic.total_crossings(),
                r.traffic.crossings(MsgClass::Read),
                r.traffic.crossings(MsgClass::Write),
                r.traffic.crossings(MsgClass::Writeback),
            )
            .expect("writing to String cannot fail");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::report::RunReport;

    fn fake_report(picos: u64, energy_fj: u64, instrs: u64) -> RunReport {
        let mut r = RunReport {
            total_picos: picos,
            gpu_instructions: instrs,
            ..RunReport::default()
        };
        r.energy.add(energy::Component::GpuCore, energy_fj);
        r
    }

    fn fake_row(scratch: (u64, u64, u64), stash: (u64, u64, u64)) -> MatrixRow {
        MatrixRow {
            workload: "fake",
            reports: vec![
                (
                    MemConfigKind::Scratch,
                    fake_report(scratch.0, scratch.1, scratch.2),
                ),
                (MemConfigKind::Stash, fake_report(stash.0, stash.1, stash.2)),
            ],
        }
    }

    #[test]
    fn panel_parse_roundtrip() {
        for (s, p) in [
            ("time", FigurePanel::Time),
            ("energy", FigurePanel::Energy),
            ("instructions", FigurePanel::Instructions),
            ("traffic", FigurePanel::Traffic),
        ] {
            assert_eq!(FigurePanel::parse(s), Some(p));
        }
        assert_eq!(FigurePanel::parse("cycles"), None);
    }

    #[test]
    fn percent_normalizes_to_baseline() {
        let row = fake_row((1000, 2000, 100), (500, 500, 60));
        let base = row.baseline();
        let stash = row.report(MemConfigKind::Stash);
        assert_eq!(FigurePanel::Time.percent(stash, base), 50);
        assert_eq!(FigurePanel::Energy.percent(stash, base), 25);
        assert_eq!(FigurePanel::Instructions.percent(stash, base), 60);
    }

    #[test]
    fn zero_baseline_normalizes_to_100_instead_of_panicking() {
        // An all-zero baseline row: every panel quantity is degenerate.
        let row = fake_row((0, 0, 0), (500, 500, 60));
        let base = row.baseline();
        let stash = row.report(MemConfigKind::Stash);
        for panel in FigurePanel::FIG5 {
            assert_eq!(panel.percent_or_baseline(stash, base), 100);
        }
    }

    #[test]
    fn empty_matrix_prints_and_averages_without_panicking() {
        print_panel(FigurePanel::Time, &[], &[MemConfigKind::Scratch]);
        assert_eq!(
            average_reduction(
                &[],
                FigurePanel::Time,
                MemConfigKind::Stash,
                MemConfigKind::Scratch,
            ),
            0
        );
        let csv = csv_bytes(&[], &[MemConfigKind::Scratch]);
        assert_eq!(csv.lines().count(), 1, "header only");
    }

    #[test]
    fn average_reduction_over_rows() {
        let rows = vec![
            fake_row((1000, 1000, 10), (500, 500, 10)), // 50% reduction
            fake_row((1000, 1000, 10), (750, 750, 10)), // 25% reduction
        ];
        let avg = average_reduction(
            &rows,
            FigurePanel::Time,
            MemConfigKind::Stash,
            MemConfigKind::Scratch,
        );
        assert_eq!(avg, 37); // (50 + 25) / 2, integer division
    }

    #[test]
    fn csv_has_header_and_one_line_per_cell() {
        let rows = vec![fake_row((1000, 1000, 10), (500, 500, 5))];
        let dir = std::env::temp_dir().join("stash_repro_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv(
            &path,
            &rows,
            &[MemConfigKind::Scratch, MemConfigKind::Stash],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 configurations
        assert!(lines[0].starts_with("workload,config,time_pct"));
        assert!(lines[1].starts_with("fake,Scratch,100"));
        assert!(lines[2].starts_with("fake,Stash,50"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_baseline_csv_writes_100_for_every_panel() {
        let rows = vec![fake_row((0, 0, 0), (500, 500, 5))];
        let csv = csv_bytes(&rows, &[MemConfigKind::Scratch, MemConfigKind::Stash]);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[1].starts_with("fake,Scratch,100,100,100,100"));
        assert!(lines[2].starts_with("fake,Stash,100,100,100,100"));
    }

    #[test]
    #[should_panic(expected = "was not simulated")]
    fn missing_config_panics() {
        let row = fake_row((1, 1, 1), (1, 1, 1));
        let _ = row.report(MemConfigKind::Cache);
    }
}
