//! Wall-clock benches for the design-choice ablations (DESIGN.md §4):
//! the §4.5 replication optimization on/off, and word- vs
//! line-granularity fetches on the Implicit microbenchmark.
//!
//! ```text
//! cargo bench -p bench --bench ablation
//! ```

use bench::timing;
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use workloads::suite;

fn main() {
    let workload = suite::by_name("reuse").expect("registered");
    let program = (workload.build)(MemConfigKind::Stash);
    timing::bench("ablation/replication/on", || {
        let mut machine = Machine::new(workload.set.system_config(), MemConfigKind::Stash);
        machine.run(&program).expect("reuse runs")
    });
    timing::bench("ablation/replication/off", || {
        let mut machine = Machine::new(workload.set.system_config(), MemConfigKind::Stash);
        machine.memory_mut().disable_stash_replication();
        machine.run(&program).expect("reuse runs")
    });

    // The stash's word-granularity fetches vs the cache's line fills on
    // the AoS-heavy Implicit microbenchmark.
    let workload = suite::by_name("implicit").expect("registered");
    for kind in [MemConfigKind::Stash, MemConfigKind::Cache] {
        let program = (workload.build)(kind);
        timing::bench(
            &format!("ablation/fetch-granularity/{}", kind.name()),
            || {
                let mut machine = Machine::new(workload.set.system_config(), kind);
                machine.run(&program).expect("implicit runs")
            },
        );
    }
}
