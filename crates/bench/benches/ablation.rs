//! Criterion benches for the design-choice ablations (DESIGN.md §4):
//! the §4.5 replication optimization on/off, and eager vs lazy
//! writeback behaviour on the Reuse microbenchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use workloads::suite;

fn bench_replication(c: &mut Criterion) {
    let workload = suite::by_name("reuse").expect("registered");
    let program = (workload.build)(MemConfigKind::Stash);
    let mut group = c.benchmark_group("ablation/replication");
    group.sample_size(10);
    group.bench_function("on", |b| {
        b.iter(|| {
            let mut machine = Machine::new(workload.set.system_config(), MemConfigKind::Stash);
            machine.run(&program).expect("reuse runs")
        });
    });
    group.bench_function("off", |b| {
        b.iter(|| {
            let mut machine = Machine::new(workload.set.system_config(), MemConfigKind::Stash);
            machine.memory_mut().disable_stash_replication();
            machine.run(&program).expect("reuse runs")
        });
    });
    group.finish();
}

fn bench_word_vs_line_granularity(c: &mut Criterion) {
    // The stash's word-granularity fetches vs the cache's line fills on
    // the AoS-heavy Implicit microbenchmark.
    let workload = suite::by_name("implicit").expect("registered");
    let mut group = c.benchmark_group("ablation/fetch-granularity");
    group.sample_size(10);
    for kind in [MemConfigKind::Stash, MemConfigKind::Cache] {
        let program = (workload.build)(kind);
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut machine = Machine::new(workload.set.system_config(), kind);
                machine.run(&program).expect("implicit runs")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replication, bench_word_vs_line_granularity);
criterion_main!(benches);
