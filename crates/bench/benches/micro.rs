//! Wall-clock benches over the Figure 5 microbenchmarks: one line per
//! `(microbenchmark, memory configuration)` cell.
//!
//! These measure the *simulator's* host time (useful for tracking model
//! regressions); the simulated results themselves come from the `fig5`
//! binary. Plain harness (`harness = false`), `bench::timing` engine:
//!
//! ```text
//! cargo bench -p bench --bench micro
//! ```

use bench::timing;
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use workloads::suite;

fn main() {
    for workload in suite::micros() {
        for kind in MemConfigKind::FIGURE5 {
            let program = (workload.build)(kind);
            timing::bench(&format!("fig5/{}/{}", workload.name, kind.name()), || {
                let mut machine = Machine::new(workload.set.system_config(), kind);
                machine.run(&program).expect("workload runs")
            });
        }
    }
}
