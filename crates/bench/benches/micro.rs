//! Criterion benches over the Figure 5 microbenchmarks: one group per
//! microbenchmark, one measurement per memory configuration.
//!
//! These measure the *simulator's* wall time (useful for tracking model
//! regressions); the simulated results themselves come from the `fig5`
//! binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use workloads::suite;

fn bench_micros(c: &mut Criterion) {
    for workload in suite::micros() {
        let mut group = c.benchmark_group(format!("fig5/{}", workload.name));
        group.sample_size(10);
        for kind in MemConfigKind::FIGURE5 {
            let program = (workload.build)(kind);
            group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
                b.iter(|| {
                    let mut machine = Machine::new(workload.set.system_config(), k);
                    machine.run(&program).expect("workload runs")
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_micros);
criterion_main!(benches);
