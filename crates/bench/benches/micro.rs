//! Wall-clock benches over the Figure 5 microbenchmarks — one line per
//! `(microbenchmark, memory configuration)` cell — plus hot-path
//! microbenches over the flat storage structures (direct-indexed LLC
//! slot table, stash map-index-table arena, direct-indexed page table).
//!
//! These measure the *simulator's* host time (useful for tracking model
//! regressions); the simulated results themselves come from the `fig5`
//! binary. Plain harness (`harness = false`), `bench::timing` engine:
//!
//! ```text
//! cargo bench -p bench --bench micro
//! ```

use bench::timing;
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use mem::addr::{PAddr, VAddr};
use mem::cache::DenovoCache;
use mem::llc::{CoreId, Llc, LlcLoadOutcome, Registration};
use mem::paging::PageTable;
use mem::tile::TileMap;
use stash::{Stash, StashConfig, UsageMode};
use workloads::suite;

/// Words touched per hot-path bench iteration.
const LOOKUPS: u64 = 4096;

/// The flattened LLC: `load_word`/`registration` resolve through the
/// direct-indexed slot table and the word-tag arena.
fn bench_llc_lookups() {
    let mut llc = Llc::new(16, 64);
    for i in 0..LOOKUPS {
        let line = PAddr(i * 64).line(64);
        llc.line_fill(line, CoreId(0));
        if i % 2 == 0 {
            llc.register_word(line, (i % 16) as usize, Registration::Cache(CoreId(0)));
        }
    }
    timing::bench("flat/llc/load_word", || {
        let mut sum = 0u64;
        for i in 0..LOOKUPS {
            let line = PAddr(i * 64).line(64);
            sum += u64::from(matches!(
                llc.load_word(line, (i % 16) as usize),
                LlcLoadOutcome::Data { .. }
            ));
        }
        sum
    });
    timing::bench("flat/llc/registration", || {
        let mut owners = 0usize;
        for i in 0..LOOKUPS {
            let line = PAddr(i * 64).line(64);
            owners += usize::from(llc.registration(line, (i % 16) as usize).is_some());
        }
        owners
    });
}

/// The stash's dense map-index-table arena: `resolve_slot` is one
/// indexed read per live thread block, no hashing.
fn bench_stash_lookups() {
    let mut stash = Stash::new(StashConfig::default());
    let tile = TileMap::new(VAddr(0x10000), 4, 16, 256, 0, 1).expect("valid tile");
    let out = stash
        .add_map(7, tile, 0, UsageMode::MappedCoherent)
        .expect("map fits");
    timing::bench("flat/stash/resolve_slot", || {
        let mut hits = 0usize;
        for _ in 0..LOOKUPS {
            hits += usize::from(stash.resolve_slot(7, 0).is_some());
        }
        hits
    });
    timing::bench("flat/stash/load_hit", || {
        let mut cycles = 0usize;
        for w in 0..tile.local_words() as usize {
            cycles += usize::from(stash.load(w, out.index).expect("in range").missed());
        }
        cycles
    });
}

/// The direct-indexed page table: translate over a dense VA range.
fn bench_paging_lookups() {
    let mut pt = PageTable::new(4096);
    for p in 0..LOOKUPS {
        pt.translate(VAddr(p * 4096));
    }
    timing::bench("flat/paging/translate_hot", || {
        let mut sum = 0u64;
        for p in 0..LOOKUPS {
            sum = sum.wrapping_add(pt.translate(VAddr(p * 4096)).0);
        }
        sum
    });
}

/// The flattened L1: `word_state` probes resolve in the word-state
/// arena (one stripe per tag slot, no per-line boxes).
fn bench_cache_lookups() {
    let mut cache = DenovoCache::new(32 * 1024, 8, 64);
    for i in 0..LOOKUPS {
        cache.ensure_line(PAddr(i * 64));
        cache.fill_line_shared(PAddr(i * 64), &[]);
    }
    timing::bench("flat/l1/word_state", || {
        let mut hits = 0usize;
        for i in 0..LOOKUPS {
            hits += usize::from(cache.word_state(PAddr(i * 64 + (i % 16) * 4)).load_hits());
        }
        hits
    });
}

fn main() {
    bench_llc_lookups();
    bench_stash_lookups();
    bench_paging_lookups();
    bench_cache_lookups();
    for workload in suite::micros() {
        for kind in MemConfigKind::FIGURE5 {
            let program = (workload.build)(kind);
            timing::bench(&format!("fig5/{}/{}", workload.name, kind.name()), || {
                let mut machine = Machine::new(workload.set.system_config(), kind);
                machine.run(&program).expect("workload runs")
            });
        }
    }
}
