//! Criterion benches over the Figure 6 applications: one group per
//! application, one measurement per memory configuration.
//!
//! The heavier applications (LUD, NW) dominate; sample sizes are kept at
//! Criterion's minimum so a full sweep stays tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use workloads::suite;

fn bench_apps(c: &mut Criterion) {
    for workload in suite::applications() {
        let mut group = c.benchmark_group(format!("fig6/{}", workload.name));
        group.sample_size(10);
        for kind in MemConfigKind::FIGURE6 {
            let program = (workload.build)(kind);
            group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
                b.iter(|| {
                    let mut machine = Machine::new(workload.set.system_config(), k);
                    machine.run(&program).expect("workload runs")
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
