//! Wall-clock benches over the Figure 6 applications: one line per
//! `(application, memory configuration)` cell.
//!
//! The heavier applications (LUD, NW) dominate; `bench::timing` keeps
//! sample counts small so a full sweep stays tractable:
//!
//! ```text
//! cargo bench -p bench --bench apps
//! ```

use bench::timing;
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use workloads::suite;

fn main() {
    for workload in suite::applications() {
        for kind in MemConfigKind::FIGURE6 {
            let program = (workload.build)(kind);
            timing::bench(&format!("fig6/{}/{}", workload.name, kind.name()), || {
                let mut machine = Machine::new(workload.set.system_config(), kind);
                machine.run(&program).expect("workload runs")
            });
        }
    }
}
