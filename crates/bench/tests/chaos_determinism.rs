//! Property tests for the chaos harness (DESIGN.md §9).
//!
//! * Determinism: the same fault seeds and switches produce bit-identical
//!   outcomes, counters, and retry traces at any `--threads` setting.
//! * Contract: with resilience and parity on, no run silently escapes.
//! * Escape classes: with resilience off, the campaign flags (or
//!   exposes) at least one run — the machinery is load-bearing.
//! * Zero-rate injection: a quiescent injector is observationally
//!   identical to running with no injector at all.

use bench::chaos::{run_campaign, Campaign, CampaignConfig, Outcome, Target};
use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use sim::fault::FaultConfig;
use workloads::suite;

const KINDS: [MemConfigKind; 2] = [MemConfigKind::Cache, MemConfigKind::Stash];

/// Runs a two-workload campaign over [`KINDS`] with the given switches.
fn campaign(seeds: &[u64], threads: usize, resilience: bool, parity: bool) -> Campaign {
    let micros = suite::micros();
    let picked = [micros[0], micros[2]];
    let targets: Vec<Target<'_>> = picked
        .iter()
        .map(|w| Target {
            name: w.name.to_string(),
            sys: w.set.system_config(),
            build: &w.build,
        })
        .collect();
    let mut cfg = CampaignConfig::new(seeds.to_vec(), threads);
    cfg.resilience = resilience;
    cfg.parity = parity;
    run_campaign(&targets, &KINDS, &cfg).expect("golden runs clean")
}

#[test]
fn identical_seeds_are_bit_identical_across_thread_counts() {
    let serial = campaign(&[1, 2, 3], 1, true, true);
    let threaded = campaign(&[1, 2, 3], 4, true, true);
    assert_eq!(serial.cells.len(), threaded.cells.len());
    for (a, b) in serial.cells.iter().zip(&threaded.cells) {
        assert_eq!(
            (a.workload.as_str(), a.kind, a.seed),
            (b.workload.as_str(), b.kind, b.seed)
        );
        assert_eq!(
            a.outcome,
            b.outcome,
            "{} on {} seed {}: outcome depends on thread count",
            a.workload,
            a.kind.name(),
            a.seed
        );
        assert_eq!(
            a.fingerprint,
            b.fingerprint,
            "{} on {} seed {}: digest/counters/trace depend on thread count",
            a.workload,
            a.kind.name(),
            a.seed
        );
        assert_eq!((a.injected, a.retries), (b.injected, b.retries));
    }
}

#[test]
fn resilient_campaign_never_escapes() {
    let c = campaign(&[1, 2, 3, 4], 4, true, true);
    let escapes = c.escapes();
    assert!(
        escapes.is_empty(),
        "silent escapes with full resilience: {escapes:?}"
    );
    assert!(c.total_injected() > 0, "chaos rates injected nothing");
}

#[test]
fn disabling_resilience_surfaces_non_recovered_runs() {
    let c = campaign(&[1, 2, 3, 4], 4, false, true);
    let non_recovered = c
        .cells
        .iter()
        .filter(|cell| cell.outcome != Outcome::Recovered)
        .count();
    assert!(
        non_recovered > 0,
        "resilience off should trip the watchdog or leak state on some seed"
    );
}

#[test]
fn quiescent_injector_matches_fault_free_run() {
    let w = suite::micros()[0];
    for kind in KINDS {
        let program = (w.build)(kind);

        let mut plain = Machine::new(w.set.system_config(), kind);
        let plain_report = plain.run(&program).expect("fault-free run");

        let mut quiet = Machine::new(w.set.system_config(), kind);
        quiet
            .memory_mut()
            .set_fault_injector(FaultConfig::quiescent(7));
        let quiet_report = quiet.run(&program).expect("zero-rate run");

        assert_eq!(
            plain.memory().state_digest(),
            quiet.memory().state_digest(),
            "{}: zero-rate injector changed architectural state",
            kind.name()
        );
        assert_eq!(
            plain_report.total_picos,
            quiet_report.total_picos,
            "{}: zero-rate injector changed timing",
            kind.name()
        );
        assert_eq!(
            plain_report.counters,
            quiet_report.counters,
            "{}: zero-rate injector changed counters",
            kind.name()
        );
    }
}
