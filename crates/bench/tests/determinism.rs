//! The parallel harness's contract: thread count and scheduling never
//! change results. The full Figure 5 matrix at 1, 2, and N threads must
//! produce equal `RunReport`s — every cycle count, counter, energy and
//! traffic figure — and byte-identical CSV output.

use bench::{csv_bytes, run_matrix, run_matrix_parallel};
use gpu::config::MemConfigKind;
use workloads::suite;

#[test]
fn fig5_matrix_is_identical_at_any_thread_count() {
    let workloads = suite::micros();
    let kinds = MemConfigKind::FIGURE5;

    let serial = run_matrix(&workloads, &kinds);
    let n = bench::cli::default_threads().max(3);
    for threads in [2, n] {
        let (parallel, stats) = run_matrix_parallel(&workloads, &kinds, threads);
        assert_eq!(stats.threads, threads);
        assert_eq!(stats.jobs, workloads.len() * kinds.len());
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.workload, p.workload);
            for ((sk, sr), (pk, pr)) in s.reports.iter().zip(&p.reports) {
                assert_eq!(sk, pk);
                // Exact equality over the whole report: cycles, energy,
                // traffic, and every event counter.
                assert_eq!(
                    sr, pr,
                    "{} on {sk} diverged at {threads} threads",
                    s.workload
                );
            }
        }
        assert_eq!(
            csv_bytes(&serial, &kinds),
            csv_bytes(&parallel, &kinds),
            "CSV bytes diverged at {threads} threads"
        );
    }
}

#[test]
fn pool_reports_throughput_counters() {
    // One small workload: the stats must still be internally consistent.
    let workloads = &suite::micros()[..1];
    let kinds = [MemConfigKind::Scratch, MemConfigKind::Stash];
    let (rows, stats) = run_matrix_parallel(workloads, &kinds, 2);
    assert_eq!(rows.len(), 1);
    assert_eq!(stats.jobs, 2);
    let cycles: u64 = rows[0]
        .reports
        .iter()
        .map(|(_, r)| r.gpu_cycles + r.cpu_cycles)
        .sum();
    assert_eq!(stats.sim_cycles, cycles);
    assert!(stats.jobs_per_sec() > 0.0);
    assert!(stats.sim_cycles_per_sec() > 0.0);
    assert!(!stats.summary().is_empty());
}
