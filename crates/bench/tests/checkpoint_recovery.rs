//! The pinned resume==straight-through contract (DESIGN.md §15).
//!
//! For every Figure 5/6 matrix cell, checkpointing at each phase barrier
//! and restoring from a mid-program snapshot yields byte-identical
//! reports, counters, stall breakdowns (inside the counters), and state
//! digests versus an uninterrupted run — on the sequential seed path and
//! on the parallel path across thread counts {1, 8}. Alongside it: the
//! store-level recovery contract (truncated and corrupt snapshots are
//! rejected with the right error, old format versions are a version
//! mismatch rather than damage, and `latest_valid` falls back to the
//! newest good file).

use bench::pool::JobPool;
use gpu::config::MemConfigKind;
use gpu::machine::{Machine, ParallelConfig, RunCursor};
use sim::snapshot::{read_snapshot, CheckpointStore, Snapshot};
use sim::SimError;
use workloads::suite;

/// One cell's verdicts; empty = the contract holds.
fn check_cell(w: &suite::Workload, kind: MemConfigKind) -> Vec<String> {
    let sys = w.set.system_config();
    let program = (w.build)(kind);
    let mut failures = Vec::new();
    let resume_at = (program.phases.len() / 2).max(1);

    // Sequential seed path: golden, then checkpoint-at-every-barrier,
    // then resume from the mid-program snapshot.
    let mut golden = Machine::new(sys.clone(), kind);
    let golden_report = golden
        .run(&program)
        .unwrap_or_else(|e| panic!("{}/{kind} golden failed: {e}", w.name));
    let golden_digest = golden.memory().state_digest();

    let mut first = Machine::new(sys.clone(), kind);
    let mut cursor = RunCursor::default();
    let mut snap = None;
    let mut barriers = 0usize;
    let full = first
        .run_from(&program, None, &mut cursor, |m, c| {
            // Serialize at every barrier (the acceptance contract); keep
            // only the mid-program one for the resume leg.
            let s = m.checkpoint(&program, *c);
            barriers += 1;
            if c.next_phase == resume_at {
                snap = Some(s);
            }
            Ok(())
        })
        .unwrap_or_else(|e| panic!("{}/{kind} run_from failed: {e}", w.name));
    if full != golden_report {
        failures.push(format!("{}/{kind}: run_from report != run report", w.name));
    }
    if barriers != program.phases.len() {
        failures.push(format!("{}/{kind}: missed a barrier", w.name));
    }
    let snap = snap.expect("mid-program snapshot captured");
    let (mut resumed, mut rc) =
        Machine::resume(&snap, &program).unwrap_or_else(|e| panic!("{}/{kind}: {e}", w.name));
    let resumed_report = resumed
        .run_from(&program, None, &mut rc, |_, _| Ok(()))
        .unwrap_or_else(|e| panic!("{}/{kind} resumed run failed: {e}", w.name));
    if resumed_report != golden_report {
        failures.push(format!(
            "{}/{kind}: sequential resumed report diverged",
            w.name
        ));
    }
    if resumed.memory().state_digest() != golden_digest {
        failures.push(format!(
            "{}/{kind}: sequential resumed digest diverged",
            w.name
        ));
    }

    // Parallel path, threads 1 vs 8: straight-through at 1 thread is the
    // golden; the interrupted run checkpoints at 1 thread and resumes at
    // 8 — crossing the thread count over the snapshot boundary.
    let mut pgolden = Machine::new(sys.clone(), kind);
    let pgolden_report = pgolden
        .run_parallel(&program, &ParallelConfig::with_threads(1))
        .unwrap_or_else(|e| panic!("{}/{kind} parallel golden failed: {e}", w.name));
    let pgolden_digest = pgolden.memory().state_digest();

    let mut pfirst = Machine::new(sys.clone(), kind);
    let mut pcursor = RunCursor::default();
    let mut psnap = None;
    let one = ParallelConfig::with_threads(1);
    pfirst
        .run_from(&program, Some(&one), &mut pcursor, |m, c| {
            if c.next_phase == resume_at {
                psnap = Some(m.checkpoint(&program, *c));
            }
            Ok(())
        })
        .unwrap_or_else(|e| panic!("{}/{kind} parallel run_from failed: {e}", w.name));
    let (mut presumed, mut prc) = Machine::resume(&psnap.expect("parallel snapshot"), &program)
        .unwrap_or_else(|e| panic!("{}/{kind}: {e}", w.name));
    let eight = ParallelConfig::with_threads(8);
    let presumed_report = presumed
        .run_from(&program, Some(&eight), &mut prc, |_, _| Ok(()))
        .unwrap_or_else(|e| panic!("{}/{kind} parallel resumed run failed: {e}", w.name));
    if presumed_report != pgolden_report {
        failures.push(format!(
            "{}/{kind}: parallel resumed report (8 threads) diverged from \
             straight-through (1 thread)",
            w.name
        ));
    }
    if presumed.memory().state_digest() != pgolden_digest {
        failures.push(format!(
            "{}/{kind}: parallel resumed digest diverged",
            w.name
        ));
    }
    failures
}

#[test]
fn resume_equals_straight_through_across_the_matrix() {
    let cells: Vec<(suite::Workload, MemConfigKind)> = suite::all()
        .into_iter()
        .flat_map(|w| {
            w.set
                .figure_kinds()
                .iter()
                .map(move |&kind| (w, kind))
                .collect::<Vec<_>>()
        })
        .collect();
    let pool = JobPool::new(bench::cli::default_threads());
    let jobs: Vec<_> = cells
        .iter()
        .map(|(w, kind)| move || check_cell(w, *kind))
        .collect();
    let failures: Vec<String> = pool.run(jobs).into_iter().flat_map(|r| r.value).collect();
    assert!(
        failures.is_empty(),
        "resume==straight-through violated in {} cell check(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// A small real snapshot to damage in the store tests.
fn real_snapshot() -> (Snapshot, gpu::program::Program, sim::config::SystemConfig) {
    let w = suite::micros()[0];
    let sys = w.set.system_config();
    let program = (w.build)(MemConfigKind::Stash);
    let mut machine = Machine::new(sys.clone(), MemConfigKind::Stash);
    let mut cursor = RunCursor::default();
    let mut snap = None;
    machine
        .run_from(&program, None, &mut cursor, |m, c| {
            if snap.is_none() {
                snap = Some(m.checkpoint(&program, *c));
            }
            Ok(())
        })
        .unwrap();
    (snap.unwrap(), program, sys)
}

#[test]
fn truncated_and_corrupt_snapshots_are_rejected_with_fallback() {
    let (snap, program, _sys) = real_snapshot();
    let dir = std::env::temp_dir().join(format!("stash-ckpt-reject-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::open(&dir).unwrap();

    let good_seq = store.save(&snap).unwrap();
    let torn_seq = store.save(&snap).unwrap();
    let flipped_seq = store.save(&snap).unwrap();

    // Tear the middle file, flip a payload byte in the newest.
    let bytes = std::fs::read(store.path_for(torn_seq)).unwrap();
    std::fs::write(store.path_for(torn_seq), &bytes[..bytes.len() / 3]).unwrap();
    let mut flipped = std::fs::read(store.path_for(flipped_seq)).unwrap();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(store.path_for(flipped_seq), &flipped).unwrap();

    // Direct reads report corruption, not version trouble.
    for seq in [torn_seq, flipped_seq] {
        match read_snapshot(&store.path_for(seq)) {
            Err(SimError::CheckpointCorrupt { .. }) => {}
            other => panic!("damaged ckpt-{seq:04} must be CheckpointCorrupt, got {other:?}"),
        }
    }

    // The store falls back to the oldest intact snapshot, reporting both
    // rejects, and the survivor still resumes.
    let (seq, recovered, rejected) = store.latest_valid().expect("good snapshot survives");
    assert_eq!(seq, good_seq);
    assert_eq!(
        rejected.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        vec![flipped_seq, torn_seq],
        "rejects reported newest-first"
    );
    let (_, cursor) = Machine::resume(&recovered, &program).expect("survivor resumes");
    assert_eq!(cursor.next_phase, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn future_format_version_is_a_version_mismatch_not_corruption() {
    let (snap, _, _) = real_snapshot();
    let mut bytes = snap.to_bytes();
    // Version lives at offset 8 (after the 8-byte magic), LE u32.
    bytes[8] = bytes[8].wrapping_add(1);
    match Snapshot::from_bytes(&bytes) {
        Err(SimError::CheckpointVersionMismatch { found, expected }) => {
            assert_eq!(expected, sim::snapshot::FORMAT_VERSION);
            assert_eq!(found, u32::from(bytes[8]));
        }
        other => panic!("expected CheckpointVersionMismatch, got {other:?}"),
    }
}
