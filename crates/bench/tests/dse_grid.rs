//! Cross-validation of the surrogate predictor across hardware
//! geometries the paper never simulated.
//!
//! `crossval.rs` proves the static predictor agrees with the simulator
//! at the paper's operating point; this test proves the *surrogate
//! contract* the DSE engine rests on — the same agreement at every
//! point of a mesh-side {2, 4, 8} × LLC-bank {8, 16, 32} geometry
//! grid. Exact counters and instruction totals must match exactly,
//! modeled counters within the documented tolerances, and the
//! advisor's recommendation must stay the measured-best configuration
//! (or a documented tie) of that cell's Figure 5/6 matrix row.
//!
//! The full suite × full grid would be 9× the crossval matrix, so the
//! workloads rotate round-robin over the nine cells: every workload is
//! checked at a non-default geometry, every cell checks at least one
//! workload, and the whole Figure 5/6 suite stays covered.

use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use verify::dse::DesignPoint;
use verify::{analyze_workload, recommendation_ok, validate_prediction, Symbols};
use workloads::suite;

const MESH_SIDES: [usize; 3] = [2, 4, 8];
const L2_BANKS: [usize; 3] = [8, 16, 32];

#[test]
fn surrogate_cross_validates_across_the_geometry_grid() {
    let symbols = Symbols::new();
    let workloads = suite::all();
    let cells: Vec<(usize, usize)> = MESH_SIDES
        .iter()
        .flat_map(|&side| L2_BANKS.iter().map(move |&banks| (side, banks)))
        .collect();

    let mut failures = Vec::new();
    let mut cells_hit = std::collections::HashSet::new();
    for (i, w) in workloads.iter().enumerate() {
        let (side, banks) = cells[i % cells.len()];
        cells_hit.insert((side, banks));
        let point = DesignPoint {
            mesh_side: side,
            l2_banks: banks,
            ..DesignPoint::default()
        };
        let sys = point.apply(&w.set.system_config());
        sys.validate()
            .unwrap_or_else(|e| panic!("m{side}/b{banks} invalid: {e}"));
        let kinds = w.set.figure_kinds();
        let cell = format!("{} @ m{side}/b{banks}", w.name);

        let analysis = analyze_workload(w.build, &sys, kinds, &symbols);
        let mut measured: Vec<(MemConfigKind, u64)> = Vec::new();
        for pred in &analysis.predictions {
            let mut machine = Machine::new(sys.clone(), pred.kind);
            let report = machine
                .run(&(w.build)(pred.kind))
                .unwrap_or_else(|e| panic!("{cell}/{} failed to simulate: {e}", pred.kind));
            measured.push((pred.kind, report.total_picos));
            for err in validate_prediction(pred, &report) {
                failures.push(format!("{cell}/{}: {err}", pred.kind));
            }
        }
        if !recommendation_ok(analysis.recommended, &measured) {
            let best = measured
                .iter()
                .min_by_key(|&&(_, t)| t)
                .map(|&(k, _)| k)
                .expect("non-empty matrix row");
            failures.push(format!(
                "{cell}: recommended {} but measured best is {best} \
                 (outside the tie threshold)",
                analysis.recommended
            ));
        }
    }

    assert_eq!(
        cells_hit.len(),
        cells.len(),
        "every grid cell must be exercised"
    );
    assert!(
        failures.is_empty(),
        "geometry-grid cross-validation failures:\n{}",
        failures.join("\n")
    );
}
