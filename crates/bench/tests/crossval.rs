//! Cross-validation of the static analyzer against the simulator over
//! the full Figure 5/6 workload matrix.
//!
//! For every suite workload and every configuration its figure compares,
//! the static [`verify::Prediction`] must agree with the measured run:
//! exact counters and instruction totals exactly, modeled counters within
//! the tolerances documented on [`verify::analyze`], and the advisor's
//! recommended placement must be the measured-best configuration or a
//! documented tie (within `TIE_THRESHOLD_PCT` of the best runtime).
//!
//! The `advise` binary runs the same checks as a CI gate; this test keeps
//! them enforced under plain `cargo test` as well.

use gpu::config::MemConfigKind;
use gpu::machine::Machine;
use verify::{analyze_workload, recommendation_ok, validate_prediction, Symbols};
use workloads::suite::{self, WorkloadSet};

/// Cross-validates every workload of `set` over its figure's matrix row;
/// returns human-readable failure lines (empty = everything agreed).
fn crossval(set: WorkloadSet) -> Vec<String> {
    let sys = set.system_config();
    let kinds = set.figure_kinds();
    let symbols = Symbols::new();
    let mut failures = Vec::new();
    for w in suite::all().iter().filter(|w| w.set == set) {
        let analysis = analyze_workload(w.build, &sys, kinds, &symbols);
        let mut measured: Vec<(MemConfigKind, u64)> = Vec::new();
        for pred in &analysis.predictions {
            let mut machine = Machine::new(sys.clone(), pred.kind);
            let report = machine
                .run(&(w.build)(pred.kind))
                .unwrap_or_else(|e| panic!("{}/{} failed to simulate: {e}", w.name, pred.kind));
            measured.push((pred.kind, report.total_picos));
            for err in validate_prediction(pred, &report) {
                failures.push(format!("{}/{}: {err}", w.name, pred.kind));
            }
        }
        if !recommendation_ok(analysis.recommended, &measured) {
            let best = measured
                .iter()
                .min_by_key(|&&(_, t)| t)
                .map(|&(k, _)| k)
                .expect("non-empty matrix row");
            failures.push(format!(
                "{}: recommended {} but measured best is {best} (outside the tie threshold)",
                w.name, analysis.recommended
            ));
        }
    }
    failures
}

#[test]
fn figure5_micros_cross_validate() {
    let failures = crossval(WorkloadSet::Micro);
    assert!(
        failures.is_empty(),
        "Figure 5 cross-validation failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn figure6_apps_cross_validate() {
    let failures = crossval(WorkloadSet::Apps);
    assert!(
        failures.is_empty(),
        "Figure 6 cross-validation failures:\n{}",
        failures.join("\n")
    );
}
