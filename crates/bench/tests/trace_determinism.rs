//! Tracing must not weaken the harness's determinism contract: the same
//! `(workload, configuration)` cells traced through the job pool export
//! byte-identical `trace.json` per job at any thread count, and the
//! reports stay identical to each other too.

use bench::pool::JobPool;
use bench::profile::{self, TracedRun};
use gpu::config::MemConfigKind;
use workloads::suite;

/// Traces the microbenchmarks × two configurations on `threads` workers
/// and returns each cell's exported JSON (input order).
fn traced_matrix(threads: usize) -> Vec<(String, String)> {
    let micros = suite::micros();
    let kinds = [MemConfigKind::Scratch, MemConfigKind::Stash];
    let cells: Vec<(&suite::Workload, MemConfigKind)> = micros
        .iter()
        .flat_map(|w| kinds.iter().map(move |&k| (w, k)))
        .collect();
    let pool = JobPool::new(threads);
    let jobs: Vec<_> = cells
        .iter()
        .map(|&(w, kind)| {
            move || -> TracedRun { profile::run_traced_workload(w, kind).expect("cell runs") }
        })
        .collect();
    pool.run(jobs)
        .into_iter()
        .zip(&cells)
        .map(|(r, (w, kind))| {
            let run = r.value;
            profile::decomposition_exact(&run).expect("decomposition exact");
            (
                format!("{} / {}", w.name, kind.name()),
                profile::perfetto_json(&run),
            )
        })
        .collect()
}

#[test]
fn per_job_traces_are_byte_identical_across_thread_counts() {
    let serial = traced_matrix(1);
    let threaded = traced_matrix(8);
    assert_eq!(serial.len(), threaded.len());
    for ((cell_a, json_a), (cell_b, json_b)) in serial.iter().zip(&threaded) {
        assert_eq!(cell_a, cell_b, "cells must collect in input order");
        assert!(
            json_a == json_b,
            "{cell_a}: exported trace depends on thread count"
        );
        // And the export is valid in both worlds.
        profile::validate_perfetto(json_a).expect("trace validates");
    }
}
