//! CLI-level tests for the `chaos` binary's exit-status gate.
//!
//! The default gate is "no escapes or die"; `--expect-escapes` inverts it
//! so demonstration runs (`--no-parity` / `--no-resilience`) can assert
//! that the disabled machinery is load-bearing. The simulator is
//! deterministic, so whether a given `(trace, seeds, switches)` campaign
//! escapes is reproducible and safe to pin.

use std::process::{Command, Output};

/// Runs the chaos binary on `examples/histogram.trace` with extra flags.
fn chaos(extra: &[&str]) -> Output {
    // Integration tests run with the package root as cwd.
    let trace = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/histogram.trace"
    );
    Command::new(env!("CARGO_BIN_EXE_chaos"))
        .arg(trace)
        .args(["--seeds", "2", "--threads", "2"])
        .args(extra)
        .output()
        .expect("chaos binary runs")
}

#[test]
fn expect_escapes_passes_when_demonstration_mode_leaks() {
    // Parity off leaks silent corruption for these seeds (pinned; the
    // campaign is deterministic). The inverted gate must call that a pass.
    let out = chaos(&["--no-parity", "--expect-escapes"]);
    assert!(
        out.status.success(),
        "expected exit 0, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("expected escape(s) occurred"),
        "missing demonstration message in: {stdout}"
    );
    // The per-run ESCAPE detail still prints on stderr.
    assert!(String::from_utf8_lossy(&out.stderr).contains("ESCAPE:"));
}

#[test]
fn expect_escapes_fails_when_the_contract_holds() {
    // With all machinery on, nothing escapes, so an assertion that the
    // demonstration leaked must fail loudly rather than pass vacuously.
    let out = chaos(&["--expect-escapes"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no escapes occurred"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn default_gate_still_fails_on_escapes() {
    // Without the flag, the same leaking campaign is a contract violation.
    let out = chaos(&["--no-parity"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("contract is violated"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn default_gate_passes_clean_campaigns() {
    let out = chaos(&[]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("contract holds"));
}
