//! Cache-correctness contract of the daemon core (`bench::server`):
//!
//! * a hit returns **byte-identical** payload to a fresh computation,
//!   across the in-memory layer, the disk layer, and a daemon restart;
//! * changing any key component — workload, configuration list, fault
//!   seed, inline trace text, code version — misses;
//! * a corrupted disk entry is detected (CRC / key verification from
//!   the `sim::snapshot` container), dropped, and recomputed — damage
//!   is **never served**;
//! * a bad request inside a batch yields an `error` event and leaves
//!   the rest of the batch answered.

use bench::json;
use bench::server::{key_hex, parse_request, Request, ResultCache, Server};
use gpu::config::MemConfigKind;

/// A small two-kernel trace exercising stash reuse — cheap to simulate
/// but a real end-to-end request.
const TRACE: &str = "array grid elems=256 object=4\n\
                     kernel\nblock\ntask grid 0 256 rw local\n\
                     kernel\nblock\ntask grid 0 256 r local\n";

fn trace_request(kinds: Vec<MemConfigKind>) -> Request {
    Request::RunTrace {
        trace: TRACE.to_string(),
        kinds,
    }
}

/// Runs one request through `handle_batch` and returns
/// `(cached, payload)` from its result event.
fn ask(server: &mut Server, req: &Request) -> (bool, String) {
    let mut lines = Vec::new();
    server.handle_batch(&[(7, req.clone())], &mut |l: &str| {
        lines.push(l.to_string())
    });
    let result = lines
        .iter()
        .map(|l| json::parse(l).expect("protocol lines are valid JSON"))
        .find(|v| v.get_str("event") == Some("result"))
        .expect("one result event");
    (
        result.get("cached") == Some(&json::Value::Bool(true)),
        result.get_str("payload").expect("payload").to_string(),
    )
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stash_server_cache_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn hit_is_byte_identical_to_fresh_computation() {
    let dir = temp_dir("identity");
    let mut server = Server::new(2, ResultCache::on_disk(&dir, 64).unwrap());
    let req = trace_request(vec![MemConfigKind::Scratch, MemConfigKind::Stash]);

    let (cached_a, cold) = ask(&mut server, &req);
    assert!(!cached_a, "first answer must be computed");
    let (cached_b, warm) = ask(&mut server, &req);
    assert!(cached_b, "second answer must hit");
    assert_eq!(cold, warm, "hit must be byte-identical to computation");

    // A fresh server over the same directory — a daemon restart — hits
    // the disk layer with the same bytes.
    let mut restarted = Server::new(2, ResultCache::on_disk(&dir, 64).unwrap());
    let (cached_c, persisted) = ask(&mut restarted, &req);
    assert!(cached_c, "restart must hit the disk layer");
    assert_eq!(cold, persisted);

    // Clearing the cache forces recomputation, pinning that the cached
    // bytes equalled what computation produces.
    std::fs::remove_dir_all(&dir).unwrap();
    let mut cleared = Server::new(2, ResultCache::on_disk(&dir, 64).unwrap());
    let (cached_d, recomputed) = ask(&mut cleared, &req);
    assert!(!cached_d);
    assert_eq!(cold, recomputed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_key_component_changes_the_address() {
    let mut server = Server::new(1, ResultCache::disabled());
    let base = server
        .request_key(&trace_request(vec![MemConfigKind::Stash]))
        .unwrap();

    // Configuration list.
    let other_kind = server
        .request_key(&trace_request(vec![MemConfigKind::Cache]))
        .unwrap();
    assert_ne!(base, other_kind);

    // Trace (program) content.
    let other_trace = server
        .request_key(&Request::RunTrace {
            trace: TRACE.replace("task grid 0 256 rw", "task grid 0 128 rw"),
            kinds: vec![MemConfigKind::Stash],
        })
        .unwrap();
    assert_ne!(base, other_trace);

    // Workload identity (advise) and fault seed (chaos).
    let advise_a = server
        .request_key(&Request::Advise {
            workload: "reuse".to_string(),
        })
        .unwrap();
    let advise_b = server
        .request_key(&Request::Advise {
            workload: "implicit".to_string(),
        })
        .unwrap();
    assert_ne!(advise_a, advise_b);
    let chaos = |seed, seeds| Request::Chaos {
        workload: "implicit".to_string(),
        seed,
        seeds,
    };
    let chaos_a = server.request_key(&chaos(1, 2)).unwrap();
    assert_ne!(chaos_a, server.request_key(&chaos(9, 2)).unwrap());
    assert_ne!(chaos_a, server.request_key(&chaos(1, 4)).unwrap());

    // Code version: the same request under a different build string.
    let req = trace_request(vec![MemConfigKind::Stash]);
    let v_now = server.request_key(&req).unwrap();
    let v_next = server
        .request_key_versioned("stash-repro/9.9.9/proto2", &req)
        .unwrap();
    assert_ne!(v_now, v_next, "a code-version bump must miss");
}

#[test]
fn corrupted_entry_is_detected_and_recomputed_never_served() {
    let dir = temp_dir("corrupt");
    let req = trace_request(vec![MemConfigKind::Stash]);
    let key;
    let cold;
    {
        let mut server = Server::new(1, ResultCache::on_disk(&dir, 64).unwrap());
        key = server.request_key(&req).unwrap();
        cold = ask(&mut server, &req).1;
    }

    // Flip one payload byte in the on-disk entry.
    let path = dir.join(format!("{}.rc", key_hex(&key)));
    let mut bytes = std::fs::read(&path).expect("entry written");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let mut server = Server::new(1, ResultCache::on_disk(&dir, 64).unwrap());
    let (cached, recovered) = ask(&mut server, &req);
    assert!(!cached, "a corrupt entry must read as a miss");
    assert_eq!(cold, recovered, "recomputation must replace the damage");
    assert_eq!(
        server.cache().stats.corrupt_dropped,
        1,
        "the drop must be counted"
    );

    // The rewritten entry validates again.
    let (cached_after, healed) = ask(&mut server, &req);
    assert!(cached_after);
    assert_eq!(cold, healed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_is_detected_and_recomputed() {
    let dir = temp_dir("torn");
    let req = trace_request(vec![MemConfigKind::Scratch]);
    let key;
    let cold;
    {
        let mut server = Server::new(1, ResultCache::on_disk(&dir, 64).unwrap());
        key = server.request_key(&req).unwrap();
        cold = ask(&mut server, &req).1;
    }
    let path = dir.join(format!("{}.rc", key_hex(&key)));
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let mut server = Server::new(1, ResultCache::on_disk(&dir, 64).unwrap());
    let (cached, recovered) = ask(&mut server, &req);
    assert!(!cached);
    assert_eq!(cold, recovered);
    assert_eq!(server.cache().stats.corrupt_dropped, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_request_in_a_batch_errors_without_sinking_the_rest() {
    let mut server = Server::new(2, ResultCache::in_memory());
    let good = trace_request(vec![MemConfigKind::Stash]);
    let bad = Request::RunTrace {
        trace: "array oops".to_string(), // malformed trace text
        kinds: vec![MemConfigKind::Stash],
    };
    let mut lines = Vec::new();
    server.handle_batch(&[(1, bad), (2, good.clone())], &mut |l: &str| {
        lines.push(l.to_string())
    });
    let events: Vec<_> = lines
        .iter()
        .map(|l| json::parse(l).expect("valid JSON"))
        .collect();
    let error = events
        .iter()
        .find(|v| v.get_str("event") == Some("error"))
        .expect("bad request errors");
    assert_eq!(error.get_u64("id"), Some(1));
    let result = events
        .iter()
        .find(|v| v.get_str("event") == Some("result"))
        .expect("good request still answers");
    assert_eq!(result.get_u64("id"), Some(2));

    // And the good answer matches a standalone computation.
    let mut fresh = Server::new(2, ResultCache::in_memory());
    let (_, standalone) = ask(&mut fresh, &good);
    assert_eq!(result.get_str("payload"), Some(standalone.as_str()));
}

#[test]
fn unknown_names_error_at_parse_without_exiting() {
    let v = json::parse(r#"{"id":3,"cmd":"advise","workload":"not_a_workload"}"#).unwrap();
    assert!(parse_request(&v).unwrap_err().contains("unknown workload"));
    let v = json::parse(r#"{"id":3,"cmd":"run-trace","trace":"x","configs":["Nope"]}"#).unwrap();
    assert!(parse_request(&v)
        .unwrap_err()
        .contains("unknown configuration"));
}
