//! Workloads: the paper's four microbenchmarks and seven applications.
//!
//! Each workload is an *access-pattern-faithful* model of the original
//! benchmark's memory behaviour (we cannot run CUDA binaries; see
//! DESIGN.md's substitution table). A workload lowers to a different
//! [`gpu::program::Program`] per memory configuration, reproducing the
//! code differences of §5.3:
//!
//! * **Scratch** carries explicit copy loops between global and local
//!   space (Figure 1a);
//! * **ScratchG** also stages the originally-global accesses through the
//!   scratchpad;
//! * **ScratchGD** replaces the copy loops with blocking DMA transfers;
//! * **Cache** turns every local access into a global one;
//! * **Stash**/**StashG** replace copies with `AddMap` calls (Figure 1b).
//!
//! The [`builder`] module implements that lowering once; the
//! [`micro`] and [`apps`] modules parameterize it per benchmark; the
//! [`suite`] module is the registry the bench harness iterates.

#![forbid(unsafe_code)]

pub mod apps;
pub mod builder;
pub mod micro;
pub mod suite;
pub mod trace;

pub use builder::{AosArray, Placement, TileTask, WorkloadBuilder};
pub use suite::{Workload, WorkloadSet};
pub use trace::{parse_trace, TraceWorkload};
