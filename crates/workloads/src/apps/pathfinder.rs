//! **Pathfinder** (Rodinia): dynamic-programming grid traversal,
//! 10 rows × 100K columns.
//!
//! Each of the 10 iterations launches a kernel whose blocks stage a slice
//! of the previous result row (plus a halo on each side) in shared
//! memory, read the wall costs for their slice globally, compute the
//! minimum-cost step, and write the new result row. The staged data is
//! used only two or three times per element — little reuse for the copy
//! cost, which is why the Cache configuration beats Scratch on this
//! benchmark (the paper's noted exception, §6.3).

use crate::builder::{kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder};
use gpu::config::MemConfigKind;
use gpu::program::{Phase, Program};
use mem::addr::VAddr;

/// Registry name.
pub const NAME: &str = "pathfinder";

/// Grid rows (iterations).
pub const ROWS: u64 = 10;
/// Grid columns (the paper's full 100 K).
pub const COLS: u64 = 100_000;
/// Columns per thread block.
pub const COLS_PER_BLOCK: u64 = 250;
/// Halo columns staged on each side of a block's slice.
pub const HALO: u64 = 3;
/// Compute instructions per warp iteration (min of three neighbours).
pub const COMPUTE: u32 = 3;

/// The wall-cost grid (row-major).
pub fn wall() -> AosArray {
    AosArray {
        base: VAddr(0x1000_0000),
        object_bytes: 4,
        elems: ROWS * COLS,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// The two result-row buffers (double-buffered).
pub fn result(buffer: u64) -> AosArray {
    AosArray {
        base: VAddr(0x2000_0000 + buffer * 0x0100_0000),
        object_bytes: 4,
        elems: COLS,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// Builds the Pathfinder program for one configuration.
pub fn program(kind: MemConfigKind) -> Program {
    let builder = WorkloadBuilder::new(kind);
    let w = wall();
    let mut phases = Vec::new();
    for row in 0..ROWS {
        let src = result(row % 2);
        let dst = result((row + 1) % 2);
        let blocks: Vec<_> = (0..COLS / COLS_PER_BLOCK)
            .map(|b| {
                let start = b * COLS_PER_BLOCK;
                let halo_start = start.saturating_sub(HALO);
                let halo_end = (start + COLS_PER_BLOCK + HALO).min(COLS);
                vec![
                    // Previous row slice + halo, staged locally, each
                    // element read for three neighbour minima.
                    TileTask {
                        writes: false,
                        passes: 2,
                        ..TileTask::dense(
                            src.tile(halo_start, halo_end - halo_start),
                            Placement::Local,
                            COMPUTE,
                        )
                    },
                    // Wall costs for this row slice (global stream).
                    TileTask {
                        writes: false,
                        ..TileTask::dense(
                            w.tile(row * COLS + start, COLS_PER_BLOCK),
                            Placement::Global,
                            1,
                        )
                    },
                    // New result row slice (global write).
                    TileTask {
                        reads: false,
                        ..TileTask::dense(dst.tile(start, COLS_PER_BLOCK), Placement::Global, 1)
                    },
                ]
            })
            .collect();
        phases.push(Phase::Gpu(kernel_from_blocks(&builder, blocks)));
    }
    Program { phases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_kernel_per_row() {
        let p = program(MemConfigKind::Scratch);
        assert_eq!(p.kernel_count() as u64, ROWS);
    }

    #[test]
    fn halo_extends_staged_slices() {
        let p = program(MemConfigKind::Stash);
        let Phase::Gpu(k) = &p.phases[0] else {
            panic!()
        };
        // Interior blocks stage slice + 2×halo.
        let interior = k.blocks[1].maps().next().unwrap();
        assert_eq!(interior.tile.total_elements(), COLS_PER_BLOCK + 2 * HALO);
        // The first block is clipped at the left edge.
        let first = k.blocks[0].maps().next().unwrap();
        assert_eq!(first.tile.total_elements(), COLS_PER_BLOCK + HALO);
    }

    #[test]
    fn buffers_alternate_between_rows() {
        let p = program(MemConfigKind::Stash);
        let Phase::Gpu(k0) = &p.phases[0] else {
            panic!()
        };
        let Phase::Gpu(k1) = &p.phases[1] else {
            panic!()
        };
        assert_ne!(
            k0.blocks[0].maps().next().unwrap().tile.global_base(),
            k1.blocks[0].maps().next().unwrap().tile.global_base()
        );
    }
}
