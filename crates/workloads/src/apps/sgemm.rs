//! **SGEMM** (Parboil): dense matrix multiply, A 128×96, B 96×160.
//!
//! Each block computes one 16×16 tile of C, looping over the shared
//! dimension in 16-wide steps. Per step it stages the corresponding A and
//! B tiles in shared memory (each element reused 16× by the inner
//! product), accumulates in registers, and finally writes its C tile
//! globally. A-tiles are shared by all blocks in a C-tile row and B-tiles
//! by all blocks in a column, so the LLC sees heavy re-reference.

use crate::builder::{kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder};
use gpu::config::MemConfigKind;
use gpu::program::{Phase, Program};
use mem::addr::VAddr;

/// Registry name.
pub const NAME: &str = "sgemm";

/// Rows of A and C.
pub const M: u64 = 128;
/// The shared dimension (columns of A, rows of B).
pub const K: u64 = 96;
/// Columns of B and C.
pub const N: u64 = 160;
/// Tile dimension.
pub const T: u64 = 16;
/// Compute instructions per warp iteration (the 16-step inner product).
pub const COMPUTE: u32 = 16;

/// Matrix A (row-major M×K).
pub fn mat_a() -> AosArray {
    AosArray {
        base: VAddr(0x1000_0000),
        object_bytes: 4,
        elems: M * K,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// Matrix B (row-major K×N).
pub fn mat_b() -> AosArray {
    AosArray {
        base: VAddr(0x2000_0000),
        object_bytes: 4,
        elems: K * N,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// Matrix C (row-major M×N).
pub fn mat_c() -> AosArray {
    AosArray {
        base: VAddr(0x3000_0000),
        object_bytes: 4,
        elems: M * N,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// Builds the SGEMM program for one configuration.
pub fn program(kind: MemConfigKind) -> Program {
    let builder = WorkloadBuilder::new(kind);
    let a = mat_a();
    let b = mat_b();
    let c = mat_c();
    let blocks: Vec<_> = (0..M / T)
        .flat_map(|bi| (0..N / T).map(move |bj| (bi, bj)))
        .map(|(bi, bj)| {
            let mut tasks = Vec::new();
            for kk in 0..K / T {
                // A tile (bi, kk): 16 rows of 16 from a K-wide matrix.
                tasks.push(TileTask {
                    writes: false,
                    passes: 2,
                    share: Some(0),
                    ..TileTask::dense(
                        a.tile_2d(bi * T * K + kk * T, T, T, K),
                        Placement::Local,
                        COMPUTE,
                    )
                });
                // B tile (kk, bj) from an N-wide matrix.
                tasks.push(TileTask {
                    writes: false,
                    passes: 2,
                    share: Some(1),
                    ..TileTask::dense(
                        b.tile_2d(kk * T * N + bj * T, T, T, N),
                        Placement::Local,
                        COMPUTE,
                    )
                });
            }
            // The C tile is written once, globally.
            tasks.push(TileTask {
                reads: false,
                ..TileTask::dense(
                    c.tile_2d(bi * T * N + bj * T, T, T, N),
                    Placement::Global,
                    1,
                )
            });
            tasks
        })
        .collect();
    Program {
        phases: vec![Phase::Gpu(kernel_from_blocks(&builder, blocks))],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_block_per_c_tile() {
        let p = program(MemConfigKind::Scratch);
        let Phase::Gpu(k) = &p.phases[0] else {
            panic!()
        };
        assert_eq!(k.blocks.len() as u64, (M / T) * (N / T));
    }

    #[test]
    fn k_steps_rebind_two_shared_slots() {
        let p = program(MemConfigKind::Stash);
        let Phase::Gpu(k) = &p.phases[0] else {
            panic!()
        };
        // Each block maps 2 tiles per k-step, but A and B tiles each share
        // one allocation/slot: the staging is AddMap + ChgMaps and stays
        // within the 4-entry map index table (§4.1.2).
        assert_eq!(k.blocks[0].maps().count() as u64, (K / T) * 2);
        let max_slot = k.blocks[0].maps().map(|m| m.slot).max().unwrap();
        assert!(max_slot < 4);
        assert_eq!(k.blocks[0].allocs.len(), 2);
    }

    #[test]
    fn staged_words_per_block_fit_the_stash() {
        let p = program(MemConfigKind::Stash);
        let Phase::Gpu(k) = &p.phases[0] else {
            panic!()
        };
        assert!(k.blocks[0].local_words() * 4 <= 16 * 1024);
    }
}
