//! **SURF** (OpenSURF, Computer Vision): Speeded-Up Robust Features on a
//! 66 KB image.
//!
//! Three kernel classes dominate the memory behaviour:
//!
//! 1. *integral image* — row-wise prefix sums over the input image
//!    (streaming global reads and writes);
//! 2. *detector* — blocks stage an integral-image tile in shared memory
//!    and evaluate box filters at several scales (heavy per-pixel
//!    compute, repeated tile re-reads), writing a response map;
//! 3. *descriptor* — blocks gather sparse Haar-wavelet samples around the
//!    detected interest points (data-dependent accesses) and write 64-word
//!    descriptors.

use crate::builder::{kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder};
use gpu::config::MemConfigKind;
use gpu::program::{Phase, Program};
use mem::addr::VAddr;
use sim::rng::SplitMix64;

/// Registry name.
pub const NAME: &str = "surf";

/// Image width in pixels (128×128 ≈ 66 KB of 4-byte integral values).
pub const W: u64 = 128;
/// Image height in pixels.
pub const H: u64 = 128;
/// Detector tile dimension.
pub const T: u64 = 16;
/// Interest points the descriptor kernel processes.
pub const INTEREST_POINTS: u64 = 64;
/// Compute per warp iteration in the detector (box filters, 3 scales).
pub const DETECT_COMPUTE: u32 = 24;
/// Seed for interest-point placement.
pub const SEED: u64 = 0x50BF;

/// The integral image.
pub fn integral() -> AosArray {
    AosArray {
        base: VAddr(0x1000_0000),
        object_bytes: 4,
        elems: W * H,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// The detector's response map.
pub fn responses() -> AosArray {
    AosArray {
        base: VAddr(0x2000_0000),
        object_bytes: 4,
        elems: W * H,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// The descriptor output (64 words per interest point).
pub fn descriptors() -> AosArray {
    AosArray {
        base: VAddr(0x3000_0000),
        object_bytes: 4,
        elems: INTEREST_POINTS * 64,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// Builds the SURF program for one configuration.
pub fn program(kind: MemConfigKind) -> Program {
    let builder = WorkloadBuilder::new(kind);
    let img = integral();
    let resp = responses();
    let desc = descriptors();

    // Kernel 1: integral image — one block per row band, streaming.
    let integral_blocks: Vec<_> = (0..H / 8)
        .map(|band| {
            vec![TileTask::dense(
                img.tile(band * 8 * W, 8 * W),
                Placement::Global,
                2,
            )]
        })
        .collect();

    // Kernel 2: detector — staged tiles, heavy compute, response writes.
    let detect_blocks: Vec<_> = (0..H / T)
        .flat_map(|by| (0..W / T).map(move |bx| (by, bx)))
        .map(|(by, bx)| {
            let start = by * T * W + bx * T;
            vec![
                TileTask {
                    writes: false,
                    passes: 3, // three filter scales re-read the tile
                    ..TileTask::dense(
                        img.tile_2d(start, T, T, W),
                        Placement::Local,
                        DETECT_COMPUTE,
                    )
                },
                TileTask {
                    reads: false,
                    ..TileTask::dense(resp.tile_2d(start, T, T, W), Placement::Global, 1)
                },
            ]
        })
        .collect();

    // Kernel 3: descriptor — sparse gathers around interest points.
    let mut rng = SplitMix64::new(SEED);
    let descriptor_blocks: Vec<_> = (0..INTEREST_POINTS / 8)
        .map(|g| {
            let mut tasks = Vec::new();
            // Each block handles 8 interest points: a sparse 20×20-pixel
            // neighbourhood sampled from the integral image.
            let region = 1024u64; // words per neighbourhood window
            let origin = rng.next_below(W * H - region);
            let sampled: Vec<u64> = (0..64).map(|_| rng.next_below(region)).collect();
            tasks.push(TileTask {
                writes: false,
                selected_words: Some(sampled),
                ..TileTask::dense(img.tile(origin, region), Placement::Local, 6)
            });
            tasks.push(TileTask {
                reads: false,
                ..TileTask::dense(desc.tile(g * 8 * 64, 8 * 64), Placement::Global, 1)
            });
            tasks
        })
        .collect();

    Program {
        phases: vec![
            Phase::Gpu(kernel_from_blocks(&builder, integral_blocks)),
            Phase::Gpu(kernel_from_blocks(&builder, detect_blocks)),
            Phase::Gpu(kernel_from_blocks(&builder, descriptor_blocks)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_kernel_classes() {
        let p = program(MemConfigKind::Scratch);
        assert_eq!(p.kernel_count(), 3);
    }

    #[test]
    fn detector_covers_the_image() {
        let p = program(MemConfigKind::Stash);
        let Phase::Gpu(k) = &p.phases[1] else {
            panic!()
        };
        assert_eq!(k.blocks.len() as u64, (H / T) * (W / T));
        let staged: u64 = k
            .blocks
            .iter()
            .flat_map(|b| b.maps())
            .map(|m| m.tile.total_elements())
            .sum();
        assert_eq!(staged, W * H);
    }

    #[test]
    fn descriptor_gathers_are_sparse() {
        let p = program(MemConfigKind::Stash);
        let Phase::Gpu(k) = &p.phases[2] else {
            panic!()
        };
        // The neighbourhood window is mapped, but only the sampled words
        // are accessed: stash fetches ≤ 64 of 1024 mapped words.
        let tb = &k.blocks[0];
        let touched: usize = tb
            .stages
            .iter()
            .flat_map(|s| s.warps.iter().flatten())
            .filter_map(|op| match op {
                gpu::program::WarpOp::LocalMem {
                    lanes,
                    write: false,
                    ..
                } => Some(lanes.len()),
                _ => None,
            })
            .sum();
        assert!(touched <= 64, "sparse gather touched {touched} words");
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(program(MemConfigKind::Cache), program(MemConfigKind::Cache));
    }
}
