//! **Backprop** (Rodinia): two-layer neural-net training, 32 KB input.
//!
//! Kernel 1 (`layerforward`) stages 16×16 input tiles in shared memory,
//! reads the connection weights globally, and reduces partial sums
//! (temporaries) locally. Kernel 2 (`adjust_weights`) re-reads the same
//! input *and* reads-modifies-writes the weights. The input re-read is a
//! cross-kernel reuse opportunity only the stash can exploit; the weight
//! stream has no temporal locality within a kernel.

use crate::builder::{kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder};
use gpu::config::MemConfigKind;
use gpu::program::{Phase, Program};
use mem::addr::VAddr;

/// Registry name.
pub const NAME: &str = "backprop";

/// Input units (32 KB of f32 = 8192 elements).
pub const INPUT_ELEMS: u64 = 8192;
/// Hidden units.
pub const HIDDEN: u64 = 16;
/// Elements per thread block.
pub const ELEMS_PER_BLOCK: u64 = 256;
/// Compute instructions per warp iteration.
pub const COMPUTE: u32 = 8;

/// The input layer (scalar array).
pub fn input() -> AosArray {
    AosArray {
        base: VAddr(0x1000_0000),
        object_bytes: 4,
        elems: INPUT_ELEMS,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// The input-to-hidden weights (one row of `HIDDEN` per input element).
pub fn weights() -> AosArray {
    AosArray {
        base: VAddr(0x2000_0000),
        object_bytes: 4,
        elems: INPUT_ELEMS * HIDDEN,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// The partial-sum workspace (Temporary mode: addresses exist only so
/// the Cache configuration has somewhere to spill the converted
/// accesses).
pub fn scratch_sums() -> AosArray {
    AosArray {
        base: VAddr(0x7000_0000),
        object_bytes: 4,
        elems: INPUT_ELEMS,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// Builds the Backprop program for one configuration.
pub fn program(kind: MemConfigKind) -> Program {
    let builder = WorkloadBuilder::new(kind);
    let inp = input();
    let w = weights();
    let blocks_n = INPUT_ELEMS / ELEMS_PER_BLOCK;

    // Kernel 1: layerforward — staged input (reused across the hidden
    // units: passes = 2 models the reduction tree re-reads), streamed
    // weights, and a per-block partial-sum buffer in Temporary mode
    // (§3.3: private values, no global mapping, discarded after use).
    let forward: Vec<Vec<TileTask>> = (0..blocks_n)
        .map(|b| {
            vec![
                TileTask {
                    writes: false,
                    passes: 2,
                    ..TileTask::dense(
                        inp.tile(b * ELEMS_PER_BLOCK, ELEMS_PER_BLOCK),
                        Placement::Local,
                        COMPUTE,
                    )
                },
                TileTask {
                    writes: false,
                    ..TileTask::dense(
                        w.tile(b * ELEMS_PER_BLOCK * HIDDEN, ELEMS_PER_BLOCK * HIDDEN / 8),
                        Placement::Global,
                        2,
                    )
                },
                // Reduction-tree partial sums: log2(256) passes over a
                // 256-word temporary buffer.
                TileTask {
                    passes: 3,
                    ..TileTask::dense(
                        scratch_sums().tile(b * ELEMS_PER_BLOCK, ELEMS_PER_BLOCK),
                        Placement::Temporary,
                        2,
                    )
                },
            ]
        })
        .collect();

    // Kernel 2: adjust_weights — the same input tiles re-read, weights
    // read-modify-written globally.
    let backward: Vec<Vec<TileTask>> = (0..blocks_n)
        .map(|b| {
            vec![
                TileTask {
                    writes: false,
                    ..TileTask::dense(
                        inp.tile(b * ELEMS_PER_BLOCK, ELEMS_PER_BLOCK),
                        Placement::Local,
                        COMPUTE,
                    )
                },
                TileTask::dense(
                    w.tile(b * ELEMS_PER_BLOCK * HIDDEN, ELEMS_PER_BLOCK * HIDDEN / 8),
                    Placement::Global,
                    2,
                ),
            ]
        })
        .collect();

    Program {
        phases: vec![
            Phase::Gpu(kernel_from_blocks(&builder, forward)),
            Phase::Gpu(kernel_from_blocks(&builder, backward)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_kernels_over_all_input() {
        let p = program(MemConfigKind::Stash);
        assert_eq!(p.kernel_count(), 2);
        let Phase::Gpu(k1) = &p.phases[0] else {
            panic!()
        };
        let staged: u64 = k1
            .blocks
            .iter()
            .flat_map(|b| b.maps())
            .map(|m| m.tile.total_elements())
            .sum();
        assert_eq!(staged, INPUT_ELEMS);
    }

    #[test]
    fn input_tiles_repeat_across_kernels() {
        let p = program(MemConfigKind::Stash);
        let Phase::Gpu(k1) = &p.phases[0] else {
            panic!()
        };
        let Phase::Gpu(k2) = &p.phases[1] else {
            panic!()
        };
        assert_eq!(
            k1.blocks[0].maps().next().unwrap().tile,
            k2.blocks[0].maps().next().unwrap().tile
        );
    }

    #[test]
    fn temporaries_bind_no_map_slot() {
        let p = program(MemConfigKind::Stash);
        let Phase::Gpu(k1) = &p.phases[0] else {
            panic!()
        };
        // Two allocations (input tile + partial sums) but only one map.
        assert_eq!(k1.blocks[0].allocs.len(), 2);
        assert_eq!(k1.blocks[0].maps().count(), 1);
    }

    #[test]
    fn temporary_accesses_run_on_every_configuration() {
        use gpu::machine::Machine;
        use sim::config::SystemConfig;
        for kind in MemConfigKind::ALL {
            let mut machine = Machine::new(SystemConfig::for_applications(), kind);
            let report = machine.run(&program(kind)).unwrap();
            if kind.uses_stash() {
                assert!(report.counters.get("stash.raw_access") > 0, "{kind}");
            }
        }
    }

    #[test]
    fn cache_variant_has_no_local_ops() {
        let p = program(MemConfigKind::Cache);
        let Phase::Gpu(k1) = &p.phases[0] else {
            panic!()
        };
        assert!(k1.blocks.iter().all(|b| b.allocs.is_empty()));
    }
}
