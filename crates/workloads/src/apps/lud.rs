//! **LUD** (Rodinia): blocked LU decomposition, 256×256.
//!
//! Per elimination step `k` the real benchmark launches three kernels
//! over 16×16 tiles of the matrix: *diagonal* (factor the pivot tile),
//! *perimeter* (update the pivot row/column tiles) and *internal* (update
//! the trailing submatrix). Tiles are staged in shared memory and each
//! tile element is reused across the 16-step inner loops; the pivot
//! row/column tiles are re-read by every internal block. The internal
//! kernel also streams a globally-indexed workspace with no temporal
//! locality — the accesses that make `ScratchG` markedly worse than
//! `Scratch` on this benchmark (Figure 6a).

use crate::builder::{kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder};
use gpu::config::MemConfigKind;
use gpu::program::{Phase, Program};
use mem::addr::VAddr;

/// Registry name.
pub const NAME: &str = "lud";

/// Matrix dimension (elements per side).
pub const N: u64 = 256;
/// Tile dimension.
pub const T: u64 = 16;
/// Compute instructions per warp iteration inside tile kernels.
pub const COMPUTE: u32 = 16;

/// The matrix (a scalar f32 array: object == field == 4 B).
pub fn matrix() -> AosArray {
    AosArray {
        base: VAddr(0x1000_0000),
        object_bytes: 4,
        elems: N * N,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// A streaming workspace the internal kernel indexes globally.
pub fn workspace() -> AosArray {
    AosArray {
        base: VAddr(0x2000_0000),
        object_bytes: 4,
        elems: N * N,
        field_offset: 0,
        field_bytes: 4,
    }
}

fn tile(a: &AosArray, row_tile: u64, col_tile: u64) -> mem::tile::TileMap {
    a.tile_2d(row_tile * T * N + col_tile * T, T, T, N)
}

/// Builds the LUD program for one configuration.
pub fn program(kind: MemConfigKind) -> Program {
    let builder = WorkloadBuilder::new(kind);
    let m = matrix();
    let ws = workspace();
    let tiles = N / T;
    let mut phases = Vec::new();
    for k in 0..tiles {
        // Diagonal kernel: one block factors the pivot tile (heavy reuse).
        phases.push(Phase::Gpu(kernel_from_blocks(
            &builder,
            vec![vec![TileTask {
                passes: 2,
                ..TileTask::dense(tile(&m, k, k), Placement::Local, COMPUTE)
            }]],
        )));
        if k + 1 == tiles {
            break;
        }
        // Perimeter kernel: pivot-row and pivot-column tiles.
        let mut blocks = Vec::new();
        for j in k + 1..tiles {
            for t in [tile(&m, k, j), tile(&m, j, k)] {
                blocks.push(vec![
                    // The pivot tile is re-read (read-only).
                    TileTask {
                        writes: false,
                        ..TileTask::dense(tile(&m, k, k), Placement::Local, 2)
                    },
                    TileTask::dense(t, Placement::Local, COMPUTE),
                ]);
            }
        }
        phases.push(Phase::Gpu(kernel_from_blocks(&builder, blocks)));
        // Internal kernel: the trailing submatrix.
        let mut blocks = Vec::new();
        for i in k + 1..tiles {
            for j in k + 1..tiles {
                blocks.push(vec![
                    TileTask {
                        writes: false,
                        ..TileTask::dense(tile(&m, i, k), Placement::Local, 2)
                    },
                    TileTask {
                        writes: false,
                        ..TileTask::dense(tile(&m, k, j), Placement::Local, 2)
                    },
                    TileTask::dense(tile(&m, i, j), Placement::Local, COMPUTE),
                    // Streaming global workspace (no temporal locality).
                    TileTask {
                        writes: false,
                        ..TileTask::dense(
                            ws.tile((i * tiles + j) * T * T % (N * N - T * T), T * T),
                            Placement::Global,
                            1,
                        )
                    },
                ]);
            }
        }
        phases.push(Phase::Gpu(kernel_from_blocks(&builder, blocks)));
    }
    Program { phases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_structure_matches_blocked_lu() {
        let p = program(MemConfigKind::Scratch);
        // 16 diagonal kernels + 15 × (perimeter + internal).
        assert_eq!(p.kernel_count(), 16 + 15 * 2);
    }

    #[test]
    fn tiles_stay_within_the_matrix() {
        // Constructing the program exercises every tile's bounds checks.
        for kind in [MemConfigKind::Cache, MemConfigKind::StashG] {
            let p = program(kind);
            assert!(p.gpu_instruction_count() > 0);
        }
    }

    #[test]
    fn scratchg_stages_the_workspace_too() {
        let scratch = program(MemConfigKind::Scratch).gpu_instruction_count();
        let scratchg = program(MemConfigKind::ScratchG).gpu_instruction_count();
        assert!(
            scratchg > scratch,
            "converting no-reuse globals to scratchpad adds copy instructions"
        );
    }
}
