//! **NW** (Rodinia): Needleman–Wunsch sequence alignment, 512×512.
//!
//! The score matrix is processed in 16×16 tiles along anti-diagonal
//! wavefronts — one kernel launch per diagonal, with as many blocks as the
//! diagonal has tiles. Each block stages its tile of the *reference*
//! matrix (read-only) and its tile of the *score* matrix (read-write,
//! including the neighbour halo) in shared memory, computes the dynamic-
//! programming recurrence, and writes the scores back. The many small
//! kernel launches make the scratchpad's per-kernel flushes expensive.

use crate::builder::{kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder};
use gpu::config::MemConfigKind;
use gpu::program::{Phase, Program};
use mem::addr::VAddr;

/// Registry name.
pub const NAME: &str = "nw";

/// Matrix dimension.
pub const N: u64 = 512;
/// Tile dimension.
pub const T: u64 = 16;
/// Compute instructions per warp iteration (DP recurrence).
pub const COMPUTE: u32 = 10;

/// The read-only reference (substitution-score) matrix.
pub fn reference() -> AosArray {
    AosArray {
        base: VAddr(0x1000_0000),
        object_bytes: 4,
        elems: N * N,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// The score matrix being filled.
pub fn scores() -> AosArray {
    AosArray {
        base: VAddr(0x2000_0000),
        object_bytes: 4,
        elems: N * N,
        field_offset: 0,
        field_bytes: 4,
    }
}

fn tile(a: &AosArray, i: u64, j: u64) -> mem::tile::TileMap {
    a.tile_2d(i * T * N + j * T, T, T, N)
}

/// Builds the NW program (both wavefront passes) for one configuration.
pub fn program(kind: MemConfigKind) -> Program {
    let builder = WorkloadBuilder::new(kind);
    let rf = reference();
    let sc = scores();
    let tiles = N / T;
    let mut phases = Vec::new();
    let mut push_diag = |d: u64, backward: bool| {
        let mut blocks = Vec::new();
        for i in 0..tiles {
            let Some(j) = d.checked_sub(i) else { continue };
            if j >= tiles {
                continue;
            }
            // The backward (traceback) pass re-reads the scores it filled
            // and the reference, writing nothing back.
            blocks.push(vec![
                TileTask {
                    writes: false,
                    ..TileTask::dense(tile(&rf, i, j), Placement::Local, 2)
                },
                TileTask {
                    writes: !backward,
                    ..TileTask::dense(tile(&sc, i, j), Placement::Local, COMPUTE)
                },
            ]);
        }
        phases.push(Phase::Gpu(kernel_from_blocks(&builder, blocks)));
    };
    // Forward wavefront: diagonals of growing then shrinking length.
    for d in 0..2 * tiles - 1 {
        push_diag(d, false);
    }
    // Backward traceback pass, anti-diagonals in reverse order.
    for d in (0..2 * tiles - 1).rev() {
        push_diag(d, true);
    }
    Program { phases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_kernel_per_diagonal_per_pass() {
        let p = program(MemConfigKind::Scratch);
        assert_eq!(p.kernel_count() as u64, 2 * (2 * (N / T) - 1));
    }

    #[test]
    fn every_tile_processed_once_per_pass() {
        let p = program(MemConfigKind::Stash);
        let mut total = 0u64;
        for phase in &p.phases {
            if let Phase::Gpu(k) = phase {
                total += k.blocks.len() as u64;
            }
        }
        assert_eq!(total, 2 * (N / T) * (N / T));
    }

    #[test]
    fn middle_diagonal_is_widest() {
        let p = program(MemConfigKind::Cache);
        let widths: Vec<usize> = p
            .phases
            .iter()
            .filter_map(|ph| match ph {
                Phase::Gpu(k) => Some(k.blocks.len()),
                _ => None,
            })
            .collect();
        // Forward pass occupies the first half of the launches.
        let forward = &widths[..widths.len() / 2];
        let mid = forward.len() / 2;
        assert_eq!(forward[mid] as u64, N / T);
        assert_eq!(forward[0], 1);
        assert_eq!(*forward.last().unwrap(), 1);
        // The backward pass mirrors it.
        assert_eq!(*widths.last().unwrap(), 1);
    }
}
