//! **Stencil** (Parboil): 7-point 3-D Jacobi stencil, 128×128×4 grid,
//! 4 iterations.
//!
//! The grids are double-buffered: each iteration's kernel reads grid
//! `in`, writes grid `out`, then the roles swap. Blocks stage a 16×16 xy
//! tile of their z-plane in shared memory (each cell re-read by its four
//! in-plane neighbours), read the z±1 neighbours globally, and write the
//! output cell globally.

use crate::builder::{kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder};
use gpu::config::MemConfigKind;
use gpu::program::{Phase, Program};
use mem::addr::VAddr;

/// Registry name.
pub const NAME: &str = "stencil";

/// Grid x/y dimension.
pub const NXY: u64 = 128;
/// Grid z dimension.
pub const NZ: u64 = 4;
/// Tile dimension in x/y.
pub const T: u64 = 16;
/// Jacobi iterations.
pub const ITERS: usize = 4;
/// Compute instructions per warp iteration (7-point update).
pub const COMPUTE: u32 = 7;

/// One of the two double-buffered grids.
pub fn grid(buffer: u64) -> AosArray {
    AosArray {
        base: VAddr(0x1000_0000 + buffer * 0x1000_0000),
        object_bytes: 4,
        elems: NXY * NXY * NZ,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// Builds the Stencil program for one configuration.
pub fn program(kind: MemConfigKind) -> Program {
    let builder = WorkloadBuilder::new(kind);
    let mut phases = Vec::new();
    for iter in 0..ITERS as u64 {
        let src = grid(iter % 2);
        let dst = grid((iter + 1) % 2);
        let mut blocks = Vec::new();
        for z in 0..NZ {
            for by in 0..NXY / T {
                for bx in 0..NXY / T {
                    let start = z * NXY * NXY + by * T * NXY + bx * T;
                    let tile = src.tile_2d(start, T, T, NXY);
                    let mut tasks = vec![
                        // The plane tile, staged locally, re-read by the
                        // four in-plane neighbour lookups.
                        TileTask {
                            writes: false,
                            passes: 2,
                            ..TileTask::dense(tile, Placement::Local, COMPUTE)
                        },
                    ];
                    // z-neighbour reads (global stream; clipped at the
                    // boundary planes).
                    if z > 0 {
                        tasks.push(TileTask {
                            writes: false,
                            ..TileTask::dense(
                                src.tile_2d(start - NXY * NXY, T, T, NXY),
                                Placement::Global,
                                1,
                            )
                        });
                    }
                    if z + 1 < NZ {
                        tasks.push(TileTask {
                            writes: false,
                            ..TileTask::dense(
                                src.tile_2d(start + NXY * NXY, T, T, NXY),
                                Placement::Global,
                                1,
                            )
                        });
                    }
                    // The output tile (global write).
                    tasks.push(TileTask {
                        reads: false,
                        ..TileTask::dense(dst.tile_2d(start, T, T, NXY), Placement::Global, 1)
                    });
                    blocks.push(tasks);
                }
            }
        }
        phases.push(Phase::Gpu(kernel_from_blocks(&builder, blocks)));
    }
    Program { phases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_kernel_per_iteration() {
        let p = program(MemConfigKind::Scratch);
        assert_eq!(p.kernel_count(), ITERS);
    }

    #[test]
    fn one_block_per_tile_per_plane() {
        let p = program(MemConfigKind::Cache);
        let Phase::Gpu(k) = &p.phases[0] else {
            panic!()
        };
        assert_eq!(k.blocks.len() as u64, NZ * (NXY / T) * (NXY / T));
    }

    #[test]
    fn boundary_planes_have_one_z_neighbour() {
        let p = program(MemConfigKind::StashG);
        let Phase::Gpu(k) = &p.phases[0] else {
            panic!()
        };
        // Block 0 is at z = 0: plane tile + one z-neighbour + output.
        assert_eq!(k.blocks[0].maps().count(), 3);
        // An interior plane's block has both z-neighbours.
        let per_plane = ((NXY / T) * (NXY / T)) as usize;
        assert_eq!(k.blocks[per_plane].maps().count(), 4);
    }

    #[test]
    fn buffers_swap_between_iterations() {
        let p = program(MemConfigKind::Stash);
        let Phase::Gpu(k0) = &p.phases[0] else {
            panic!()
        };
        let Phase::Gpu(k1) = &p.phases[1] else {
            panic!()
        };
        assert_ne!(
            k0.blocks[0].maps().next().unwrap().tile.global_base(),
            k1.blocks[0].maps().next().unwrap().tile.global_base()
        );
    }
}
