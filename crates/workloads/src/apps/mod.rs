//! The seven GPU applications of §5.4.2.
//!
//! Each module reproduces the *memory behaviour* of the original
//! benchmark at the paper's input size — the kernel structure, tiling,
//! scratchpad staging, and global streams the memory system observes —
//! not its arithmetic (see DESIGN.md's substitution table).
//!
//! | App | Source | Input (paper) | Structure modelled |
//! |---|---|---|---|
//! | [`lud`]        | Rodinia | 256×256   | blocked LU: diagonal/perimeter/internal kernels over 16×16 tiles |
//! | [`backprop`]   | Rodinia | 32 KB     | layer-forward + weight-adjust kernels, input staged locally |
//! | [`nw`]         | Rodinia | 512×512   | wavefront diagonals of 16×16 tiles, reference + score matrices |
//! | [`pathfinder`] | Rodinia | 10×100K   | row-iterative min-propagation with haloed slices |
//! | [`sgemm`]      | Parboil | A 128×96, B 96×160 | k-stepped 16×16 tile multiply |
//! | [`stencil`]    | Parboil | 128×128×4, 4 iters | 7-point stencil, double-buffered grids |
//! | [`surf`]       | OpenSURF | 66 KB image | integral image, box-filter detector, sparse descriptors |

pub mod backprop;
pub mod lud;
pub mod nw;
pub mod pathfinder;
pub mod sgemm;
pub mod stencil;
pub mod surf;

/// The application names in Figure 6 order.
pub const ALL: [&str; 7] = [
    lud::NAME,
    surf::NAME,
    backprop::NAME,
    nw::NAME,
    pathfinder::NAME,
    sgemm::NAME,
    stencil::NAME,
];
