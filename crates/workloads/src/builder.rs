//! Lowering from logical access patterns to per-configuration programs.
//!
//! A thread block's work is described as a list of [`TileTask`]s — "this
//! block reads/writes this tile of this array, with this much compute" —
//! plus a [`Placement`] saying whether the original program staged the
//! array through local memory. [`WorkloadBuilder::lower_block`] expands
//! the tasks into the staged, per-warp instruction streams of each
//! configuration, including the explicit copy loops, index-computation
//! instructions, DMA requests and `AddMap`/`ChgMap` calls that
//! differentiate them.
//!
//! Each task becomes one [`Stage`] (a barrier-separated phase — real
//! kernels put `__syncthreads` between staging steps). Tasks that set the
//! same [`TileTask::share`] key reuse one local allocation and one
//! map-index-table slot: the k-stepped staging of SGEMM/LUD, which on the
//! stash becomes an `AddMap` followed by `ChgMap`s and thereby respects
//! the 4-entry map-index-table limit (§4.1.2).
//!
//! Instruction accounting (drives Figure 5c and GPU-core energy):
//! * a local (scratchpad/stash) access costs 1 memory instruction plus 1
//!   local-address computation;
//! * a global access costs 1 memory instruction plus 2 index-computation
//!   instructions (base + scale for the AoS index) — the work the
//!   stash-map hardware absorbs for stash accesses (§6.3);
//! * each explicit copy iteration adds 1 loop-overhead instruction;
//! * DMA replaces a copy loop with one setup instruction per warp
//!   (charged by the machine model).

use gpu::config::MemConfigKind;
use gpu::program::{
    AllocId, CpuOp, CpuPhase, DmaReq, Kernel, LocalAlloc, MapReq, Stage, ThreadBlock, WarpOp,
};
use mem::addr::{VAddr, WORD_BYTES};
use mem::tile::TileMap;
use stash::UsageMode;

/// Index-computation instructions per global memory access.
pub const GLOBAL_INDEX_COST: u32 = 2;
/// Address-computation instructions per local memory access.
pub const LOCAL_INDEX_COST: u32 = 1;
/// Loop-overhead instructions per explicit-copy iteration.
pub const COPY_LOOP_COST: u32 = 1;

/// A global array-of-structs, the data layout all workloads use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AosArray {
    /// Virtual base address of the array.
    pub base: VAddr,
    /// Bytes per object.
    pub object_bytes: u64,
    /// Number of objects.
    pub elems: u64,
    /// Byte offset of the accessed field within each object.
    pub field_offset: u64,
    /// Size of the accessed field in bytes.
    pub field_bytes: u64,
}

impl AosArray {
    /// The virtual address of element `i`'s field.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn field_vaddr(&self, i: u64) -> VAddr {
        assert!(i < self.elems, "element {i} out of {}", self.elems);
        self.base.add(i * self.object_bytes + self.field_offset)
    }

    /// A linear tile of `count` elements starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or the geometry is invalid.
    pub fn tile(&self, start: u64, count: u64) -> TileMap {
        assert!(start + count <= self.elems, "tile out of array bounds");
        TileMap::new(
            self.base.add(start * self.object_bytes + self.field_offset),
            self.field_bytes,
            self.object_bytes,
            count,
            0,
            1,
        )
        .expect("array geometry is validated")
    }

    /// A 2-D tile: `rows × row_elems` elements whose rows are
    /// `row_stride_elems` elements apart in the array.
    ///
    /// # Panics
    ///
    /// Panics if the tile exceeds the array or the geometry is invalid.
    pub fn tile_2d(&self, start: u64, row_elems: u64, rows: u64, row_stride_elems: u64) -> TileMap {
        let last = start + (rows - 1) * row_stride_elems + row_elems;
        assert!(last <= self.elems, "2-D tile out of array bounds");
        TileMap::new(
            self.base.add(start * self.object_bytes + self.field_offset),
            self.field_bytes,
            self.object_bytes,
            row_elems,
            row_stride_elems * self.object_bytes,
            rows,
        )
        .expect("array geometry is validated")
    }

    /// Total footprint in bytes (objects, not just fields).
    pub fn footprint_bytes(&self) -> u64 {
        self.elems * self.object_bytes
    }
}

/// Whether the original program staged this data through local memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Scratchpad data in the original application: local in every
    /// configuration except Cache.
    Local,
    /// Global data in the original application: staged locally only in
    /// the "G" configurations (ScratchG / ScratchGD / StashG).
    Global,
    /// Private temporaries (partial sums, reduction trees): local space
    /// with no global mapping — §3.3's Temporary mode. Never copied,
    /// mapped, or DMA-transferred; the Cache configuration spills them
    /// to global addresses like any other converted scratchpad data.
    Temporary,
}

/// One tile of work inside a thread block (lowered to one [`Stage`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileTask {
    /// The tile of the global array this block works on.
    pub tile: TileMap,
    /// Whether the body reads the tile.
    pub reads: bool,
    /// Whether the body writes the tile.
    pub writes: bool,
    /// Original placement.
    pub placement: Placement,
    /// Body passes over the tile (>1 models intra-kernel reuse).
    pub passes: u32,
    /// Compute instructions per warp iteration of the body.
    pub compute_per_iter: u32,
    /// If set, the body touches only these local word indices (sparse,
    /// data-dependent accesses); the condition is still evaluated — and
    /// scratchpad copies still move — for every element.
    pub selected_words: Option<Vec<u64>>,
    /// Stash usage mode for mapped configurations.
    pub mode: UsageMode,
    /// Allocation-sharing key: tasks with the same key reuse one local
    /// allocation and map slot (`ChgMap` rebinds between them).
    pub share: Option<u32>,
}

impl TileTask {
    /// A dense read-modify-write task with the common defaults.
    pub fn dense(tile: TileMap, placement: Placement, compute_per_iter: u32) -> Self {
        Self {
            tile,
            reads: true,
            writes: true,
            placement,
            passes: 1,
            compute_per_iter,
            selected_words: None,
            mode: UsageMode::MappedCoherent,
            share: None,
        }
    }
}

/// Lowers [`TileTask`]s into configuration-specific thread blocks.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadBuilder {
    kind: MemConfigKind,
    warps: usize,
    warp_size: usize,
}

impl WorkloadBuilder {
    /// Creates a builder for one memory configuration with the paper's
    /// 256-thread blocks (8 warps of 32).
    pub fn new(kind: MemConfigKind) -> Self {
        Self {
            kind,
            warps: 8,
            warp_size: 32,
        }
    }

    /// The configuration being lowered for.
    pub fn kind(&self) -> MemConfigKind {
        self.kind
    }

    /// Whether `placement` data lives in local memory on this
    /// configuration.
    pub fn is_local(&self, placement: Placement) -> bool {
        match placement {
            Placement::Local | Placement::Temporary => self.kind != MemConfigKind::Cache,
            Placement::Global => self.kind.globals_to_local(),
        }
    }

    /// Lowers one thread block: one stage per task, shared allocations
    /// resolved.
    pub fn lower_block(&self, tasks: &[TileTask]) -> ThreadBlock {
        let mut tb = ThreadBlock::new();
        // Resolve allocation groups: tasks sharing a key get one
        // allocation sized for the largest member.
        let mut group_alloc: Vec<(Option<u32>, AllocId)> = Vec::new();
        let mut task_alloc: Vec<Option<AllocId>> = Vec::new();
        for task in tasks {
            if !self.is_local(task.placement) {
                task_alloc.push(None);
                continue;
            }
            let words = task.tile.local_words();
            let id = match task.share {
                Some(key) => {
                    if let Some(&(_, id)) = group_alloc.iter().find(|(k, _)| *k == Some(key)) {
                        tb.allocs[id.0].words = tb.allocs[id.0].words.max(words);
                        id
                    } else {
                        let id = AllocId(tb.allocs.len());
                        tb.allocs.push(LocalAlloc { words });
                        group_alloc.push((Some(key), id));
                        id
                    }
                }
                None => {
                    let id = AllocId(tb.allocs.len());
                    tb.allocs.push(LocalAlloc { words });
                    id
                }
            };
            task_alloc.push(Some(id));
        }
        // Map-index-table slots are assigned densely over *mapped*
        // allocations in first-use order (AddMap call order, §4.1.2);
        // temporaries never bind a slot.
        let mut slot_of_alloc: Vec<Option<usize>> = vec![None; tb.allocs.len()];
        let mut next_slot = 0usize;
        for (task, alloc) in tasks.iter().zip(task_alloc.iter()) {
            if task.placement == Placement::Temporary {
                continue;
            }
            if let Some(a) = alloc {
                if slot_of_alloc[a.0].is_none() {
                    slot_of_alloc[a.0] = Some(next_slot);
                    next_slot += 1;
                }
            }
        }
        for (task, alloc) in tasks.iter().zip(task_alloc.iter()) {
            let slot = alloc.and_then(|a| slot_of_alloc[a.0]);
            let mut stage = Stage::new(self.warps);
            self.lower_task(&mut stage, task, *alloc, slot);
            tb.stages.push(stage);
        }
        tb
    }

    fn lower_task(
        &self,
        stage: &mut Stage,
        task: &TileTask,
        alloc: Option<AllocId>,
        slot: Option<usize>,
    ) {
        let local = alloc.is_some();
        let words = task.tile.local_words();
        let temporary = task.placement == Placement::Temporary;
        // An on-demand word list makes every lowered lane data-dependent:
        // mark the stage so static analyses widen instead of trusting the
        // concrete witness lanes (see `Stage::tainted`).
        if task.selected_words.is_some() {
            stage.tainted = true;
        }
        // Temporaries leave their instruction slot unbound: the machine's
        // stash degrades to scratchpad behaviour for them (§3.3).
        let slot = slot.unwrap_or(usize::MAX);

        if let Some(alloc) = alloc {
            if !temporary {
                if self.kind.uses_stash() {
                    stage.maps.push(MapReq {
                        slot,
                        alloc,
                        tile: task.tile,
                        mode: task.mode,
                    });
                }
                if self.kind.uses_dma() {
                    stage.dmas.push(DmaReq {
                        alloc,
                        tile: task.tile,
                        load: task.reads,
                        store: task.writes,
                    });
                }
            }
        }
        let explicit_copies =
            local && !temporary && self.kind.uses_scratchpad() && !self.kind.uses_dma();

        // Copy-in: explicit global load + local store per word.
        if explicit_copies && task.reads {
            for (warp, chunk) in self.chunks(words) {
                let ops = &mut stage.warps[warp];
                ops.push(WarpOp::Compute(
                    COPY_LOOP_COST + GLOBAL_INDEX_COST + LOCAL_INDEX_COST,
                ));
                ops.push(WarpOp::GlobalMem {
                    write: false,
                    lanes: chunk
                        .iter()
                        .map(|&w| task.tile.virt_of_local_offset(w * WORD_BYTES))
                        .collect(),
                });
                ops.push(WarpOp::LocalMem {
                    write: true,
                    alloc: alloc.expect("copies imply local"),
                    slot,
                    lanes: chunk.iter().map(|&w| w as u32).collect(),
                });
            }
        }

        // Body passes.
        for _ in 0..task.passes {
            for (warp, chunk) in self.chunks(words) {
                let ops = &mut stage.warps[warp];
                let active: Vec<u64> = match &task.selected_words {
                    Some(sel) => chunk.iter().copied().filter(|w| sel.contains(w)).collect(),
                    None => chunk.clone(),
                };
                let index_cost = if local {
                    LOCAL_INDEX_COST
                } else {
                    GLOBAL_INDEX_COST
                };
                ops.push(WarpOp::Compute(task.compute_per_iter + index_cost));
                if active.is_empty() {
                    continue;
                }
                for write in [task.reads.then_some(false), task.writes.then_some(true)]
                    .into_iter()
                    .flatten()
                {
                    if local {
                        ops.push(WarpOp::LocalMem {
                            write,
                            alloc: alloc.expect("local body"),
                            slot,
                            lanes: active.iter().map(|&w| w as u32).collect(),
                        });
                    } else {
                        ops.push(WarpOp::GlobalMem {
                            write,
                            lanes: active
                                .iter()
                                .map(|&w| task.tile.virt_of_local_offset(w * WORD_BYTES))
                                .collect(),
                        });
                    }
                }
            }
        }

        // Copy-out: explicit local load + global store per word.
        if explicit_copies && task.writes {
            for (warp, chunk) in self.chunks(words) {
                let ops = &mut stage.warps[warp];
                ops.push(WarpOp::Compute(
                    COPY_LOOP_COST + GLOBAL_INDEX_COST + LOCAL_INDEX_COST,
                ));
                ops.push(WarpOp::LocalMem {
                    write: false,
                    alloc: alloc.expect("copies imply local"),
                    slot,
                    lanes: chunk.iter().map(|&w| w as u32).collect(),
                });
                ops.push(WarpOp::GlobalMem {
                    write: true,
                    lanes: chunk
                        .iter()
                        .map(|&w| task.tile.virt_of_local_offset(w * WORD_BYTES))
                        .collect(),
                });
            }
        }
    }

    /// Splits `0..words` into warp-sized chunks assigned round-robin.
    fn chunks(&self, words: u64) -> Vec<(usize, Vec<u64>)> {
        let mut out = Vec::new();
        let mut start = 0u64;
        let mut i = 0usize;
        while start < words {
            let end = (start + self.warp_size as u64).min(words);
            out.push((i % self.warps, (start..end).collect()));
            start = end;
            i += 1;
        }
        out
    }
}

/// A CPU phase that sweeps the fields of `array` (all elements), split
/// contiguously across `cores` CPU cores — the microbenchmarks' epilogue
/// where "the same fields are subsequently accessed by the CPU".
pub fn cpu_sweep(array: &AosArray, cores: usize, write: bool) -> CpuPhase {
    let mut per_core = vec![Vec::new(); cores];
    // Elements stripe round-robin across cores so no single core inherits
    // a forwarding-heavy region (the cores run in parallel and the phase
    // ends with the slowest one).
    for e in 0..array.elems {
        let ops = &mut per_core[(e % cores as u64) as usize];
        ops.push(CpuOp::Compute(1));
        for w in 0..array.field_bytes / WORD_BYTES {
            ops.push(CpuOp::Mem {
                write,
                vaddr: array.field_vaddr(e).add(w * WORD_BYTES),
            });
        }
    }
    CpuPhase {
        per_core,
        stash_maps: Vec::new(),
    }
}

/// Like [`cpu_sweep`] but over an explicit element-index list (the
/// On-demand epilogue touches only the elements the GPU updated).
pub fn cpu_sweep_indices(array: &AosArray, indices: &[u64], cores: usize, write: bool) -> CpuPhase {
    let mut per_core = vec![Vec::new(); cores];
    for (i, &e) in indices.iter().enumerate() {
        let c = i % cores;
        per_core[c].push(CpuOp::Compute(1));
        for w in 0..array.field_bytes / WORD_BYTES {
            per_core[c].push(CpuOp::Mem {
                write,
                vaddr: array.field_vaddr(e).add(w * WORD_BYTES),
            });
        }
    }
    CpuPhase {
        per_core,
        stash_maps: Vec::new(),
    }
}

/// Builds a kernel from per-block task lists.
pub fn kernel_from_blocks(builder: &WorkloadBuilder, blocks: Vec<Vec<TileTask>>) -> Kernel {
    Kernel {
        blocks: blocks.iter().map(|t| builder.lower_block(t)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::program::WarpOp;

    fn array() -> AosArray {
        AosArray {
            base: VAddr(0x1000_0000),
            object_bytes: 16,
            elems: 1024,
            field_offset: 0,
            field_bytes: 4,
        }
    }

    fn count_ops(tb: &ThreadBlock, pred: impl Fn(&WarpOp) -> bool) -> usize {
        tb.stages
            .iter()
            .flat_map(|s| s.warps.iter().flatten())
            .filter(|op| pred(op))
            .count()
    }

    #[test]
    fn scratch_lowering_has_copy_loops() {
        let b = WorkloadBuilder::new(MemConfigKind::Scratch);
        let tb = b.lower_block(&[TileTask::dense(array().tile(0, 256), Placement::Local, 4)]);
        // 8 chunks of 32 words: copy-in 8 global loads, copy-out 8 global
        // stores, body 8 local loads + 8 local stores + copies' locals.
        let globals = count_ops(&tb, |op| matches!(op, WarpOp::GlobalMem { .. }));
        let locals = count_ops(&tb, |op| matches!(op, WarpOp::LocalMem { .. }));
        assert_eq!(globals, 16);
        assert_eq!(locals, 32);
        assert_eq!(tb.maps().count(), 0);
        assert!(tb.stages.iter().all(|s| s.dmas.is_empty()));
    }

    #[test]
    fn stash_lowering_has_no_copies() {
        let b = WorkloadBuilder::new(MemConfigKind::Stash);
        let tb = b.lower_block(&[TileTask::dense(array().tile(0, 256), Placement::Local, 4)]);
        assert_eq!(
            count_ops(&tb, |op| matches!(op, WarpOp::GlobalMem { .. })),
            0
        );
        assert_eq!(
            count_ops(&tb, |op| matches!(op, WarpOp::LocalMem { .. })),
            16
        );
        assert_eq!(tb.maps().count(), 1);
        // Far fewer instructions than the Scratch lowering (Figure 5c).
        let scratch = WorkloadBuilder::new(MemConfigKind::Scratch).lower_block(&[TileTask::dense(
            array().tile(0, 256),
            Placement::Local,
            4,
        )]);
        assert!(tb.instruction_count() < scratch.instruction_count() * 3 / 4);
    }

    #[test]
    fn cache_lowering_is_all_global() {
        let b = WorkloadBuilder::new(MemConfigKind::Cache);
        let tb = b.lower_block(&[TileTask::dense(array().tile(0, 256), Placement::Local, 4)]);
        assert_eq!(
            count_ops(&tb, |op| matches!(op, WarpOp::LocalMem { .. })),
            0
        );
        assert_eq!(
            count_ops(&tb, |op| matches!(op, WarpOp::GlobalMem { .. })),
            16
        );
        assert!(tb.allocs.is_empty());
    }

    #[test]
    fn dma_lowering_has_dma_reqs_and_no_copies() {
        let b = WorkloadBuilder::new(MemConfigKind::ScratchGD);
        let tb = b.lower_block(&[TileTask::dense(array().tile(0, 256), Placement::Local, 4)]);
        let dmas: Vec<_> = tb.stages.iter().flat_map(|s| s.dmas.iter()).collect();
        assert_eq!(dmas.len(), 1);
        assert!(dmas[0].load && dmas[0].store);
        assert_eq!(
            count_ops(&tb, |op| matches!(op, WarpOp::GlobalMem { .. })),
            0
        );
    }

    #[test]
    fn placement_global_stays_global_except_g_variants() {
        let task = TileTask::dense(array().tile(0, 64), Placement::Global, 2);
        for (kind, expect_local) in [
            (MemConfigKind::Scratch, false),
            (MemConfigKind::ScratchG, true),
            (MemConfigKind::Cache, false),
            (MemConfigKind::Stash, false),
            (MemConfigKind::StashG, true),
        ] {
            let b = WorkloadBuilder::new(kind);
            let tb = b.lower_block(std::slice::from_ref(&task));
            let locals = count_ops(&tb, |op| matches!(op, WarpOp::LocalMem { .. }));
            assert_eq!(locals > 0, expect_local, "{kind}");
        }
    }

    #[test]
    fn shared_tasks_reuse_one_allocation_and_slot() {
        let a = array();
        let tasks: Vec<TileTask> = (0..6)
            .map(|i| TileTask {
                share: Some(0),
                writes: false,
                ..TileTask::dense(a.tile(i * 128, 128), Placement::Local, 4)
            })
            .collect();
        let tb = WorkloadBuilder::new(MemConfigKind::Stash).lower_block(&tasks);
        assert_eq!(tb.allocs.len(), 1);
        assert_eq!(tb.stages.len(), 6);
        // All six stages bind the same slot: 1 AddMap + 5 ChgMaps at run
        // time — within the 4-entry map index table.
        assert!(tb.maps().all(|m| m.slot == 0));
    }

    #[test]
    fn sparse_selection_limits_mem_ops_not_copies() {
        let tile = array().tile(0, 256);
        let task = TileTask {
            selected_words: Some(vec![0, 32, 64]),
            ..TileTask::dense(tile, Placement::Local, 2)
        };
        // Stash: only the selected words are touched.
        let stash_tb =
            WorkloadBuilder::new(MemConfigKind::Stash).lower_block(std::slice::from_ref(&task));
        let touched: usize = stash_tb
            .stages
            .iter()
            .flat_map(|s| s.warps.iter().flatten())
            .filter_map(|op| match op {
                WarpOp::LocalMem { lanes, .. } => Some(lanes.len()),
                _ => None,
            })
            .sum();
        assert_eq!(touched, 6); // 3 words × (read + write)
                                // Scratch: the copy loops still move all 256 words, twice.
        let scratch_tb =
            WorkloadBuilder::new(MemConfigKind::Scratch).lower_block(std::slice::from_ref(&task));
        let copied: usize = scratch_tb
            .stages
            .iter()
            .flat_map(|s| s.warps.iter().flatten())
            .filter_map(|op| match op {
                WarpOp::GlobalMem { lanes, .. } => Some(lanes.len()),
                _ => None,
            })
            .sum();
        assert_eq!(copied, 512);
    }

    #[test]
    fn cpu_sweep_covers_every_element_once() {
        let a = array();
        let phase = cpu_sweep(&a, 15, false);
        assert_eq!(phase.per_core.len(), 15);
        let mems: usize = phase
            .per_core
            .iter()
            .flatten()
            .filter(|op| matches!(op, CpuOp::Mem { .. }))
            .count();
        assert_eq!(mems as u64, a.elems);
    }

    #[test]
    fn tile_2d_geometry() {
        let a = AosArray {
            base: VAddr(0x2000_0000),
            object_bytes: 4,
            elems: 256 * 256,
            field_offset: 0,
            field_bytes: 4,
        };
        // A 16×16 tile of a 256-wide matrix.
        let t = a.tile_2d(0, 16, 16, 256);
        assert_eq!(t.total_elements(), 256);
        // Element (row 1, col 0) is 256 elements into the matrix.
        assert_eq!(t.virt_of_local_offset(16 * 4), VAddr(0x2000_0000 + 256 * 4));
    }
}
