//! **Reuse**: compact storage plus cross-kernel reuse.
//!
//! The same kernel runs repeatedly over the same field array. The fields
//! fit in the stash compactly but their cache-line footprint exceeds the
//! L1, so: the cache reloads the data every kernel (no compaction), the
//! scratchpad configurations re-copy it every kernel (not globally
//! visible, flushed at kernel end), and only the stash keeps its
//! registered data live across kernels through lazy writebacks and the
//! §4.5 replication/adoption path.

use crate::builder::{
    cpu_sweep, kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder,
};
use gpu::config::MemConfigKind;
use gpu::program::{Phase, Program};
use mem::addr::VAddr;

/// Registry name.
pub const NAME: &str = "reuse";

/// Elements in the array: 2048 × 4 B fields = 8 KB in the stash, but
/// 2048 × 64 B lines = 128 KB through a cache.
pub const ELEMS: u64 = 2048;
/// Bytes per object (one full cache line — no compaction for the cache).
pub const OBJECT_BYTES: u64 = 64;
/// Elements per thread block (8 blocks — a single resident wave, so the
/// whole array stays mapped simultaneously).
pub const ELEMS_PER_BLOCK: u64 = 256;
/// Kernel invocations over the same data.
pub const KERNELS: usize = 8;
/// Compute instructions per warp iteration.
pub const COMPUTE_PER_ITER: u32 = 12;

/// The repeatedly-accessed array.
pub fn array() -> AosArray {
    AosArray {
        base: VAddr(0x1000_0000),
        object_bytes: OBJECT_BYTES,
        elems: ELEMS,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// Builds the Reuse program for one configuration.
pub fn program(kind: MemConfigKind) -> Program {
    program_with_kernels(kind, KERNELS)
}

/// Builds Reuse with a custom kernel count — the knob that shows how the
/// stash's one-time fetch amortizes while every other configuration's
/// cost scales linearly.
pub fn program_with_kernels(kind: MemConfigKind, kernels: usize) -> Program {
    let builder = WorkloadBuilder::new(kind);
    let a = array();
    let mut phases = Vec::with_capacity(kernels + 1);
    for _ in 0..kernels {
        let blocks: Vec<Vec<TileTask>> = (0..ELEMS / ELEMS_PER_BLOCK)
            .map(|b| {
                vec![TileTask::dense(
                    a.tile(b * ELEMS_PER_BLOCK, ELEMS_PER_BLOCK),
                    Placement::Local,
                    COMPUTE_PER_ITER,
                )]
            })
            .collect();
        phases.push(Phase::Gpu(kernel_from_blocks(&builder, blocks)));
    }
    phases.push(Phase::Cpu(cpu_sweep(&a, 15, false)));
    Program { phases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn geometry_enables_stash_but_not_cache_reuse() {
        // Fields fit the 16 KB stash in one resident wave…
        assert!(ELEMS * 4 <= 16 * 1024);
        assert!(ELEMS / ELEMS_PER_BLOCK <= 8);
        // …but the line footprint exceeds the 32 KB L1.
        assert!(ELEMS * OBJECT_BYTES > 32 * 1024);
    }

    #[test]
    fn every_kernel_maps_the_same_tiles() {
        let p = program(MemConfigKind::Stash);
        assert_eq!(p.kernel_count(), KERNELS);
        let kernels: Vec<_> = p
            .phases
            .iter()
            .filter_map(|ph| match ph {
                Phase::Gpu(k) => Some(k),
                _ => None,
            })
            .collect();
        for k in &kernels[1..] {
            assert_eq!(
                k.blocks[0].maps().collect::<Vec<_>>(),
                kernels[0].blocks[0].maps().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn scratch_copies_scale_with_kernel_count() {
        let one: u64 = {
            let p = program(MemConfigKind::Scratch);
            p.gpu_instruction_count() / KERNELS as u64
        };
        let stash = program(MemConfigKind::Stash).gpu_instruction_count() / KERNELS as u64;
        assert!(
            stash < one,
            "stash must issue fewer instructions per kernel"
        );
    }
}
