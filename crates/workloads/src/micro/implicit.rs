//! **Implicit**: implicit data movement and lazy writebacks.
//!
//! One field of each element of an AoS array is mapped locally; the GPU
//! kernel updates it; the CPUs then read the updated values. The
//! scratchpad configurations pay explicit copy-in/copy-out loops (and an
//! eager bulk writeback); the stash moves data implicitly on a miss and
//! leaves the dirty data registered for the CPUs to pull on demand.

use crate::builder::{
    cpu_sweep, kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder,
};
use gpu::config::MemConfigKind;
use gpu::program::{Phase, Program};
use mem::addr::VAddr;

/// Registry name.
pub const NAME: &str = "implicit";

/// Elements in the array.
pub const ELEMS: u64 = 4096;
/// Bytes per object (the accessed field is 4 of them).
pub const OBJECT_BYTES: u64 = 32;
/// Elements per thread block.
pub const ELEMS_PER_BLOCK: u64 = 256;
/// Compute instructions per warp iteration of the kernel body.
pub const COMPUTE_PER_ITER: u32 = 12;

/// The array the benchmark updates.
pub fn array() -> AosArray {
    array_with_object_bytes(OBJECT_BYTES)
}

/// The array with a custom object size (the compaction-sweep knob: a
/// larger object wastes more of each cache line on the one mapped field).
pub fn array_with_object_bytes(object_bytes: u64) -> AosArray {
    AosArray {
        base: VAddr(0x1000_0000),
        object_bytes,
        elems: ELEMS,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// Builds the Implicit program for one configuration.
pub fn program(kind: MemConfigKind) -> Program {
    program_with_object_bytes(kind, OBJECT_BYTES)
}

/// Builds Implicit with a custom object size.
pub fn program_with_object_bytes(kind: MemConfigKind, object_bytes: u64) -> Program {
    let builder = WorkloadBuilder::new(kind);
    let a = array_with_object_bytes(object_bytes);
    let blocks: Vec<Vec<TileTask>> = (0..ELEMS / ELEMS_PER_BLOCK)
        .map(|b| {
            vec![TileTask::dense(
                a.tile(b * ELEMS_PER_BLOCK, ELEMS_PER_BLOCK),
                Placement::Local,
                COMPUTE_PER_ITER,
            )]
        })
        .collect();
    Program {
        phases: vec![
            Phase::Gpu(kernel_from_blocks(&builder, blocks)),
            Phase::Cpu(cpu_sweep(&a, 15, false)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_element_exactly_once() {
        let p = program(MemConfigKind::Stash);
        let Phase::Gpu(kernel) = &p.phases[0] else {
            panic!("first phase is the kernel");
        };
        assert_eq!(kernel.blocks.len() as u64, ELEMS / ELEMS_PER_BLOCK);
        let mapped: u64 = kernel
            .blocks
            .iter()
            .flat_map(|b| b.maps())
            .map(|m| m.tile.total_elements())
            .sum();
        assert_eq!(mapped, ELEMS);
    }

    #[test]
    fn scratch_variant_issues_more_instructions() {
        let scratch = program(MemConfigKind::Scratch).gpu_instruction_count();
        let stash = program(MemConfigKind::Stash).gpu_instruction_count();
        // §6.2: "Stash executes 40% fewer instructions than Scratch".
        let pct = stash * 100 / scratch;
        assert!(
            (50..=70).contains(&pct),
            "stash/scratch instructions = {pct}%"
        );
    }

    #[test]
    fn has_cpu_epilogue() {
        let p = program(MemConfigKind::Cache);
        assert!(matches!(p.phases.last(), Some(Phase::Cpu(_))));
    }
}
