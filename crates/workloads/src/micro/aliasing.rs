//! **Aliasing**: the same global words mapped into many CUs' stashes.
//!
//! Every thread block maps one shared read-only coefficient table
//! coherently into its local memory while writing a private slice of
//! the output array. The program is perfectly **data-race-free** —
//! read-read sharing is never a race — yet it is deliberately
//! **uncertifiable** by `verify::dataflow`'s conflict pass on any
//! multi-CU machine: coherent stash *loads* register ownership, so the
//! shared table makes every pair of CUs claim the same words during the
//! epoch merge. The certified merge fast path must refuse exactly this
//! shape (certificates require full access disjointness, not just
//! write disjointness), which is what this workload exists to pin down
//! in tests and in the worked EXPERIMENTS example.
//!
//! It is *not* part of the Figure 5/6 suites (it reproduces no paper
//! bar); reach it through `suite::extras()` or `suite::by_name`.

use crate::builder::{
    cpu_sweep, kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder,
};
use gpu::config::MemConfigKind;
use gpu::program::{Phase, Program};
use mem::addr::VAddr;

/// Registry name.
pub const NAME: &str = "aliasing";

/// Elements of the shared read-only coefficient table.
pub const TABLE_ELEMS: u64 = 512;
/// Elements of the private output array.
pub const OUT_ELEMS: u64 = 3840;
/// Thread blocks (several per CU on the 15-CU application machine).
pub const BLOCKS: u64 = 30;
/// Compute instructions per warp iteration.
pub const COMPUTE_PER_ITER: u32 = 4;

/// The shared coefficient table (read by every block).
pub fn table() -> AosArray {
    AosArray {
        base: VAddr(0x3000_0000),
        object_bytes: 16,
        elems: TABLE_ELEMS,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// The output array (each block writes a private slice).
pub fn output() -> AosArray {
    AosArray {
        base: VAddr(0x4000_0000),
        object_bytes: 16,
        elems: OUT_ELEMS,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// Builds the Aliasing program for one configuration.
pub fn program(kind: MemConfigKind) -> Program {
    let builder = WorkloadBuilder::new(kind);
    let table = table();
    let out = output();
    let per_block = OUT_ELEMS / BLOCKS.max(1);
    let blocks: Vec<Vec<TileTask>> = (0..BLOCKS)
        .map(|i| {
            vec![
                // Every block maps the whole table coherently, read-only:
                // the aliasing under test.
                TileTask {
                    writes: false,
                    ..TileTask::dense(
                        table.tile(0, TABLE_ELEMS),
                        Placement::Local,
                        COMPUTE_PER_ITER,
                    )
                },
                // Private output slice: write-disjoint across blocks.
                TileTask::dense(
                    out.tile(i * per_block, per_block),
                    Placement::Local,
                    COMPUTE_PER_ITER,
                ),
            ]
        })
        .collect();
    Program {
        phases: vec![
            Phase::Gpu(kernel_from_blocks(&builder, blocks)),
            Phase::Cpu(cpu_sweep(&out, 1, false)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_block_shares_the_table_but_owns_its_output() {
        let p = program(MemConfigKind::Stash);
        let Phase::Gpu(kernel) = &p.phases[0] else {
            panic!("first phase is the kernel")
        };
        assert_eq!(kernel.blocks.len() as u64, BLOCKS);
        // Each block maps two tiles: the shared table and its slice.
        assert_eq!(kernel.blocks[0].maps().count(), 2);
        let bases: Vec<u64> = kernel.blocks[0]
            .maps()
            .map(|m| m.tile.global_base().0)
            .collect();
        assert!(bases.contains(&0x3000_0000));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn output_splits_evenly() {
        assert_eq!(OUT_ELEMS % BLOCKS, 0);
        // Table + slice fit the 16 KB local store compactly.
        assert!((TABLE_ELEMS + OUT_ELEMS / BLOCKS) * 4 <= 16 * 1024);
    }
}
