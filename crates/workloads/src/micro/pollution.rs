//! **Pollution**: local fills that bypass the L1.
//!
//! The kernel reads and writes one field in two AoS arrays. `A` is staged
//! in local memory and sized to stream (no reuse); `B` stays in the cache
//! and is accessed twice. In the Scratch configuration, `A`'s explicit
//! copies travel through the L1 and evict `B` between its two passes; the
//! stash (and the DMA engine) move `A` directly between the LLC and local
//! memory, so `B`'s second pass still hits.

use crate::builder::{
    cpu_sweep, kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder,
};
use gpu::config::MemConfigKind;
use gpu::program::{Phase, Program};
use mem::addr::VAddr;

/// Registry name.
pub const NAME: &str = "pollution";

/// Elements of the streamed array `A`.
pub const A_ELEMS: u64 = 8192;
/// Elements of the cached array `B`.
pub const B_ELEMS: u64 = 2048;
/// Bytes per object in both arrays.
pub const OBJECT_BYTES: u64 = 16;
/// Thread blocks (each takes an `A` slice and a `B` slice).
pub const BLOCKS: u64 = 4;
/// Compute instructions per warp iteration.
pub const COMPUTE_PER_ITER: u32 = 4;

/// The streamed array `A` (mapped to local memory).
pub fn array_a() -> AosArray {
    AosArray {
        base: VAddr(0x1000_0000),
        object_bytes: OBJECT_BYTES,
        elems: A_ELEMS,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// The cached array `B`.
pub fn array_b() -> AosArray {
    AosArray {
        base: VAddr(0x2000_0000),
        object_bytes: OBJECT_BYTES,
        elems: B_ELEMS,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// Builds the Pollution program for one configuration.
pub fn program(kind: MemConfigKind) -> Program {
    let builder = WorkloadBuilder::new(kind);
    let a = array_a();
    let b = array_b();
    let a_per_block = A_ELEMS / BLOCKS;
    let b_per_block = B_ELEMS / BLOCKS;
    let blocks: Vec<Vec<TileTask>> = (0..BLOCKS)
        .map(|i| {
            let b_tile = b.tile(i * b_per_block, b_per_block);
            vec![
                // First pass over B (through the cache).
                TileTask {
                    share: Some(1),
                    ..TileTask::dense(b_tile, Placement::Global, COMPUTE_PER_ITER)
                },
                // Stream A through local memory (pollutes the L1 only when
                // the copies are explicit).
                TileTask::dense(
                    a.tile(i * a_per_block, a_per_block),
                    Placement::Local,
                    COMPUTE_PER_ITER,
                ),
                // Second pass over B: hits only if A did not pollute.
                TileTask {
                    share: Some(1),
                    ..TileTask::dense(b_tile, Placement::Global, COMPUTE_PER_ITER)
                },
            ]
        })
        .collect();
    Program {
        phases: vec![
            Phase::Gpu(kernel_from_blocks(&builder, blocks)),
            Phase::Cpu(cpu_sweep(&a, 15, false)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn a_slice_fits_local_memory() {
        // Each block's A slice must fit the 16 KB stash compactly.
        assert!(A_ELEMS / BLOCKS * 4 <= 16 * 1024);
        // …while its L1 footprint exceeds the 32 KB cache (the pollution).
        assert!(A_ELEMS / BLOCKS * OBJECT_BYTES >= 32 * 1024);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn b_fits_the_cache_without_pollution() {
        assert!(B_ELEMS * OBJECT_BYTES <= 32 * 1024);
    }

    #[test]
    fn blocks_interleave_b_a_b() {
        let p = program(MemConfigKind::Scratch);
        let Phase::Gpu(kernel) = &p.phases[0] else {
            panic!("first phase is the kernel")
        };
        assert_eq!(kernel.blocks.len() as u64, BLOCKS);
        // In the Scratch lowering only A is local.
        let tb = &kernel.blocks[0];
        assert_eq!(tb.allocs.len(), 1);
    }

    #[test]
    fn g_variants_also_stage_b() {
        let p = program(MemConfigKind::StashG);
        let Phase::Gpu(kernel) = &p.phases[0] else {
            panic!("first phase is the kernel")
        };
        // StashG maps A and both B passes; B's two passes share one slot.
        assert_eq!(kernel.blocks[0].maps().count(), 3);
        assert_eq!(kernel.blocks[0].allocs.len(), 2);
    }
}
