//! The four microbenchmarks of §5.4.1.
//!
//! Each emphasizes one stash benefit from Table 1:
//!
//! | Microbenchmark | Stash feature exercised |
//! |---|---|
//! | [`implicit`]  | implicit loads and lazy writebacks (no copy code) |
//! | [`pollution`] | local fills that bypass (don't pollute) the L1 |
//! | [`ondemand`]  | on-demand, data-dependent loads into the structure |
//! | [`reuse`]     | compact storage + cross-kernel reuse via global visibility |
//!
//! All four use an array-of-structs whose accessed fields the GPU kernel
//! updates and the CPUs subsequently read (1 GPU CU, 15 CPU cores).
//!
//! [`aliasing`] is a fifth, *extra* microbenchmark outside Figure 5: a
//! DRF-clean but deliberately uncertifiable read-sharing pattern for the
//! `verify::dataflow` conflict pass (see `suite::extras`).

pub mod aliasing;
pub mod implicit;
pub mod ondemand;
pub mod pollution;
pub mod reuse;

/// The microbenchmark names in Figure 5 order.
pub const ALL: [&str; 4] = [implicit::NAME, pollution::NAME, ondemand::NAME, reuse::NAME];
