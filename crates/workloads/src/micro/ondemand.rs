//! **On-demand**: data-dependent loads into the local structure.
//!
//! The kernel reads and writes only one element out of every 32, based on
//! a runtime condition. Scratchpad configurations (including DMA) must
//! conservatively move the *entire* mapped array in and out; the cache and
//! the stash generate memory requests only for the elements actually
//! touched.

use crate::builder::{
    cpu_sweep_indices, kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder,
};
use gpu::config::MemConfigKind;
use gpu::program::{Phase, Program};
use mem::addr::VAddr;
use sim::rng::SplitMix64;

/// Registry name.
pub const NAME: &str = "ondemand";

/// Elements in the array.
pub const ELEMS: u64 = 4096;
/// Bytes per object.
pub const OBJECT_BYTES: u64 = 32;
/// Elements per thread block.
pub const ELEMS_PER_BLOCK: u64 = 256;
/// One element out of this many is selected by the runtime condition.
pub const SELECT_ONE_OF: u64 = 32;
/// Compute instructions per warp iteration (the condition evaluation).
pub const COMPUTE_PER_ITER: u32 = 4;
/// Seed for the (deterministic) runtime condition.
pub const SEED: u64 = 0x0DDE_0815;

/// The array the benchmark sparsely updates.
pub fn array() -> AosArray {
    AosArray {
        base: VAddr(0x1000_0000),
        object_bytes: OBJECT_BYTES,
        elems: ELEMS,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// The dense key array the runtime condition is evaluated over (every
/// element's key is read in every configuration).
pub fn keys() -> AosArray {
    AosArray {
        base: VAddr(0x3000_0000),
        object_bytes: 4,
        elems: ELEMS,
        field_offset: 0,
        field_bytes: 4,
    }
}

/// The selected element indices (one per 32-element group, uniformly
/// drawn with the fixed seed — identical across configurations).
pub fn selected_elements() -> Vec<u64> {
    selected_elements_with(SELECT_ONE_OF)
}

/// Selection with a custom sparsity (one element per `select_one_of`).
pub fn selected_elements_with(select_one_of: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(SEED);
    (0..ELEMS / select_one_of)
        .map(|g| g * select_one_of + rng.next_below(select_one_of))
        .collect()
}

/// Builds the On-demand program for one configuration.
pub fn program(kind: MemConfigKind) -> Program {
    program_with_selectivity(kind, SELECT_ONE_OF)
}

/// Builds On-demand with a custom selection sparsity — the knob that
/// moves the stash/DMA crossover (dense selections amortize the DMA's
/// bulk transfer; sparse ones waste it).
pub fn program_with_selectivity(kind: MemConfigKind, select_one_of: u64) -> Program {
    let builder = WorkloadBuilder::new(kind);
    let a = array();
    let selected = selected_elements_with(select_one_of);
    let blocks: Vec<Vec<TileTask>> = (0..ELEMS / ELEMS_PER_BLOCK)
        .map(|bidx| {
            let start = bidx * ELEMS_PER_BLOCK;
            let local_sel: Vec<u64> = selected
                .iter()
                .filter(|&&e| (start..start + ELEMS_PER_BLOCK).contains(&e))
                .map(|&e| e - start) // field is one word: word idx == elem idx
                .collect();
            vec![
                // Evaluate the condition: a dense read of every key.
                TileTask {
                    writes: false,
                    ..TileTask::dense(
                        keys().tile(start, ELEMS_PER_BLOCK),
                        Placement::Global,
                        COMPUTE_PER_ITER,
                    )
                },
                // Touch only the selected payload elements.
                TileTask {
                    selected_words: Some(local_sel),
                    compute_per_iter: 1,
                    ..TileTask::dense(a.tile(start, ELEMS_PER_BLOCK), Placement::Local, 1)
                },
            ]
        })
        .collect();
    Program {
        phases: vec![
            Phase::Gpu(kernel_from_blocks(&builder, blocks)),
            Phase::Cpu(cpu_sweep_indices(&a, &selected, 15, false)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::program::WarpOp;

    #[test]
    fn selection_is_sparse_and_deterministic() {
        let s1 = selected_elements();
        let s2 = selected_elements();
        assert_eq!(s1, s2);
        assert_eq!(s1.len() as u64, ELEMS / SELECT_ONE_OF);
        // One selection per group, within the group.
        for (g, &e) in s1.iter().enumerate() {
            let g = g as u64;
            assert!((g * SELECT_ONE_OF..(g + 1) * SELECT_ONE_OF).contains(&e));
        }
    }

    fn words_touched(kind: MemConfigKind, global: bool) -> usize {
        let p = program(kind);
        let Phase::Gpu(kernel) = &p.phases[0] else {
            panic!("first phase is the kernel")
        };
        kernel
            .blocks
            .iter()
            .flat_map(|b| b.stages.iter().flat_map(|s| s.warps.iter().flatten()))
            .filter_map(|op| match op {
                WarpOp::GlobalMem { lanes, .. } if global => Some(lanes.len()),
                WarpOp::LocalMem { lanes, .. } if !global => Some(lanes.len()),
                _ => None,
            })
            .sum()
    }

    #[test]
    fn stash_touches_only_selected_words() {
        // read + write per selected element.
        assert_eq!(
            words_touched(MemConfigKind::Stash, false) as u64,
            2 * (ELEMS / SELECT_ONE_OF)
        );
    }

    #[test]
    fn scratch_copies_everything() {
        // Copy-in + copy-out move every payload element through global
        // loads and stores regardless of selection; the dense key reads
        // add one global read per element.
        assert_eq!(
            words_touched(MemConfigKind::Scratch, true) as u64,
            2 * ELEMS + ELEMS
        );
    }

    #[test]
    fn cache_touches_only_selected_globals() {
        // Key reads are dense; payload accesses cover only the selection.
        assert_eq!(
            words_touched(MemConfigKind::Cache, true) as u64,
            ELEMS + 2 * (ELEMS / SELECT_ONE_OF)
        );
    }
}
