//! The workload registry the bench harness iterates.

use crate::{apps, micro};
use gpu::config::MemConfigKind;
use gpu::program::Program;
use sim::config::SystemConfig;

/// Which machine a workload runs on (§5.4: microbenchmarks use 1 CU +
/// 15 CPU cores; applications use 15 CUs + 1 CPU core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadSet {
    /// The four Figure 5 microbenchmarks.
    Micro,
    /// The seven Figure 6 applications.
    Apps,
}

impl WorkloadSet {
    /// The system configuration this set runs on.
    pub fn system_config(self) -> SystemConfig {
        match self {
            WorkloadSet::Micro => SystemConfig::for_microbenchmarks(),
            WorkloadSet::Apps => SystemConfig::for_applications(),
        }
    }

    /// The workload names in figure order.
    pub fn names(self) -> &'static [&'static str] {
        match self {
            WorkloadSet::Micro => &micro::ALL,
            WorkloadSet::Apps => &apps::ALL,
        }
    }

    /// The configurations this set's figure compares (Figure 5 for the
    /// microbenchmarks, Figure 6 for the applications).
    pub fn figure_kinds(self) -> &'static [MemConfigKind] {
        match self {
            WorkloadSet::Micro => &MemConfigKind::FIGURE5,
            WorkloadSet::Apps => &MemConfigKind::FIGURE6,
        }
    }
}

/// A named workload: a program factory over memory configurations.
#[derive(Clone, Copy)]
pub struct Workload {
    /// Registry name (lowercase).
    pub name: &'static str,
    /// Which set (and machine) it belongs to.
    pub set: WorkloadSet,
    /// Builds the program for one configuration.
    pub build: fn(MemConfigKind) -> Program,
}

impl Workload {
    /// The FNV fingerprint of this workload lowered for `kind` — the
    /// identity of a lowered program. It is the same value
    /// `Machine::checkpoint` stores in a snapshot's META section and the
    /// daemon uses as the program component of its result-cache key, so
    /// the three layers can never disagree about what "the same program"
    /// means.
    #[must_use]
    pub fn fingerprint(&self, kind: MemConfigKind) -> u64 {
        gpu::machine::program_fingerprint(&(self.build)(kind))
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("set", &self.set)
            .finish()
    }
}

/// All workloads, microbenchmarks first, in figure order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: micro::implicit::NAME,
            set: WorkloadSet::Micro,
            build: micro::implicit::program,
        },
        Workload {
            name: micro::pollution::NAME,
            set: WorkloadSet::Micro,
            build: micro::pollution::program,
        },
        Workload {
            name: micro::ondemand::NAME,
            set: WorkloadSet::Micro,
            build: micro::ondemand::program,
        },
        Workload {
            name: micro::reuse::NAME,
            set: WorkloadSet::Micro,
            build: micro::reuse::program,
        },
        Workload {
            name: apps::lud::NAME,
            set: WorkloadSet::Apps,
            build: apps::lud::program,
        },
        Workload {
            name: apps::surf::NAME,
            set: WorkloadSet::Apps,
            build: apps::surf::program,
        },
        Workload {
            name: apps::backprop::NAME,
            set: WorkloadSet::Apps,
            build: apps::backprop::program,
        },
        Workload {
            name: apps::nw::NAME,
            set: WorkloadSet::Apps,
            build: apps::nw::program,
        },
        Workload {
            name: apps::pathfinder::NAME,
            set: WorkloadSet::Apps,
            build: apps::pathfinder::program,
        },
        Workload {
            name: apps::sgemm::NAME,
            set: WorkloadSet::Apps,
            build: apps::sgemm::program,
        },
        Workload {
            name: apps::stencil::NAME,
            set: WorkloadSet::Apps,
            build: apps::stencil::program,
        },
    ]
}

/// Extra diagnostic workloads: analysable and runnable, but outside the
/// Figure 5/6 suites (they reproduce no paper bar and never enter the
/// default matrices or digests).
pub fn extras() -> Vec<Workload> {
    vec![Workload {
        name: micro::aliasing::NAME,
        set: WorkloadSet::Apps, // needs the multi-CU machine to alias
        build: micro::aliasing::program,
    }]
}

/// Finds a workload by name (suite first, then extras).
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().chain(extras()).find(|w| w.name == name)
}

/// The microbenchmarks in Figure 5 order.
pub fn micros() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.set == WorkloadSet::Micro)
        .collect()
}

/// The applications in Figure 6 order.
pub fn applications() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.set == WorkloadSet::Apps)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        assert_eq!(micros().len(), 4);
        assert_eq!(applications().len(), 7);
        assert_eq!(all().len(), 11);
    }

    #[test]
    fn names_are_unique_and_findable() {
        let names: Vec<_> = all().iter().map(|w| w.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(by_name(n).is_some());
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_lowerings() {
        let w = by_name("reuse").unwrap();
        // Deterministic across calls...
        assert_eq!(
            w.fingerprint(MemConfigKind::Stash),
            w.fingerprint(MemConfigKind::Stash)
        );
        // ...different per lowering target and per workload.
        assert_ne!(
            w.fingerprint(MemConfigKind::Stash),
            w.fingerprint(MemConfigKind::Scratch)
        );
        let other = by_name("implicit").unwrap();
        assert_ne!(
            w.fingerprint(MemConfigKind::Stash),
            other.fingerprint(MemConfigKind::Stash)
        );
    }

    #[test]
    fn every_workload_builds_for_every_configuration() {
        for w in all() {
            for kind in MemConfigKind::ALL {
                let p = (w.build)(kind);
                assert!(
                    p.gpu_instruction_count() > 0,
                    "{} on {kind} is empty",
                    w.name
                );
            }
        }
    }
}
