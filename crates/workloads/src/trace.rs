//! Trace-driven workloads: describe a workload in a small text format and
//! lower it to any memory configuration — the front door for running your
//! own access patterns without writing Rust.
//!
//! # Format
//!
//! Line-oriented; `#` starts a comment. Directives:
//!
//! ```text
//! machine micro|apps              # which Table 2 machine (default micro)
//! array <name> elems=<n> object=<bytes> [field_off=<b>] [field=<b>]
//! kernel                          # starts a new kernel
//! block                           # starts a new thread block
//! task <array> <start> <count> <r|w|rw> <local|global|temp>
//!      [passes=<n>] [compute=<n>] [share=<k>] [rows=<n> stride=<elems>]
//! cpu_sweep <array> [cores=<n>] [write]
//! ```
//!
//! A `task` is one [`TileTask`]: this block reads/writes `count` elements
//! of `<array>` starting at `<start>` (2-D if `rows`/`stride` given),
//! staged per the placement. Arrays are laid out at non-overlapping
//! virtual bases automatically.
//!
//! # Example
//!
//! ```
//! use gpu::config::MemConfigKind;
//! use workloads::trace::parse_trace;
//!
//! let tw = parse_trace(
//!     "array a elems=1024 object=16
//!      kernel
//!      block
//!      task a 0 256 rw local compute=4",
//! ).unwrap();
//! let program = tw.build(MemConfigKind::Stash);
//! assert_eq!(program.kernel_count(), 1);
//! ```
//!
//! A trace can also interleave GPU kernels with CPU phases and revisit
//! the same array tile from a later kernel — the pattern behind the
//! stash's cross-kernel reuse (§4.5) and the `reuse` microbenchmark.
//! Each `kernel` directive opens a new kernel; `cpu_sweep` inserts a
//! CPU phase reading (or, with `write`, writing) every element of an
//! array between them:
//!
//! ```
//! use gpu::config::MemConfigKind;
//! use gpu::program::Phase;
//! use workloads::trace::parse_trace;
//!
//! let tw = parse_trace(
//!     "array grid elems=512 object=4
//!      kernel                       # kernel 1 registers the tile
//!      block
//!      task grid 0 512 rw local
//!      cpu_sweep grid cores=2       # CPU reads the GPU's output
//!      kernel                       # kernel 2 re-reads the same tile:
//!      block                        #   stash hits, cache re-fetches,
//!      task grid 0 512 r local      #   scratch re-copies
//! ",
//! ).unwrap();
//! let program = tw.build(MemConfigKind::Stash);
//! assert_eq!(program.kernel_count(), 2);
//! assert!(matches!(program.phases[1], Phase::Cpu(_)));
//! ```

use crate::builder::{
    cpu_sweep, kernel_from_blocks, AosArray, Placement, TileTask, WorkloadBuilder,
};
use crate::suite::WorkloadSet;
use gpu::config::MemConfigKind;
use gpu::program::{Phase, Program};
use mem::addr::VAddr;
use sim::error::SimError;
use std::collections::HashMap;

/// A parsed trace: a configuration-independent workload description.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    set: WorkloadSet,
    arrays: HashMap<String, AosArray>,
    phases: Vec<TracePhase>,
}

#[derive(Debug, Clone)]
enum TracePhase {
    Kernel(Vec<Vec<TraceTask>>),
    CpuSweep {
        array: String,
        cores: usize,
        write: bool,
    },
}

#[derive(Debug, Clone)]
struct TraceTask {
    array: String,
    start: u64,
    count: u64,
    reads: bool,
    writes: bool,
    placement: Placement,
    passes: u32,
    compute: u32,
    share: Option<u32>,
    rows: Option<(u64, u64)>, // (rows, stride_elems)
}

impl TraceWorkload {
    /// Which machine the trace runs on.
    pub fn set(&self) -> WorkloadSet {
        self.set
    }

    /// The declared arrays, by name.
    pub fn array(&self, name: &str) -> Option<&AosArray> {
        self.arrays.get(name)
    }

    /// All declared arrays, sorted by name (diagnostics, symbol tables).
    pub fn arrays(&self) -> Vec<(&str, &AosArray)> {
        let mut out: Vec<(&str, &AosArray)> =
            self.arrays.iter().map(|(n, a)| (n.as_str(), a)).collect();
        out.sort_by_key(|&(n, _)| n);
        out
    }

    /// Lowers the trace for one memory configuration.
    ///
    /// # Panics
    ///
    /// Panics if a task exceeds its array's bounds; [`Self::try_build`]
    /// reports the same condition as an error instead.
    pub fn build(&self, kind: MemConfigKind) -> Program {
        self.try_build(kind)
            .unwrap_or_else(|e| panic!("trace not buildable: {e}"))
    }

    /// Lowers the trace for one memory configuration, reporting tasks
    /// that exceed their array's bounds as errors.
    ///
    /// The parser validates names and syntax; element-range geometry can
    /// only be checked here, against the declared array sizes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] naming the array and the offending
    /// element range.
    pub fn try_build(&self, kind: MemConfigKind) -> Result<Program, SimError> {
        let builder = WorkloadBuilder::new(kind);
        let mut phases = Vec::with_capacity(self.phases.len());
        for phase in &self.phases {
            match phase {
                TracePhase::Kernel(blocks) => {
                    let lowered: Vec<Vec<TileTask>> = blocks
                        .iter()
                        .map(|tasks| {
                            tasks
                                .iter()
                                .map(|t| self.lower(t))
                                .collect::<Result<_, _>>()
                        })
                        .collect::<Result<_, _>>()?;
                    phases.push(Phase::Gpu(kernel_from_blocks(&builder, lowered)));
                }
                TracePhase::CpuSweep {
                    array,
                    cores,
                    write,
                } => {
                    let a = self.arrays.get(array).expect("validated by parser");
                    phases.push(Phase::Cpu(cpu_sweep(a, *cores, *write)));
                }
            }
        }
        Ok(Program { phases })
    }

    fn lower(&self, t: &TraceTask) -> Result<TileTask, SimError> {
        let a = self.arrays.get(&t.array).expect("validated by parser");
        let last = match t.rows {
            Some((rows, stride)) => t.start + (rows.max(1) - 1) * stride + t.count,
            None => t.start + t.count,
        };
        if last > a.elems {
            return Err(SimError::Config(format!(
                "task on array `{}` reaches element {last} but the array has {} elements",
                t.array, a.elems
            )));
        }
        let tile = match t.rows {
            Some((rows, stride)) => a.tile_2d(t.start, t.count, rows, stride),
            None => a.tile(t.start, t.count),
        };
        Ok(TileTask {
            reads: t.reads,
            writes: t.writes,
            passes: t.passes,
            compute_per_iter: t.compute,
            share: t.share,
            ..TileTask::dense(tile, t.placement, t.compute)
        })
    }
}

fn parse_kv(token: &str) -> Option<(&str, &str)> {
    token.split_once('=')
}

fn parse_num(s: &str, what: &str, line_no: usize) -> Result<u64, String> {
    let s = s.trim();
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("line {line_no}: invalid {what} `{s}`"))
}

/// Parses the trace format.
///
/// # Errors
///
/// Returns [`SimError::Config`] with a message naming the offending line
/// for syntax errors, unknown directives or arrays, tasks outside any
/// `kernel`/`block`, or invalid geometry.
pub fn parse_trace(text: &str) -> Result<TraceWorkload, SimError> {
    parse_trace_impl(text).map_err(SimError::Config)
}

fn parse_trace_impl(text: &str) -> Result<TraceWorkload, String> {
    let mut set = WorkloadSet::Micro;
    let mut arrays: HashMap<String, AosArray> = HashMap::new();
    let mut next_base: u64 = 0x1000_0000;
    let mut phases: Vec<TracePhase> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let directive = tokens.next().expect("nonempty line");
        let rest: Vec<&str> = tokens.collect();
        match directive {
            "machine" => {
                set = match rest.first().copied() {
                    Some("micro") => WorkloadSet::Micro,
                    Some("apps") => WorkloadSet::Apps,
                    other => {
                        return Err(format!(
                            "line {line_no}: machine must be micro|apps, got {other:?}"
                        ))
                    }
                };
            }
            "array" => {
                let name = rest
                    .first()
                    .ok_or_else(|| format!("line {line_no}: array needs a name"))?
                    .to_string();
                let mut elems = None;
                let mut object = 4u64;
                let mut field_off = 0u64;
                let mut field = 4u64;
                for tok in &rest[1..] {
                    let (k, v) = parse_kv(tok).ok_or_else(|| {
                        format!("line {line_no}: expected key=value, got `{tok}`")
                    })?;
                    let v = parse_num(v, k, line_no)?;
                    match k {
                        "elems" => elems = Some(v),
                        "object" => object = v,
                        "field_off" => field_off = v,
                        "field" => field = v,
                        other => {
                            return Err(format!("line {line_no}: unknown array key `{other}`"))
                        }
                    }
                }
                let elems =
                    elems.ok_or_else(|| format!("line {line_no}: array needs elems=<n>"))?;
                let a = AosArray {
                    base: VAddr(next_base),
                    object_bytes: object,
                    elems,
                    field_offset: field_off,
                    field_bytes: field,
                };
                // Arrays are placed on disjoint 256 MB-aligned regions.
                next_base += a.footprint_bytes().next_multiple_of(0x1000_0000);
                if arrays.insert(name.clone(), a).is_some() {
                    return Err(format!("line {line_no}: array `{name}` redeclared"));
                }
            }
            "kernel" => phases.push(TracePhase::Kernel(Vec::new())),
            "block" => match phases.last_mut() {
                Some(TracePhase::Kernel(blocks)) => blocks.push(Vec::new()),
                _ => return Err(format!("line {line_no}: block outside a kernel")),
            },
            "task" => {
                let [array, start, count, mode, placement, opts @ ..] = rest.as_slice() else {
                    return Err(format!(
                        "line {line_no}: task <array> <start> <count> <r|w|rw> <local|global|temp> [opts]"
                    ));
                };
                if !arrays.contains_key(*array) {
                    return Err(format!("line {line_no}: unknown array `{array}`"));
                }
                let (reads, writes) = match *mode {
                    "r" => (true, false),
                    "w" => (false, true),
                    "rw" => (true, true),
                    other => {
                        return Err(format!(
                            "line {line_no}: mode must be r|w|rw, got `{other}`"
                        ))
                    }
                };
                let placement = match *placement {
                    "local" => Placement::Local,
                    "global" => Placement::Global,
                    "temp" => Placement::Temporary,
                    other => {
                        return Err(format!(
                            "line {line_no}: placement must be local|global|temp, got `{other}`"
                        ))
                    }
                };
                let mut task = TraceTask {
                    array: array.to_string(),
                    start: parse_num(start, "start", line_no)?,
                    count: parse_num(count, "count", line_no)?,
                    reads,
                    writes,
                    placement,
                    passes: 1,
                    compute: 2,
                    share: None,
                    rows: None,
                };
                let mut rows = None;
                let mut stride = None;
                for tok in opts {
                    let (k, v) = parse_kv(tok).ok_or_else(|| {
                        format!("line {line_no}: expected key=value, got `{tok}`")
                    })?;
                    let v = parse_num(v, k, line_no)?;
                    match k {
                        "passes" => task.passes = v as u32,
                        "compute" => task.compute = v as u32,
                        "share" => task.share = Some(v as u32),
                        "rows" => rows = Some(v),
                        "stride" => stride = Some(v),
                        other => return Err(format!("line {line_no}: unknown task key `{other}`")),
                    }
                }
                match (rows, stride) {
                    (Some(r), Some(s)) => task.rows = Some((r, s)),
                    (None, None) => {}
                    _ => {
                        return Err(format!(
                            "line {line_no}: rows= and stride= must be given together"
                        ))
                    }
                }
                match phases.last_mut() {
                    Some(TracePhase::Kernel(blocks)) if !blocks.is_empty() => {
                        blocks.last_mut().expect("nonempty").push(task);
                    }
                    _ => return Err(format!("line {line_no}: task outside a block")),
                }
            }
            "cpu_sweep" => {
                let array = rest
                    .first()
                    .ok_or_else(|| format!("line {line_no}: cpu_sweep needs an array"))?
                    .to_string();
                if !arrays.contains_key(&array) {
                    return Err(format!("line {line_no}: unknown array `{array}`"));
                }
                let mut cores = 15usize;
                let mut write = false;
                for tok in &rest[1..] {
                    if *tok == "write" {
                        write = true;
                    } else if let Some(("cores", v)) = parse_kv(tok) {
                        cores = parse_num(v, "cores", line_no)? as usize;
                    } else {
                        return Err(format!("line {line_no}: unknown cpu_sweep option `{tok}`"));
                    }
                }
                phases.push(TracePhase::CpuSweep {
                    array,
                    cores,
                    write,
                });
            }
            other => return Err(format!("line {line_no}: unknown directive `{other}`")),
        }
    }
    Ok(TraceWorkload {
        set,
        arrays,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::machine::Machine;

    const EXAMPLE: &str = "
        # two kernels over one array, then the CPUs read it back
        machine micro
        array data elems=1024 object=32 field=4
        kernel
        block
        task data 0 256 rw local passes=1 compute=4
        block
        task data 256 256 rw local
        kernel
        block
        task data 0 256 rw local
        cpu_sweep data cores=15
    ";

    #[test]
    fn parses_and_builds_for_every_configuration() {
        let tw = parse_trace(EXAMPLE).unwrap();
        assert_eq!(tw.set(), WorkloadSet::Micro);
        assert_eq!(tw.array("data").unwrap().elems, 1024);
        for kind in MemConfigKind::ALL {
            let program = tw.build(kind);
            assert_eq!(program.kernel_count(), 2);
            let mut machine = Machine::new(tw.set().system_config(), kind);
            let report = machine.run(&program).unwrap();
            assert!(report.total_picos > 0, "{kind}");
        }
    }

    #[test]
    fn trace_reproduces_cross_kernel_reuse() {
        let tw = parse_trace(EXAMPLE).unwrap();
        let mut machine = Machine::new(tw.set().system_config(), MemConfigKind::Stash);
        let report = machine.run(&tw.build(MemConfigKind::Stash)).unwrap();
        // Kernel 2 remaps block 0's tile: adoption fires.
        assert!(report.counters.get("stash.addmap_replicated") > 0);
    }

    #[test]
    fn two_d_tasks_need_both_rows_and_stride() {
        let t = "array m elems=4096 object=4\nkernel\nblock\ntask m 0 16 r local rows=16 stride=64";
        assert!(parse_trace(t).is_ok());
        let t = "array m elems=4096 object=4\nkernel\nblock\ntask m 0 16 r local rows=16";
        assert!(parse_trace(t).unwrap_err().to_string().contains("together"));
    }

    #[test]
    fn errors_name_the_line() {
        let err = parse_trace("array a elems=16\nkernel\ntask a 0 8 rw local")
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("outside a block"), "{err}");

        let err = parse_trace("task x 0 8 rw local").unwrap_err().to_string();
        assert!(err.contains("line 1"), "{err}");

        let err = parse_trace("array a elems=16\nkernel\nblock\ntask b 0 8 rw local")
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown array"), "{err}");

        let err = parse_trace("bogus").unwrap_err().to_string();
        assert!(err.contains("unknown directive"), "{err}");
    }

    #[test]
    fn parse_errors_are_config_errors() {
        // All parse failures surface as SimError::Config, so callers can
        // match on the variant.
        for bad in [
            "bogus",
            "machine neither",
            "array a",
            "array a elems=16\narray a elems=16",
            "array a elems=nope",
            "task a 0 8 rw local",
        ] {
            match parse_trace(bad) {
                Err(SimError::Config(_)) => {}
                other => panic!("expected Config error for `{bad}`, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_directives_are_rejected() {
        // Missing task fields.
        let err = parse_trace("array a elems=16\nkernel\nblock\ntask a 0 8")
            .unwrap_err()
            .to_string();
        assert!(err.contains("task <array>"), "{err}");
        // Non-key=value option.
        let err = parse_trace("array a elems=16\nkernel\nblock\ntask a 0 8 rw local passes")
            .unwrap_err()
            .to_string();
        assert!(err.contains("key=value"), "{err}");
        // Unknown option key.
        let err = parse_trace("array a elems=16\nkernel\nblock\ntask a 0 8 rw local warp=3")
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown task key"), "{err}");
        // Unknown array key.
        let err = parse_trace("array a elems=16 size=4")
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown array key"), "{err}");
        // block with no kernel, cpu_sweep details.
        let err = parse_trace("block").unwrap_err().to_string();
        assert!(err.contains("outside a kernel"), "{err}");
        let err = parse_trace("cpu_sweep").unwrap_err().to_string();
        assert!(err.contains("needs an array"), "{err}");
        let err = parse_trace("array a elems=16\ncpu_sweep b")
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown array"), "{err}");
        let err = parse_trace("array a elems=16\ncpu_sweep a sideways")
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown cpu_sweep option"), "{err}");
    }

    #[test]
    fn bad_mode_and_placement_are_rejected() {
        let err = parse_trace("array a elems=16\nkernel\nblock\ntask a 0 8 x local")
            .unwrap_err()
            .to_string();
        assert!(err.contains("mode must be r|w|rw"), "{err}");
        let err = parse_trace("array a elems=16\nkernel\nblock\ntask a 0 8 rw stack")
            .unwrap_err()
            .to_string();
        assert!(err.contains("placement must be local|global|temp"), "{err}");
    }

    #[test]
    fn try_build_rejects_out_of_bounds_tasks() {
        let tw = parse_trace("array a elems=16\nkernel\nblock\ntask a 8 16 rw local").unwrap();
        let err = tw.try_build(MemConfigKind::Stash).unwrap_err().to_string();
        assert!(err.contains("element 24"), "{err}");
        assert!(err.contains("16 elements"), "{err}");

        // 2-D: the last row's end is what matters.
        let tw = parse_trace(
            "array m elems=256 object=4\nkernel\nblock\ntask m 0 16 r local rows=16 stride=17",
        )
        .unwrap();
        assert!(tw.try_build(MemConfigKind::Stash).is_err());

        // In-bounds traces build for every configuration.
        let tw = parse_trace("array a elems=16\nkernel\nblock\ntask a 8 8 rw local").unwrap();
        for kind in MemConfigKind::ALL {
            assert!(tw.try_build(kind).is_ok(), "{kind}");
        }
    }

    #[test]
    fn arrays_get_disjoint_bases() {
        let tw = parse_trace("array a elems=1000 object=64\narray b elems=1000 object=64").unwrap();
        let a = tw.array("a").unwrap();
        let b = tw.array("b").unwrap();
        assert!(
            b.base.0 >= a.base.0 + a.footprint_bytes()
                || a.base.0 >= b.base.0 + b.footprint_bytes()
        );
    }

    #[test]
    fn comments_and_hex_are_accepted() {
        let tw = parse_trace(
            "# header\narray a elems=0x100 object=16 # trailing\nkernel\nblock\ntask a 0 0x40 r local",
        )
        .unwrap();
        assert_eq!(tw.array("a").unwrap().elems, 256);
    }
}
